#include "src/core/random_walk.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/obs/metrics.h"

namespace catapult {

WeightedCsg MakeWeightedCsg(const ClusterSummaryGraph& csg,
                            const EdgeLabelWeights& elw) {
  WeightedCsg wcsg;
  wcsg.csg = &csg;
  wcsg.edge_weights.reserve(csg.NumEdges());
  const double cluster_size = static_cast<double>(csg.cluster_size());
  for (const ClusterSummaryGraph::CsgEdge& e : csg.edges()) {
    EdgeLabelKey key =
        MakeEdgeLabelKey(csg.VertexLabel(e.u), csg.VertexLabel(e.v));
    double local = cluster_size > 0
                       ? static_cast<double>(e.support.Count()) / cluster_size
                       : 0.0;
    wcsg.edge_weights.push_back(elw.Get(key) * local);
  }
  return wcsg;
}

Pcp GeneratePcp(const WeightedCsg& wcsg, size_t target_edges, Rng& rng) {
  Pcp pcp;
  const ClusterSummaryGraph& csg = *wcsg.csg;
  if (csg.NumEdges() == 0 || target_edges == 0) return pcp;

  // Seed edge: the largest weight (first such edge for determinism).
  size_t seed = 0;
  for (size_t i = 1; i < wcsg.edge_weights.size(); ++i) {
    if (wcsg.edge_weights[i] > wcsg.edge_weights[seed]) seed = i;
  }
  std::vector<bool> edge_in(csg.NumEdges(), false);
  std::unordered_set<VertexId> vertices;
  auto Take = [&](size_t edge_index) {
    edge_in[edge_index] = true;
    pcp.push_back(edge_index);
    vertices.insert(csg.edges()[edge_index].u);
    vertices.insert(csg.edges()[edge_index].v);
  };
  Take(seed);

  while (pcp.size() < target_edges) {
    // Candidate adjacent edges (CAE) of the partial pattern.
    std::vector<size_t> cae;
    std::vector<double> weights;
    for (VertexId v : vertices) {
      for (size_t idx : csg.IncidentEdges(v)) {
        if (edge_in[idx]) continue;
        if (wcsg.edge_weights[idx] <= 0.0) continue;
        // An edge incident to two pattern vertices appears twice; dedupe.
        if (std::find(cae.begin(), cae.end(), idx) != cae.end()) continue;
        cae.push_back(idx);
        weights.push_back(wcsg.edge_weights[idx]);
      }
    }
    if (cae.empty()) {
      obs::Count(obs::Counter::kWalkDeadEnds);
      break;
    }
    obs::Count(obs::Counter::kWalkSteps);
    Take(cae[rng.WeightedIndex(weights)]);
  }
  return pcp;
}

std::vector<Pcp> GeneratePcpLibrary(const WeightedCsg& wcsg,
                                    size_t target_edges, size_t count,
                                    Rng& rng, const RunContext& ctx) {
  std::vector<Pcp> library;
  library.reserve(count);
  for (size_t walk = 0; walk < count; ++walk) {
    if (ctx.StopRequested("selector.pcp_walk")) break;
    Pcp pcp = GeneratePcp(wcsg, target_edges, rng);
    if (!pcp.empty()) {
      obs::Count(obs::Counter::kPcpEmitted);
      obs::Observe(obs::Hist::kPcpEdges, pcp.size());
      library.push_back(std::move(pcp));
    }
  }
  return library;
}

Pcp GenerateGreedyPcp(const WeightedCsg& wcsg, size_t target_edges) {
  Pcp pcp;
  const ClusterSummaryGraph& csg = *wcsg.csg;
  if (csg.NumEdges() == 0 || target_edges == 0) return pcp;
  size_t seed = 0;
  for (size_t i = 1; i < wcsg.edge_weights.size(); ++i) {
    if (wcsg.edge_weights[i] > wcsg.edge_weights[seed]) seed = i;
  }
  std::vector<bool> edge_in(csg.NumEdges(), false);
  std::unordered_set<VertexId> vertices;
  auto Take = [&](size_t edge_index) {
    edge_in[edge_index] = true;
    pcp.push_back(edge_index);
    vertices.insert(csg.edges()[edge_index].u);
    vertices.insert(csg.edges()[edge_index].v);
  };
  Take(seed);
  while (pcp.size() < target_edges) {
    int best = -1;
    for (VertexId v : vertices) {
      for (size_t idx : csg.IncidentEdges(v)) {
        if (edge_in[idx] || wcsg.edge_weights[idx] <= 0.0) continue;
        if (best < 0 || wcsg.edge_weights[idx] >
                            wcsg.edge_weights[static_cast<size_t>(best)]) {
          best = static_cast<int>(idx);
        }
      }
    }
    if (best < 0) break;
    Take(static_cast<size_t>(best));
  }
  return pcp;
}

Pcp GenerateFcp(const ClusterSummaryGraph& csg,
                const std::vector<Pcp>& library, size_t target_edges) {
  Pcp fcp;
  if (library.empty() || target_edges == 0) return fcp;

  std::unordered_map<size_t, size_t> frequency;
  for (const Pcp& pcp : library) {
    for (size_t idx : pcp) ++frequency[idx];
  }
  if (frequency.empty()) return fcp;

  // Most frequent edge first (ties: lowest index, deterministic).
  auto MoreFrequent = [&](size_t a, size_t b) {
    size_t fa = frequency.count(a) ? frequency.at(a) : 0;
    size_t fb = frequency.count(b) ? frequency.at(b) : 0;
    if (fa != fb) return fa > fb;
    return a < b;
  };
  size_t first = frequency.begin()->first;
  for (const auto& [idx, freq] : frequency) {
    if (MoreFrequent(idx, first)) first = idx;
  }

  std::vector<bool> edge_in(csg.NumEdges(), false);
  std::unordered_set<VertexId> vertices;
  auto Take = [&](size_t edge_index) {
    edge_in[edge_index] = true;
    fcp.push_back(edge_index);
    vertices.insert(csg.edges()[edge_index].u);
    vertices.insert(csg.edges()[edge_index].v);
  };
  Take(first);

  while (fcp.size() < target_edges) {
    int best = -1;
    for (VertexId v : vertices) {
      for (size_t idx : csg.IncidentEdges(v)) {
        if (edge_in[idx] || frequency.find(idx) == frequency.end()) continue;
        if (best < 0 || MoreFrequent(idx, static_cast<size_t>(best))) {
          best = static_cast<int>(idx);
        }
      }
    }
    if (best < 0) break;
    Take(static_cast<size_t>(best));
  }
  return fcp;
}

Graph PatternFromCsgEdges(const ClusterSummaryGraph& csg, const Pcp& edges) {
  Graph pattern;
  std::unordered_map<VertexId, VertexId> remap;
  auto MapVertex = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VertexId nv = pattern.AddVertex(csg.VertexLabel(v));
    remap.emplace(v, nv);
    return nv;
  };
  for (size_t idx : edges) {
    const ClusterSummaryGraph::CsgEdge& e = csg.edges()[idx];
    pattern.AddEdge(MapVertex(e.u), MapVertex(e.v));
  }
  return pattern;
}

}  // namespace catapult
