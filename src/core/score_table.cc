#include "src/core/score_table.h"

#include "src/iso/flat_vf2.h"
#include "src/iso/vf2.h"
#include "src/util/mem_budget.h"

namespace catapult {

size_t FlatSummaryIndex::MemoryBytes() const {
  size_t bytes = flat.MemoryBytes();
  for (const LabelDomains& d : domains) bytes += d.MemoryBytes();
  for (const Graph& g : summaries) {
    bytes += ApproxGraphBytes(g.NumVertices(), g.NumEdges());
  }
  return bytes;
}

FlatSummaryIndex BuildFlatSummaryIndex(
    const std::vector<ClusterSummaryGraph>& csgs) {
  FlatSummaryIndex index;
  index.summaries.reserve(csgs.size());
  for (const ClusterSummaryGraph& csg : csgs) {
    index.summaries.push_back(csg.ToGraph());
  }
  index.flat = FlatGraphDatabase::Build(index.summaries);
  index.domains.reserve(csgs.size());
  for (size_t i = 0; i < index.summaries.size(); ++i) {
    index.domains.push_back(LabelDomains::Build(index.flat.view(i)));
  }
  return index;
}

void CoveredCsgsFlat(const Graph& pattern, const FlatSummaryIndex& index,
                     uint64_t iso_node_budget, uint64_t* budget_exhausted,
                     uint64_t* out_words) {
  size_t words = CoverageWords(index.size());
  for (size_t w = 0; w < words; ++w) out_words[w] = 0;
  FlatGraph flat_pattern = FlatGraph::Build(pattern);
  FlatGraphView pattern_view = flat_pattern.View();
  IsoOptions options;
  options.node_budget =
      iso_node_budget == 0 ? kDefaultCoverageIsoBudget : iso_node_budget;
  for (size_t i = 0; i < index.size(); ++i) {
    FlatGraphView target = index.flat.view(i);
    if (target.NumVertices() == 0) continue;
    bool exhausted = false;
    options.budget_exhausted = &exhausted;
    if (FlatContainsSubgraph(pattern_view, target, &index.domains[i],
                             options)) {
      out_words[i >> 6] |= uint64_t{1} << (i & 63);
    }
    if (exhausted && budget_exhausted != nullptr) ++*budget_exhausted;
  }
}

void ScoreTable::Reset(size_t candidates, size_t num_csgs) {
  size_ = candidates;
  coverage_words_ = CoverageWords(num_csgs);
  score.assign(candidates, 0.0);
  ccov.assign(candidates, 0.0);
  lcov.assign(candidates, 0.0);
  div.assign(candidates, 0.0);
  cog.assign(candidates, 0.0);
  div_min.assign(candidates, std::numeric_limits<double>::max());
  div_folded.assign(candidates, 0);
  source_csg.assign(candidates, 0);
  cache_slot.assign(candidates, -1);
  iso_exhausted.assign(candidates, 0);
  valid.assign(candidates, 0);
  fresh.assign(candidates, 0);
  coverage_.assign(candidates * coverage_words_, 0);
}

int SelectorClassCache::Probe(uint64_t fp, const Graph& g) const {
  auto it = buckets_.find(fp);
  if (it == buckets_.end()) return -1;
  for (size_t slot = 0; slot < it->second.size(); ++slot) {
    const Entry& entry = it->second[slot];
    if (AreIsomorphicWithFingerprints(entry.rep, g, entry.fingerprint, fp)) {
      return static_cast<int>(slot);
    }
  }
  return -1;
}

SelectorClassCache::Entry& SelectorClassCache::At(uint64_t fp, int slot) {
  auto it = buckets_.find(fp);
  CATAPULT_CHECK(it != buckets_.end());
  CATAPULT_CHECK(slot >= 0 && static_cast<size_t>(slot) < it->second.size());
  return it->second[slot];
}

const SelectorClassCache::Entry& SelectorClassCache::At(uint64_t fp,
                                                        int slot) const {
  auto it = buckets_.find(fp);
  CATAPULT_CHECK(it != buckets_.end());
  CATAPULT_CHECK(slot >= 0 && static_cast<size_t>(slot) < it->second.size());
  return it->second[slot];
}

int SelectorClassCache::Insert(Entry entry) {
  std::vector<Entry>& bucket = buckets_[entry.fingerprint];
  bucket.push_back(std::move(entry));
  ++entries_;
  return static_cast<int>(bucket.size() - 1);
}

void SelectorClassCache::Clear() {
  buckets_.clear();
  entries_ = 0;
}

size_t SelectorClassCache::ApproxEntryBytes(const Entry& entry) {
  return ApproxGraphBytes(entry.rep.NumVertices(), entry.rep.NumEdges()) +
         entry.covered.size() * sizeof(uint64_t) + 64;
}

}  // namespace catapult
