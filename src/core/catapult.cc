#include "src/core/catapult.h"

#include <algorithm>

#include "src/cluster/feature_vectors.h"
#include "src/cluster/kmeans.h"
#include "src/util/timer.h"

namespace catapult {

namespace {

// Sampling-mode clustering (Section 4.3): features are mined on the eager
// sample at a lowered threshold and re-verified on the full database;
// coarse clustering covers the full database; oversized coarse clusters are
// lazily down-sampled before fine clustering.
ClusteringResult ClusterWithSampling(const GraphDatabase& db,
                                     const CatapultOptions& options,
                                     Rng& rng, const RunContext& ctx) {
  ClusteringResult result;
  WallTimer mining_timer;

  // Eager sample + lowered-threshold mining (at most half of the remaining
  // time, the same split as the unsampled path).
  std::vector<GraphId> sample = EagerSample(db.size(), options.eager, rng);
  SubtreeMinerOptions lowered = options.clustering.miner;
  lowered.min_support = LoweredSupportThreshold(
      options.clustering.miner.min_support, sample.size(), options.eager);
  std::vector<FrequentSubtree> candidates = MineFrequentSubtrees(
      db, sample, lowered, ctx.Slice(0.5), &result.mining_complete);

  // Re-count candidate supports on the full database at the original
  // threshold (Lemma 4.4's verification step). One full-database support
  // count per candidate is the expensive part; poll between candidates.
  const size_t min_count = static_cast<size_t>(std::max(
      1.0, options.clustering.miner.min_support *
               static_cast<double>(db.size())));
  std::vector<FrequentSubtree> verified;
  for (FrequentSubtree& fs : candidates) {
    if (ctx.StopRequested("miner.count_support")) {
      result.mining_complete = false;
      break;
    }
    DynamicBitset support = CountSupport(fs.tree, db);
    if (support.Count() < min_count) continue;
    fs.frequency = static_cast<double>(support.Count()) /
                   static_cast<double>(db.size());
    fs.support = std::move(support);
    verified.push_back(std::move(fs));
  }
  std::vector<size_t> selected =
      SelectRepresentativeSubtrees(verified, options.clustering.facility);
  for (size_t idx : selected) result.features.push_back(verified[idx]);
  result.mining_seconds = mining_timer.ElapsedSeconds();

  // Coarse clustering over the full database; feature vectors come straight
  // from the verified support sets (bit i of subtree j <=> graph i).
  WallTimer coarse_timer;
  std::vector<GraphId> all(db.size());
  for (GraphId i = 0; i < db.size(); ++i) all[i] = i;
  std::vector<std::vector<GraphId>> coarse;
  if (ctx.StopRequested("cluster.coarse")) {
    result.coarse_complete = false;
    coarse.push_back(all);
  } else if (result.features.empty()) {
    coarse.push_back(all);
  } else {
    std::vector<DynamicBitset> features(db.size(),
                                        DynamicBitset(result.features.size()));
    for (size_t j = 0; j < result.features.size(); ++j) {
      for (size_t i : result.features[j].support.ToIndices()) {
        features[i].Set(j);
      }
    }
    KMeansOptions kmeans_options;
    kmeans_options.k = options.clustering.explicit_k != 0
                           ? options.clustering.explicit_k
                           : std::max<size_t>(
                                 1, db.size() /
                                        options.clustering.max_cluster_size);
    kmeans_options.max_iterations =
        options.clustering.kmeans_max_iterations;
    KMeansResult kmeans = KMeansCluster(features, kmeans_options, rng);
    size_t k = 0;
    for (size_t a : kmeans.assignment) k = std::max(k, a + 1);
    coarse.assign(k, {});
    for (size_t i = 0; i < db.size(); ++i) {
      coarse[kmeans.assignment[i]].push_back(static_cast<GraphId>(i));
    }
    coarse.erase(std::remove_if(coarse.begin(), coarse.end(),
                                [](const auto& c) { return c.empty(); }),
                 coarse.end());
  }
  result.coarse_seconds = coarse_timer.ElapsedSeconds();

  // Lazy sampling of oversized clusters, then fine clustering.
  WallTimer fine_timer;
  std::vector<std::vector<GraphId>> sampled =
      LazySampleClusters(coarse, db.size(), options.lazy, rng);
  FineClusteringOptions fine;
  fine.max_cluster_size = options.clustering.max_cluster_size;
  fine.mcs = options.clustering.fine_mcs;
  result.clusters = FineCluster(db, std::move(sampled), fine, rng, ctx,
                                &result.fine_complete);
  result.fine_seconds = fine_timer.ElapsedSeconds();
  return result;
}

}  // namespace

CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options) {
  return RunCatapult(db, options, RunContext::NoLimit());
}

CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options,
                           const RunContext& ctx) {
  CatapultResult result;
  if (db.empty()) return result;

  // The effective deadline is the earlier of the caller's context and
  // options.deadline_ms; the cancellation token is shared either way.
  RunContext run_ctx = ctx;
  if (options.deadline_ms > 0.0) {
    run_ctx = RunContext(
        Deadline::Earliest(ctx.deadline(),
                           Deadline::AfterMillis(options.deadline_ms)),
        ctx.cancel_token());
  }
  result.execution.deadline_set = !run_ctx.Unlimited();
  Rng rng(options.seed);

  // Per-phase time allocation: clustering gets its share of the total, CSG
  // its share of the remainder, selection the rest. Each phase still honours
  // the overall deadline (a slice can never exceed it).
  WallTimer clustering_timer;
  RunContext clustering_ctx = run_ctx.Slice(options.clustering_time_share);
  ClusteringResult clustering =
      options.use_sampling
          ? ClusterWithSampling(db, options, rng, clustering_ctx)
          : SmallGraphClustering(db, options.clustering, rng, clustering_ctx);
  result.clusters = std::move(clustering.clusters);
  result.features = std::move(clustering.features);
  result.clustering_seconds = clustering_timer.ElapsedSeconds();
  result.execution.clustering_complete = clustering.Complete();
  result.execution.clustering_coarse_only = !clustering.fine_complete;

  WallTimer csg_timer;
  RunContext csg_ctx = run_ctx.Slice(options.csg_time_share);
  result.csgs = BuildCsgs(db, result.clusters, csg_ctx,
                          &result.execution.degraded_csgs);
  result.csg_seconds = csg_timer.ElapsedSeconds();
  result.execution.csg_complete = result.execution.degraded_csgs == 0;

  WallTimer selection_timer;
  result.selection = FindCannedPatternSet(db, result.clusters, result.csgs,
                                          options.selector, rng, run_ctx);
  result.selection_seconds = selection_timer.ElapsedSeconds();
  result.execution.selection_complete = result.selection.complete;
  result.execution.fallback_patterns = result.selection.fallback_patterns;
  result.execution.iso_budget_exhausted =
      result.selection.iso_budget_exhausted;
  return result;
}

}  // namespace catapult
