#include "src/core/catapult.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>

#include "src/cluster/feature_vectors.h"
#include "src/cluster/kmeans.h"
#include "src/dist/supervisor.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"

namespace catapult {

namespace {

// FNV-1a 64-bit accumulator for the config fingerprint.
class Fingerprinter {
 public:
  void Mix(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ULL;
    }
  }
  void MixDouble(double value) { Mix(std::bit_cast<uint64_t>(value)); }
  void MixString(const std::string& value) {
    Mix(value.size());
    for (char c : value) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ULL;
    }
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

// Resolves CatapultOptions::threads: explicit values win; 0 consults the
// CATAPULT_THREADS environment variable (itself 0 = hardware concurrency,
// the hook the CI sanitizer jobs use to thread every suite), else 1.
size_t ResolveThreadCount(size_t configured) {
  if (configured != 0) return configured;
  const char* env = std::getenv("CATAPULT_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return value == 0 ? ThreadPool::HardwareThreads()
                        : static_cast<size_t>(value);
    }
  }
  return 1;
}

// Sampling-mode coarse stages (Section 4.3): features are mined on the
// eager sample at a lowered threshold and re-verified on the full database;
// coarse clustering covers the full database; oversized coarse clusters are
// lazily down-sampled. The returned result's `clusters` hold the sampled
// coarse partition — the shared fine stage (FineClusteringStage, in-process
// or sharded) runs on top of it.
ClusteringResult SamplingCoarseStage(const GraphDatabase& db,
                                     const CatapultOptions& options,
                                     Rng& rng, const RunContext& ctx) {
  ClusteringResult result;
  WallTimer mining_timer;

  // Eager sample + lowered-threshold mining (at most half of the remaining
  // time, the same split as the unsampled path).
  std::vector<GraphId> sample = EagerSample(db.size(), options.eager, rng);
  SubtreeMinerOptions lowered = options.clustering.miner;
  lowered.min_support = LoweredSupportThreshold(
      options.clustering.miner.min_support, sample.size(), options.eager);
  std::vector<FrequentSubtree> candidates = MineFrequentSubtrees(
      db, sample, lowered, ctx.Slice(0.5), &result.mining_complete);

  // Re-count candidate supports on the full database at the original
  // threshold (Lemma 4.4's verification step). One full-database support
  // count per candidate is the expensive part; the counts are independent
  // (per-candidate slots, read-only database) and run on the context's
  // pool, with the stop poll per candidate and the keep/drop reduction in
  // candidate order.
  const size_t min_count = static_cast<size_t>(std::max(
      1.0, options.clustering.miner.min_support *
               static_cast<double>(db.size())));
  std::vector<DynamicBitset> supports(candidates.size());
  std::vector<uint8_t> frequent(candidates.size(), 0);
  std::atomic<bool> stop_verifying{false};
  ParallelFor(ctx, candidates.size(), 1, [&](size_t i) {
    if (stop_verifying.load(std::memory_order_relaxed)) return;
    if (ctx.StopRequested("miner.count_support")) {
      stop_verifying.store(true, std::memory_order_relaxed);
      return;
    }
    DynamicBitset support = CountSupport(candidates[i].tree, db);
    if (support.Count() < min_count) return;
    supports[i] = std::move(support);
    frequent[i] = 1;
  });
  if (stop_verifying.load(std::memory_order_relaxed)) {
    result.mining_complete = false;
  }
  std::vector<FrequentSubtree> verified;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (frequent[i] == 0) continue;
    FrequentSubtree& fs = candidates[i];
    fs.frequency = static_cast<double>(supports[i].Count()) /
                   static_cast<double>(db.size());
    fs.support = std::move(supports[i]);
    verified.push_back(std::move(fs));
  }
  std::vector<size_t> selected =
      SelectRepresentativeSubtrees(verified, options.clustering.facility);
  for (size_t idx : selected) result.features.push_back(verified[idx]);
  result.mining_seconds = mining_timer.ElapsedSeconds();

  // Coarse clustering over the full database; feature vectors come straight
  // from the verified support sets (bit i of subtree j <=> graph i).
  WallTimer coarse_timer;
  std::vector<GraphId> all(db.size());
  for (GraphId i = 0; i < db.size(); ++i) all[i] = i;
  std::vector<std::vector<GraphId>> coarse;
  // The feature matrix is the phase's dominant allocation; charge it before
  // materialising. A refused charge sheds coarse clustering entirely (one
  // cluster; fine clustering can still split it).
  ScopedMemoryCharge feature_charge(
      ctx.memory(),
      db.size() * ApproxBitsetBytes(result.features.size()),
      "mem.features");
  if (ctx.StopRequested("cluster.coarse") || !feature_charge.ok()) {
    result.coarse_complete = false;
    coarse.push_back(all);
  } else if (result.features.empty()) {
    coarse.push_back(all);
  } else {
    std::vector<DynamicBitset> features(db.size(),
                                        DynamicBitset(result.features.size()));
    for (size_t j = 0; j < result.features.size(); ++j) {
      for (size_t i : result.features[j].support.ToIndices()) {
        features[i].Set(j);
      }
    }
    KMeansOptions kmeans_options;
    kmeans_options.k = options.clustering.explicit_k != 0
                           ? options.clustering.explicit_k
                           : std::max<size_t>(
                                 1, db.size() /
                                        options.clustering.max_cluster_size);
    kmeans_options.max_iterations =
        options.clustering.kmeans_max_iterations;
    KMeansResult kmeans = KMeansCluster(features, kmeans_options, rng, ctx);
    size_t k = 0;
    for (size_t a : kmeans.assignment) k = std::max(k, a + 1);
    coarse.assign(k, {});
    for (size_t i = 0; i < db.size(); ++i) {
      coarse[kmeans.assignment[i]].push_back(static_cast<GraphId>(i));
    }
    coarse.erase(std::remove_if(coarse.begin(), coarse.end(),
                                [](const auto& c) { return c.empty(); }),
                 coarse.end());
  }
  result.coarse_seconds = coarse_timer.ElapsedSeconds();

  // Lazy sampling of oversized clusters; fine clustering is the caller's.
  result.clusters = LazySampleClusters(coarse, db.size(), options.lazy, rng);
  return result;
}

// The coarse stages of the clustering phase under either mining path. What
// remains afterwards — fine splitting and CSG folding — is exactly the work
// the sharded executor partitions across worker processes.
ClusteringResult RunCoarseStages(const GraphDatabase& db,
                                 const CatapultOptions& options, Rng& rng,
                                 const RunContext& ctx) {
  if (options.use_sampling) return SamplingCoarseStage(db, options, rng, ctx);
  std::vector<GraphId> all(db.size());
  for (GraphId i = 0; i < db.size(); ++i) all[i] = i;
  return CoarseClusteringStage(db, all, options.clustering, rng, ctx);
}

// Context merge shared by the prepared-corpus entry points: the effective
// deadline is the earlier of the caller's and options.deadline_ms, option
// memory limits supersede the caller's ledger, and a pool is owned when the
// caller brought none (or asked for a specific thread count). Mirrors the
// merge at the top of RunCatapult.
RunContext MergeOptionsContext(const CatapultOptions& options,
                               const RunContext& ctx,
                               std::unique_ptr<ThreadPool>* owned_pool) {
  RunContext run_ctx = ctx;
  if (options.deadline_ms > 0.0) {
    run_ctx =
        RunContext(Deadline::Earliest(ctx.deadline(),
                                      Deadline::AfterMillis(options.deadline_ms)),
                   ctx.cancel_token(), ctx.memory())
            .WithPool(ctx.pool())
            .WithObservability(ctx.metrics(), ctx.tracer());
  }
  if (options.mem_hard_limit_bytes != 0 || options.mem_soft_limit_bytes != 0) {
    run_ctx = run_ctx.WithMemory(MemoryBudget::Limited(
        options.mem_soft_limit_bytes, options.mem_hard_limit_bytes));
  }
  if (run_ctx.pool() == nullptr || options.threads != 0) {
    *owned_pool =
        std::make_unique<ThreadPool>(ResolveThreadCount(options.threads));
    run_ctx = run_ctx.WithPool(owned_pool->get());
  }
  return run_ctx;
}

}  // namespace

std::vector<OptionsError> ValidateCatapultOptions(
    const CatapultOptions& options) {
  std::vector<OptionsError> errors;
  auto Err = [&errors](std::string field, std::string message) {
    errors.push_back({std::move(field), std::move(message)});
  };

  const PatternBudget& budget = options.selector.budget;
  if (budget.eta_min <= 2) {
    Err("selector.budget.eta_min", "must exceed 2 (Definition 3.1)");
  }
  if (budget.eta_max < budget.eta_min) {
    Err("selector.budget.eta_max", "must be at least eta_min");
  }
  if (budget.gamma == 0) {
    Err("selector.budget.gamma", "must be positive");
  }
  if (!budget.size_distribution.empty()) {
    if (budget.eta_max >= budget.eta_min &&
        budget.size_distribution.size() != budget.NumSizes()) {
      Err("selector.budget.size_distribution",
          "needs one weight per size in [eta_min, eta_max]");
    }
    double total = 0.0;
    bool malformed = false;
    for (double w : budget.size_distribution) {
      if (!(w >= 0.0) || !std::isfinite(w)) malformed = true;
      total += w;
    }
    if (malformed) {
      Err("selector.budget.size_distribution",
          "weights must be finite and non-negative");
    } else if (!(total > 0.0)) {
      Err("selector.budget.size_distribution",
          "needs at least one positive weight");
    }
  }
  if (options.selector.strategy == CandidateStrategy::kRandomWalk &&
      options.selector.walks_per_candidate == 0) {
    Err("selector.walks_per_candidate",
        "must be positive for the random-walk strategy");
  }
  if (!(options.selector.weight_decay > 0.0 &&
        options.selector.weight_decay <= 1.0)) {
    Err("selector.weight_decay", "must be in (0, 1]");
  }
  if (options.clustering.max_cluster_size == 0) {
    Err("clustering.max_cluster_size", "must be positive");
  }
  if (options.clustering.kmeans_max_iterations == 0) {
    Err("clustering.kmeans_max_iterations", "must be positive");
  }
  if (!(options.clustering.miner.min_support > 0.0 &&
        options.clustering.miner.min_support <= 1.0)) {
    Err("clustering.miner.min_support", "must be in (0, 1]");
  }
  if (options.clustering.miner.max_edges == 0) {
    Err("clustering.miner.max_edges", "must be positive");
  }
  if (!(options.deadline_ms >= 0.0) || !std::isfinite(options.deadline_ms)) {
    Err("deadline_ms", "must be finite and non-negative");
  }
  if (options.threads > ThreadPool::kMaxThreads) {
    Err("threads", "must not exceed ThreadPool::kMaxThreads (256)");
  }
  if (!(options.clustering_time_share > 0.0 &&
        options.clustering_time_share < 1.0)) {
    Err("clustering_time_share", "must be in (0, 1)");
  }
  if (!(options.csg_time_share > 0.0 && options.csg_time_share < 1.0)) {
    Err("csg_time_share", "must be in (0, 1)");
  }
  if (options.use_sampling) {
    if (!(options.eager.epsilon > 0.0) ||
        !std::isfinite(options.eager.epsilon)) {
      Err("eager.epsilon", "must be positive and finite");
    }
    if (!(options.eager.rho > 0.0 && options.eager.rho < 1.0)) {
      Err("eager.rho", "must be in (0, 1)");
    }
    if (!(options.eager.phi > 0.0 && options.eager.phi < 1.0)) {
      Err("eager.phi", "must be in (0, 1)");
    }
    if (!(options.lazy.p > 0.0 && options.lazy.p < 1.0)) {
      Err("lazy.p", "must be in (0, 1)");
    }
    if (!(options.lazy.z > 0.0) || !std::isfinite(options.lazy.z)) {
      Err("lazy.z", "must be positive and finite");
    }
    if (!(options.lazy.e > 0.0) || !std::isfinite(options.lazy.e)) {
      Err("lazy.e", "must be positive and finite");
    }
  }
  if (options.resume && options.checkpoint_dir.empty()) {
    Err("resume", "requires checkpoint_dir to be set");
  }
  if (options.processes > 64) {
    Err("processes", "must not exceed 64");
  }
  if (options.max_shard_retries > 16) {
    Err("max_shard_retries", "must not exceed 16");
  }
  if (!(options.shard_heartbeat_timeout_ms > 0.0) ||
      !std::isfinite(options.shard_heartbeat_timeout_ms)) {
    Err("shard_heartbeat_timeout_ms", "must be positive and finite");
  }
  if (!(options.shard_backoff_base_ms >= 0.0) ||
      !std::isfinite(options.shard_backoff_base_ms)) {
    Err("shard_backoff_base_ms", "must be finite and non-negative");
  }
  if (!(options.shard_backoff_cap_ms >= options.shard_backoff_base_ms) ||
      !std::isfinite(options.shard_backoff_cap_ms)) {
    Err("shard_backoff_cap_ms",
        "must be finite and at least shard_backoff_base_ms");
  }
  if (options.mem_soft_limit_bytes != 0 && options.mem_hard_limit_bytes != 0 &&
      options.mem_soft_limit_bytes > options.mem_hard_limit_bytes) {
    Err("mem_soft_limit_bytes", "must not exceed mem_hard_limit_bytes");
  }
  const bool remote = !options.dist_listen.empty() ||
                      options.dist_listen_fd >= 0;
  if (remote && options.processes <= 1) {
    Err("dist_listen", "requires processes > 1 (sharded execution)");
  }
  if (!options.dist_listen.empty() && options.dist_listen_fd >= 0) {
    Err("dist_listen", "mutually exclusive with dist_listen_fd");
  }
  if (!(options.dist_join_timeout_ms > 0.0) ||
      !std::isfinite(options.dist_join_timeout_ms)) {
    Err("dist_join_timeout_ms", "must be positive and finite");
  }
  if (!(options.dist_write_stall_timeout_ms > 0.0) ||
      !std::isfinite(options.dist_write_stall_timeout_ms)) {
    Err("dist_write_stall_timeout_ms", "must be positive and finite");
  }
  return errors;
}

uint64_t ConfigFingerprint(const CatapultOptions& options,
                           const GraphDatabase& db) {
  Fingerprinter fp;
  fp.Mix(options.seed);

  const PatternBudget& budget = options.selector.budget;
  fp.Mix(budget.eta_min);
  fp.Mix(budget.eta_max);
  fp.Mix(budget.gamma);
  fp.Mix(budget.size_distribution.size());
  for (double w : budget.size_distribution) fp.MixDouble(w);

  const SelectorOptions& sel = options.selector;
  fp.Mix(sel.walks_per_candidate);
  fp.Mix(static_cast<uint64_t>(sel.strategy));
  fp.MixDouble(sel.weight_decay);
  fp.Mix(sel.iso_node_budget);
  fp.Mix(sel.ged.node_budget);
  fp.Mix(sel.approximate_diversity ? 1 : 0);
  fp.Mix(sel.skip_duplicates ? 1 : 0);

  const SmallGraphClusteringOptions& cl = options.clustering;
  fp.Mix(static_cast<uint64_t>(cl.mode));
  fp.Mix(static_cast<uint64_t>(cl.coarse_algorithm));
  fp.Mix(cl.max_cluster_size);
  fp.Mix(cl.explicit_k);
  fp.MixDouble(cl.miner.min_support);
  fp.Mix(cl.miner.max_edges);
  fp.Mix(cl.miner.max_results);
  fp.Mix(cl.miner.max_candidates_per_level);
  fp.Mix(cl.facility.max_selected);
  fp.MixDouble(cl.facility.min_relative_gain);
  fp.Mix(cl.fine_mcs.connected ? 1 : 0);
  fp.Mix(cl.fine_mcs.match_edge_labels ? 1 : 0);
  fp.Mix(cl.fine_mcs.node_budget);
  fp.Mix(cl.kmeans_max_iterations);

  fp.Mix(options.use_sampling ? 1 : 0);
  fp.MixDouble(options.eager.epsilon);
  fp.MixDouble(options.eager.rho);
  fp.MixDouble(options.eager.phi);
  fp.MixDouble(options.lazy.p);
  fp.MixDouble(options.lazy.z);
  fp.MixDouble(options.lazy.e);
  fp.Mix(options.lazy.min_cluster_size_to_sample);

  // `processes` and the supervision knobs (retries, heartbeat, backoff) are
  // excluded for the same reason as `threads`: shard boundaries and retry
  // timing never affect the output, so checkpoints resume across process
  // counts.

  // The ingestion quarantine digest: database ids are dense over the
  // *kept* graphs, so two ingestions of the same file that quarantined
  // different graphs produce incompatible id spaces even if they hash
  // alike otherwise — a resume across them must be rejected.
  fp.Mix(options.ingest_digest);

  // Structural hash of D: a checkpoint is only compatible with the exact
  // database it was computed from. Deadline and memory-budget options are
  // deliberately excluded — resuming a killed run under a new time or
  // memory budget is the point.
  fp.Mix(db.size());
  for (Label l = 0; l < db.labels().size(); ++l) {
    fp.MixString(db.labels().Name(l));
  }
  for (GraphId id = 0; id < db.size(); ++id) {
    const Graph& g = db.graph(id);
    fp.Mix(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) fp.Mix(g.VertexLabel(v));
    fp.Mix(g.NumEdges());
    for (const Edge& e : g.EdgeList()) {
      fp.Mix(e.u);
      fp.Mix(e.v);
      fp.Mix(e.label);
    }
  }
  return fp.hash();
}

CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options) {
  return RunCatapult(db, options, RunContext::NoLimit());
}

CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options,
                           const RunContext& ctx) {
  CatapultResult result;
  result.option_errors = ValidateCatapultOptions(options);
  if (!result.ok()) return result;
  if (db.empty()) return result;

  // The effective deadline is the earlier of the caller's context and
  // options.deadline_ms; the cancellation token is shared either way.
  RunContext run_ctx = ctx;
  if (options.deadline_ms > 0.0) {
    run_ctx = RunContext(
                  Deadline::Earliest(ctx.deadline(),
                                     Deadline::AfterMillis(options.deadline_ms)),
                  ctx.cancel_token(), ctx.memory())
                  .WithPool(ctx.pool())
                  .WithObservability(ctx.metrics(), ctx.tracer());
  }
  // Memory governance: a budget configured in the options supersedes the
  // (by default unlimited) ledger of the caller's context.
  if (options.mem_hard_limit_bytes != 0 || options.mem_soft_limit_bytes != 0) {
    run_ctx = run_ctx.WithMemory(MemoryBudget::Limited(
        options.mem_soft_limit_bytes, options.mem_hard_limit_bytes));
  }
  // Parallelism: a pool carried by the caller's context is reused when the
  // options don't ask for a specific count; otherwise the run owns a pool
  // sized by options.threads (a 1-thread pool spawns no threads and executes
  // inline, so the default path stays exactly sequential).
  //
  // Sharded mode (processes > 1) forces a 1-thread supervisor pool instead:
  // forking a multithreaded process is undefined behaviour territory (only
  // the forking thread survives in the child), so the supervisor stays
  // single-threaded until every fork is behind it; each worker builds its
  // own `threads`-sized pool after the fork, and selection swaps in a real
  // pool once the sharded phase is over.
  const bool dist_mode = options.processes > 1;
  std::unique_ptr<ThreadPool> owned_pool;
  if (dist_mode) {
    owned_pool = std::make_unique<ThreadPool>(1);
    run_ctx = run_ctx.WithPool(owned_pool.get());
  } else if (run_ctx.pool() == nullptr || options.threads != 0) {
    owned_pool =
        std::make_unique<ThreadPool>(ResolveThreadCount(options.threads));
    run_ctx = run_ctx.WithPool(owned_pool.get());
  }
  const MemoryBudget& memory = run_ctx.memory();
  // Observability: install the calling thread's metrics shard for the whole
  // run (worker threads install theirs per parallel region inside the
  // pool), and open the root span. Both are no-ops when the context carries
  // no registry/tracer; neither ever influences pipeline decisions, so a
  // traced run stays bit-identical to an untraced one.
  obs::ScopedMetricsScope metrics_scope(run_ctx.metrics());
  obs::Span run_span(run_ctx.tracer(), "catapult.run");
  obs::SetGaugeMax(obs::Gauge::kPoolThreads, run_ctx.pool()->num_threads());
  ExecutionReport& exec = result.execution;
  exec.deadline_set = !run_ctx.Unlimited();
  // In sharded mode the supervisor pool is deliberately 1-thread; report
  // the worker-side thread count, which is what sizes the actual compute.
  exec.threads = dist_mode ? ResolveThreadCount(options.threads)
                           : run_ctx.pool()->num_threads();
  exec.mem_budget_set = memory.limited();
  exec.mem_soft_limit = memory.soft_limit();
  exec.mem_hard_limit = memory.hard_limit();
  // Aggregates each phase's pool activity into its PhaseParallelStats.
  // Reads the pool through run_ctx: sharded runs swap in a fresh pool for
  // selection, and stats baselines always come from the then-active pool.
  auto FinishPhase = [&run_ctx](const ThreadPool::Stats& before, double wall,
                                PhaseParallelStats& out) {
    ThreadPool::Stats after = run_ctx.pool()->stats();
    out.wall_seconds = wall;
    out.busy_seconds = after.busy_seconds - before.busy_seconds;
    out.parallel_items = after.items - before.items;
  };
  Rng rng(options.seed);

  // Computed once for the checkpoint store, the shard artifacts, and the
  // distributed-trace correlation id.
  const bool need_fingerprint = !options.checkpoint_dir.empty() || dist_mode ||
                                run_ctx.tracer() != nullptr;
  const uint64_t fingerprint =
      need_fingerprint ? ConfigFingerprint(options, db) : 0;
  // Deterministic trace id: same (options, db, seed) → same id, so a rerun
  // produces byte-identical trace documents under fixed ticks. Respects an
  // id the caller already installed (e.g. the serving loop's per-corpus id).
  if (run_ctx.tracer() != nullptr && run_ctx.tracer()->trace_id() == 0) {
    run_ctx.tracer()->SetTraceId(fingerprint ^ options.seed);
  }

  // Durability: open the checkpoint store and, when resuming, restore the
  // longest valid phase chain (recovery ladder; DESIGN.md Section 8). Every
  // decision lands in exec.checkpoint_events.
  std::unique_ptr<CheckpointStore> store;
  CheckpointStore::Recovery recovery;
  if (!options.checkpoint_dir.empty()) {
    store = std::make_unique<CheckpointStore>(options.checkpoint_dir,
                                              fingerprint);
    if (options.resume) {
      recovery = store->Recover(db, options.selector.budget);
      for (CheckpointEvent& event : recovery.events) {
        exec.checkpoint_events.push_back(std::move(event));
      }
    }
  }
  const bool write_checkpoints =
      store != nullptr && options.checkpoint_every_phase;
  auto RecordPhaseSave = [&exec](const char* phase,
                                 const std::string& error) {
    if (error.empty()) {
      ++exec.checkpoints_written;
      exec.checkpoint_events.push_back(
          {CheckpointEvent::Kind::kPhaseCheckpointed, phase, ""});
    } else {
      exec.checkpoint_events.push_back(
          {CheckpointEvent::Kind::kCheckpointWriteFailed, phase, error});
    }
  };

  // Phase spans: children of the run span, closed just before each phase's
  // stats are finalised so the trace duration matches the reported wall
  // time. Span objects are inert (and free) when the context has no tracer.
  std::optional<obs::Span> phase_span;

  // Sharded mode computes CSGs inside the clustering phase's sharded
  // executor (fine clustering + folding are one unit of per-cluster work);
  // the CSG phase then adopts them instead of re-folding.
  std::vector<ClusterSummaryGraph> dist_csgs;
  size_t dist_degraded_csgs = 0;
  bool have_dist_csgs = false;

  // --- Clustering ---
  WallTimer clustering_timer;
  ThreadPool::Stats clustering_pool_stats = run_ctx.pool()->stats();
  phase_span.emplace(run_ctx.tracer(), "clustering", run_span.id());
  if (recovery.clustering.has_value()) {
    result.clusters = std::move(recovery.clustering->clusters);
    result.features = std::move(recovery.clustering->features);
    // Continue the pseudo-random stream exactly where the checkpointed
    // clustering phase left it, so later phases draw the same values the
    // uninterrupted run would have drawn.
    rng.RestoreState(recovery.clustering->rng_after);
    exec.resumed_from = "clustering";
    exec.checkpoint_events.push_back(
        {CheckpointEvent::Kind::kResumedFromPhase, "clustering",
         std::to_string(result.clusters.size()) + " clusters"});
  } else {
    // Per-phase time allocation: clustering gets its share of the total,
    // CSG its share of the remainder, selection the rest. Each phase still
    // honours the overall deadline (a slice can never exceed it).
    RunContext clustering_ctx = run_ctx.Slice(options.clustering_time_share);
    ClusteringResult clustering =
        RunCoarseStages(db, options, rng, clustering_ctx);
    bool fine_enabled =
        options.use_sampling ||
        options.clustering.mode != ClusteringMode::kCoarseOnly;
    if (dist_mode) {
      // Mirror FineClusteringStage's soft-pressure shed before any stream
      // is split, so sharded and in-process runs degrade at the same point.
      if (fine_enabled && run_ctx.memory().SoftExceeded()) {
        fine_enabled = false;
        clustering.fine_complete = false;
      }
      dist::DistOptions dopts;
      dopts.processes = options.processes;
      dopts.max_shard_retries = options.max_shard_retries;
      dopts.heartbeat_timeout_ms = options.shard_heartbeat_timeout_ms;
      dopts.backoff_base_ms = options.shard_backoff_base_ms;
      dopts.backoff_cap_ms = options.shard_backoff_cap_ms;
      dopts.worker_threads = ResolveThreadCount(options.threads);
      dopts.fine_enabled = fine_enabled;
      dopts.fine.max_cluster_size = options.clustering.max_cluster_size;
      dopts.fine.mcs = options.clustering.fine_mcs;
      dopts.checkpoint_dir = options.checkpoint_dir;
      dopts.fingerprint = fingerprint;
      dopts.mem_soft_limit_bytes = options.mem_soft_limit_bytes;
      dopts.mem_hard_limit_bytes = options.mem_hard_limit_bytes;
      dopts.listen_address = options.dist_listen;
      dopts.listen_fd = options.dist_listen_fd;
      dopts.join_timeout_ms = options.dist_join_timeout_ms;
      dopts.write_stall_timeout_ms = options.dist_write_stall_timeout_ms;
      dopts.admin_listen = options.dist_admin_listen;
      // The sharded phase spans fine clustering and CSG folding, so its
      // slice covers both phases' shares.
      RunContext dist_ctx = run_ctx.Slice(std::min(
          0.95, options.clustering_time_share + options.csg_time_share));
      dist::ShardedPhasesResult sharded = dist::RunShardedClusterPhases(
          db, clustering.clusters, dopts, rng, dist_ctx, &exec.dist);
      clustering.clusters = std::move(sharded.fine_clusters);
      if (!sharded.fine_complete) clustering.fine_complete = false;
      dist_csgs = std::move(sharded.csgs);
      dist_degraded_csgs = sharded.degraded_csgs;
      have_dist_csgs = true;
    } else if (fine_enabled) {
      FineClusteringStage(db, options.clustering, &clustering, rng,
                          clustering_ctx);
    }
    result.clusters = std::move(clustering.clusters);
    result.features = std::move(clustering.features);
    exec.clustering_complete = clustering.Complete();
    exec.clustering_coarse_only = !clustering.fine_complete;
    if (write_checkpoints) {
      // Only fully completed phases become durable: a deadline-degraded
      // phase is re-run on resume rather than frozen below its potential.
      if (clustering.Complete()) {
        ClusteringArtifact artifact;
        artifact.clusters = result.clusters;
        artifact.features = result.features;
        artifact.rng_after = rng.SaveState();
        RecordPhaseSave("clustering", store->SaveClustering(artifact));
        // Test-only simulated kill: the site models a crash immediately
        // after the checkpoint became durable.
        if (CATAPULT_FAILPOINT("catapult.crash_after_clustering_checkpoint")) {
          run_ctx.Cancel();
        }
      } else {
        exec.checkpoint_events.push_back(
            {CheckpointEvent::Kind::kCheckpointSkipped, "clustering",
             "phase incomplete under deadline"});
      }
    }
  }
  phase_span.reset();
  result.clustering_seconds = clustering_timer.ElapsedSeconds();
  FinishPhase(clustering_pool_stats, result.clustering_seconds,
              exec.clustering_parallel);

  // --- CSG generation ---
  WallTimer csg_timer;
  ThreadPool::Stats csg_pool_stats = run_ctx.pool()->stats();
  phase_span.emplace(run_ctx.tracer(), "csg", run_span.id());
  if (recovery.csgs.has_value()) {
    result.csgs = std::move(recovery.csgs->csgs);
    rng.RestoreState(recovery.csgs->rng_after);
    exec.resumed_from = "csgs";
    exec.checkpoint_events.push_back(
        {CheckpointEvent::Kind::kResumedFromPhase, "csgs",
         std::to_string(result.csgs.size()) + " summaries"});
  } else if (have_dist_csgs) {
    // Sharded mode already folded the CSGs alongside fine clustering; adopt
    // them here so the checkpoint ladder (and its rng position) matches the
    // in-process path byte for byte.
    result.csgs = std::move(dist_csgs);
    exec.degraded_csgs = dist_degraded_csgs;
    exec.csg_complete = exec.degraded_csgs == 0;
    if (write_checkpoints) {
      if (exec.csg_complete) {
        CsgArtifact artifact;
        artifact.csgs = result.csgs;
        artifact.rng_after = rng.SaveState();
        RecordPhaseSave("csgs", store->SaveCsgs(artifact));
        if (CATAPULT_FAILPOINT("catapult.crash_after_csg_checkpoint")) {
          run_ctx.Cancel();
        }
      } else {
        exec.checkpoint_events.push_back(
            {CheckpointEvent::Kind::kCheckpointSkipped, "csgs",
             "phase incomplete under deadline"});
      }
    }
  } else {
    RunContext csg_ctx = run_ctx.Slice(options.csg_time_share);
    result.csgs =
        BuildCsgs(db, result.clusters, csg_ctx, &exec.degraded_csgs);
    exec.csg_complete = exec.degraded_csgs == 0;
    if (write_checkpoints) {
      if (exec.csg_complete) {
        CsgArtifact artifact;
        artifact.csgs = result.csgs;
        artifact.rng_after = rng.SaveState();
        RecordPhaseSave("csgs", store->SaveCsgs(artifact));
        if (CATAPULT_FAILPOINT("catapult.crash_after_csg_checkpoint")) {
          run_ctx.Cancel();
        }
      } else {
        exec.checkpoint_events.push_back(
            {CheckpointEvent::Kind::kCheckpointSkipped, "csgs",
             "phase incomplete under deadline"});
      }
    }
  }
  phase_span.reset();
  result.csg_seconds = csg_timer.ElapsedSeconds();
  FinishPhase(csg_pool_stats, result.csg_seconds, exec.csg_parallel);

  // --- Selection ---
  // Sharded mode ran the supervisor on a 1-thread pool so no pool threads
  // existed across fork(); all forks are behind us now, so selection gets a
  // real multi-thread pool (same size the in-process run would have used).
  std::unique_ptr<ThreadPool> selection_pool;
  if (dist_mode) {
    selection_pool =
        std::make_unique<ThreadPool>(ResolveThreadCount(options.threads));
    run_ctx = run_ctx.WithPool(selection_pool.get());
    obs::SetGaugeMax(obs::Gauge::kPoolThreads, selection_pool->num_threads());
  }
  WallTimer selection_timer;
  ThreadPool::Stats selection_pool_stats = run_ctx.pool()->stats();
  phase_span.emplace(run_ctx.tracer(), "selection", run_span.id());
  SelectorCheckpointHooks hooks;
  if (recovery.selection.has_value()) {
    hooks.resume = &*recovery.selection;
    exec.resumed_from = "selection";
    exec.checkpoint_events.push_back(
        {CheckpointEvent::Kind::kResumedFromPhase, "selection",
         std::to_string(recovery.selection->patterns.size()) +
             " patterns already selected"});
  }
  size_t progress_saves = 0;
  size_t progress_failures = 0;
  std::string last_save_error;
  if (write_checkpoints) {
    // Selection progress is checkpointed after every accepted pattern: each
    // state is an exact loop invariant, so a kill mid-selection loses at
    // most one greedy iteration.
    hooks.on_pattern_selected = [&](const SelectorCheckpointState& state) {
      std::string error = store->SaveSelection(state);
      if (error.empty()) {
        ++progress_saves;
        ++exec.checkpoints_written;
      } else {
        ++progress_failures;
        last_save_error = error;
      }
      if (CATAPULT_FAILPOINT("catapult.crash_after_selection_checkpoint")) {
        run_ctx.Cancel();
      }
    };
  }
  result.selection = FindCannedPatternSet(db, result.clusters, result.csgs,
                                          options.selector, rng, run_ctx,
                                          hooks);
  if (progress_saves > 0) {
    exec.checkpoint_events.push_back(
        {CheckpointEvent::Kind::kPhaseCheckpointed, "selection",
         std::to_string(progress_saves) + " incremental checkpoints"});
  }
  if (progress_failures > 0) {
    exec.checkpoint_events.push_back(
        {CheckpointEvent::Kind::kCheckpointWriteFailed, "selection",
         std::to_string(progress_failures) + " failed writes, last: " +
             last_save_error});
  }
  phase_span.reset();
  result.selection_seconds = selection_timer.ElapsedSeconds();
  FinishPhase(selection_pool_stats, result.selection_seconds,
              exec.selection_parallel);
  exec.selection_complete = result.selection.complete;
  exec.fallback_patterns = result.selection.fallback_patterns;
  exec.iso_budget_exhausted = result.selection.iso_budget_exhausted;

  exec.mem_peak_bytes = memory.peak();
  exec.mem_soft_exceeded =
      memory.soft_limit() != 0 && memory.peak() >= memory.soft_limit();
  exec.mem_hard_breached = memory.HardBreached();
  if (exec.mem_hard_breached) exec.resource_error = memory.error();
  // Close the root span before snapshotting so its counter deltas cover the
  // whole run, then merge the per-thread metric shards into the report.
  // Safe here: every parallel region has joined, so worker writes
  // happen-before this read.
  run_span.Close();
  if (run_ctx.metrics() != nullptr) {
    exec.metrics = run_ctx.metrics()->Snapshot();
  }
  return result;
}

PreparedCorpus PrepareCorpus(const GraphDatabase& db,
                             const CatapultOptions& options,
                             const RunContext& ctx) {
  PreparedCorpus corpus;
  corpus.option_errors = ValidateCatapultOptions(options);
  if (!corpus.ok()) return corpus;
  if (db.empty()) {
    corpus.complete = true;
    corpus.rng_after_csg = Rng(options.seed).SaveState();
    return corpus;
  }
  std::unique_ptr<ThreadPool> owned_pool;
  RunContext run_ctx = MergeOptionsContext(options, ctx, &owned_pool);
  obs::ScopedMetricsScope metrics_scope(run_ctx.metrics());
  obs::Span prepare_span(run_ctx.tracer(), "catapult.prepare");
  Rng rng(options.seed);

  // Exactly RunCatapult's in-process clustering phase: one deadline slice
  // covers the coarse stages and the fine splits, so a later selection on
  // this corpus matches the one-shot run draw for draw.
  WallTimer clustering_timer;
  std::optional<obs::Span> phase_span;
  phase_span.emplace(run_ctx.tracer(), "clustering", prepare_span.id());
  RunContext clustering_ctx = run_ctx.Slice(options.clustering_time_share);
  ClusteringResult clustering =
      RunCoarseStages(db, options, rng, clustering_ctx);
  if (options.use_sampling ||
      options.clustering.mode != ClusteringMode::kCoarseOnly) {
    FineClusteringStage(db, options.clustering, &clustering, rng,
                        clustering_ctx);
  }
  corpus.clusters = std::move(clustering.clusters);
  corpus.features = std::move(clustering.features);
  phase_span.reset();
  corpus.clustering_seconds = clustering_timer.ElapsedSeconds();

  WallTimer csg_timer;
  phase_span.emplace(run_ctx.tracer(), "csg", prepare_span.id());
  size_t degraded_csgs = 0;
  corpus.csgs = BuildCsgs(db, corpus.clusters,
                          run_ctx.Slice(options.csg_time_share),
                          &degraded_csgs);
  phase_span.reset();
  corpus.csg_seconds = csg_timer.ElapsedSeconds();

  corpus.summary_index = BuildFlatSummaryIndex(corpus.csgs);
  corpus.rng_after_csg = rng.SaveState();
  corpus.fingerprint = ConfigFingerprint(options, db);
  corpus.complete = clustering.Complete() && degraded_csgs == 0;
  return corpus;
}

CatapultResult RunCatapultSelection(const GraphDatabase& db,
                                    const PreparedCorpus& corpus,
                                    const CatapultOptions& options,
                                    const RunContext& ctx) {
  CatapultResult result;
  result.option_errors = ValidateCatapultOptions(options);
  if (!result.ok()) return result;
  if (db.empty()) return result;
  std::unique_ptr<ThreadPool> owned_pool;
  RunContext run_ctx = MergeOptionsContext(options, ctx, &owned_pool);
  obs::ScopedMetricsScope metrics_scope(run_ctx.metrics());
  obs::Span selection_span(run_ctx.tracer(), "selection");
  ExecutionReport& exec = result.execution;
  exec.deadline_set = !run_ctx.Unlimited();
  exec.threads = run_ctx.pool()->num_threads();
  const MemoryBudget& memory = run_ctx.memory();
  exec.mem_budget_set = memory.limited();
  exec.mem_soft_limit = memory.soft_limit();
  exec.mem_hard_limit = memory.hard_limit();
  exec.clustering_complete = corpus.complete;
  exec.csg_complete = corpus.complete;

  WallTimer selection_timer;
  ThreadPool::Stats pool_stats = run_ctx.pool()->stats();
  // Resume the seed stream exactly where the prepared corpus's CSG phase
  // left it — the invariant that makes this path bit-identical to the
  // uninterrupted RunCatapult.
  Rng rng(options.seed);
  rng.RestoreState(corpus.rng_after_csg);
  result.selection =
      FindCannedPatternSet(db, corpus.clusters, corpus.csgs, options.selector,
                           rng, run_ctx, SelectorCheckpointHooks{},
                           &corpus.summary_index);
  result.selection_seconds = selection_timer.ElapsedSeconds();
  ThreadPool::Stats after = run_ctx.pool()->stats();
  exec.selection_parallel.wall_seconds = result.selection_seconds;
  exec.selection_parallel.busy_seconds =
      after.busy_seconds - pool_stats.busy_seconds;
  exec.selection_parallel.parallel_items = after.items - pool_stats.items;
  exec.selection_complete = result.selection.complete;
  exec.fallback_patterns = result.selection.fallback_patterns;
  exec.iso_budget_exhausted = result.selection.iso_budget_exhausted;
  exec.mem_peak_bytes = memory.peak();
  exec.mem_soft_exceeded =
      memory.soft_limit() != 0 && memory.peak() >= memory.soft_limit();
  exec.mem_hard_breached = memory.HardBreached();
  if (exec.mem_hard_breached) exec.resource_error = memory.error();
  selection_span.Close();
  if (run_ctx.metrics() != nullptr) {
    exec.metrics = run_ctx.metrics()->Snapshot();
  }
  return result;
}

}  // namespace catapult
