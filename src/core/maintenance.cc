#include "src/core/maintenance.h"

#include <algorithm>
#include <unordered_set>

#include "src/iso/vf2.h"
#include "src/obs/clock.h"

namespace catapult {

namespace {

// Distinct labelled-edge keys of a graph.
std::unordered_set<EdgeLabelKey> KeysOf(const Graph& g) {
  std::unordered_set<EdgeLabelKey> keys;
  for (const Edge& e : g.EdgeList()) keys.insert(g.EdgeKey(e.u, e.v));
  return keys;
}

// Fraction of `graph`'s labelled edges whose key occurs in `summary_keys`.
double Affinity(const Graph& graph,
                const std::unordered_set<EdgeLabelKey>& summary_keys) {
  if (graph.NumEdges() == 0) return 0.0;
  std::unordered_set<EdgeLabelKey> keys = KeysOf(graph);
  size_t hit = 0;
  for (EdgeLabelKey key : keys) {
    if (summary_keys.contains(key)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(keys.size());
}

}  // namespace

MaintenanceResult UpdateWithNewGraphs(const GraphDatabase& old_db,
                                      const CatapultResult& previous,
                                      const std::vector<Graph>& new_graphs,
                                      const MaintenanceOptions& options,
                                      GraphDatabase* updated_db) {
  CATAPULT_CHECK(updated_db != nullptr);
  WallTimer timer;
  MaintenanceResult result;

  // Updated database: old graphs keep their ids; new graphs are appended.
  std::vector<GraphId> all_old(old_db.size());
  for (GraphId i = 0; i < old_db.size(); ++i) all_old[i] = i;
  *updated_db = old_db.Subset(all_old);
  std::vector<GraphId> new_ids;
  new_ids.reserve(new_graphs.size());
  for (const Graph& g : new_graphs) {
    new_ids.push_back(updated_db->Add(g));
  }

  result.clusters = previous.clusters;

  // Assign arrivals to their best existing cluster, or queue them. The
  // affinity is structural: the fraction of the arrival's edges that fold
  // onto the cluster summary without growing it (MappedEdgeFraction), the
  // same criterion the closure construction optimises.
  std::vector<bool> dirty(result.clusters.size(), false);
  std::vector<GraphId> unmatched;
  for (GraphId id : new_ids) {
    const Graph& g = updated_db->graph(id);
    int best = -1;
    double best_affinity = 0.0;
    for (size_t c = 0; c < result.clusters.size(); ++c) {
      if (result.clusters[c].size() >= options.max_cluster_size) continue;
      if (c >= previous.csgs.size()) continue;
      double affinity = MappedEdgeFraction(previous.csgs[c], g);
      if (affinity > best_affinity) {
        best_affinity = affinity;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0 && best_affinity >= options.min_affinity) {
      result.clusters[static_cast<size_t>(best)].push_back(id);
      dirty[static_cast<size_t>(best)] = true;
    } else {
      unmatched.push_back(id);
    }
  }

  // Unmatched arrivals seed fresh clusters, packed greedily by affinity to
  // the growing cluster's key set.
  std::vector<std::vector<GraphId>> fresh;
  std::vector<std::unordered_set<EdgeLabelKey>> fresh_keys;
  for (GraphId id : unmatched) {
    const Graph& g = updated_db->graph(id);
    int best = -1;
    double best_affinity = 0.0;
    for (size_t c = 0; c < fresh.size(); ++c) {
      if (fresh[c].size() >= options.max_cluster_size) continue;
      double affinity = Affinity(g, fresh_keys[c]);
      if (affinity > best_affinity) {
        best_affinity = affinity;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0 && best_affinity >= options.min_affinity) {
      fresh[static_cast<size_t>(best)].push_back(id);
      for (EdgeLabelKey key : KeysOf(g)) {
        fresh_keys[static_cast<size_t>(best)].insert(key);
      }
    } else {
      fresh.push_back({id});
      fresh_keys.push_back(KeysOf(g));
    }
  }
  result.new_clusters = fresh.size();
  for (auto& cluster : fresh) result.clusters.push_back(std::move(cluster));

  // Re-close affected clusters; reuse untouched summaries.
  result.csgs.reserve(result.clusters.size());
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    bool reusable = c < previous.csgs.size() && !dirty[c];
    if (reusable) {
      result.csgs.push_back(previous.csgs[c]);
    } else {
      result.csgs.push_back(BuildCsg(*updated_db, result.clusters[c]));
    }
  }

  // Re-run only the selection phase.
  Rng rng(options.seed);
  result.selection = FindCannedPatternSet(*updated_db, result.clusters,
                                          result.csgs, options.selector, rng);

  // Panel diff vs the previous selection.
  for (const SelectedPattern& p : result.selection.patterns) {
    for (const SelectedPattern& q : previous.selection.patterns) {
      if (AreIsomorphic(p.graph, q.graph)) {
        ++result.patterns_kept;
        break;
      }
    }
  }
  result.patterns_changed =
      result.selection.patterns.size() - result.patterns_kept;
  result.update_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace catapult
