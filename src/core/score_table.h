#ifndef CATAPULT_CORE_SCORE_TABLE_H_
#define CATAPULT_CORE_SCORE_TABLE_H_

// Selection hot-path data structures (DESIGN.md §15):
//
//  * FlatSummaryIndex — the CSG summaries in flat CSR form plus per-summary
//    label domains, built once per corpus (PrepareCorpus / selector entry)
//    and shared by every coverage test of every greedy iteration.
//  * ScoreTable — a structure-of-arrays candidate table. Each ParallelFor
//    slot writes only its own row across contiguous score/coverage/cog
//    columns; column storage is reused across iterations so the steady
//    state of the greedy loop allocates nothing per candidate.
//  * SelectorClassCache — the cross-iteration memo, keyed by isomorphism
//    class (fingerprint bucket + exact check against the class
//    representative). Between greedy rounds only the decayed cluster /
//    edge-label weights change — never the graphs — so the covered-CSG
//    bitmap, label coverage and cognitive load of a class are computed once,
//    and the diversity term is carried as a running minimum folded forward
//    only over patterns selected since the class was last scored.

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/core/pattern_score.h"
#include "src/csg/csg.h"
#include "src/graph/flat_graph.h"

namespace catapult {

// Words of a packed coverage bitmap over `num_csgs` summaries.
inline size_t CoverageWords(size_t num_csgs) { return (num_csgs + 63) / 64; }

// The coverage-test targets in flat form: plain-graph summary views (still
// needed by the walk generator and for reporting), the same summaries in one
// flat arena, and per-summary label domains for root candidate enumeration.
struct FlatSummaryIndex {
  std::vector<Graph> summaries;
  FlatGraphDatabase flat;
  std::vector<LabelDomains> domains;

  size_t size() const { return summaries.size(); }
  size_t MemoryBytes() const;
};

FlatSummaryIndex BuildFlatSummaryIndex(
    const std::vector<ClusterSummaryGraph>& csgs);

// Flat-kernel CoveredCsgs: marks, in the packed bitmap `out_words`
// (CoverageWords(index.size()) words, caller-zeroed region overwritten),
// which summaries contain `pattern`. Identical results and truncation
// semantics to CoveredCsgs on the plain-graph summaries: empty summaries are
// skipped (bit stays 0), a zero budget selects kDefaultCoverageIsoBudget,
// and each budget-truncated test conservatively reports "not contained" and
// increments `budget_exhausted` (optional).
void CoveredCsgsFlat(const Graph& pattern, const FlatSummaryIndex& index,
                     uint64_t iso_node_budget, uint64_t* budget_exhausted,
                     uint64_t* out_words);

// Structure-of-arrays candidate table. Reset() re-dimensions every column
// for the iteration's candidate count, reusing capacity. During the
// parallel scoring pass each worker writes only row i of each column; the
// ordered reduce then reads rows in candidate order.
class ScoreTable {
 public:
  void Reset(size_t candidates, size_t num_csgs);

  size_t size() const { return size_; }
  size_t coverage_words() const { return coverage_words_; }

  uint64_t* CoverageRow(size_t i) {
    return coverage_.data() + i * coverage_words_;
  }
  const uint64_t* CoverageRow(size_t i) const {
    return coverage_.data() + i * coverage_words_;
  }

  // Scored columns (Equation 2 terms and the product).
  std::vector<double> score, ccov, lcov, div, cog;
  // Diversity memo carried per row: running minimum and how many selected
  // patterns it has folded.
  std::vector<double> div_min;
  std::vector<uint32_t> div_folded;
  std::vector<uint32_t> source_csg;
  // Class-cache coordinates of the row's isomorphism class: bucket slot
  // index, or -1 when the class was not cached (fresh row).
  std::vector<int32_t> cache_slot;
  std::vector<uint64_t> iso_exhausted;
  std::vector<uint8_t> valid, fresh;

 private:
  size_t size_ = 0;
  size_t coverage_words_ = 0;
  std::vector<uint64_t> coverage_;
};

// Cross-iteration memo keyed by isomorphism class. Buckets by fingerprint;
// within a bucket, classes are told apart by an exact isomorphism check
// against the stored representative. Entry indices within a bucket are
// stable (entries are only appended, and eviction clears whole buckets), so
// the parallel scoring pass can record (fingerprint, slot) coordinates and
// the ordered reduce can write memo updates back without re-probing.
class SelectorClassCache {
 public:
  struct Entry {
    Graph rep;                      // class representative
    uint64_t fingerprint = 0;
    std::vector<uint64_t> covered;  // packed coverage bitmap
    double lcov = 0.0;
    double cog = 0.0;
    double div_min = std::numeric_limits<double>::max();
    uint32_t div_folded = 0;        // selected-prefix length folded in
  };

  // Slot of `g`'s class in the `fp` bucket, or -1 if absent. Read-only and
  // safe to call concurrently with other probes (never with mutations).
  int Probe(uint64_t fp, const Graph& g) const;

  Entry& At(uint64_t fp, int slot);
  const Entry& At(uint64_t fp, int slot) const;

  // Appends `entry` to its fingerprint bucket and returns its slot. The
  // caller is responsible for memory-budget charging.
  int Insert(Entry entry);

  void Clear();
  size_t entries() const { return entries_; }

  // Budget-charge estimate for one entry (graph + bitmap + bookkeeping).
  static size_t ApproxEntryBytes(const Entry& entry);

 private:
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  size_t entries_ = 0;
};

}  // namespace catapult

#endif  // CATAPULT_CORE_SCORE_TABLE_H_
