#ifndef CATAPULT_CORE_WEIGHTS_H_
#define CATAPULT_CORE_WEIGHTS_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph_database.h"
#include "src/util/bitset.h"

namespace catapult {

// Multiplicative-weights decay factor n = 0.5 (Section 5, after [Arora et
// al.]): weights of covered clusters / used edge labels are halved after
// each pattern selection.
inline constexpr double kWeightDecay = 0.5;

// Global edge-label weights elw (Algorithm 1, line 4): initially the label
// coverage lcov(e, D) of each labelled edge, decayed multiplicatively as
// patterns consume labels (Algorithm 4, line 21).
class EdgeLabelWeights {
 public:
  // Builds weights from the database: weight(key) = |L(e, D)| / |D|.
  explicit EdgeLabelWeights(const GraphDatabase& db);

  // Current weight of `key` (0 for labels absent from D).
  double Get(EdgeLabelKey key) const;

  // Multiplies the weight of every labelled edge occurring in `pattern` by
  // `factor` (kWeightDecay by default).
  void DecayForPattern(const Graph& pattern, double factor = kWeightDecay);

  // Current weights as (key, weight) pairs sorted by key — a deterministic
  // snapshot for checkpointing mid-selection state.
  std::vector<std::pair<EdgeLabelKey, double>> Snapshot() const;

  // Replaces all weights with `entries` (a prior Snapshot of the same
  // database's weights).
  void Restore(const std::vector<std::pair<EdgeLabelKey, double>>& entries);

 private:
  std::unordered_map<EdgeLabelKey, double> weights_;
};

// Cluster weights cw (Algorithm 1, line 5): cw_i = |C_i| / |D|, decayed
// multiplicatively for every cluster whose CSG is covered by a selected
// pattern (Algorithm 4, line 20).
class ClusterWeights {
 public:
  ClusterWeights(const std::vector<std::vector<GraphId>>& clusters,
                 size_t database_size);

  size_t size() const { return weights_.size(); }
  double Get(size_t cluster) const {
    CATAPULT_CHECK(cluster < weights_.size());
    return weights_[cluster];
  }

  // Multiplies the weight of `cluster` by `factor`.
  void Decay(size_t cluster, double factor = kWeightDecay) {
    CATAPULT_CHECK(cluster < weights_.size());
    weights_[cluster] *= factor;
  }

  // The original (undecayed) weight, used for reporting coverage.
  double Initial(size_t cluster) const {
    CATAPULT_CHECK(cluster < initial_.size());
    return initial_[cluster];
  }

  // Current (decayed) weights, for checkpointing mid-selection state.
  const std::vector<double>& Snapshot() const { return weights_; }

  // Replaces the current weights with `weights` (a prior Snapshot over the
  // same clusters; CHECK on size mismatch). Initial weights are untouched.
  void Restore(const std::vector<double>& weights) {
    CATAPULT_CHECK(weights.size() == weights_.size());
    weights_ = weights;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> initial_;
};

// Index from labelled-edge key to the set of graphs containing it; supports
// exact lcov computations for patterns and pattern sets (Section 3.2).
class LabelCoverageIndex {
 public:
  explicit LabelCoverageIndex(const GraphDatabase& db);

  // lcov(p, D): fraction of graphs containing at least one of the pattern's
  // labelled edges.
  double PatternLabelCoverage(const Graph& pattern) const;

  // lcov(P, D) over a whole pattern set.
  double SetLabelCoverage(const std::vector<Graph>& patterns) const;

  size_t database_size() const { return database_size_; }

 private:
  DynamicBitset UnionFor(const Graph& pattern, DynamicBitset acc) const;

  std::unordered_map<EdgeLabelKey, DynamicBitset> graphs_with_key_;
  size_t database_size_;
};

}  // namespace catapult

#endif  // CATAPULT_CORE_WEIGHTS_H_
