#include "src/core/budget.h"

#include <algorithm>
#include <cmath>

namespace catapult {

std::vector<size_t> PatternBudget::PerSizeCaps() const {
  std::vector<size_t> caps(NumSizes(), 0);
  if (size_distribution.empty()) {
    std::fill(caps.begin(), caps.end(), MaxPerSize());
    return caps;
  }
  double total = 0.0;
  for (double w : size_distribution) total += w;
  // Largest-remainder apportionment of gamma across positive weights.
  std::vector<double> exact(NumSizes(), 0.0);
  size_t assigned = 0;
  for (size_t s = 0; s < NumSizes(); ++s) {
    exact[s] = static_cast<double>(gamma) * size_distribution[s] / total;
    caps[s] = static_cast<size_t>(exact[s]);
    assigned += caps[s];
  }
  std::vector<size_t> order(NumSizes());
  for (size_t s = 0; s < NumSizes(); ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return exact[a] - std::floor(exact[a]) > exact[b] - std::floor(exact[b]);
  });
  for (size_t i = 0; assigned < gamma && i < order.size(); ++i) {
    if (size_distribution[order[i]] > 0.0) {
      ++caps[order[i]];
      ++assigned;
    }
  }
  return caps;
}

std::vector<size_t> OpenPatternSizes(
    const PatternBudget& budget,
    const std::vector<size_t>& selected_per_size) {
  CATAPULT_CHECK(selected_per_size.size() == budget.NumSizes());
  std::vector<size_t> caps = budget.PerSizeCaps();
  std::vector<size_t> open;
  size_t total_selected = 0;
  for (size_t count : selected_per_size) total_selected += count;
  // Once every size hit its cap but gamma is not yet reached (rounding
  // remainders under the uniform distribution), every allowed size reopens.
  bool all_capped = true;
  for (size_t s = 0; s < budget.NumSizes(); ++s) {
    if (selected_per_size[s] < caps[s]) {
      all_capped = false;
      break;
    }
  }
  for (size_t s = 0; s < budget.NumSizes(); ++s) {
    if (total_selected >= budget.gamma) break;
    if (caps[s] == 0) continue;  // excluded by Psi_dist
    if (all_capped || selected_per_size[s] < caps[s]) {
      open.push_back(budget.eta_min + s);
    }
  }
  return open;
}

}  // namespace catapult
