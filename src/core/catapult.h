#ifndef CATAPULT_CORE_CATAPULT_H_
#define CATAPULT_CORE_CATAPULT_H_

#include <string>
#include <vector>

#include "src/cluster/pipeline.h"
#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/dist/dist_report.h"
#include "src/graph/graph_database.h"
#include "src/obs/metrics.h"
#include "src/persist/checkpoint.h"
#include "src/sample/sampling.h"
#include "src/util/deadline.h"

namespace catapult {

// End-to-end configuration of the Catapult pipeline (Algorithm 1 +
// Section 4.3 sampling).
struct CatapultOptions {
  SmallGraphClusteringOptions clustering;
  SelectorOptions selector;

  // Enable the two-level sampling path for large databases (Figure 3's
  // eager + lazy samplers).
  bool use_sampling = false;
  EagerSamplingOptions eager;
  LazySamplingOptions lazy;

  // Deterministic seed for the whole pipeline.
  uint64_t seed = 42;

  // Worker threads for the parallel phases (feature vectors, k-means
  // assignment, fine splits, CSG folds, candidate walks, scoring). 0 means
  // "auto": the CATAPULT_THREADS environment variable if set (its own 0
  // meaning hardware concurrency), else 1. The task decomposition pre-splits
  // rng streams and reduces in task order, so — absent a binding memory
  // hard limit or live deadline — the output is bit-identical at every
  // thread count, and the setting is excluded from ConfigFingerprint (a
  // checkpoint resumes fine under a different thread count, like a new
  // deadline). Clamped to ThreadPool::kMaxThreads.
  size_t threads = 0;

  // Wall-clock deadline for the whole run in milliseconds (0 = unlimited).
  // On expiry every phase returns its best partial result and the
  // degradation is reported in CatapultResult::execution; with no deadline
  // the output is bit-identical to a build without the deadline machinery.
  double deadline_ms = 0.0;

  // Fraction of the remaining time allotted to clustering, and of the
  // then-remaining time allotted to CSG generation; selection runs against
  // the full overall deadline. Phases finishing early automatically donate
  // their unused allowance to later phases.
  double clustering_time_share = 0.45;
  double csg_time_share = 0.3;

  // Crash-safe checkpointing (DESIGN.md Section 8). When `checkpoint_dir`
  // is non-empty and `checkpoint_every_phase` is true, every fully
  // completed phase — and every accepted pattern during selection — is
  // persisted as a checksummed, atomically written checkpoint; with
  // `resume` also true, the run first validates the directory's checkpoints
  // and restarts from the furthest intact phase (falling down the recovery
  // ladder on corruption) instead of from scratch. Setting
  // `checkpoint_every_phase` to false uses the directory for resume only.
  // The deadline options above are deliberately excluded from the
  // checkpoint compatibility fingerprint: resuming a killed run under a
  // new deadline is the expected use.
  std::string checkpoint_dir;
  bool resume = false;
  bool checkpoint_every_phase = true;

  // Resource governance (DESIGN.md Section 9). When `mem_hard_limit_bytes`
  // is non-zero every phase charges its input-proportional structures
  // against one shared MemoryBudget: crossing the soft limit sheds optional
  // work (coarse-only clustering, partial CSG folds, cache eviction), and a
  // charge past the hard limit winds the whole pipeline down exactly like a
  // deadline expiry — best-effort partial results plus a structured
  // ResourceError in ExecutionReport, never an OOM kill. A soft limit of 0
  // defaults to 3/4 of the hard limit. Like the deadline, the limits are
  // excluded from the checkpoint fingerprint: resuming under a different
  // memory budget is expected.
  size_t mem_soft_limit_bytes = 0;
  size_t mem_hard_limit_bytes = 0;

  // Sharded multi-process execution (DESIGN.md §12). With `processes` > 1
  // the fine-clustering and CSG phases are partitioned by coarse cluster
  // across that many forked worker processes, supervised for crashes and
  // hangs; 0 or 1 keeps everything in-process. Worker failures are retried
  // up to `max_shard_retries` times per shard under deterministic capped
  // exponential backoff, then the shard is quarantined and executed
  // in-process. Like `threads`, `processes` and the supervision knobs are
  // excluded from ConfigFingerprint: the task decomposition pre-splits rng
  // streams per coarse cluster and merges in cluster order, so a P-process
  // run is bit-identical to a 1-process run (asserted down to checkpoint
  // bytes by tests/dist_test.cc) and checkpoints resume across process
  // counts.
  size_t processes = 0;
  size_t max_shard_retries = 2;
  // A worker silent on its heartbeat pipe for this long is declared hung
  // and killed (its shard retries from the last durable artifact).
  double shard_heartbeat_timeout_ms = 2000.0;
  // Network-transparent sharding (DESIGN.md §14). A non-empty listen
  // address ("unix:PATH" or "tcp:HOST:PORT") — or an adopted listening fd
  // — makes the sharded phases supervise remote catapult_worker processes
  // that dial in, instead of forking workers. Requires processes > 1.
  // Remote supervision knobs are, like the rest, fingerprint-excluded:
  // transport never changes results, only where the work runs.
  std::string dist_listen;
  int dist_listen_fd = -1;  // already-listening fd to adopt (tests); not owned
  // With work pending and no member joined (or rejoined) for this long,
  // the fleet is declared lost and the run completes via the in-process
  // fallback (reported as remote_fallback_only, CLI exit code 7).
  double dist_join_timeout_ms = 10000.0;
  // A remote send stuck for this long marks the connection half-open and
  // fences the member.
  double dist_write_stall_timeout_ms = 5000.0;
  // Optional admin endpoint served by the remote-fleet supervision loop
  // ("unix:PATH" / "tcp:HOST:PORT"; empty = disabled): /metrics, /statusz,
  // /healthz. Fingerprint-excluded like the other supervision knobs.
  std::string dist_admin_listen;
  // Retry backoff: delay before retry k is min(base * 2^(k-1), cap).
  double shard_backoff_base_ms = 25.0;
  double shard_backoff_cap_ms = 1000.0;

  // Quarantine digest of the ingestion that produced the database
  // (IngestReport::quarantine_digest; 0 = nothing quarantined). Folded into
  // ConfigFingerprint so a checkpoint taken against a database with a
  // different quarantine set — whose dense graph ids index *different*
  // graphs — is rejected on resume instead of silently mis-assigning
  // clusters.
  uint64_t ingest_digest = 0;
};

// One rejected CatapultOptions field: which option and why. Returned by
// ValidateCatapultOptions / RunCatapult so invalid configurations surface
// as data instead of tripping a CHECK abort deep inside the pipeline.
struct OptionsError {
  std::string field;    // e.g. "selector.budget.eta_min"
  std::string message;  // e.g. "must exceed 2 (Definition 3.1)"
};

// Validates every pipeline-facing invariant of `options` (pattern budget
// ordering, positive gamma, sane walk counts, decay/time-share ranges,
// sampling parameters, checkpoint flags). Returns one entry per violated
// field; empty means the options are safe to run.
std::vector<OptionsError> ValidateCatapultOptions(
    const CatapultOptions& options);

// Compatibility fingerprint of (options, db): every option that influences
// the pipeline's output plus a structural hash of the database. Checkpoints
// carry it so a stale checkpoint from a different database, budget, or seed
// is rejected on resume instead of silently reused. Deadline settings are
// excluded (see CatapultOptions::checkpoint_dir).
uint64_t ConfigFingerprint(const CatapultOptions& options,
                           const GraphDatabase& db);

// Parallel-execution accounting of one phase: the phase's wall time against
// the aggregate time all threads (caller included) spent inside the phase's
// ParallelFor bodies. busy/wall is the phase's *effective parallelism* —
// ~1.0 when single-threaded or dominated by sequential sections, approaching
// the thread count when the parallel regions dominate the phase.
struct PhaseParallelStats {
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
  uint64_t parallel_items = 0;  // ParallelFor body invocations

  double EffectiveParallelism() const {
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
  }
};

// Robustness diagnostics of one RunCatapult execution (DESIGN.md,
// "Robustness & anytime semantics").
struct ExecutionReport {
  bool deadline_set = false;

  // Parallelism diagnostics: the resolved thread count (see
  // CatapultOptions::threads) and per-phase parallel accounting.
  size_t threads = 1;
  PhaseParallelStats clustering_parallel;
  PhaseParallelStats csg_parallel;
  PhaseParallelStats selection_parallel;

  // Phase completeness: false when the deadline or a cancellation cut the
  // phase short and its output is a best-effort partial result.
  bool clustering_complete = true;
  bool csg_complete = true;
  bool selection_complete = true;

  // Degradation-ladder rungs actually taken.
  bool clustering_coarse_only = false;  // fine splitting left clusters unsplit
  size_t degraded_csgs = 0;             // summaries folded from fewer members
  size_t fallback_patterns = 0;         // frequent-edge fallback selections
  uint64_t iso_budget_exhausted = 0;    // truncated VF2 coverage checks

  // Checkpoint/recovery diagnostics (empty without a checkpoint_dir).
  // `resumed_from` is the furthest phase restored from a checkpoint
  // ("clustering", "csgs", or "selection"; empty = cold start), and
  // `checkpoint_events` logs every durability decision: phases
  // checkpointed, checkpoints rejected with their reason, resumes, write
  // failures. Rejections and recovery-ladder falls are always a logged
  // decision here, never an abort.
  std::string resumed_from;
  size_t checkpoints_written = 0;
  std::vector<CheckpointEvent> checkpoint_events;

  // Memory-governance diagnostics (DESIGN.md Section 9). `mem_peak_bytes`
  // is the high-water mark of tracked bytes; `mem_soft_exceeded` means at
  // least one phase observed soft-limit pressure and shed work;
  // `mem_hard_breached` means a charge was refused and the pipeline wound
  // down with partial results — `resource_error` then names the charge site
  // and sizes.
  bool mem_budget_set = false;
  size_t mem_peak_bytes = 0;
  size_t mem_soft_limit = 0;
  size_t mem_hard_limit = 0;
  bool mem_soft_exceeded = false;
  bool mem_hard_breached = false;
  ResourceError resource_error;

  // Merged per-primitive metrics of the run (DESIGN.md §11). Always
  // present; `metrics.enabled` is false when the run carried no registry,
  // in which case every counter is zero.
  obs::MetricsSnapshot metrics;

  // Sharded-execution supervision report (DESIGN.md §12): worker spawns,
  // deaths, hangs, retries, backoff waits, quarantines and fallbacks, plus
  // the ordered event log. `dist.enabled` is false for in-process runs.
  dist::DistReport dist;

  bool Resumed() const { return !resumed_from.empty(); }

  bool Degraded() const {
    return !clustering_complete || !csg_complete || !selection_complete ||
           clustering_coarse_only || degraded_csgs > 0 ||
           fallback_patterns > 0 || mem_hard_breached;
  }
};

// Everything Algorithm 1 produces, plus phase timings for the benchmark
// harnesses.
struct CatapultResult {
  SelectionResult selection;
  std::vector<std::vector<GraphId>> clusters;
  std::vector<ClusterSummaryGraph> csgs;
  std::vector<FrequentSubtree> features;

  // Non-empty when RunCatapult refused to run because the options violate
  // their invariants (see ValidateCatapultOptions); every other field is
  // then default-constructed.
  std::vector<OptionsError> option_errors;
  bool ok() const { return option_errors.empty(); }

  double clustering_seconds = 0.0;  // mining + coarse + fine
  double csg_seconds = 0.0;
  double selection_seconds = 0.0;   // the paper's PGT

  ExecutionReport execution;

  // Convenience view of the selected canned patterns.
  std::vector<Graph> Patterns() const { return selection.PatternGraphs(); }
};

// Runs the full Catapult pipeline on `db` (Algorithm 1): (optionally eager-
// sampled) small graph clustering, (optionally lazy-sampled) CSG
// generation, and canned-pattern selection. A deadline is taken from
// `options.deadline_ms`.
CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options);

// As above, but runs under a caller-provided context (e.g. a serving thread
// that wants to share a cancellation token across requests). When
// `options.deadline_ms` is also set, the effective deadline is the earlier
// of the two.
CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options,
                           const RunContext& ctx);

// Clustering + CSG artifacts of a database, computed once and reused across
// many selection calls — the serving path (DESIGN.md §13). The artifacts
// depend only on the clustering/sampling options and the seed, never on the
// selection budget, so one prepared corpus answers any (eta_min, eta_max,
// gamma) request; the rng stream position captured after CSG folding makes
// RunCatapultSelection bit-identical to a full one-shot RunCatapult with
// the same options (asserted by tests/serve_test.cc).
struct PreparedCorpus {
  std::vector<std::vector<GraphId>> clusters;
  std::vector<ClusterSummaryGraph> csgs;
  std::vector<FrequentSubtree> features;
  // The CSG summaries in flat CSR form with per-summary label domains
  // (DESIGN.md §15), built once here so repeated RunCatapultSelection calls
  // share one index instead of re-flattening the summaries per request.
  FlatSummaryIndex summary_index;
  RngState rng_after_csg;  // stream position selection resumes from
  // ConfigFingerprint of the (options, db) the corpus was prepared from,
  // surfaced so long-lived owners (the serving loop's /statusz) can report
  // which corpus they answer from without re-hashing the database.
  uint64_t fingerprint = 0;

  // False when a deadline/cancellation/memory breach degraded clustering or
  // CSG folding; selections on a degraded corpus are flagged degraded.
  bool complete = false;

  double clustering_seconds = 0.0;
  double csg_seconds = 0.0;

  // Non-empty when the options were rejected (see ValidateCatapultOptions);
  // every other field is then default-constructed.
  std::vector<OptionsError> option_errors;
  bool ok() const { return option_errors.empty(); }
};

// Runs the clustering and CSG phases of RunCatapult (in-process, no
// checkpointing or sharding) and captures their artifacts for reuse.
PreparedCorpus PrepareCorpus(const GraphDatabase& db,
                             const CatapultOptions& options,
                             const RunContext& ctx);

// Selection-only run against a prepared corpus: restores the corpus's rng
// position and executes FindCannedPatternSet under `ctx` merged with
// `options` (deadline, memory budget, threads — exactly like RunCatapult).
// `options` must share the clustering/sampling options and seed the corpus
// was prepared with; only the selector options (budget, walks, decay) may
// differ. The result's clusters/csgs/features are left empty — the corpus
// already holds them, and serving must not copy them per request.
CatapultResult RunCatapultSelection(const GraphDatabase& db,
                                    const PreparedCorpus& corpus,
                                    const CatapultOptions& options,
                                    const RunContext& ctx);

}  // namespace catapult

#endif  // CATAPULT_CORE_CATAPULT_H_
