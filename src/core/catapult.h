#ifndef CATAPULT_CORE_CATAPULT_H_
#define CATAPULT_CORE_CATAPULT_H_

#include <vector>

#include "src/cluster/pipeline.h"
#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/graph/graph_database.h"
#include "src/sample/sampling.h"

namespace catapult {

// End-to-end configuration of the Catapult pipeline (Algorithm 1 +
// Section 4.3 sampling).
struct CatapultOptions {
  SmallGraphClusteringOptions clustering;
  SelectorOptions selector;

  // Enable the two-level sampling path for large databases (Figure 3's
  // eager + lazy samplers).
  bool use_sampling = false;
  EagerSamplingOptions eager;
  LazySamplingOptions lazy;

  // Deterministic seed for the whole pipeline.
  uint64_t seed = 42;
};

// Everything Algorithm 1 produces, plus phase timings for the benchmark
// harnesses.
struct CatapultResult {
  SelectionResult selection;
  std::vector<std::vector<GraphId>> clusters;
  std::vector<ClusterSummaryGraph> csgs;
  std::vector<FrequentSubtree> features;

  double clustering_seconds = 0.0;  // mining + coarse + fine
  double csg_seconds = 0.0;
  double selection_seconds = 0.0;   // the paper's PGT

  // Convenience view of the selected canned patterns.
  std::vector<Graph> Patterns() const { return selection.PatternGraphs(); }
};

// Runs the full Catapult pipeline on `db` (Algorithm 1): (optionally eager-
// sampled) small graph clustering, (optionally lazy-sampled) CSG
// generation, and canned-pattern selection.
CatapultResult RunCatapult(const GraphDatabase& db,
                           const CatapultOptions& options);

}  // namespace catapult

#endif  // CATAPULT_CORE_CATAPULT_H_
