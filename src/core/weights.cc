#include "src/core/weights.h"

#include <algorithm>
#include <unordered_set>

namespace catapult {

EdgeLabelWeights::EdgeLabelWeights(const GraphDatabase& db) {
  const double total = static_cast<double>(db.size());
  for (const auto& [key, support] : db.EdgeLabelSupport()) {
    weights_[key] = static_cast<double>(support) / total;
  }
}

double EdgeLabelWeights::Get(EdgeLabelKey key) const {
  auto it = weights_.find(key);
  return it == weights_.end() ? 0.0 : it->second;
}

void EdgeLabelWeights::DecayForPattern(const Graph& pattern, double factor) {
  std::unordered_set<EdgeLabelKey> keys;
  for (const Edge& e : pattern.EdgeList()) {
    keys.insert(pattern.EdgeKey(e.u, e.v));
  }
  for (EdgeLabelKey key : keys) {
    auto it = weights_.find(key);
    if (it != weights_.end()) it->second *= factor;
  }
}

std::vector<std::pair<EdgeLabelKey, double>> EdgeLabelWeights::Snapshot()
    const {
  std::vector<std::pair<EdgeLabelKey, double>> entries(weights_.begin(),
                                                       weights_.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

void EdgeLabelWeights::Restore(
    const std::vector<std::pair<EdgeLabelKey, double>>& entries) {
  weights_.clear();
  for (const auto& [key, weight] : entries) weights_[key] = weight;
}

ClusterWeights::ClusterWeights(
    const std::vector<std::vector<GraphId>>& clusters, size_t database_size) {
  CATAPULT_CHECK(database_size > 0);
  weights_.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    weights_.push_back(static_cast<double>(cluster.size()) /
                       static_cast<double>(database_size));
  }
  initial_ = weights_;
}

LabelCoverageIndex::LabelCoverageIndex(const GraphDatabase& db)
    : database_size_(db.size()) {
  for (GraphId i = 0; i < db.size(); ++i) {
    const Graph& g = db.graph(i);
    std::unordered_set<EdgeLabelKey> seen;
    for (const Edge& e : g.EdgeList()) seen.insert(g.EdgeKey(e.u, e.v));
    for (EdgeLabelKey key : seen) {
      auto [it, inserted] =
          graphs_with_key_.try_emplace(key, DynamicBitset(database_size_));
      it->second.Set(i);
    }
  }
}

DynamicBitset LabelCoverageIndex::UnionFor(const Graph& pattern,
                                           DynamicBitset acc) const {
  std::unordered_set<EdgeLabelKey> keys;
  for (const Edge& e : pattern.EdgeList()) {
    keys.insert(pattern.EdgeKey(e.u, e.v));
  }
  for (EdgeLabelKey key : keys) {
    auto it = graphs_with_key_.find(key);
    if (it != graphs_with_key_.end()) acc |= it->second;
  }
  return acc;
}

double LabelCoverageIndex::PatternLabelCoverage(const Graph& pattern) const {
  if (database_size_ == 0) return 0.0;
  DynamicBitset acc = UnionFor(pattern, DynamicBitset(database_size_));
  return static_cast<double>(acc.Count()) /
         static_cast<double>(database_size_);
}

double LabelCoverageIndex::SetLabelCoverage(
    const std::vector<Graph>& patterns) const {
  if (database_size_ == 0) return 0.0;
  DynamicBitset acc(database_size_);
  for (const Graph& p : patterns) acc = UnionFor(p, std::move(acc));
  return static_cast<double>(acc.Count()) /
         static_cast<double>(database_size_);
}

}  // namespace catapult
