#ifndef CATAPULT_CORE_SELECTOR_H_
#define CATAPULT_CORE_SELECTOR_H_

#include <functional>
#include <vector>

#include "src/core/budget.h"
#include "src/core/pattern_score.h"
#include "src/core/random_walk.h"
#include "src/core/score_table.h"
#include "src/core/weights.h"
#include "src/csg/csg.h"
#include "src/util/rng.h"

namespace catapult {

// How candidate patterns are proposed from each weighted CSG.
enum class CandidateStrategy {
  // The paper's approach: x weighted random walks -> PCP library -> FCP.
  kRandomWalk,
  // DaVinci-style deterministic greedy growth (Section 7 / ablation): one
  // BFS-greedy expansion always taking the heaviest adjacent edge.
  kGreedyBfs,
};

// Options for canned-pattern selection (Algorithm 4).
struct SelectorOptions {
  PatternBudget budget;

  // Number of random walks per (CSG, size) pair (the paper's x; Example 5.3
  // uses 100). The PCP library per final candidate has this many walks.
  size_t walks_per_candidate = 40;

  // Candidate proposal strategy (ablation bench exp12).
  CandidateStrategy strategy = CandidateStrategy::kRandomWalk;

  // Multiplicative-weights decay applied to covered clusters and used edge
  // labels after each selection (n = 0.5 in the paper; 1.0 disables the
  // update - ablation bench exp11).
  double weight_decay = 0.5;

  // Resource budgets for the NP-hard oracles.
  uint64_t iso_node_budget = 2000000;
  GedOptions ged;

  // Use the polynomial assignment-based GED (reference [32]) for the
  // diversity term instead of exact branch-and-bound GED.
  bool approximate_diversity = false;

  // Skip candidates isomorphic to an already selected pattern (a diversity
  // of 0 would zero their score anyway; skipping saves the scoring work).
  bool skip_duplicates = true;
};

// A selected canned pattern with its selection-time diagnostics.
struct SelectedPattern {
  Graph graph;
  double score = 0.0;
  double ccov = 0.0;
  double lcov = 0.0;
  double div = 0.0;
  double cog = 0.0;
  size_t source_csg = 0;  // index of the CSG that proposed it
  // True when the pattern came from the frequent-edge fallback after the
  // deadline cut random-walk generation short (source_csg is then
  // meaningless and the score fields are zero).
  bool fallback = false;
};

// Result of Algorithm 4.
struct SelectionResult {
  std::vector<SelectedPattern> patterns;

  // Anytime diagnostics: `complete` is false when the deadline or a
  // cancellation stopped the greedy loop before it ran out of candidates or
  // budget; `fallback_patterns` counts patterns filled in from frequent
  // edges afterwards; `iso_budget_exhausted` counts coverage subgraph-
  // isomorphism tests truncated by their node budget (each counted test
  // conservatively reported "not contained").
  bool complete = true;
  size_t fallback_patterns = 0;
  uint64_t iso_budget_exhausted = 0;

  // Convenience view of just the pattern graphs.
  std::vector<Graph> PatternGraphs() const;
};

// Exact resumable state of the greedy selection loop, captured after a
// pattern is accepted (Algorithm 4's loop invariant): the panel so far, the
// per-size tallies, the decayed cluster/edge-label weights, and the rng
// stream position for the *next* iteration. The checkpoint store persists
// it so a killed run restarted from this state selects the remaining
// patterns bit-identically to the uninterrupted run.
struct SelectorCheckpointState {
  std::vector<SelectedPattern> patterns;
  std::vector<size_t> selected_per_size;
  std::vector<double> cluster_weights;
  std::vector<std::pair<EdgeLabelKey, double>> edge_label_weights;
  RngState rng;
};

// Checkpoint integration for FindCannedPatternSet. `resume` (optional)
// seeds the greedy loop from a prior SelectorCheckpointState instead of
// from scratch; `on_pattern_selected` (optional) is invoked with the
// freshly captured state after every accepted pattern (never for the
// frequent-edge fallback fill, whose entries are not resumable greedy
// state). Both default to disabled, leaving the plain overloads unchanged.
struct SelectorCheckpointHooks {
  const SelectorCheckpointState* resume = nullptr;
  std::function<void(const SelectorCheckpointState&)> on_pattern_selected;
};

// FindCannedPatternSet (Algorithm 4): greedy iterations; in each iteration
// every CSG proposes one final candidate pattern per open size (via weighted
// random walks and the PCP->FCP statistics), the candidate with the highest
// Equation 2 score joins the set, and cluster/edge-label weights decay
// multiplicatively. Stops at gamma patterns or when no new candidate can be
// produced. Deterministic given `rng`.
SelectionResult FindCannedPatternSet(
    const GraphDatabase& db, const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng);

// Deadline-aware variant. The greedy loop polls `ctx` per iteration, per
// proposing CSG, and per scored candidate (failpoint sites
// "selector.iteration", "selector.candidates", "selector.score"), and the
// GED / subgraph-isomorphism node budgets tighten as the deadline nears.
// When the loop is cut short, open size slots are filled with frequent-edge
// fallback patterns (FrequentEdgePathPatterns) so the interface still shows
// a full, size-conforming panel; those entries are flagged `fallback` and
// counted in the result. With an unlimited context the result is identical
// to the overload above.
SelectionResult FindCannedPatternSet(
    const GraphDatabase& db, const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx);

// Checkpoint-aware variant: as above, plus resume-from-state and a
// per-selected-pattern state capture (see SelectorCheckpointHooks). With
// empty hooks the behaviour and output are identical to the overloads
// above. A resume state must structurally match (clusters count, budget
// size range) — the checkpoint store validates this before handing one in;
// mismatches are programmer errors (CHECK).
//
// `prebuilt_index` (optional) supplies the flat summary index of `csgs`
// built ahead of time (PrepareCorpus keeps one per corpus so the serving
// path does not rebuild summaries per request); when null the selector
// builds its own. The index must have been built from exactly `csgs`.
SelectionResult FindCannedPatternSet(
    const GraphDatabase& db, const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx,
    const SelectorCheckpointHooks& hooks,
    const FlatSummaryIndex* prebuilt_index = nullptr);

}  // namespace catapult

#endif  // CATAPULT_CORE_SELECTOR_H_
