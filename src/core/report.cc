#include "src/core/report.h"

#include <ostream>
#include <sstream>

namespace catapult {

namespace {

// JSON string escaping for label names (quotes, backslashes, control
// characters; labels are typically atom symbols, but be safe).
void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void WriteSelectionReport(const CatapultResult& result,
                          const LabelMap& labels, std::ostream& out) {
  out << "{\n";
  out << "  \"database\": {\"graphs\": ";
  size_t total_graphs = 0;
  for (const auto& cluster : result.clusters) total_graphs += cluster.size();
  out << total_graphs << ", \"clusters\": " << result.clusters.size()
      << "},\n";
  out << "  \"timings\": {\"clustering_s\": " << result.clustering_seconds
      << ", \"csg_s\": " << result.csg_seconds
      << ", \"selection_s\": " << result.selection_seconds << "},\n";
  out << "  \"patterns\": [";
  for (size_t i = 0; i < result.selection.patterns.size(); ++i) {
    const SelectedPattern& p = result.selection.patterns[i];
    if (i > 0) out << ",";
    out << "\n    {\"id\": " << i << ", \"score\": " << p.score
        << ", \"ccov\": " << p.ccov << ", \"lcov\": " << p.lcov
        << ", \"div\": " << p.div << ", \"cog\": " << p.cog
        << ",\n     \"vertices\": [";
    for (VertexId v = 0; v < p.graph.NumVertices(); ++v) {
      if (v > 0) out << ", ";
      out << "{\"id\": " << v << ", \"label\": ";
      Label label = p.graph.VertexLabel(v);
      if (label < labels.size()) {
        WriteJsonString(out, labels.Name(label));
      } else {
        out << label;  // numeric fallback for labels without names
      }
      out << "}";
    }
    out << "],\n     \"edges\": [";
    bool first_edge = true;
    for (const Edge& e : p.graph.EdgeList()) {
      if (!first_edge) out << ", ";
      first_edge = false;
      out << "{\"u\": " << e.u << ", \"v\": " << e.v << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

std::string SelectionReportJson(const CatapultResult& result,
                                const LabelMap& labels) {
  std::ostringstream out;
  WriteSelectionReport(result, labels, out);
  return out.str();
}

}  // namespace catapult
