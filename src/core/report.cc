#include "src/core/report.h"

#include <ostream>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace catapult {

void WriteSelectionReport(const CatapultResult& result,
                          const LabelMap& labels, std::ostream& out) {
  obs::JsonWriter w(/*indent=*/2);
  w.BeginObject();

  size_t total_graphs = 0;
  for (const auto& cluster : result.clusters) total_graphs += cluster.size();
  w.Key("database").BeginObject();
  w.Key("graphs").Value(static_cast<uint64_t>(total_graphs));
  w.Key("clusters").Value(static_cast<uint64_t>(result.clusters.size()));
  w.EndObject();

  w.Key("timings").BeginObject();
  w.Key("clustering_s").Value(result.clustering_seconds);
  w.Key("csg_s").Value(result.csg_seconds);
  w.Key("selection_s").Value(result.selection_seconds);
  w.EndObject();

  // Per-primitive counters of the run (DESIGN.md §11). Always present;
  // "enabled" is false (and every counter zero) when the run carried no
  // MetricsRegistry.
  w.Key("metrics").BeginObject();
  obs::RenderMetricsFields(result.execution.metrics, w);
  w.EndObject();

  // Sharded-execution supervision summary (DESIGN.md §12); "enabled" is
  // false — with all counts zero — for in-process runs.
  const dist::DistReport& d = result.execution.dist;
  w.Key("dist").BeginObject();
  w.Key("enabled").Value(d.enabled);
  w.Key("processes").Value(static_cast<uint64_t>(d.processes));
  w.Key("shards").Value(static_cast<uint64_t>(d.shards));
  w.Key("workers_spawned").Value(static_cast<uint64_t>(d.workers_spawned));
  w.Key("worker_deaths").Value(static_cast<uint64_t>(d.worker_deaths));
  w.Key("worker_hangs").Value(static_cast<uint64_t>(d.worker_hangs));
  w.Key("shard_retries").Value(static_cast<uint64_t>(d.shard_retries));
  w.Key("backoff_waits").Value(static_cast<uint64_t>(d.backoff_waits));
  w.Key("backoff_total_ms").Value(d.backoff_total_ms);
  w.Key("quarantined_shards").Value(
      static_cast<uint64_t>(d.quarantined_shards));
  w.Key("inprocess_fallbacks").Value(
      static_cast<uint64_t>(d.inprocess_fallbacks));
  w.Key("artifacts_reused").Value(static_cast<uint64_t>(d.artifacts_reused));
  w.Key("artifacts_rejected").Value(
      static_cast<uint64_t>(d.artifacts_rejected));
  w.Key("heartbeats").Value(static_cast<uint64_t>(d.heartbeats));
  // Network-transparent membership (DESIGN.md §14); all-zero/false for
  // fork-mode and in-process runs.
  w.Key("remote").Value(d.remote);
  w.Key("listen_address").Value(d.listen_address);
  w.Key("workers_joined").Value(static_cast<uint64_t>(d.workers_joined));
  w.Key("workers_rejected").Value(static_cast<uint64_t>(d.workers_rejected));
  w.Key("reconnects").Value(static_cast<uint64_t>(d.reconnects));
  w.Key("fenced_frames").Value(static_cast<uint64_t>(d.fenced_frames));
  w.Key("duplicate_clusters").Value(
      static_cast<uint64_t>(d.duplicate_clusters));
  w.Key("write_stalls").Value(static_cast<uint64_t>(d.write_stalls));
  w.Key("remote_clusters").Value(static_cast<uint64_t>(d.remote_clusters));
  w.Key("fleet_lost_fallbacks").Value(
      static_cast<uint64_t>(d.fleet_lost_fallbacks));
  w.Key("remote_fallback_only").Value(d.remote_fallback_only);
  w.EndObject();

  w.Key("patterns").BeginArray();
  for (size_t i = 0; i < result.selection.patterns.size(); ++i) {
    const SelectedPattern& p = result.selection.patterns[i];
    w.BeginObject();
    w.Key("id").Value(static_cast<uint64_t>(i));
    w.Key("score").Value(p.score);
    w.Key("ccov").Value(p.ccov);
    w.Key("lcov").Value(p.lcov);
    w.Key("div").Value(p.div);
    w.Key("cog").Value(p.cog);
    w.Key("vertices").BeginArray();
    for (VertexId v = 0; v < p.graph.NumVertices(); ++v) {
      w.BeginObject();
      w.Key("id").Value(static_cast<uint64_t>(v));
      Label label = p.graph.VertexLabel(v);
      w.Key("label");
      if (label < labels.size()) {
        w.Value(labels.Name(label));
      } else {
        w.Value(static_cast<uint64_t>(label));  // numeric fallback
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("edges").BeginArray();
    for (const Edge& e : p.graph.EdgeList()) {
      w.BeginObject();
      w.Key("u").Value(static_cast<uint64_t>(e.u));
      w.Key("v").Value(static_cast<uint64_t>(e.v));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  out << w.str() << '\n';
}

std::string SelectionReportJson(const CatapultResult& result,
                                const LabelMap& labels) {
  std::ostringstream out;
  WriteSelectionReport(result, labels, out);
  return out.str();
}

}  // namespace catapult
