#ifndef CATAPULT_CORE_MAINTENANCE_H_
#define CATAPULT_CORE_MAINTENANCE_H_

#include <vector>

#include "src/core/catapult.h"

namespace catapult {

// Incremental maintenance of canned patterns as the database evolves
// (Section 1: "it can be extended to support incremental maintenance of
// canned patterns as the underlying data graphs evolve").
//
// Instead of re-running the whole pipeline when new graphs arrive, the
// updater (a) assigns each new graph to the existing cluster whose CSG it
// is most similar to (fraction of the graph's labelled edges present in the
// summary - the cheap proxy the closure construction itself optimises),
// creating fresh clusters for graphs that match nothing well, (b) folds the
// new members into the affected CSGs via the same closure step used at
// build time, and (c) re-runs only the selection phase (Algorithm 4), which
// is orders of magnitude cheaper than clustering.
struct MaintenanceOptions {
  // A new graph joins its best cluster only if at least this fraction of
  // its labelled edges already occurs in that cluster's summary; otherwise
  // it seeds a new cluster.
  double min_affinity = 0.5;

  // Clusters never grow beyond this size through maintenance (new arrivals
  // overflow into fresh clusters), bounding CSG degradation between full
  // rebuilds.
  size_t max_cluster_size = 40;

  SelectorOptions selector;
  uint64_t seed = 91;
};

// Diff of the pattern panel across a maintenance step.
struct MaintenanceResult {
  SelectionResult selection;
  std::vector<std::vector<GraphId>> clusters;  // updated (ids into new db)
  std::vector<ClusterSummaryGraph> csgs;       // updated summaries
  size_t new_clusters = 0;       // clusters created for unmatched arrivals
  size_t patterns_kept = 0;      // patterns isomorphic to a previous one
  size_t patterns_changed = 0;   // patterns.size() - patterns_kept
  double update_seconds = 0.0;
};

// Applies a batch of `new_graphs` on top of a previous run.
//
// `old_db` must be the database `previous` was computed from; the updated
// database (old graphs + new ones, ids preserved for the old prefix) is
// returned through `updated_db`. The previous result is not modified.
MaintenanceResult UpdateWithNewGraphs(const GraphDatabase& old_db,
                                      const CatapultResult& previous,
                                      const std::vector<Graph>& new_graphs,
                                      const MaintenanceOptions& options,
                                      GraphDatabase* updated_db);

}  // namespace catapult

#endif  // CATAPULT_CORE_MAINTENANCE_H_
