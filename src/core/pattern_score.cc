#include "src/core/pattern_score.h"

#include <algorithm>
#include <limits>

#include "src/iso/ged_bipartite.h"
#include "src/iso/vf2.h"
#include "src/obs/metrics.h"

namespace catapult {

double CognitiveLoad(const Graph& pattern) {
  return static_cast<double>(pattern.NumEdges()) * pattern.Density();
}

double CognitiveLoadDegreeSum(const Graph& pattern) {
  return 2.0 * static_cast<double>(pattern.NumEdges());
}

double CognitiveLoadAvgDegree(const Graph& pattern) {
  if (pattern.NumVertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(pattern.NumEdges()) /
         static_cast<double>(pattern.NumVertices());
}

double PatternSetDiversity(const Graph& pattern,
                           const std::vector<Graph>& selected,
                           const GedOptions& ged_options,
                           double empty_set_value) {
  if (selected.empty()) return empty_set_value;

  // Order canned patterns by increasing GED lower bound (Definition 5.1),
  // then iterate: compute exact GED, keep the minimum, and stop as soon as
  // the next lower bound cannot beat it (Section 5's pruning procedure).
  struct Entry {
    double lower;
    const Graph* graph;
  };
  std::vector<Entry> entries;
  entries.reserve(selected.size());
  for (const Graph& q : selected) {
    entries.push_back({GedLowerBound(pattern, q), &q});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.lower < b.lower; });

  double best = std::numeric_limits<double>::max();
  for (const Entry& entry : entries) {
    if (entry.lower >= best) break;  // No later entry can improve either.
    double distance = GraphEditDistance(pattern, *entry.graph, ged_options)
                          .distance;
    best = std::min(best, distance);
    if (best == 0.0) break;
  }
  return best;
}

double FoldDiversity(const Graph& pattern, const std::vector<Graph>& selected,
                     size_t from, double running_min,
                     const GedOptions& ged_options, bool approximate) {
  for (size_t i = from; i < selected.size(); ++i) {
    double lower = GedLowerBound(pattern, selected[i]);
    if (lower >= running_min) {
      obs::Count(obs::Counter::kSelectorDivPruned);
      continue;  // value >= lower >= running_min: cannot improve
    }
    obs::Count(obs::Counter::kSelectorDivFolds);
    double distance =
        approximate
            ? BipartiteGed(pattern, selected[i])
            : GraphEditDistance(pattern, selected[i], ged_options).distance;
    running_min = std::min(running_min, distance);
  }
  return running_min;
}

double PatternSetDiversityApprox(const Graph& pattern,
                                 const std::vector<Graph>& selected,
                                 double empty_set_value) {
  if (selected.empty()) return empty_set_value;
  struct Entry {
    double lower;
    const Graph* graph;
  };
  std::vector<Entry> entries;
  entries.reserve(selected.size());
  for (const Graph& q : selected) {
    entries.push_back({GedLowerBound(pattern, q), &q});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.lower < b.lower; });
  double best = std::numeric_limits<double>::max();
  for (const Entry& entry : entries) {
    if (entry.lower >= best) break;
    best = std::min(best, BipartiteGed(pattern, *entry.graph));
    if (best == 0.0) break;
  }
  return best;
}

std::vector<bool> CoveredCsgs(const Graph& pattern,
                              const std::vector<Graph>& csg_summaries,
                              uint64_t iso_node_budget,
                              uint64_t* budget_exhausted) {
  std::vector<bool> covered(csg_summaries.size(), false);
  IsoOptions options;
  options.node_budget =
      iso_node_budget == 0 ? kDefaultCoverageIsoBudget : iso_node_budget;
  for (size_t i = 0; i < csg_summaries.size(); ++i) {
    if (csg_summaries[i].NumVertices() == 0) continue;
    bool exhausted = false;
    options.budget_exhausted = &exhausted;
    covered[i] = ContainsSubgraph(pattern, csg_summaries[i], options);
    if (exhausted && budget_exhausted != nullptr) ++*budget_exhausted;
  }
  return covered;
}

double ClusterCoverage(const Graph& pattern,
                       const std::vector<Graph>& csg_summaries,
                       const ClusterWeights& weights,
                       uint64_t iso_node_budget,
                       uint64_t* budget_exhausted) {
  CATAPULT_CHECK(weights.size() == csg_summaries.size());
  std::vector<bool> covered = CoveredCsgs(pattern, csg_summaries,
                                          iso_node_budget, budget_exhausted);
  double total = 0.0;
  for (size_t i = 0; i < csg_summaries.size(); ++i) {
    if (covered[i]) total += weights.Get(i);
  }
  return total;
}

double PatternScore(const Graph& pattern,
                    const std::vector<Graph>& csg_summaries,
                    const ClusterWeights& cluster_weights,
                    const LabelCoverageIndex& label_index,
                    const std::vector<Graph>& selected,
                    const GedOptions& ged_options,
                    uint64_t iso_node_budget) {
  double cog = CognitiveLoad(pattern);
  if (cog <= 0.0) return 0.0;
  double ccov = ClusterCoverage(pattern, csg_summaries, cluster_weights,
                                iso_node_budget);
  double lcov = label_index.PatternLabelCoverage(pattern);
  double div = PatternSetDiversity(pattern, selected, ged_options);
  return ccov * lcov * div / cog;
}

}  // namespace catapult
