#ifndef CATAPULT_CORE_BUDGET_H_
#define CATAPULT_CORE_BUDGET_H_

#include <cstddef>
#include <vector>

#include "src/util/check.h"

namespace catapult {

// The pattern budget b = (eta_min, eta_max, gamma) of Definition 3.1:
// minimum/maximum canned-pattern size (in edges) and the number of patterns
// to display on the interface.
struct PatternBudget {
  size_t eta_min = 3;
  size_t eta_max = 12;
  size_t gamma = 30;

  // Optional desired pattern-size distribution Psi_dist (Section 5 remark:
  // "it can be easily modified ... to accommodate a different size
  // distribution"). When empty, sizes are uniformly distributed (the
  // default of Definition 3.1). Otherwise it must hold one non-negative
  // weight per size in [eta_min, eta_max]; per-size caps are gamma
  // apportioned proportionally (largest-remainder rounding), with zero
  // weights excluding a size entirely.
  std::vector<double> size_distribution;

  // Number of distinct pattern sizes.
  size_t NumSizes() const { return eta_max - eta_min + 1; }

  // Per-size cap under the uniform distribution: gamma / NumSizes(), at
  // least 1 (Definition 3.1).
  size_t MaxPerSize() const {
    size_t per = gamma / NumSizes();
    return per == 0 ? 1 : per;
  }

  // Per-size caps honouring size_distribution (uniform when it is empty).
  // The caps of positively weighted sizes sum to at least gamma.
  std::vector<size_t> PerSizeCaps() const;

  // CHECK-validates the invariants of Definition 3.1 (eta_min > 2, ordered
  // range, positive gamma).
  void Validate() const {
    CATAPULT_CHECK_MSG(eta_min > 2, "eta_min must exceed 2 (Definition 3.1)");
    CATAPULT_CHECK(eta_max >= eta_min);
    CATAPULT_CHECK(gamma > 0);
    if (!size_distribution.empty()) {
      CATAPULT_CHECK_MSG(size_distribution.size() == NumSizes(),
                         "Psi_dist needs one weight per size");
      double total = 0.0;
      for (double w : size_distribution) {
        CATAPULT_CHECK(w >= 0.0);
        total += w;
      }
      CATAPULT_CHECK_MSG(total > 0.0, "Psi_dist must have a positive weight");
    }
  }
};

// Sizes still open for selection given how many patterns of each size have
// been chosen (Algorithm 4, GetPatternSizeRange). `selected_per_size[s]`
// counts patterns of size eta_min + s.
std::vector<size_t> OpenPatternSizes(const PatternBudget& budget,
                                     const std::vector<size_t>& selected_per_size);

}  // namespace catapult

#endif  // CATAPULT_CORE_BUDGET_H_
