#ifndef CATAPULT_CORE_RANDOM_WALK_H_
#define CATAPULT_CORE_RANDOM_WALK_H_

#include <vector>

#include "src/core/weights.h"
#include "src/csg/csg.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

namespace catapult {

// A CSG with per-edge random-walk weights (Algorithm 4, line 2):
// w_e = lcov(e, D) * lcov(e, C), the product of the global edge-label
// weight (decaying as labels get used) and the local within-cluster
// coverage of the summary edge.
struct WeightedCsg {
  const ClusterSummaryGraph* csg = nullptr;
  std::vector<double> edge_weights;  // parallel to csg->edges()
};

// (Re)computes the walk weights of `csg` under the current global
// edge-label weights. Called once per selection iteration because elw
// decays after every selected pattern.
WeightedCsg MakeWeightedCsg(const ClusterSummaryGraph& csg,
                            const EdgeLabelWeights& elw);

// A potential candidate pattern (PCP): a set of CSG edge indices forming a
// connected subgraph of the summary.
using Pcp = std::vector<size_t>;

// One weighted random walk on `wcsg` (Section 5): starts at the seed edge
// (largest weight) and repeatedly adds one candidate adjacent edge drawn
// with probability proportional to its weight, until `target_edges` edges
// are collected or no edge can be added. Drawing proportionally to weight
// is exactly the paper's LCM-integerisation scheme (see Rng::WeightedIndex).
Pcp GeneratePcp(const WeightedCsg& wcsg, size_t target_edges, Rng& rng);

// Deterministic greedy variant (DaVinci-style ablation): grows from the
// seed edge always taking the heaviest candidate adjacent edge.
Pcp GenerateGreedyPcp(const WeightedCsg& wcsg, size_t target_edges);

// Generates up to `count` PCP walks (empty walks dropped), polling `ctx`
// before each walk (failpoint site "selector.pcp_walk"); on expiry the
// library generated so far is returned — FCP assembly degrades smoothly
// with fewer walks. With an unlimited context this draws exactly the same
// rng stream as `count` sequential GeneratePcp calls.
std::vector<Pcp> GeneratePcpLibrary(const WeightedCsg& wcsg,
                                    size_t target_edges, size_t count,
                                    Rng& rng, const RunContext& ctx);

// Assembles the final candidate pattern (FCP) from a PCP library: the most
// frequent edge across the library seeds the pattern, which then greedily
// grows by the most frequent library edge connected to the partial pattern,
// until `target_edges` edges are collected or no connected edge remains.
// Returns the FCP as CSG edge indices (possibly shorter than requested).
Pcp GenerateFcp(const ClusterSummaryGraph& csg, const std::vector<Pcp>& library,
                size_t target_edges);

// Materialises a set of CSG edges as a free-standing pattern graph
// (vertices re-indexed densely, labels copied from the summary).
Graph PatternFromCsgEdges(const ClusterSummaryGraph& csg, const Pcp& edges);

}  // namespace catapult

#endif  // CATAPULT_CORE_RANDOM_WALK_H_
