#ifndef CATAPULT_CORE_PATTERN_SCORE_H_
#define CATAPULT_CORE_PATTERN_SCORE_H_

#include <vector>

#include "src/core/weights.h"
#include "src/iso/ged.h"

namespace catapult {

// Cognitive load cog(p) = |Ep| * rho_p, where rho_p is the graph density
// (Section 3.2; the measure validated as F1 in Exp 10).
double CognitiveLoad(const Graph& pattern);

// Alternative cognitive-load measures evaluated in Exp 10.
double CognitiveLoadDegreeSum(const Graph& pattern);  // F2 = sum(deg) = 2|E|
double CognitiveLoadAvgDegree(const Graph& pattern);  // F3 = 2|E| / |V|

// Diversity div(p, P) = min_{q in P} GED(p, q) (Section 3.2), computed with
// the Definition 5.1 lower bound as a pruning filter: canned patterns are
// visited in increasing lower-bound order and exact GED is skipped once the
// lower bound exceeds the best exact distance so far. Returns
// `empty_set_value` when P is empty (the first selection has no diversity
// signal; 1.0 keeps the score multiplicative and neutral).
double PatternSetDiversity(const Graph& pattern,
                           const std::vector<Graph>& selected,
                           const GedOptions& ged_options = {},
                           double empty_set_value = 1.0);

// Incremental diversity fold (DESIGN.md §15): folds selected[from..) into a
// running minimum, skipping any pair whose Definition 5.1 lower bound cannot
// beat the running minimum. Because every (truncated or exact) GED value is
// >= its lower bound, FoldDiversity(p, S, 0, +inf) equals
// PatternSetDiversity(p, S) bit-for-bit — the skipped pairs provably cannot
// lower the minimum — which is what lets the selector carry a per-candidate
// running minimum across greedy iterations and fold only the patterns
// selected since the candidate was last scored. `approximate` switches the
// distance oracle to BipartiteGed (the PatternSetDiversityApprox pairing).
double FoldDiversity(const Graph& pattern, const std::vector<Graph>& selected,
                     size_t from, double running_min,
                     const GedOptions& ged_options, bool approximate);

// Polynomial-time variant using the assignment-based GED upper bound of
// [Riesen & Neuhaus, GbRPR'07] (the paper's reference [32]) instead of the
// exact branch-and-bound: min over the set of BipartiteGed(pattern, q),
// still pruned by the Definition 5.1 lower bound. Use when panels are
// large enough that exact GED dominates selection time.
double PatternSetDiversityApprox(const Graph& pattern,
                                 const std::vector<Graph>& selected,
                                 double empty_set_value = 1.0);

// Default backtracking budget for one coverage subgraph-isomorphism test.
// Coverage tests must always be finite: an unlimited VF2 call on an
// adversarial CSG could stall selection forever, and an unlimited call can
// never report the truncation it silently avoids. Passing 0 to the coverage
// helpers below selects this value rather than "unlimited".
inline constexpr uint64_t kDefaultCoverageIsoBudget = 2000000;

// Cluster coverage ccov(p, cw, C) ~= scov(p, D) (Section 5): the sum of
// current cluster weights over clusters whose CSG contains p. `budget`
// bounds each subgraph-isomorphism test; budget-exhausted tests count as
// "not contained" (conservative) and are tallied into `budget_exhausted`
// (optional, accumulated) so truncation is observable instead of silent.
double ClusterCoverage(const Graph& pattern,
                       const std::vector<Graph>& csg_summaries,
                       const ClusterWeights& weights,
                       uint64_t iso_node_budget = kDefaultCoverageIsoBudget,
                       uint64_t* budget_exhausted = nullptr);

// Marks which CSGs contain `pattern` (used both for scoring and for the
// weight update after selection).
// `csg_summaries` are the plain-graph views (ClusterSummaryGraph::ToGraph),
// precomputed once by the caller.
std::vector<bool> CoveredCsgs(const Graph& pattern,
                              const std::vector<Graph>& csg_summaries,
                              uint64_t iso_node_budget = kDefaultCoverageIsoBudget,
                              uint64_t* budget_exhausted = nullptr);

// The full pattern score of Equation 2:
//   s_p = ccov(p, cw, C) * lcov(p, D) * div(p, P \ p) / cog(p).
double PatternScore(const Graph& pattern,
                    const std::vector<Graph>& csg_summaries,
                    const ClusterWeights& cluster_weights,
                    const LabelCoverageIndex& label_index,
                    const std::vector<Graph>& selected,
                    const GedOptions& ged_options = {},
                    uint64_t iso_node_budget = 2000000);

}  // namespace catapult

#endif  // CATAPULT_CORE_PATTERN_SCORE_H_
