#include "src/core/selector.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "src/mining/frequent_edges.h"
#include "src/iso/vf2.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace catapult {

std::vector<Graph> SelectionResult::PatternGraphs() const {
  std::vector<Graph> graphs;
  graphs.reserve(patterns.size());
  for (const SelectedPattern& p : patterns) graphs.push_back(p.graph);
  return graphs;
}

namespace {

// Fills still-open size slots with frequent-edge path patterns after the
// deadline cut the greedy loop short (the last rung of the degradation
// ladder: the interface still shows a full, size-conforming panel).
void FillWithFallbackPatterns(const GraphDatabase& db,
                              const SelectorOptions& options,
                              std::vector<size_t>& selected_per_size,
                              std::vector<Graph>& selected_graphs,
                              SelectionResult& result) {
  // Per-size pools are built lazily and walked once; every pool entry is
  // distinct, so a full pass that adds nothing means the pools are dry.
  std::unordered_map<size_t, std::vector<Graph>> pool;
  std::unordered_map<size_t, size_t> next_in_pool;
  while (result.patterns.size() < options.budget.gamma) {
    std::vector<size_t> open_sizes =
        OpenPatternSizes(options.budget, selected_per_size);
    if (open_sizes.empty()) break;
    bool progress = false;
    for (size_t size : open_sizes) {
      if (result.patterns.size() >= options.budget.gamma) break;
      auto [it, inserted] = pool.try_emplace(size);
      if (inserted) {
        it->second =
            FrequentEdgePathPatterns(db, size, options.budget.gamma);
      }
      std::vector<Graph>& candidates = it->second;
      size_t& next = next_in_pool[size];
      while (next < candidates.size()) {
        Graph candidate = candidates[next++];
        bool duplicate = false;
        for (const Graph& s : selected_graphs) {
          if (AreIsomorphic(candidate, s)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        SelectedPattern fallback;
        fallback.graph = candidate;
        fallback.fallback = true;
        size_t slot = size - options.budget.eta_min;
        if (slot < selected_per_size.size()) ++selected_per_size[slot];
        selected_graphs.push_back(std::move(candidate));
        result.patterns.push_back(std::move(fallback));
        ++result.fallback_patterns;
        progress = true;
        break;
      }
    }
    if (!progress) break;
  }
}

}  // namespace

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng) {
  return FindCannedPatternSet(db, clusters, csgs, options, rng,
                              RunContext::NoLimit());
}

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx) {
  return FindCannedPatternSet(db, clusters, csgs, options, rng, ctx,
                              SelectorCheckpointHooks());
}

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx,
    const SelectorCheckpointHooks& hooks) {
  options.budget.Validate();
  CATAPULT_CHECK(clusters.size() == csgs.size());

  SelectionResult result;
  if (csgs.empty() || db.empty()) return result;

  EdgeLabelWeights elw(db);
  ClusterWeights cw(clusters, db.size());
  LabelCoverageIndex label_index(db);

  // Plain-graph views of the summaries, computed once.
  std::vector<Graph> summaries;
  summaries.reserve(csgs.size());
  for (const ClusterSummaryGraph& csg : csgs) {
    summaries.push_back(csg.ToGraph());
  }

  std::vector<Graph> selected_graphs;
  std::vector<size_t> selected_per_size(options.budget.NumSizes(), 0);

  // Resume: replay the checkpointed loop invariant — panel, tallies, decayed
  // weights, and the rng stream position — exactly as the interrupted run
  // left them, so the remaining iterations are bit-identical to what the
  // uninterrupted run would have produced.
  if (hooks.resume != nullptr) {
    const SelectorCheckpointState& state = *hooks.resume;
    CATAPULT_CHECK(state.cluster_weights.size() == clusters.size());
    CATAPULT_CHECK(state.selected_per_size.size() == selected_per_size.size());
    CATAPULT_CHECK(state.rng.Valid());
    result.patterns = state.patterns;
    selected_per_size = state.selected_per_size;
    for (const SelectedPattern& p : state.patterns) {
      selected_graphs.push_back(p.graph);
    }
    cw.Restore(state.cluster_weights);
    elw.Restore(state.edge_label_weights);
    rng.RestoreState(state.rng);
  }

  // Captures the current loop invariant for hooks.on_pattern_selected.
  auto CaptureState = [&]() {
    SelectorCheckpointState state;
    state.patterns = result.patterns;
    state.selected_per_size = selected_per_size;
    state.cluster_weights = cw.Snapshot();
    state.edge_label_weights = elw.Snapshot();
    state.rng = rng.SaveState();
    return state;
  };

  // Which CSGs contain a given pattern is independent of the decaying
  // weights, and candidates recur heavily across iterations (the same FCPs
  // keep being proposed until their clusters decay away). Memoising the
  // covered set by isomorphism class removes the dominant subgraph-
  // isomorphism cost of scoring.
  struct CoverageEntry {
    Graph graph;
    std::vector<bool> covered;
  };
  std::unordered_map<uint64_t, std::vector<CoverageEntry>> coverage_cache;
  // The cache is the selector's only input-proportional allocation, so its
  // entries are charged against the memory budget; when a charge is refused
  // the freshly computed covered set is still used, just not retained.
  //
  // During the parallel scoring pass the cache is strictly read-only (lookup
  // by fingerprint + isomorphism); freshly computed covered sets are carried
  // out in per-candidate slots and inserted — with their budget charges — on
  // the calling thread afterwards, in candidate order.
  size_t cache_charged_bytes = 0;
  size_t cache_entries = 0;
  auto CacheProbe = [&](uint64_t fp, const Graph& g) -> const std::vector<bool>* {
    auto it = coverage_cache.find(fp);
    if (it == coverage_cache.end()) return nullptr;
    for (const CoverageEntry& entry : it->second) {
      if (AreIsomorphic(entry.graph, g)) return &entry.covered;
    }
    return nullptr;
  };

  while (selected_graphs.size() < options.budget.gamma) {
    if (ctx.StopRequested("selector.iteration")) {
      result.complete = false;
      break;
    }
    // Soft-limit pressure: the coverage cache is pure memoisation, so it is
    // the first thing to go — recomputing covered sets trades time for
    // bounded memory.
    if (!coverage_cache.empty() && ctx.memory().SoftExceeded()) {
      obs::Count(obs::Counter::kSelectorCacheEvictions, cache_entries);
      coverage_cache.clear();
      cache_entries = 0;
      ctx.memory().Release(cache_charged_bytes);
      cache_charged_bytes = 0;
    }
    std::vector<size_t> open_sizes =
        OpenPatternSizes(options.budget, selected_per_size);
    if (open_sizes.empty()) break;

    // Every CSG proposes one FCP per open size. The (CSG, size) tasks are
    // enumerated — with their stop polls and rng stream splits — on the
    // calling thread in deterministic order, then executed on the pool into
    // per-task slots: each task walks its own pre-split child stream, so
    // neither the parent stream's consumption nor any task's walks depend
    // on the thread count or interleaving.
    struct CandidateTask {
      size_t csg_index;
      size_t size;
      size_t wcsg_index;
      Rng walk_rng{1};  // pre-split child stream (random-walk strategy only)
    };
    std::vector<WeightedCsg> wcsgs;
    wcsgs.reserve(csgs.size());
    std::vector<CandidateTask> tasks;
    for (size_t csg_index = 0; csg_index < csgs.size(); ++csg_index) {
      if (ctx.StopRequested("selector.candidates")) {
        result.complete = false;
        break;
      }
      const ClusterSummaryGraph& csg = csgs[csg_index];
      if (csg.NumEdges() == 0) continue;
      WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
      // A CSG whose every edge weight decayed to zero proposes nothing.
      double weight_sum = 0.0;
      for (double w : wcsg.edge_weights) weight_sum += w;
      if (weight_sum <= 0.0) continue;
      wcsgs.push_back(std::move(wcsg));
      for (size_t size : open_sizes) {
        CandidateTask task;
        task.csg_index = csg_index;
        task.size = size;
        task.wcsg_index = wcsgs.size() - 1;
        if (options.strategy != CandidateStrategy::kGreedyBfs) {
          task.walk_rng = rng.Split();
        }
        tasks.push_back(std::move(task));
      }
    }

    struct Candidate {
      Graph graph;
      size_t source_csg = 0;
      bool valid = false;
    };
    std::vector<Candidate> slots(tasks.size());
    ParallelFor(ctx, tasks.size(), 1, [&](size_t t) {
      CandidateTask& task = tasks[t];
      const WeightedCsg& wcsg = wcsgs[task.wcsg_index];
      const ClusterSummaryGraph& csg = *wcsg.csg;
      Pcp fcp;
      if (options.strategy == CandidateStrategy::kGreedyBfs) {
        fcp = GenerateGreedyPcp(wcsg, task.size);
      } else {
        std::vector<Pcp> library = GeneratePcpLibrary(
            wcsg, task.size, options.walks_per_candidate, task.walk_rng, ctx);
        fcp = GenerateFcp(csg, library, task.size);
      }
      if (fcp.size() < options.budget.eta_min) return;
      slots[t].graph = PatternFromCsgEdges(csg, fcp);
      slots[t].source_csg = task.csg_index;
      slots[t].valid = true;
    });

    std::vector<Candidate> candidates;
    candidates.reserve(slots.size());
    for (Candidate& c : slots) {
      if (c.valid) candidates.push_back(std::move(c));
    }
    if (candidates.empty()) break;

    // Different CSGs frequently propose isomorphic FCPs (molecule databases
    // share motifs); scoring is the expensive part, so collapse candidates
    // to one representative per isomorphism class first.
    {
      std::vector<Candidate> unique;
      std::vector<uint64_t> fingerprints;
      for (Candidate& c : candidates) {
        uint64_t fp = GraphFingerprint(c.graph);
        bool duplicate = false;
        for (size_t i = 0; i < unique.size(); ++i) {
          if (fingerprints[i] == fp &&
              AreIsomorphic(unique[i].graph, c.graph)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) obs::Count(obs::Counter::kPcpDeduplicated);
        if (!duplicate) {
          unique.push_back(std::move(c));
          fingerprints.push_back(fp);
        }
      }
      candidates = std::move(unique);
    }

    // Diversity GED also tightens toward the deadline (still an admissible
    // upper bound when truncated).
    GedOptions ged = options.ged;
    ged.node_budget = ctx.TightenNodeBudget(ged.node_budget);

    // Score candidates on the pool; keep the best. During the parallel pass
    // every shared structure (coverage cache, cluster/label weights,
    // selected panel) is read-only; each candidate fills only its own slot.
    // The argmax, the iso-budget tally, and all cache inserts + memory
    // charges then run on the calling thread in candidate order, so the
    // winner — including the strict-> first-max tie-break — is the one the
    // sequential scan would have picked.
    struct ScoredSlot {
      bool valid = false;           // scored (not skipped, not stopped)
      SelectedPattern scored;
      std::vector<bool> covered;
      bool fresh = false;           // covered computed here, not cache-hit
      uint64_t iso_exhausted = 0;
    };
    std::vector<ScoredSlot> scored_slots(candidates.size());
    std::atomic<bool> stop_scoring{false};
    ParallelFor(ctx, candidates.size(), 1, [&](size_t i) {
      // Once a stop is observed, later candidates bail out without polling
      // again: at one thread this reproduces the sequential break exactly
      // (no extra failpoint evaluations), at N threads in-flight candidates
      // simply finish.
      if (stop_scoring.load(std::memory_order_relaxed)) return;
      if (ctx.StopRequested("selector.score")) {
        stop_scoring.store(true, std::memory_order_relaxed);
        return;
      }
      const Graph& g = candidates[i].graph;
      // FCP assembly can fall short of the requested size; keep only
      // candidates whose actual size is still open, preserving the uniform
      // size distribution of Definition 3.1.
      if (std::find(open_sizes.begin(), open_sizes.end(), g.NumEdges()) ==
          open_sizes.end()) {
        return;
      }
      if (options.skip_duplicates) {
        for (const Graph& s : selected_graphs) {
          if (AreIsomorphic(g, s)) return;
        }
      }
      ScoredSlot& slot = scored_slots[i];
      SelectedPattern& scored = slot.scored;
      scored.graph = g;
      scored.cog = CognitiveLoad(g);
      {
        uint64_t fp = GraphFingerprint(g);
        const std::vector<bool>* cached = CacheProbe(fp, g);
        if (cached != nullptr) {
          obs::Count(obs::Counter::kSelectorCacheHits);
          slot.covered = *cached;
        } else {
          obs::Count(obs::Counter::kSelectorCacheMisses);
          // Near the deadline each iso test gets only the nodes still
          // affordable, so one adversarial summary cannot eat the whole
          // selection slice.
          uint64_t iso_budget = ctx.TightenNodeBudget(options.iso_node_budget);
          slot.covered =
              CoveredCsgs(g, summaries, iso_budget, &slot.iso_exhausted);
          slot.fresh = true;
        }
        double ccov = 0.0;
        for (size_t c = 0; c < slot.covered.size(); ++c) {
          if (slot.covered[c]) ccov += cw.Get(c);
        }
        scored.ccov = ccov;
      }
      scored.lcov = label_index.PatternLabelCoverage(g);
      scored.div =
          options.approximate_diversity
              ? PatternSetDiversityApprox(g, selected_graphs)
              : PatternSetDiversity(g, selected_graphs, ged);
      scored.score = scored.cog > 0.0
                         ? scored.ccov * scored.lcov * scored.div / scored.cog
                         : 0.0;
      scored.source_csg = candidates[i].source_csg;
      slot.valid = true;
    });
    bool stopped_scoring = stop_scoring.load(std::memory_order_relaxed);
    if (stopped_scoring) result.complete = false;

    // Ordered reduce: tallies, cache retention (with its budget charges, in
    // the same candidate order the sequential code charged), and the argmax.
    int best_index = -1;
    SelectedPattern best;
    const std::vector<bool>* best_covered = nullptr;
    for (size_t i = 0; i < scored_slots.size(); ++i) {
      ScoredSlot& slot = scored_slots[i];
      result.iso_budget_exhausted += slot.iso_exhausted;
      if (!slot.valid) continue;
      if (slot.fresh) {
        const Graph& g = slot.scored.graph;
        size_t bytes = ApproxGraphBytes(g.NumVertices(), g.NumEdges()) +
                       slot.covered.size() + 64;
        if (ctx.memory().TryCharge(bytes, "selector.cache")) {
          cache_charged_bytes += bytes;
          coverage_cache[GraphFingerprint(g)].push_back({g, slot.covered});
          ++cache_entries;
          obs::SetGaugeMax(obs::Gauge::kSelectorCachePeak, cache_entries);
        }
      }
      if (best_index < 0 || slot.scored.score > best.score) {
        best_index = static_cast<int>(i);
        best = slot.scored;
        best_covered = &slot.covered;
      }
    }
    if (best_index < 0) break;

    // Record the winner and decay weights (Algorithm 4, lines 19-21).
    size_t size_slot = best.graph.NumEdges() - options.budget.eta_min;
    if (size_slot < selected_per_size.size()) ++selected_per_size[size_slot];
    const std::vector<bool>& covered = *best_covered;
    for (size_t i = 0; i < covered.size(); ++i) {
      if (covered[i]) cw.Decay(i, options.weight_decay);
    }
    elw.DecayForPattern(best.graph, options.weight_decay);
    selected_graphs.push_back(best.graph);
    result.patterns.push_back(std::move(best));
    if (hooks.on_pattern_selected) hooks.on_pattern_selected(CaptureState());
    if (!result.complete || stopped_scoring) break;
  }

  // Deadline degradation: top the panel up from frequent edges. Skipped on
  // natural termination (candidates ran dry), which is not a deadline event.
  if (!result.complete) {
    FillWithFallbackPatterns(db, options, selected_per_size, selected_graphs,
                             result);
  }
  return result;
}

}  // namespace catapult
