#include "src/core/selector.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "src/mining/frequent_edges.h"
#include "src/iso/vf2.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace catapult {

std::vector<Graph> SelectionResult::PatternGraphs() const {
  std::vector<Graph> graphs;
  graphs.reserve(patterns.size());
  for (const SelectedPattern& p : patterns) graphs.push_back(p.graph);
  return graphs;
}

namespace {

// Fills still-open size slots with frequent-edge path patterns after the
// deadline cut the greedy loop short (the last rung of the degradation
// ladder: the interface still shows a full, size-conforming panel).
void FillWithFallbackPatterns(const GraphDatabase& db,
                              const SelectorOptions& options,
                              std::vector<size_t>& selected_per_size,
                              std::vector<Graph>& selected_graphs,
                              SelectionResult& result) {
  // Per-size pools are built lazily and walked once; every pool entry is
  // distinct, so a full pass that adds nothing means the pools are dry.
  std::unordered_map<size_t, std::vector<Graph>> pool;
  std::unordered_map<size_t, size_t> next_in_pool;
  while (result.patterns.size() < options.budget.gamma) {
    std::vector<size_t> open_sizes =
        OpenPatternSizes(options.budget, selected_per_size);
    if (open_sizes.empty()) break;
    bool progress = false;
    for (size_t size : open_sizes) {
      if (result.patterns.size() >= options.budget.gamma) break;
      auto [it, inserted] = pool.try_emplace(size);
      if (inserted) {
        it->second =
            FrequentEdgePathPatterns(db, size, options.budget.gamma);
      }
      std::vector<Graph>& candidates = it->second;
      size_t& next = next_in_pool[size];
      while (next < candidates.size()) {
        Graph candidate = candidates[next++];
        bool duplicate = false;
        for (const Graph& s : selected_graphs) {
          if (AreIsomorphic(candidate, s)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        SelectedPattern fallback;
        fallback.graph = candidate;
        fallback.fallback = true;
        size_t slot = size - options.budget.eta_min;
        if (slot < selected_per_size.size()) ++selected_per_size[slot];
        selected_graphs.push_back(std::move(candidate));
        result.patterns.push_back(std::move(fallback));
        ++result.fallback_patterns;
        progress = true;
        break;
      }
    }
    if (!progress) break;
  }
}

}  // namespace

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng) {
  return FindCannedPatternSet(db, clusters, csgs, options, rng,
                              RunContext::NoLimit());
}

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx) {
  return FindCannedPatternSet(db, clusters, csgs, options, rng, ctx,
                              SelectorCheckpointHooks());
}

SelectionResult FindCannedPatternSet(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters,
    const std::vector<ClusterSummaryGraph>& csgs,
    const SelectorOptions& options, Rng& rng, const RunContext& ctx,
    const SelectorCheckpointHooks& hooks,
    const FlatSummaryIndex* prebuilt_index) {
  options.budget.Validate();
  CATAPULT_CHECK(clusters.size() == csgs.size());

  SelectionResult result;
  if (csgs.empty() || db.empty()) return result;

  EdgeLabelWeights elw(db);
  ClusterWeights cw(clusters, db.size());
  LabelCoverageIndex label_index(db);

  // Flat summary views + label domains for the coverage kernel, built once
  // per corpus. The serving path passes a prebuilt index so repeated
  // requests against the same corpus skip this entirely.
  FlatSummaryIndex local_index;
  if (prebuilt_index == nullptr) {
    local_index = BuildFlatSummaryIndex(csgs);
    prebuilt_index = &local_index;
  }
  const FlatSummaryIndex& summary_index = *prebuilt_index;
  CATAPULT_CHECK(summary_index.size() == csgs.size());

  std::vector<Graph> selected_graphs;
  std::vector<uint64_t> selected_fps;  // fingerprints, parallel to graphs
  std::vector<size_t> selected_per_size(options.budget.NumSizes(), 0);

  // Resume: replay the checkpointed loop invariant — panel, tallies, decayed
  // weights, and the rng stream position — exactly as the interrupted run
  // left them, so the remaining iterations are bit-identical to what the
  // uninterrupted run would have produced.
  if (hooks.resume != nullptr) {
    const SelectorCheckpointState& state = *hooks.resume;
    CATAPULT_CHECK(state.cluster_weights.size() == clusters.size());
    CATAPULT_CHECK(state.selected_per_size.size() == selected_per_size.size());
    CATAPULT_CHECK(state.rng.Valid());
    result.patterns = state.patterns;
    selected_per_size = state.selected_per_size;
    for (const SelectedPattern& p : state.patterns) {
      selected_fps.push_back(GraphFingerprint(p.graph));
      selected_graphs.push_back(p.graph);
    }
    cw.Restore(state.cluster_weights);
    elw.Restore(state.edge_label_weights);
    rng.RestoreState(state.rng);
  }

  // Captures the current loop invariant for hooks.on_pattern_selected.
  auto CaptureState = [&]() {
    SelectorCheckpointState state;
    state.patterns = result.patterns;
    state.selected_per_size = selected_per_size;
    state.cluster_weights = cw.Snapshot();
    state.edge_label_weights = elw.Snapshot();
    state.rng = rng.SaveState();
    return state;
  };

  // Cross-iteration memo (DESIGN.md §15): which CSGs contain a pattern, its
  // label coverage and cognitive load are all independent of the decaying
  // weights, and candidates recur heavily across iterations (the same FCPs
  // keep being proposed until their clusters decay away) — so each
  // isomorphism class is measured once and rescored cheaply against the
  // current weights. The diversity term is carried per class as a running
  // minimum folded forward over newly selected patterns only.
  //
  // The cache is the selector's only input-proportional allocation, so its
  // entries are charged against the memory budget; when a charge is refused
  // the freshly computed row is still used, just not retained.
  //
  // During the parallel scoring pass the cache is strictly read-only (probe
  // by fingerprint + isomorphism); freshly measured classes and diversity
  // memo updates are carried out in ScoreTable rows and written back — with
  // their budget charges — on the calling thread afterwards, in candidate
  // order.
  SelectorClassCache cache;
  size_t cache_charged_bytes = 0;
  ScoreTable table;

  while (selected_graphs.size() < options.budget.gamma) {
    if (ctx.StopRequested("selector.iteration")) {
      result.complete = false;
      break;
    }
    // Soft-limit pressure: the class cache is pure memoisation, so it is
    // the first thing to go — recomputing its rows trades time for bounded
    // memory.
    if (cache.entries() > 0 && ctx.memory().SoftExceeded()) {
      obs::Count(obs::Counter::kSelectorCacheEvictions, cache.entries());
      cache.Clear();
      ctx.memory().Release(cache_charged_bytes);
      cache_charged_bytes = 0;
    }
    std::vector<size_t> open_sizes =
        OpenPatternSizes(options.budget, selected_per_size);
    if (open_sizes.empty()) break;

    // Every CSG proposes one FCP per open size. The (CSG, size) tasks are
    // enumerated — with their stop polls and rng stream splits — on the
    // calling thread in deterministic order, then executed on the pool into
    // per-task slots: each task walks its own pre-split child stream, so
    // neither the parent stream's consumption nor any task's walks depend
    // on the thread count or interleaving.
    struct CandidateTask {
      size_t csg_index;
      size_t size;
      size_t wcsg_index;
      Rng walk_rng{1};  // pre-split child stream (random-walk strategy only)
    };
    std::vector<WeightedCsg> wcsgs;
    wcsgs.reserve(csgs.size());
    std::vector<CandidateTask> tasks;
    for (size_t csg_index = 0; csg_index < csgs.size(); ++csg_index) {
      if (ctx.StopRequested("selector.candidates")) {
        result.complete = false;
        break;
      }
      const ClusterSummaryGraph& csg = csgs[csg_index];
      if (csg.NumEdges() == 0) continue;
      WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
      // A CSG whose every edge weight decayed to zero proposes nothing.
      double weight_sum = 0.0;
      for (double w : wcsg.edge_weights) weight_sum += w;
      if (weight_sum <= 0.0) continue;
      wcsgs.push_back(std::move(wcsg));
      for (size_t size : open_sizes) {
        CandidateTask task;
        task.csg_index = csg_index;
        task.size = size;
        task.wcsg_index = wcsgs.size() - 1;
        if (options.strategy != CandidateStrategy::kGreedyBfs) {
          task.walk_rng = rng.Split();
        }
        tasks.push_back(std::move(task));
      }
    }

    struct Candidate {
      Graph graph;
      uint64_t fp = 0;  // GraphFingerprint(graph), computed where generated
      size_t source_csg = 0;
      bool valid = false;
    };
    std::vector<Candidate> slots(tasks.size());
    ParallelFor(ctx, tasks.size(), 1, [&](size_t t) {
      CandidateTask& task = tasks[t];
      const WeightedCsg& wcsg = wcsgs[task.wcsg_index];
      const ClusterSummaryGraph& csg = *wcsg.csg;
      Pcp fcp;
      if (options.strategy == CandidateStrategy::kGreedyBfs) {
        fcp = GenerateGreedyPcp(wcsg, task.size);
      } else {
        std::vector<Pcp> library = GeneratePcpLibrary(
            wcsg, task.size, options.walks_per_candidate, task.walk_rng, ctx);
        fcp = GenerateFcp(csg, library, task.size);
      }
      if (fcp.size() < options.budget.eta_min) return;
      slots[t].graph = PatternFromCsgEdges(csg, fcp);
      slots[t].fp = GraphFingerprint(slots[t].graph);
      slots[t].source_csg = task.csg_index;
      slots[t].valid = true;
    });

    std::vector<Candidate> candidates;
    candidates.reserve(slots.size());
    for (Candidate& c : slots) {
      if (c.valid) candidates.push_back(std::move(c));
    }
    if (candidates.empty()) break;

    // Different CSGs frequently propose isomorphic FCPs (molecule databases
    // share motifs); scoring is the expensive part, so collapse candidates
    // to one representative per isomorphism class first. Fingerprints were
    // computed in the generation pass, so the quadratic dedup compares
    // hashes and only falls back to an exact check on a hash match.
    {
      std::vector<Candidate> unique;
      for (Candidate& c : candidates) {
        bool duplicate = false;
        for (const Candidate& u : unique) {
          if (AreIsomorphicWithFingerprints(u.graph, c.graph, u.fp, c.fp)) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) obs::Count(obs::Counter::kPcpDeduplicated);
        if (!duplicate) unique.push_back(std::move(c));
      }
      candidates = std::move(unique);
    }

    // Diversity GED also tightens toward the deadline (still an admissible
    // upper bound when truncated). Truncated GED values can depend on the
    // effective budget, so the diversity memo is only read or written while
    // the budget is untightened — deadline-degraded iterations fall back to
    // the full pruned computation and leave the memo untouched.
    GedOptions ged = options.ged;
    ged.node_budget = ctx.TightenNodeBudget(ged.node_budget);
    const bool div_memo_ok = options.approximate_diversity ||
                             ged.node_budget == options.ged.node_budget;

    // Score candidates on the pool into the structure-of-arrays table; keep
    // the best. During the parallel pass every shared structure (class
    // cache, cluster/label weights, selected panel) is read-only; each
    // candidate fills only its own row. The argmax, the iso-budget tally,
    // and all cache inserts + memo write-backs + memory charges then run on
    // the calling thread in candidate order, so the winner — including the
    // strict-> first-max tie-break — is the one the sequential scan would
    // have picked.
    table.Reset(candidates.size(), csgs.size());
    const SelectorClassCache& ro_cache = cache;  // parallel pass: probes only
    std::atomic<bool> stop_scoring{false};
    ParallelFor(ctx, candidates.size(), 1, [&](size_t i) {
      // Once a stop is observed, later candidates bail out without polling
      // again: at one thread this reproduces the sequential break exactly
      // (no extra failpoint evaluations), at N threads in-flight candidates
      // simply finish.
      if (stop_scoring.load(std::memory_order_relaxed)) return;
      if (ctx.StopRequested("selector.score")) {
        stop_scoring.store(true, std::memory_order_relaxed);
        return;
      }
      const Graph& g = candidates[i].graph;
      const uint64_t fp = candidates[i].fp;
      // FCP assembly can fall short of the requested size; keep only
      // candidates whose actual size is still open, preserving the uniform
      // size distribution of Definition 3.1.
      if (std::find(open_sizes.begin(), open_sizes.end(), g.NumEdges()) ==
          open_sizes.end()) {
        return;
      }
      if (options.skip_duplicates) {
        for (size_t s = 0; s < selected_graphs.size(); ++s) {
          if (AreIsomorphicWithFingerprints(g, selected_graphs[s], fp,
                                            selected_fps[s])) {
            return;
          }
        }
      }
      uint64_t* row = table.CoverageRow(i);
      int slot = ro_cache.Probe(fp, g);
      table.cache_slot[i] = slot;
      if (slot >= 0) {
        obs::Count(obs::Counter::kSelectorCacheHits);
        const SelectorClassCache::Entry& entry = ro_cache.At(fp, slot);
        for (size_t w = 0; w < table.coverage_words(); ++w) {
          row[w] = entry.covered[w];
        }
        table.lcov[i] = entry.lcov;
        table.cog[i] = entry.cog;
        if (div_memo_ok) {
          // Fold only the patterns selected since this class was last
          // scored; the running minimum over the full panel is identical to
          // the from-scratch pruned computation (see FoldDiversity).
          double running = FoldDiversity(entry.rep, selected_graphs,
                                         entry.div_folded, entry.div_min, ged,
                                         options.approximate_diversity);
          table.div_min[i] = running;
          table.div_folded[i] = static_cast<uint32_t>(selected_graphs.size());
          table.div[i] = selected_graphs.empty() ? 1.0 : running;
        }
      } else {
        obs::Count(obs::Counter::kSelectorCacheMisses);
        // Near the deadline each iso test gets only the nodes still
        // affordable, so one adversarial summary cannot eat the whole
        // selection slice.
        uint64_t iso_budget = ctx.TightenNodeBudget(options.iso_node_budget);
        CoveredCsgsFlat(g, summary_index, iso_budget, &table.iso_exhausted[i],
                        row);
        table.fresh[i] = 1;
        table.lcov[i] = label_index.PatternLabelCoverage(g);
        table.cog[i] = CognitiveLoad(g);
        if (div_memo_ok) {
          double running = FoldDiversity(
              g, selected_graphs, 0, std::numeric_limits<double>::max(), ged,
              options.approximate_diversity);
          table.div_min[i] = running;
          table.div_folded[i] = static_cast<uint32_t>(selected_graphs.size());
          table.div[i] = selected_graphs.empty() ? 1.0 : running;
        }
      }
      if (!div_memo_ok) {
        table.div[i] = options.approximate_diversity
                           ? PatternSetDiversityApprox(g, selected_graphs)
                           : PatternSetDiversity(g, selected_graphs, ged);
      }
      // ccov rescored against the current decayed weights, summing in
      // ascending cluster order (the same fold order as the scalar loop).
      double ccov = 0.0;
      for (size_t w = 0; w < table.coverage_words(); ++w) {
        uint64_t bits = row[w];
        while (bits != 0) {
          size_t c = (w << 6) + static_cast<size_t>(__builtin_ctzll(bits));
          bits &= bits - 1;
          ccov += cw.Get(c);
        }
      }
      table.ccov[i] = ccov;
      table.score[i] =
          table.cog[i] > 0.0
              ? table.ccov[i] * table.lcov[i] * table.div[i] / table.cog[i]
              : 0.0;
      table.source_csg[i] = static_cast<uint32_t>(candidates[i].source_csg);
      table.valid[i] = 1;
    });
    bool stopped_scoring = stop_scoring.load(std::memory_order_relaxed);
    if (stopped_scoring) result.complete = false;

    // Ordered reduce: tallies, cache retention and memo write-backs (with
    // their budget charges, in the same candidate order the sequential code
    // charged), and the argmax.
    int best_index = -1;
    for (size_t i = 0; i < table.size(); ++i) {
      result.iso_budget_exhausted += table.iso_exhausted[i];
      if (!table.valid[i]) continue;
      if (table.fresh[i]) {
        SelectorClassCache::Entry entry;
        entry.rep = candidates[i].graph;
        entry.fingerprint = candidates[i].fp;
        entry.covered.assign(table.CoverageRow(i),
                             table.CoverageRow(i) + table.coverage_words());
        entry.lcov = table.lcov[i];
        entry.cog = table.cog[i];
        if (div_memo_ok) {
          entry.div_min = table.div_min[i];
          entry.div_folded = table.div_folded[i];
        }
        size_t bytes = SelectorClassCache::ApproxEntryBytes(entry);
        if (ctx.memory().TryCharge(bytes, "selector.cache")) {
          cache_charged_bytes += bytes;
          cache.Insert(std::move(entry));
          obs::SetGaugeMax(obs::Gauge::kSelectorCachePeak, cache.entries());
        }
      } else if (table.cache_slot[i] >= 0 && div_memo_ok) {
        SelectorClassCache::Entry& entry =
            cache.At(candidates[i].fp, table.cache_slot[i]);
        entry.div_min = table.div_min[i];
        entry.div_folded = table.div_folded[i];
      }
      if (best_index < 0 || table.score[i] > table.score[best_index]) {
        best_index = static_cast<int>(i);
      }
    }
    if (best_index < 0) break;

    // Record the winner and decay weights (Algorithm 4, lines 19-21).
    SelectedPattern best;
    best.graph = candidates[best_index].graph;
    best.score = table.score[best_index];
    best.ccov = table.ccov[best_index];
    best.lcov = table.lcov[best_index];
    best.div = table.div[best_index];
    best.cog = table.cog[best_index];
    best.source_csg = table.source_csg[best_index];
    size_t size_slot = best.graph.NumEdges() - options.budget.eta_min;
    if (size_slot < selected_per_size.size()) ++selected_per_size[size_slot];
    const uint64_t* covered = table.CoverageRow(best_index);
    for (size_t w = 0; w < table.coverage_words(); ++w) {
      uint64_t bits = covered[w];
      while (bits != 0) {
        size_t c = (w << 6) + static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        cw.Decay(c, options.weight_decay);
      }
    }
    elw.DecayForPattern(best.graph, options.weight_decay);
    selected_fps.push_back(candidates[best_index].fp);
    selected_graphs.push_back(best.graph);
    result.patterns.push_back(std::move(best));
    if (hooks.on_pattern_selected) hooks.on_pattern_selected(CaptureState());
    if (!result.complete || stopped_scoring) break;
  }

  // Deadline degradation: top the panel up from frequent edges. Skipped on
  // natural termination (candidates ran dry), which is not a deadline event.
  if (!result.complete) {
    FillWithFallbackPatterns(db, options, selected_per_size, selected_graphs,
                             result);
  }
  return result;
}

}  // namespace catapult
