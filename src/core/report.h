#ifndef CATAPULT_CORE_REPORT_H_
#define CATAPULT_CORE_REPORT_H_

#include <iosfwd>
#include <string>

#include "src/core/catapult.h"
#include "src/graph/label_map.h"

namespace catapult {

// JSON export of a pipeline run: the selected patterns (vertices with label
// names, edges) with their selection diagnostics, plus clustering/CSG/
// selection phase statistics and the run's merged per-primitive metrics.
// Intended for GUI layers and notebooks that consume the miner's output
// without linking the library. Emitted via the shared obs::JsonWriter, so
// escaping matches every other artifact the system writes.
//
// Schema (stable; all keys always present):
// {
//   "database": {"graphs": N, "clusters": N},
//   "timings": {"clustering_s": x, "csg_s": x, "selection_s": x},
//   "metrics": {"enabled": b,
//               "counters": {"vf2.calls": n, ...},
//               "gauges": {"mem.peak_bytes": n, ...},
//               "histograms": {"vf2.nodes_per_call":
//                  {"count": n, "sum": n, "min": n, "max": n,
//                   "buckets": [...]}, ...}},
//   "dist": {"enabled": b, "processes": n, "shards": n,
//            "workers_spawned": n, "worker_deaths": n, "worker_hangs": n,
//            "shard_retries": n, "backoff_waits": n, "backoff_total_ms": x,
//            "quarantined_shards": n, "inprocess_fallbacks": n,
//            "artifacts_reused": n, "artifacts_rejected": n,
//            "heartbeats": n},
//   "patterns": [
//     {"id": i, "score": s, "ccov": c, "lcov": l, "div": d, "cog": g,
//      "vertices": [{"id": v, "label": "C"}, ...],
//      "edges": [{"u": a, "v": b}, ...]},
//     ...]
// }
// "metrics.enabled" is false — with all counters zero — when the run
// carried no MetricsRegistry (see RunContext::WithObservability).
void WriteSelectionReport(const CatapultResult& result, const LabelMap& labels,
                          std::ostream& out);

// Convenience: the report as a string.
std::string SelectionReportJson(const CatapultResult& result,
                                const LabelMap& labels);

}  // namespace catapult

#endif  // CATAPULT_CORE_REPORT_H_
