#ifndef CATAPULT_CORE_REPORT_H_
#define CATAPULT_CORE_REPORT_H_

#include <iosfwd>
#include <string>

#include "src/core/catapult.h"
#include "src/graph/label_map.h"

namespace catapult {

// JSON export of a pipeline run: the selected patterns (vertices with label
// names, edges) with their selection diagnostics, plus clustering/CSG/
// selection phase statistics. Intended for GUI layers and notebooks that
// consume the miner's output without linking the library.
//
// Schema (stable; all keys always present):
// {
//   "database": {"graphs": N, "clusters": N},
//   "timings": {"clustering_s": x, "csg_s": x, "selection_s": x},
//   "patterns": [
//     {"id": i, "score": s, "ccov": c, "lcov": l, "div": d, "cog": g,
//      "vertices": [{"id": v, "label": "C"}, ...],
//      "edges": [{"u": a, "v": b}, ...]},
//     ...]
// }
void WriteSelectionReport(const CatapultResult& result, const LabelMap& labels,
                          std::ostream& out);

// Convenience: the report as a string.
std::string SelectionReportJson(const CatapultResult& result,
                                const LabelMap& labels);

}  // namespace catapult

#endif  // CATAPULT_CORE_REPORT_H_
