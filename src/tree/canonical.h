#ifndef CATAPULT_TREE_CANONICAL_H_
#define CATAPULT_TREE_CANONICAL_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace catapult {

// Center vertex/vertices of a free tree (1 or 2, by repeated leaf removal).
// `tree` must satisfy IsTree() and be non-empty.
std::vector<VertexId> TreeCenters(const Graph& tree);

// Canonical string of a labelled free tree (Section 4.1 / Figure 5).
//
// The tree is rooted at its center (for bicentric trees, both rootings are
// tried and the lexicographically smaller string wins), children are ordered
// bottom-up by their canonical subtree keys (the normalisation step of
// Figure 5), and the result is emitted level-by-level breadth-first in the
// paper's format: the root label, then one '$'-preceded family per vertex in
// BFS order listing "<edge-label>.<child-label>" entries separated by ',',
// and a final '#'. Unlike the paper's pretty-printed example, empty families
// of leaves are emitted too (a bare '$'): dropping them would make the
// encoding ambiguous between different parents. Numeric labels are rendered
// in decimal; the separators make the encoding injective.
//
// Two labelled free trees are isomorphic iff their canonical strings are
// equal.
std::string CanonicalTreeString(const Graph& tree);

// Length of the longest common subsequence of `a` and `b`. O(|a| * |b|).
size_t LongestCommonSubsequence(const std::string& a, const std::string& b);

// Subtree similarity sigma(i, j) = |lcs(ci, cj)| / max(|ci|, |cj|) over the
// canonical strings ci, cj (Section 4.1; the longest common subtree is
// approximated by the longest common subsequence of the canonical strings,
// which upper-bounds it and is exact for shared prefixes/suffixes of
// families). Returns 1 for two empty strings.
double SubtreeSimilarity(const std::string& canonical_a,
                         const std::string& canonical_b);

}  // namespace catapult

#endif  // CATAPULT_TREE_CANONICAL_H_
