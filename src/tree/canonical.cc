#include "src/tree/canonical.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/graph/algorithms.h"
#include "src/util/check.h"

namespace catapult {

namespace {

// Recursive canonical key of the subtree rooted at `v` with parent `parent`.
// Children are sorted by (edge label, child key); the key uniquely encodes
// the rooted labelled subtree.
std::string SubtreeKey(const Graph& tree, VertexId v, int parent) {
  struct Child {
    Label edge_label;
    std::string key;
  };
  std::vector<Child> children;
  for (const Graph::Neighbor& n : tree.Neighbors(v)) {
    if (static_cast<int>(n.to) == parent) continue;
    children.push_back(
        {n.edge_label, SubtreeKey(tree, n.to, static_cast<int>(v))});
  }
  std::sort(children.begin(), children.end(),
            [](const Child& a, const Child& b) {
              if (a.edge_label != b.edge_label) {
                return a.edge_label < b.edge_label;
              }
              return a.key < b.key;
            });
  std::ostringstream out;
  out << tree.VertexLabel(v) << "(";
  for (const Child& c : children) out << c.edge_label << ":" << c.key << ";";
  out << ")";
  return out.str();
}

// Children of each vertex under rooting at `root`, ordered canonically.
struct RootedView {
  std::vector<std::vector<VertexId>> children;  // ordered canonically
  std::vector<Label> child_edge_label;          // edge label to parent
};

RootedView BuildRootedView(const Graph& tree, VertexId root) {
  RootedView view;
  view.children.assign(tree.NumVertices(), {});
  view.child_edge_label.assign(tree.NumVertices(), 0);
  // BFS to establish parents.
  std::vector<int> parent(tree.NumVertices(), -2);
  std::deque<VertexId> frontier = {root};
  parent[root] = -1;
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    for (const Graph::Neighbor& n : tree.Neighbors(v)) {
      if (parent[n.to] == -2) {
        parent[n.to] = static_cast<int>(v);
        view.children[v].push_back(n.to);
        view.child_edge_label[n.to] = n.edge_label;
        frontier.push_back(n.to);
      }
    }
  }
  // Canonical child ordering via recursive keys.
  for (VertexId v = 0; v < tree.NumVertices(); ++v) {
    std::stable_sort(view.children[v].begin(), view.children[v].end(),
                     [&](VertexId a, VertexId b) {
                       if (view.child_edge_label[a] !=
                           view.child_edge_label[b]) {
                         return view.child_edge_label[a] <
                                view.child_edge_label[b];
                       }
                       return SubtreeKey(tree, a, static_cast<int>(v)) <
                              SubtreeKey(tree, b, static_cast<int>(v));
                     });
  }
  return view;
}

// Emits the breadth-first '$'-delimited canonical string for the rooting.
std::string EmitBfsString(const Graph& tree, VertexId root,
                          const RootedView& view) {
  std::ostringstream out;
  out << tree.VertexLabel(root);
  std::deque<VertexId> frontier = {root};
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    if (tree.NumVertices() > 1) {
      out << "$";
      bool first = true;
      for (VertexId c : view.children[v]) {
        if (!first) out << ",";
        first = false;
        out << view.child_edge_label[c] << "." << tree.VertexLabel(c);
        frontier.push_back(c);
      }
    }
  }
  out << "#";
  return out.str();
}

}  // namespace

std::vector<VertexId> TreeCenters(const Graph& tree) {
  CATAPULT_CHECK(tree.NumVertices() > 0);
  CATAPULT_CHECK_MSG(IsTree(tree), "TreeCenters requires a tree");
  size_t n = tree.NumVertices();
  if (n == 1) return {0};
  std::vector<size_t> degree(n);
  std::vector<bool> removed(n, false);
  std::deque<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = tree.Degree(v);
    if (degree[v] <= 1) leaves.push_back(v);
  }
  size_t remaining = n;
  while (remaining > 2) {
    std::deque<VertexId> next;
    for (VertexId leaf : leaves) {
      removed[leaf] = true;
      --remaining;
      for (const Graph::Neighbor& nb : tree.Neighbors(leaf)) {
        if (!removed[nb.to] && --degree[nb.to] == 1) {
          next.push_back(nb.to);
        }
      }
    }
    leaves = std::move(next);
  }
  std::vector<VertexId> centers;
  for (VertexId v = 0; v < n; ++v) {
    if (!removed[v]) centers.push_back(v);
  }
  return centers;
}

std::string CanonicalTreeString(const Graph& tree) {
  std::vector<VertexId> centers = TreeCenters(tree);
  std::string best;
  for (VertexId root : centers) {
    RootedView view = BuildRootedView(tree, root);
    std::string candidate = EmitBfsString(tree, root, view);
    if (best.empty() || candidate < best) best = candidate;
  }
  return best;
}

size_t LongestCommonSubsequence(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling single-row DP.
  std::vector<size_t> row(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = 0;  // row[j-1] from the previous iteration of i
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? diag + 1 : std::max(row[j], row[j - 1]);
      diag = up;
    }
  }
  return row[b.size()];
}

double SubtreeSimilarity(const std::string& canonical_a,
                         const std::string& canonical_b) {
  size_t longer = std::max(canonical_a.size(), canonical_b.size());
  if (longer == 0) return 1.0;
  return static_cast<double>(
             LongestCommonSubsequence(canonical_a, canonical_b)) /
         static_cast<double>(longer);
}

}  // namespace catapult
