#ifndef CATAPULT_CLUSTER_FEATURE_VECTORS_H_
#define CATAPULT_CLUSTER_FEATURE_VECTORS_H_

#include <vector>

#include "src/graph/graph_database.h"
#include "src/mining/subtree_miner.h"
#include "src/util/bitset.h"
#include "src/util/deadline.h"

namespace catapult {

// Builds the |Tsel|-dimensional binary feature vector of every graph in
// `graph_ids`: bit j of vector i is set iff graph graph_ids[i] contains
// subtree j (Algorithm 2, lines 3-10). Containment is tested by subgraph
// isomorphism; the subtrees' own support bitsets cannot be reused here
// because they may have been mined on a different (sampled) id set.
//
// Per-graph containment tests are independent and run on the context's
// thread pool; the result is identical at every thread count.
std::vector<DynamicBitset> BuildFeatureVectors(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const std::vector<FrequentSubtree>& subtrees, const RunContext& ctx);
std::vector<DynamicBitset> BuildFeatureVectors(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const std::vector<FrequentSubtree>& subtrees);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_FEATURE_VECTORS_H_
