#include "src/cluster/pipeline.h"

#include <algorithm>
#include <optional>

#include "src/cluster/agglomerative.h"
#include "src/cluster/feature_vectors.h"
#include "src/cluster/kmeans.h"
#include "src/obs/clock.h"
#include "src/obs/trace.h"
#include "src/util/mem_budget.h"

namespace catapult {

ClusteringResult SmallGraphClustering(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SmallGraphClusteringOptions& options, Rng& rng) {
  return SmallGraphClustering(db, graph_ids, options, rng,
                              RunContext::NoLimit());
}

ClusteringResult CoarseClusteringStage(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SmallGraphClusteringOptions& options, Rng& rng,
    const RunContext& ctx) {
  ClusteringResult result;
  if (graph_ids.empty()) return result;

  std::vector<std::vector<GraphId>> coarse_clusters;

  if (options.mode == ClusteringMode::kFineOnly) {
    // Single seed cluster containing everything; fine clustering does all
    // of the work.
    coarse_clusters.push_back(graph_ids);
  } else {
    // --- Coarse clustering (Algorithm 2) ---
    // Mining gets at most half of the remaining time so it cannot starve
    // the clustering stages proper.
    WallTimer mining_timer;
    std::optional<obs::Span> stage_span;
    stage_span.emplace(ctx.tracer(), "clustering.mining");
    std::vector<FrequentSubtree> all_subtrees = MineFrequentSubtrees(
        db, graph_ids, options.miner, ctx.Slice(0.5),
        &result.mining_complete);
    // Refine the feature set by facility-location greedy selection.
    std::vector<size_t> selected =
        SelectRepresentativeSubtrees(all_subtrees, options.facility);
    for (size_t idx : selected) {
      result.features.push_back(all_subtrees[idx]);
    }
    stage_span.reset();
    result.mining_seconds = mining_timer.ElapsedSeconds();

    WallTimer coarse_timer;
    stage_span.emplace(ctx.tracer(), "clustering.coarse");
    // The feature matrix (|graph_ids| x |features| bitsets) is the coarse
    // stage's dominant allocation; charge it before materialising. A refused
    // charge sheds the stage — one cluster, best-effort — instead of
    // allocating past the hard limit.
    ScopedMemoryCharge feature_charge(
        ctx.memory(),
        graph_ids.size() * ApproxBitsetBytes(result.features.size()),
        "mem.features");
    if (ctx.StopRequested("cluster.coarse") || !feature_charge.ok()) {
      // Expired (or out of memory) before the coarse stage: everything lands
      // in one cluster (fine clustering, if it still gets time, can split it
      // further).
      result.coarse_complete = false;
      coarse_clusters.push_back(graph_ids);
    } else if (result.features.empty()) {
      // No frequent subtrees (tiny/degenerate input): one cluster.
      coarse_clusters.push_back(graph_ids);
    } else {
      std::vector<DynamicBitset> features =
          BuildFeatureVectors(db, graph_ids, result.features, ctx);
      size_t target_k =
          options.explicit_k != 0
              ? options.explicit_k
              : std::max<size_t>(1,
                                 graph_ids.size() / options.max_cluster_size);
      std::vector<size_t> assignment;
      if (options.coarse_algorithm == CoarseAlgorithm::kAgglomerative) {
        AgglomerativeOptions agg;
        agg.target_clusters = target_k;
        assignment = AgglomerativeCluster(features, agg).assignment;
      } else {
        KMeansOptions kmeans_options;
        kmeans_options.k = target_k;
        kmeans_options.max_iterations = options.kmeans_max_iterations;
        assignment =
            KMeansCluster(features, kmeans_options, rng, ctx).assignment;
      }
      size_t k = 0;
      for (size_t a : assignment) k = std::max(k, a + 1);
      coarse_clusters.assign(k, {});
      for (size_t i = 0; i < graph_ids.size(); ++i) {
        coarse_clusters[assignment[i]].push_back(graph_ids[i]);
      }
      coarse_clusters.erase(
          std::remove_if(coarse_clusters.begin(), coarse_clusters.end(),
                         [](const auto& c) { return c.empty(); }),
          coarse_clusters.end());
    }
    stage_span.reset();
    result.coarse_seconds = coarse_timer.ElapsedSeconds();
  }

  result.clusters = std::move(coarse_clusters);
  return result;
}

void FineClusteringStage(const GraphDatabase& db,
                         const SmallGraphClusteringOptions& options,
                         ClusteringResult* result, Rng& rng,
                         const RunContext& ctx) {
  // --- Fine clustering (Algorithm 3) ---
  WallTimer fine_timer;
  obs::Span fine_span(ctx.tracer(), "clustering.fine");
  if (ctx.memory().SoftExceeded()) {
    // Soft-limit pressure: fine splitting is optional refinement (its MCS
    // working sets grow quadratically in cluster size), so shed it and keep
    // the coarse partition — the degradation ladder's coarse-only rung.
    // Shedding happens before any stream is split, so the parent stream's
    // position stays a function of the pressure decision alone.
    result->fine_complete = false;
    result->fine_seconds = fine_timer.ElapsedSeconds();
    return;
  }
  FineClusteringOptions fine;
  fine.max_cluster_size = options.max_cluster_size;
  fine.mcs = options.fine_mcs;
  result->clusters =
      FineClusterPerCluster(db, std::move(result->clusters), fine, rng, ctx,
                            &result->fine_complete);
  result->fine_seconds = fine_timer.ElapsedSeconds();
}

ClusteringResult SmallGraphClustering(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SmallGraphClusteringOptions& options, Rng& rng,
    const RunContext& ctx) {
  ClusteringResult result =
      CoarseClusteringStage(db, graph_ids, options, rng, ctx);
  if (graph_ids.empty() || options.mode == ClusteringMode::kCoarseOnly) {
    return result;
  }
  FineClusteringStage(db, options, &result, rng, ctx);
  return result;
}

ClusteringResult SmallGraphClustering(
    const GraphDatabase& db, const SmallGraphClusteringOptions& options,
    Rng& rng) {
  return SmallGraphClustering(db, options, rng, RunContext::NoLimit());
}

ClusteringResult SmallGraphClustering(
    const GraphDatabase& db, const SmallGraphClusteringOptions& options,
    Rng& rng, const RunContext& ctx) {
  std::vector<GraphId> all(db.size());
  for (GraphId i = 0; i < db.size(); ++i) all[i] = i;
  return SmallGraphClustering(db, all, options, rng, ctx);
}

bool ValidateClusterAssignment(
    const std::vector<std::vector<GraphId>>& clusters, size_t universe,
    bool* is_partition) {
  std::vector<bool> seen(universe, false);
  size_t assigned = 0;
  for (const std::vector<GraphId>& cluster : clusters) {
    if (cluster.empty()) return false;
    for (GraphId id : cluster) {
      if (id >= universe || seen[id]) return false;
      seen[id] = true;
      ++assigned;
    }
  }
  if (is_partition != nullptr) *is_partition = assigned == universe;
  return true;
}

}  // namespace catapult
