#include "src/cluster/feature_vectors.h"

#include "src/iso/vf2.h"
#include "src/util/thread_pool.h"

namespace catapult {

std::vector<DynamicBitset> BuildFeatureVectors(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const std::vector<FrequentSubtree>& subtrees, const RunContext& ctx) {
  // One slot per graph, filled independently (any thread, any order) and
  // returned in graph_ids order: output is identical at every thread count.
  std::vector<DynamicBitset> features(graph_ids.size());
  ParallelFor(ctx, graph_ids.size(), 1, [&](size_t i) {
    const Graph& g = db.graph(graph_ids[i]);
    DynamicBitset vec(subtrees.size());
    for (size_t j = 0; j < subtrees.size(); ++j) {
      if (ContainsSubgraph(subtrees[j].tree, g)) vec.Set(j);
    }
    features[i] = std::move(vec);
  });
  return features;
}

std::vector<DynamicBitset> BuildFeatureVectors(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const std::vector<FrequentSubtree>& subtrees) {
  return BuildFeatureVectors(db, graph_ids, subtrees, RunContext::NoLimit());
}

}  // namespace catapult
