#include "src/cluster/feature_vectors.h"

#include "src/iso/vf2.h"

namespace catapult {

std::vector<DynamicBitset> BuildFeatureVectors(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const std::vector<FrequentSubtree>& subtrees) {
  std::vector<DynamicBitset> features;
  features.reserve(graph_ids.size());
  for (GraphId id : graph_ids) {
    const Graph& g = db.graph(id);
    DynamicBitset vec(subtrees.size());
    for (size_t j = 0; j < subtrees.size(); ++j) {
      if (ContainsSubgraph(subtrees[j].tree, g)) vec.Set(j);
    }
    features.push_back(std::move(vec));
  }
  return features;
}

}  // namespace catapult
