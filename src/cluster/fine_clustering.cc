#include "src/cluster/fine_clustering.h"

#include <algorithm>
#include <deque>

#include "src/util/check.h"

namespace catapult {

std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng) {
  return FineCluster(db, std::move(clusters), options, rng,
                     RunContext::NoLimit());
}

std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete) {
  CATAPULT_CHECK(options.max_cluster_size >= 2);
  if (complete != nullptr) *complete = true;
  std::vector<std::vector<GraphId>> done;
  std::deque<std::vector<GraphId>> large;
  for (auto& cluster : clusters) {
    if (cluster.size() > options.max_cluster_size) {
      large.push_back(std::move(cluster));
    } else if (!cluster.empty()) {
      done.push_back(std::move(cluster));
    }
  }

  while (!large.empty()) {
    // On expiry, hand the still-oversized clusters back unsplit: the result
    // remains a partition, just coarser than requested (the degradation
    // ladder's "coarse-only" rung).
    if (ctx.StopRequested("cluster.fine.split")) {
      if (complete != nullptr) *complete = false;
      for (auto& cluster : large) done.push_back(std::move(cluster));
      large.clear();
      break;
    }
    std::vector<GraphId> cluster = std::move(large.front());
    large.pop_front();

    // One split costs ~2 MCS calls per member; keep each call affordable
    // within the remaining time (unlimited contexts leave budgets as
    // configured).
    McsOptions mcs = options.mcs;
    mcs.node_budget = ctx.TightenNodeBudget(mcs.node_budget);

    // Seed1: random member. Seed2: member least similar to Seed1.
    size_t seed1_pos = rng.UniformInt(cluster.size());
    GraphId seed1 = cluster[seed1_pos];
    std::vector<double> similarity(cluster.size(), 0.0);
    double min_sim = 2.0;
    size_t seed2_pos = seed1_pos;
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (i == seed1_pos) continue;
      similarity[i] =
          McsSimilarity(db.graph(cluster[i]), db.graph(seed1), mcs);
      if (similarity[i] < min_sim) {
        min_sim = similarity[i];
        seed2_pos = i;
      }
    }
    GraphId seed2 = cluster[seed2_pos];

    std::vector<GraphId> first = {seed1};
    std::vector<GraphId> second = {seed2};
    for (size_t i = 0; i < cluster.size(); ++i) {
      if (i == seed1_pos || i == seed2_pos) continue;
      double to_seed2 =
          McsSimilarity(db.graph(cluster[i]), db.graph(seed2), mcs);
      if (similarity[i] > to_seed2) {
        first.push_back(cluster[i]);
      } else {
        second.push_back(cluster[i]);
      }
    }

    for (auto* part : {&first, &second}) {
      if (part->size() > options.max_cluster_size) {
        // A split that makes no progress (everything on one side) cannot
        // recurse forever: the other side always keeps its seed, so each
        // round strictly shrinks the larger part... unless the whole
        // cluster collapsed onto one seed. Guard by forcing a balanced cut.
        if (part->size() == cluster.size() - 1) {
          // Degenerate: move half to `done` in arbitrary (id) order.
          std::sort(part->begin(), part->end());
          size_t half = part->size() / 2;
          std::vector<GraphId> a(part->begin(), part->begin() + half);
          std::vector<GraphId> b(part->begin() + half, part->end());
          for (auto* piece : {&a, &b}) {
            if (piece->size() > options.max_cluster_size) {
              large.push_back(std::move(*piece));
            } else {
              done.push_back(std::move(*piece));
            }
          }
          continue;
        }
        large.push_back(std::move(*part));
      } else {
        done.push_back(std::move(*part));
      }
    }
  }
  return done;
}

}  // namespace catapult
