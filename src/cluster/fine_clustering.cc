#include "src/cluster/fine_clustering.h"

#include <algorithm>
#include <deque>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace catapult {

std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng) {
  return FineCluster(db, std::move(clusters), options, rng,
                     RunContext::NoLimit());
}

std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete) {
  CATAPULT_CHECK(options.max_cluster_size >= 2);
  if (complete != nullptr) *complete = true;
  std::vector<std::vector<GraphId>> done;
  std::deque<std::vector<GraphId>> large;
  for (auto& cluster : clusters) {
    if (cluster.size() > options.max_cluster_size) {
      large.push_back(std::move(cluster));
    } else if (!cluster.empty()) {
      done.push_back(std::move(cluster));
    }
  }

  // The sequential algorithm popped one oversized cluster at a time off a
  // FIFO queue; since each split only *appends* its oversized parts, FIFO
  // order is exactly level order. Processing the queue in whole rounds
  // therefore preserves the original stop-poll sequence, rng draw sequence,
  // and output order bit-for-bit, while the splits within a round — each an
  // independent batch of MCS calls over disjoint clusters — run on the
  // context's thread pool. All rng draws and all routing of the resulting
  // parts stay on the calling thread, in queue order.
  while (!large.empty()) {
    obs::Count(obs::Counter::kFineSplitRounds);
    std::vector<std::vector<GraphId>> round;
    round.reserve(large.size());
    while (!large.empty()) {
      round.push_back(std::move(large.front()));
      large.pop_front();
    }

    // Poll + draw per cluster, in order, exactly as the sequential pop loop
    // did. On a stop request the remaining clusters of the round are handed
    // back unsplit: the result remains a partition, just coarser than
    // requested (the degradation ladder's "coarse-only" rung).
    bool stopped = false;
    size_t tasked = 0;                  // clusters of this round being split
    std::vector<size_t> seed1_pos(round.size(), 0);
    for (size_t c = 0; c < round.size(); ++c) {
      if (ctx.StopRequested("cluster.fine.split")) {
        if (complete != nullptr) *complete = false;
        stopped = true;
        break;
      }
      seed1_pos[c] = rng.UniformInt(round[c].size());
      tasked = c + 1;
    }

    // Split the tasked clusters. Each task reads only its own cluster and
    // writes only its own parts slot; parts are emitted in the same order
    // the sequential code appended them.
    std::vector<std::vector<std::vector<GraphId>>> parts(tasked);
    ParallelFor(ctx, tasked, 1, [&](size_t c) {
      const std::vector<GraphId>& cluster = round[c];

      // One split costs ~2 MCS calls per member; keep each call affordable
      // within the remaining time (unlimited contexts leave budgets as
      // configured).
      McsOptions mcs = options.mcs;
      mcs.node_budget = ctx.TightenNodeBudget(mcs.node_budget);

      // Seed1: random member (pre-drawn). Seed2: member least similar to
      // Seed1.
      GraphId seed1 = cluster[seed1_pos[c]];
      std::vector<double> similarity(cluster.size(), 0.0);
      double min_sim = 2.0;
      size_t seed2_pos = seed1_pos[c];
      for (size_t i = 0; i < cluster.size(); ++i) {
        if (i == seed1_pos[c]) continue;
        similarity[i] =
            McsSimilarity(db.graph(cluster[i]), db.graph(seed1), mcs);
        if (similarity[i] < min_sim) {
          min_sim = similarity[i];
          seed2_pos = i;
        }
      }
      GraphId seed2 = cluster[seed2_pos];

      std::vector<GraphId> first = {seed1};
      std::vector<GraphId> second = {seed2};
      for (size_t i = 0; i < cluster.size(); ++i) {
        if (i == seed1_pos[c] || i == seed2_pos) continue;
        double to_seed2 =
            McsSimilarity(db.graph(cluster[i]), db.graph(seed2), mcs);
        if (similarity[i] > to_seed2) {
          first.push_back(cluster[i]);
        } else {
          second.push_back(cluster[i]);
        }
      }

      for (auto* part : {&first, &second}) {
        if (part->size() == cluster.size() - 1 &&
            part->size() > options.max_cluster_size) {
          // A split that makes no progress (everything on one side) cannot
          // recurse forever: the other side always keeps its seed, so each
          // round strictly shrinks the larger part... unless the whole
          // cluster collapsed onto one seed. Guard by forcing a balanced
          // cut, in sorted (id) order.
          std::sort(part->begin(), part->end());
          size_t half = part->size() / 2;
          parts[c].emplace_back(part->begin(), part->begin() + half);
          parts[c].emplace_back(part->begin() + half, part->end());
        } else {
          parts[c].push_back(std::move(*part));
        }
      }
    });

    // Route the parts in task order: still-oversized parts go back on the
    // queue for the next round (or, once stopped, out unsplit — matching
    // the sequential dump of the whole queue at the stop poll).
    for (size_t c = 0; c < tasked; ++c) {
      for (auto& part : parts[c]) {
        if (!stopped && part.size() > options.max_cluster_size) {
          large.push_back(std::move(part));
        } else {
          done.push_back(std::move(part));
        }
      }
    }
    if (stopped) {
      for (size_t c = tasked; c < round.size(); ++c) {
        done.push_back(std::move(round[c]));
      }
      break;
    }
  }
  return done;
}

std::vector<RngState> SplitFineStreams(Rng& rng, size_t count) {
  std::vector<RngState> streams;
  streams.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    streams.push_back(rng.Split().SaveState());
  }
  return streams;
}

std::vector<std::vector<GraphId>> FineClusterOne(
    const GraphDatabase& db, std::vector<GraphId> cluster,
    const FineClusteringOptions& options, const RngState& stream,
    const RunContext& ctx, bool* complete) {
  Rng child(0);
  child.RestoreState(stream);
  std::vector<std::vector<GraphId>> one;
  one.push_back(std::move(cluster));
  // Inline (pool-less) context: FineClusterOne is itself the unit callers
  // parallelise over, so its internal rounds must not re-enter the pool.
  return FineCluster(db, std::move(one), options, child,
                     ctx.WithPool(nullptr), complete);
}

std::vector<std::vector<GraphId>> FineClusterPerCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete) {
  if (complete != nullptr) *complete = true;
  // One stream per input cluster, small ones included: the draw count must
  // be a function of the coarse partition alone (not of which clusters turn
  // out to need splitting) so the parent stream's position after this stage
  // is identical in-process and across any shard assignment.
  std::vector<RngState> streams = SplitFineStreams(rng, clusters.size());
  std::vector<std::vector<std::vector<GraphId>>> parts(clusters.size());
  std::vector<uint8_t> part_complete(clusters.size(), 1);
  ParallelFor(ctx, clusters.size(), 1, [&](size_t c) {
    if (clusters[c].empty()) return;
    bool ok = true;
    parts[c] = FineClusterOne(db, std::move(clusters[c]), options, streams[c],
                              ctx, &ok);
    part_complete[c] = ok ? 1 : 0;
  });
  std::vector<std::vector<GraphId>> done;
  for (size_t c = 0; c < parts.size(); ++c) {
    if (part_complete[c] == 0 && complete != nullptr) *complete = false;
    for (auto& part : parts[c]) done.push_back(std::move(part));
  }
  return done;
}

}  // namespace catapult
