#ifndef CATAPULT_CLUSTER_KMEANS_H_
#define CATAPULT_CLUSTER_KMEANS_H_

#include <cstddef>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

namespace catapult {

// Options for k-means over binary feature vectors (Algorithm 2, line 11).
struct KMeansOptions {
  size_t k = 8;
  size_t max_iterations = 50;
};

// Result of a k-means run.
struct KMeansResult {
  // assignment[i] is the cluster index of point i (in [0, k)).
  std::vector<size_t> assignment;
  // Within-cluster sum of squared distances at convergence.
  double inertia = 0.0;
  // Iterations actually executed.
  size_t iterations = 0;
};

// Lloyd's k-means with k-means++ seeding over binary vectors, using squared
// Euclidean distance (equal to Hamming distance between binary points and
// its natural extension to fractional centroids). Empty clusters are
// re-seeded with the point farthest from its centroid. Deterministic given
// `rng`.
//
// The distance evaluations of the seeding and assignment steps run on the
// context's thread pool; every seeding draw and every reduction (changed
// flag, centroid sums, inertia) is taken in point-index order on the calling
// thread, so the result is bit-identical at every thread count.
KMeansResult KMeansCluster(const std::vector<DynamicBitset>& points,
                           const KMeansOptions& options, Rng& rng,
                           const RunContext& ctx);
KMeansResult KMeansCluster(const std::vector<DynamicBitset>& points,
                           const KMeansOptions& options, Rng& rng);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_KMEANS_H_
