#include "src/cluster/facility_location.h"

#include <algorithm>

#include "src/tree/canonical.h"
#include "src/util/check.h"

namespace catapult {

std::vector<size_t> SelectRepresentativeSubtrees(
    const std::vector<FrequentSubtree>& subtrees,
    const FacilitySelectionOptions& options) {
  const size_t n = subtrees.size();
  std::vector<size_t> selected;
  if (n == 0) return selected;

  // Pairwise similarity matrix (symmetric; diagonal 1).
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    sim[i][i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      double s = SubtreeSimilarity(subtrees[i].canonical,
                                   subtrees[j].canonical);
      sim[i][j] = s;
      sim[j][i] = s;
    }
  }

  // Greedy submodular maximisation. coverage[i] = max similarity of i to any
  // selected facility so far.
  std::vector<double> coverage(n, 0.0);
  std::vector<bool> in_set(n, false);
  double first_gain = 0.0;
  while (options.max_selected == 0 || selected.size() < options.max_selected) {
    double best_gain = 0.0;
    size_t best = n;
    for (size_t j = 0; j < n; ++j) {
      if (in_set[j]) continue;
      double gain = 0.0;
      for (size_t i = 0; i < n; ++i) {
        gain += std::max(0.0, sim[i][j] - coverage[i]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = j;
      }
    }
    if (best == n) break;
    if (selected.empty()) {
      first_gain = best_gain;
    } else if (best_gain < options.min_relative_gain * first_gain) {
      break;
    }
    in_set[best] = true;
    selected.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      coverage[i] = std::max(coverage[i], sim[i][best]);
    }
  }
  return selected;
}

}  // namespace catapult
