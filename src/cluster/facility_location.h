#ifndef CATAPULT_CLUSTER_FACILITY_LOCATION_H_
#define CATAPULT_CLUSTER_FACILITY_LOCATION_H_

#include <cstddef>
#include <vector>

#include "src/mining/subtree_miner.h"

namespace catapult {

// Options for the frequent-subtree refinement step (Algorithm 2, line 2 and
// Appendix B): cast the subtree-selection problem as maximisation of the
// monotone submodular uncapacitated-facility-location objective
//   q(Tsel) = sum_{i in Tall} max_{j in Tsel} sigma_subtree(i, j)
// and solve greedily (1 - 1/e guarantee).
struct FacilitySelectionOptions {
  // Maximum number of selected subtrees (0 = unlimited).
  size_t max_selected = 50;

  // Stop when the marginal gain of the best remaining facility falls below
  // this fraction of the first (largest) gain.
  double min_relative_gain = 0.01;
};

// Returns indices into `subtrees` of the greedily selected representative
// set, in selection order. Pairwise similarities are computed from the
// canonical strings via SubtreeSimilarity.
std::vector<size_t> SelectRepresentativeSubtrees(
    const std::vector<FrequentSubtree>& subtrees,
    const FacilitySelectionOptions& options);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_FACILITY_LOCATION_H_
