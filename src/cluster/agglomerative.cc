#include "src/cluster/agglomerative.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace catapult {

AgglomerativeResult AgglomerativeCluster(
    const std::vector<DynamicBitset>& points,
    const AgglomerativeOptions& options) {
  AgglomerativeResult result;
  const size_t n = points.size();
  if (n == 0) return result;
  size_t target = std::max<size_t>(1, options.target_clusters);

  // Lance-Williams update for average linkage over a dense distance matrix.
  // Active clusters are tracked by size > 0.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = static_cast<double>(points[i].HammingDistance(points[j]));
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }
  std::vector<size_t> size(n, 1);
  std::vector<size_t> member_of(n);  // point -> current cluster id
  for (size_t i = 0; i < n; ++i) member_of[i] = i;
  size_t active = n;

  while (active > target) {
    // Closest active pair (ties: smallest indices).
    double best = std::numeric_limits<double>::max();
    size_t bi = 0;
    size_t bj = 0;
    bool found = false;
    for (size_t i = 0; i < n; ++i) {
      if (size[i] == 0) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (size[j] == 0) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          bi = i;
          bj = j;
          found = true;
        }
      }
    }
    if (!found) break;
    if (options.max_merge_distance > 0.0 &&
        best > options.max_merge_distance) {
      break;
    }
    // Merge bj into bi (average linkage).
    double wi = static_cast<double>(size[bi]);
    double wj = static_cast<double>(size[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (size[k] == 0 || k == bi || k == bj) continue;
      double merged = (wi * dist[bi][k] + wj * dist[bj][k]) / (wi + wj);
      dist[bi][k] = merged;
      dist[k][bi] = merged;
    }
    size[bi] += size[bj];
    size[bj] = 0;
    for (size_t p = 0; p < n; ++p) {
      if (member_of[p] == bj) member_of[p] = bi;
    }
    --active;
  }

  // Densify cluster ids.
  std::vector<int> dense(n, -1);
  size_t next = 0;
  result.assignment.resize(n);
  for (size_t p = 0; p < n; ++p) {
    size_t c = member_of[p];
    if (dense[c] < 0) dense[c] = static_cast<int>(next++);
    result.assignment[p] = static_cast<size_t>(dense[c]);
  }
  result.num_clusters = next;
  return result;
}

}  // namespace catapult
