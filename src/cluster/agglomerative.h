#ifndef CATAPULT_CLUSTER_AGGLOMERATIVE_H_
#define CATAPULT_CLUSTER_AGGLOMERATIVE_H_

#include <cstddef>
#include <vector>

#include "src/util/bitset.h"

namespace catapult {

// Options for average-linkage agglomerative clustering over binary feature
// vectors. The paper's remark in Section 4.1 notes that "the Catapult
// framework is orthogonal to the choice of a feature vector-based
// clustering approach as k-means can be replaced with an alternative
// clustering algorithm" - this is that alternative: deterministic (no
// seeding), hierarchy-based, at O(n^2 log n)-ish cost.
struct AgglomerativeOptions {
  // Stop merging when this many clusters remain (like k-means' k)...
  size_t target_clusters = 8;

  // ...or when the closest pair is farther apart than this average-linkage
  // Hamming distance (0 = ignore; merging continues to target_clusters).
  double max_merge_distance = 0.0;
};

// Result: assignment[i] is the cluster index (dense from 0) of point i.
struct AgglomerativeResult {
  std::vector<size_t> assignment;
  size_t num_clusters = 0;
};

// Average-linkage agglomerative clustering with Hamming distance. Fully
// deterministic: ties are broken by the smallest cluster indices.
AgglomerativeResult AgglomerativeCluster(
    const std::vector<DynamicBitset>& points,
    const AgglomerativeOptions& options);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_AGGLOMERATIVE_H_
