#include "src/cluster/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"

namespace catapult {

namespace {

// Squared Euclidean distance between a binary point and a real centroid.
double SquaredDistance(const DynamicBitset& point,
                       const std::vector<double>& centroid) {
  double total = 0.0;
  for (size_t d = 0; d < centroid.size(); ++d) {
    double diff = (point.Test(d) ? 1.0 : 0.0) - centroid[d];
    total += diff * diff;
  }
  return total;
}

// Squared Euclidean distance between two binary points (= Hamming).
double SquaredDistance(const DynamicBitset& a, const DynamicBitset& b) {
  return static_cast<double>(a.HammingDistance(b));
}

}  // namespace

KMeansResult KMeansCluster(const std::vector<DynamicBitset>& points,
                           const KMeansOptions& options, Rng& rng,
                           const RunContext& ctx) {
  // Distance evaluations (per point, read-only inputs, own output slot)
  // parallelise; every rng draw and every order-sensitive reduction stays
  // on the calling thread in index order.
  constexpr size_t kGrain = 64;  // points per claimed chunk: bodies are cheap
  KMeansResult result;
  const size_t n = points.size();
  if (n == 0) return result;
  const size_t dims = points[0].size();
  const size_t k = std::min(options.k == 0 ? size_t{1} : options.k, n);

  // k-means++ seeding.
  std::vector<size_t> seeds;
  seeds.push_back(rng.UniformInt(n));
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  while (seeds.size() < k) {
    ParallelFor(ctx, n, kGrain, [&](size_t i) {
      min_dist[i] =
          std::min(min_dist[i], SquaredDistance(points[i],
                                                points[seeds.back()]));
    });
    double total = 0.0;
    for (double d : min_dist) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with seeds; pick uniformly.
      seeds.push_back(rng.UniformInt(n));
      continue;
    }
    seeds.push_back(rng.WeightedIndex(min_dist));
  }

  std::vector<std::vector<double>> centroids(
      k, std::vector<double>(dims, 0.0));
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d < dims; ++d) {
      centroids[c][d] = points[seeds[c]].Test(d) ? 1.0 : 0.0;
    }
  }

  result.assignment.assign(n, 0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    obs::Count(obs::Counter::kKmeansIterations);
    // Assign. Each point's nearest centroid depends only on that point, so
    // the O(n·k·d) scan parallelises; `changed` is a monotone flag, order
    // of the stores is irrelevant.
    std::atomic<bool> changed{false};
    ParallelFor(ctx, n, kGrain, [&](size_t i) {
      double best = std::numeric_limits<double>::max();
      size_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        obs::Count(obs::Counter::kKmeansReassignments);
        changed.store(true, std::memory_order_relaxed);
      }
    });
    if (!changed.load(std::memory_order_relaxed) && iter > 0) break;

    // Update.
    std::vector<size_t> counts(k, 0);
    for (auto& centroid : centroids) {
      std::fill(centroid.begin(), centroid.end(), 0.0);
    }
    for (size_t i = 0; i < n; ++i) {
      size_t c = result.assignment[i];
      ++counts[c];
      for (size_t idx : points[i].ToIndices()) centroids[c][idx] += 1.0;
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its
        // centroid (a standard Lloyd repair step).
        double worst = -1.0;
        size_t worst_i = 0;
        for (size_t i = 0; i < n; ++i) {
          double d =
              SquaredDistance(points[i], centroids[result.assignment[i]]);
          if (d > worst) {
            worst = d;
            worst_i = i;
          }
        }
        for (size_t d = 0; d < dims; ++d) {
          centroids[c][d] = points[worst_i].Test(d) ? 1.0 : 0.0;
        }
        result.assignment[worst_i] = c;
        continue;
      }
      for (size_t d = 0; d < dims; ++d) {
        centroids[c][d] /= static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(points[i], centroids[result.assignment[i]]);
  }
  return result;
}

KMeansResult KMeansCluster(const std::vector<DynamicBitset>& points,
                           const KMeansOptions& options, Rng& rng) {
  return KMeansCluster(points, options, rng, RunContext::NoLimit());
}

}  // namespace catapult
