#ifndef CATAPULT_CLUSTER_FINE_CLUSTERING_H_
#define CATAPULT_CLUSTER_FINE_CLUSTERING_H_

#include <vector>

#include "src/graph/graph_database.h"
#include "src/iso/mcs.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

namespace catapult {

// Options for fine clustering (Algorithm 3): recursive 2-way splitting of
// clusters larger than `max_cluster_size`, guided by MCCS (or MCS)
// similarity to two seed graphs.
struct FineClusteringOptions {
  // Clusters at or below this size are left alone (the paper's N; default
  // from Section 6.1).
  size_t max_cluster_size = 20;

  // MCS/MCCS search configuration (connected=true gives the paper's default
  // mccs variant; set connected=false for the mcsFC/mcsH ablation).
  McsOptions mcs;
};

// Splits every cluster in `clusters` (vectors of graph ids into `db`) that
// exceeds options.max_cluster_size, per Algorithm 3: Seed1 is random, Seed2
// is the graph least similar to Seed1, every other graph joins the seed it
// is more similar to; oversized results are re-queued. Returns the final
// cluster list. Deterministic given `rng`.
std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng);

// Deadline-aware variant: polls `ctx` before each split (failpoint site
// "cluster.fine.split") and tightens the per-pair MCS node budget to the
// remaining time. On expiry the still-oversized clusters are returned
// unsplit (graceful degradation to the coarse partition) and `complete`
// (optional) is set to false. The result is always a partition of the input
// ids.
std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete = nullptr);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_FINE_CLUSTERING_H_
