#ifndef CATAPULT_CLUSTER_FINE_CLUSTERING_H_
#define CATAPULT_CLUSTER_FINE_CLUSTERING_H_

#include <vector>

#include "src/graph/graph_database.h"
#include "src/iso/mcs.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

namespace catapult {

// Options for fine clustering (Algorithm 3): recursive 2-way splitting of
// clusters larger than `max_cluster_size`, guided by MCCS (or MCS)
// similarity to two seed graphs.
struct FineClusteringOptions {
  // Clusters at or below this size are left alone (the paper's N; default
  // from Section 6.1).
  size_t max_cluster_size = 20;

  // MCS/MCCS search configuration (connected=true gives the paper's default
  // mccs variant; set connected=false for the mcsFC/mcsH ablation).
  McsOptions mcs;
};

// Splits every cluster in `clusters` (vectors of graph ids into `db`) that
// exceeds options.max_cluster_size, per Algorithm 3: Seed1 is random, Seed2
// is the graph least similar to Seed1, every other graph joins the seed it
// is more similar to; oversized results are re-queued. Returns the final
// cluster list. Deterministic given `rng`.
std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng);

// Deadline-aware variant: polls `ctx` before each split (failpoint site
// "cluster.fine.split") and tightens the per-pair MCS node budget to the
// remaining time. On expiry the still-oversized clusters are returned
// unsplit (graceful degradation to the coarse partition) and `complete`
// (optional) is set to false. The result is always a partition of the input
// ids.
std::vector<std::vector<GraphId>> FineCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete = nullptr);

// --- Per-cluster decomposition ---------------------------------------------
//
// The sharded executor (src/dist/) partitions the coarse clusters across
// worker processes, so each coarse cluster's fine splitting must be an
// independent unit of work: it consumes a private pre-split rng stream and
// nothing else. The in-process pipeline uses the same decomposition (one
// child stream per coarse cluster, drawn from the parent in cluster order,
// results concatenated in cluster order), which is what makes a P-process
// run bit-identical to the 1-process run — both sides compute exactly
// FineClusterOne(cluster[i], stream[i]) for every i.

// Pre-splits one child stream per coarse cluster: consumes exactly `count`
// draws from `rng`, in order. streams[i] seeds the fine splitting of
// cluster i regardless of which process or thread executes it.
std::vector<RngState> SplitFineStreams(Rng& rng, size_t count);

// Fine clustering of one coarse cluster under its pre-split stream. Returns
// a partition of `cluster` (clusters at or below max_cluster_size where the
// deadline allowed). `complete` reports whether every oversized part was
// split. Runs inline — no pool use — so callers may invoke it from inside
// their own parallel regions.
std::vector<std::vector<GraphId>> FineClusterOne(
    const GraphDatabase& db, std::vector<GraphId> cluster,
    const FineClusteringOptions& options, const RngState& stream,
    const RunContext& ctx, bool* complete = nullptr);

// Per-cluster fine clustering of a whole coarse partition: pre-splits the
// streams, runs FineClusterOne per cluster on the context's pool, and
// concatenates the results in cluster order (empty input clusters are
// dropped). `complete` is the conjunction of the per-cluster flags.
std::vector<std::vector<GraphId>> FineClusterPerCluster(
    const GraphDatabase& db, std::vector<std::vector<GraphId>> clusters,
    const FineClusteringOptions& options, Rng& rng, const RunContext& ctx,
    bool* complete = nullptr);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_FINE_CLUSTERING_H_
