#ifndef CATAPULT_CLUSTER_PIPELINE_H_
#define CATAPULT_CLUSTER_PIPELINE_H_

#include <vector>

#include "src/cluster/agglomerative.h"
#include "src/cluster/facility_location.h"
#include "src/cluster/fine_clustering.h"
#include "src/graph/graph_database.h"
#include "src/mining/subtree_miner.h"
#include "src/util/rng.h"

namespace catapult {

// Which stages of small graph clustering to run. The paper's Exp 1 ablates
// all five combinations (Figure 7).
enum class ClusteringMode {
  kCoarseOnly,   // CC: frequent-subtree features + k-means only
  kFineOnly,     // mccsFC / mcsFC: MCS-similarity splitting from one cluster
  kHybrid,       // mccsH / mcsH: coarse, then fine on oversized clusters
};

// Which feature-vector clustering algorithm drives the coarse phase. The
// paper uses k-means but notes the framework is orthogonal to this choice
// (Section 4.1 remark); average-linkage agglomerative clustering is the
// deterministic alternative.
enum class CoarseAlgorithm {
  kKMeans,
  kAgglomerative,
};

// Options for the end-to-end small graph clustering phase (Section 4.1).
struct SmallGraphClusteringOptions {
  ClusteringMode mode = ClusteringMode::kHybrid;
  CoarseAlgorithm coarse_algorithm = CoarseAlgorithm::kKMeans;

  // Maximum cluster size N; k for k-means is derived as |D| / N (Section
  // 6.1) unless overridden via explicit_k.
  size_t max_cluster_size = 20;
  size_t explicit_k = 0;  // 0 = derive from max_cluster_size

  SubtreeMinerOptions miner;
  FacilitySelectionOptions facility;
  McsOptions fine_mcs;  // connected=true -> mccs variants
  size_t kmeans_max_iterations = 50;
};

// Result of small graph clustering.
struct ClusteringResult {
  // Clusters as lists of graph ids (over the id space handed in).
  std::vector<std::vector<GraphId>> clusters;
  // The representative frequent subtrees used as features (empty for
  // kFineOnly).
  std::vector<FrequentSubtree> features;
  // Stage timings in seconds, for the Exp 1/2/6 harnesses.
  double mining_seconds = 0.0;
  double coarse_seconds = 0.0;
  double fine_seconds = 0.0;

  // Anytime diagnostics: false when the deadline/cancellation cut the stage
  // short and its output is a best-effort partial result. `clusters` is a
  // partition of the input ids in every case.
  bool mining_complete = true;
  bool coarse_complete = true;
  bool fine_complete = true;
  bool Complete() const {
    return mining_complete && coarse_complete && fine_complete;
  }
};

// The stages of SmallGraphClustering before fine splitting: mining +
// facility selection + coarse partitioning (kFineOnly skips both and seeds
// one all-graphs cluster). `result.clusters` holds the coarse partition;
// the fine_* fields are untouched. Exposed separately so the sharded
// executor (src/dist/) can run the coarse stage in the supervisor process
// and partition the fine stage across workers.
ClusteringResult CoarseClusteringStage(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SmallGraphClusteringOptions& options, Rng& rng,
    const RunContext& ctx);

// The fine stage over `result->clusters` (the coarse partition): under
// memory soft pressure the stage is shed (coarse partition kept,
// fine_complete=false); otherwise each coarse cluster is split under its
// own pre-split child stream (FineClusterPerCluster) so the output — and
// the parent stream's position — is identical for any thread count and any
// shard assignment.
void FineClusteringStage(const GraphDatabase& db,
                         const SmallGraphClusteringOptions& options,
                         ClusteringResult* result, Rng& rng,
                         const RunContext& ctx);

// Runs the small graph clustering phase over the graphs in `graph_ids`
// (typically all of `db`, or an eagerly sampled subset). Deterministic given
// `rng`.
ClusteringResult SmallGraphClustering(const GraphDatabase& db,
                                      const std::vector<GraphId>& graph_ids,
                                      const SmallGraphClusteringOptions& options,
                                      Rng& rng);

// Deadline-aware variant. Mining receives half of the remaining time so a
// pathological miner cannot starve the clustering stages; the coarse and
// fine stages then run against the full context. On expiry each stage
// degrades gracefully: mining keeps completed levels, coarse falls back to
// a single cluster, fine leaves oversized clusters unsplit (coarse-only
// clusters). With an unlimited context the result is identical to the
// overload above.
ClusteringResult SmallGraphClustering(const GraphDatabase& db,
                                      const std::vector<GraphId>& graph_ids,
                                      const SmallGraphClusteringOptions& options,
                                      Rng& rng, const RunContext& ctx);

// Convenience overload over the whole database.
ClusteringResult SmallGraphClustering(const GraphDatabase& db,
                                      const SmallGraphClusteringOptions& options,
                                      Rng& rng);

// Deadline-aware convenience overload over the whole database.
ClusteringResult SmallGraphClustering(const GraphDatabase& db,
                                      const SmallGraphClusteringOptions& options,
                                      Rng& rng, const RunContext& ctx);

// Structural validation of a cluster assignment over the id universe
// [0, universe): every cluster non-empty, every id in range, and no id in
// more than one cluster. Lazy sampling may drop ids, so a valid assignment
// need not cover the universe; `is_partition` (optional) reports whether it
// does. Used by the checkpoint store to reject decoded-but-nonsensical
// cluster checkpoints instead of feeding them to the pipeline.
bool ValidateClusterAssignment(
    const std::vector<std::vector<GraphId>>& clusters, size_t universe,
    bool* is_partition = nullptr);

}  // namespace catapult

#endif  // CATAPULT_CLUSTER_PIPELINE_H_
