#include "src/dist/registry.h"

namespace catapult::dist {

WorkerRegistry::Admission WorkerRegistry::Join(uint64_t prev_worker_id,
                                               uint64_t prev_generation,
                                               Clock::time_point now) {
  Admission out;
  if (prev_worker_id >= 1 && prev_worker_id <= members_.size()) {
    Member& m = members_[prev_worker_id - 1];
    // The rejoining worker must name the generation it actually held;
    // anything else is a stale identity (e.g. leaked from an earlier run
    // against the same endpoint) and gets a fresh membership instead.
    if (prev_generation == m.generation) {
      if (m.alive) {
        // Rejoin before the fence fired (e.g. the worker noticed the dead
        // TCP connection first). Retire the old generation now so any
        // bytes still in flight on the old socket are fenced.
        m.died_at = now;
      }
      m.generation += 1;
      m.alive = true;
      out.worker_id = prev_worker_id;
      out.generation = m.generation;
      out.reconnect = true;
      out.down_ms = std::chrono::duration<double, std::milli>(now - m.died_at)
                        .count();
      if (out.down_ms < 0.0) out.down_ms = 0.0;
      return out;
    }
  }
  members_.push_back(Member{});
  out.worker_id = members_.size();
  out.generation = 1;
  return out;
}

bool WorkerRegistry::IsCurrent(uint64_t worker_id,
                               uint64_t generation) const {
  if (worker_id < 1 || worker_id > members_.size()) return false;
  const Member& m = members_[worker_id - 1];
  return m.alive && m.generation == generation;
}

void WorkerRegistry::MarkDead(uint64_t worker_id, Clock::time_point now) {
  if (worker_id < 1 || worker_id > members_.size()) return;
  Member& m = members_[worker_id - 1];
  if (m.alive) {
    m.alive = false;
    m.died_at = now;
  }
}

size_t WorkerRegistry::alive() const {
  size_t n = 0;
  for (const Member& m : members_) {
    if (m.alive) ++n;
  }
  return n;
}

}  // namespace catapult::dist
