#ifndef CATAPULT_DIST_SHARD_PLAN_H_
#define CATAPULT_DIST_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

namespace catapult::dist {

// The assignment of coarse clusters to worker shards. Shard boundaries
// never affect the final output (each coarse cluster is an independent unit
// of work with its own pre-split rng stream), so the plan only balances
// load. Every cluster index appears in exactly one shard; shards are
// non-empty; within a shard indices are ascending.
struct ShardPlan {
  std::vector<std::vector<size_t>> shards;

  size_t TotalClusters() const {
    size_t total = 0;
    for (const auto& s : shards) total += s.size();
    return total;
  }
};

// Deterministic longest-processing-time assignment of `cluster_sizes`
// (work weight per coarse cluster, typically member count) onto at most
// `num_shards` shards: clusters in descending size (stable by index) each
// go to the currently lightest shard, ties broken by lowest shard id.
// Fewer clusters than shards yields fewer (singleton) shards; empty input
// yields an empty plan.
ShardPlan PlanShards(const std::vector<size_t>& cluster_sizes,
                     size_t num_shards);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_SHARD_PLAN_H_
