#include "src/dist/wire.h"

#include <cstring>

#include "src/persist/record_io.h"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <unistd.h>
#endif

namespace catapult::dist {

namespace {

using persist::BinaryReader;
using persist::BinaryWriter;
using persist::Crc32;

void PutLeU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetLeU32(const char* data) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

bool ValidFrameType(uint32_t raw) {
  return raw >= static_cast<uint32_t>(FrameType::kHello) &&
         raw <= static_cast<uint32_t>(FrameType::kShutdown);
}

constexpr size_t kHeaderBytes = 16;

// Minimum encoded size of one SpanRecord: empty name (4-byte length), five
// u64 fields, a u32 tid and a u64 delta count. Used as a hostile-count cap.
constexpr size_t kMinSpanBytes = 4 + 5 * 8 + 4 + 8;

void PutSpan(BinaryWriter* w, const obs::SpanRecord& s) {
  w->PutString(s.name);
  w->PutU64(s.start_ns);
  w->PutU64(s.dur_ns);
  w->PutU64(s.span_id);
  w->PutU64(s.parent_id);
  w->PutU32(s.tid);
  w->PutU64(s.counter_deltas.size());
  for (const auto& [counter, delta] : s.counter_deltas) {
    w->PutU32(static_cast<uint32_t>(counter));
    w->PutU64(delta);
  }
}

bool GetSpan(BinaryReader* r, obs::SpanRecord* s) {
  s->name = r->GetString();
  s->start_ns = r->GetU64();
  s->dur_ns = r->GetU64();
  s->span_id = r->GetU64();
  s->parent_id = r->GetU64();
  s->tid = r->GetU32();
  const uint64_t delta_count = r->GetU64();
  if (!r->ok() || delta_count > obs::kNumCounters) return false;
  s->counter_deltas.clear();
  s->counter_deltas.reserve(delta_count);
  for (uint64_t i = 0; i < delta_count && r->ok(); ++i) {
    const uint32_t counter = r->GetU32();
    const uint64_t delta = r->GetU64();
    if (counter >= obs::kNumCounters) return false;
    s->counter_deltas.emplace_back(static_cast<obs::Counter>(counter), delta);
  }
  return r->ok();
}

}  // namespace

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  PutLeU32(&out, kFrameMagic);
  PutLeU32(&out, static_cast<uint32_t>(type));
  PutLeU32(&out, static_cast<uint32_t>(payload.size()));
  PutLeU32(&out, Crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

void FrameReader::Feed(const char* data, size_t size) {
  if (corrupt_) return;
  buffer_.append(data, size);
}

std::optional<Frame> FrameReader::Next() {
  if (corrupt_) return std::nullopt;
  if (buffer_.size() - offset_ < kHeaderBytes) return std::nullopt;
  const char* header = buffer_.data() + offset_;
  if (GetLeU32(header) != kFrameMagic) {
    corrupt_ = true;
    error_ = "bad frame magic";
    return std::nullopt;
  }
  uint32_t raw_type = GetLeU32(header + 4);
  if (!ValidFrameType(raw_type)) {
    corrupt_ = true;
    error_ = "unknown frame type";
    return std::nullopt;
  }
  uint32_t payload_size = GetLeU32(header + 8);
  if (payload_size > kMaxFramePayload) {
    corrupt_ = true;
    error_ = "frame payload too large";
    return std::nullopt;
  }
  if (buffer_.size() - offset_ < kHeaderBytes + payload_size) {
    return std::nullopt;  // incomplete; wait for more bytes
  }
  uint32_t expected_crc = GetLeU32(header + 12);
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(buffer_, offset_ + kHeaderBytes, payload_size);
  if (Crc32(frame.payload.data(), frame.payload.size()) != expected_crc) {
    corrupt_ = true;
    error_ = "frame checksum mismatch";
    return std::nullopt;
  }
  offset_ += kHeaderBytes + payload_size;
  // Compact once the consumed prefix dominates, so a long-lived reader does
  // not grow without bound.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  return frame;
}

std::string Encode(const HelloFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.attempt);
  w.PutU64(f.pid);
  return w.TakeBuffer();
}

std::string Encode(const HeartbeatFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.seq);
  w.PutU64(f.clusters_done);
  return w.TakeBuffer();
}

std::string Encode(const ClusterDoneFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.cluster_index);
  w.PutU8(f.reused ? 1 : 0);
  return w.TakeBuffer();
}

std::string Encode(const ShardDoneFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.clusters_done);
  w.PutU64(f.counters.size());
  for (uint64_t c : f.counters) w.PutU64(c);
  w.PutU64(f.trace_id);
  w.PutU64(f.spans.size());
  for (const obs::SpanRecord& s : f.spans) PutSpan(&w, s);
  return w.TakeBuffer();
}

std::string Encode(const ShardErrorFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutString(f.message);
  return w.TakeBuffer();
}

bool Decode(const std::string& payload, HelloFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->attempt = r.GetU64();
  f->pid = r.GetU64();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, HeartbeatFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->seq = r.GetU64();
  f->clusters_done = r.GetU64();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ClusterDoneFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->cluster_index = r.GetU64();
  f->reused = r.GetU8() != 0;
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ShardDoneFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->clusters_done = r.GetU64();
  uint64_t count = r.GetU64();
  if (!r.ok() || count > obs::kNumCounters) return false;
  f->counters.assign(count, 0);
  for (uint64_t i = 0; i < count; ++i) f->counters[i] = r.GetU64();
  f->trace_id = r.GetU64();
  const uint64_t span_count = r.GetU64();
  if (!r.ok() || span_count > payload.size() / kMinSpanBytes) return false;
  f->spans.clear();
  f->spans.reserve(span_count);
  for (uint64_t i = 0; i < span_count; ++i) {
    obs::SpanRecord span;
    if (!GetSpan(&r, &span)) return false;
    f->spans.push_back(std::move(span));
  }
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ShardErrorFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->message = r.GetString();
  return r.ok() && r.AtEnd();
}

std::string Encode(const JoinRequestFrame& f) {
  BinaryWriter w;
  w.PutU64(f.protocol);
  w.PutU64(f.fingerprint);
  w.PutString(f.shard_namespace);
  w.PutString(f.worker_name);
  w.PutU64(f.prev_worker_id);
  w.PutU64(f.prev_generation);
  w.PutU64(f.pid);
  return w.TakeBuffer();
}

std::string Encode(const JoinAcceptFrame& f) {
  BinaryWriter w;
  w.PutU64(f.worker_id);
  w.PutU64(f.generation);
  w.PutDouble(f.heartbeat_interval_ms);
  w.PutDouble(f.heartbeat_timeout_ms);
  return w.TakeBuffer();
}

std::string Encode(const JoinRejectFrame& f) {
  BinaryWriter w;
  w.PutU32(f.code);
  w.PutString(f.message);
  return w.TakeBuffer();
}

std::string Encode(const ShardAssignFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.attempt);
  w.PutU64(f.generation);
  w.PutU8(f.fine_enabled ? 1 : 0);
  w.PutU64(f.fine_max_cluster_size);
  w.PutU8(f.mcs_connected ? 1 : 0);
  w.PutU8(f.mcs_match_edge_labels ? 1 : 0);
  w.PutU64(f.mcs_node_budget);
  w.PutDouble(f.deadline_remaining_ms);
  w.PutU64(f.mem_soft_limit_bytes);
  w.PutU64(f.mem_hard_limit_bytes);
  w.PutU64(f.clusters.size());
  for (const ClusterWork& c : f.clusters) {
    w.PutU64(c.index);
    w.PutU64(c.members.size());
    for (GraphId id : c.members) w.PutU32(id);
    for (uint64_t word : c.stream.words) w.PutU64(word);
  }
  w.PutU64(f.trace_id);
  w.PutU64(f.parent_span_id);
  return w.TakeBuffer();
}

std::string Encode(const ClusterResultFrame& f) {
  BinaryWriter w;
  w.PutU64(f.shard);
  w.PutU64(f.generation);
  w.PutU64(f.cluster_index);
  w.PutString(f.payload);
  return w.TakeBuffer();
}

std::string Encode(const ShutdownFrame& f) {
  BinaryWriter w;
  w.PutU32(f.code);
  w.PutString(f.message);
  return w.TakeBuffer();
}

bool Decode(const std::string& payload, JoinRequestFrame* f) {
  BinaryReader r(payload);
  f->protocol = r.GetU64();
  f->fingerprint = r.GetU64();
  f->shard_namespace = r.GetString();
  f->worker_name = r.GetString();
  f->prev_worker_id = r.GetU64();
  f->prev_generation = r.GetU64();
  f->pid = r.GetU64();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, JoinAcceptFrame* f) {
  BinaryReader r(payload);
  f->worker_id = r.GetU64();
  f->generation = r.GetU64();
  f->heartbeat_interval_ms = r.GetDouble();
  f->heartbeat_timeout_ms = r.GetDouble();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, JoinRejectFrame* f) {
  BinaryReader r(payload);
  f->code = r.GetU32();
  f->message = r.GetString();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ShardAssignFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->attempt = r.GetU64();
  f->generation = r.GetU64();
  f->fine_enabled = r.GetU8() != 0;
  f->fine_max_cluster_size = r.GetU64();
  f->mcs_connected = r.GetU8() != 0;
  f->mcs_match_edge_labels = r.GetU8() != 0;
  f->mcs_node_budget = r.GetU64();
  f->deadline_remaining_ms = r.GetDouble();
  f->mem_soft_limit_bytes = r.GetU64();
  f->mem_hard_limit_bytes = r.GetU64();
  uint64_t cluster_count = r.GetU64();
  // Each cluster costs at least 48 payload bytes (index + count + stream),
  // so a count beyond payload/48 is corruption — reject before reserving.
  if (!r.ok() || cluster_count > payload.size() / 48) return false;
  f->clusters.clear();
  f->clusters.reserve(cluster_count);
  for (uint64_t i = 0; i < cluster_count && r.ok(); ++i) {
    ClusterWork work;
    work.index = r.GetU64();
    uint64_t member_count = r.GetU64();
    if (!r.ok() || member_count > payload.size() / 4) return false;
    work.members.reserve(member_count);
    for (uint64_t m = 0; m < member_count && r.ok(); ++m) {
      work.members.push_back(r.GetU32());
    }
    for (uint64_t& word : work.stream.words) word = r.GetU64();
    // A fine-enabled assignment must carry a usable stream for every
    // cluster: the all-zero state is xoshiro's absorbing fixed point.
    if (f->fine_enabled && !work.stream.Valid()) return false;
    f->clusters.push_back(std::move(work));
  }
  f->trace_id = r.GetU64();
  f->parent_span_id = r.GetU64();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ClusterResultFrame* f) {
  BinaryReader r(payload);
  f->shard = r.GetU64();
  f->generation = r.GetU64();
  f->cluster_index = r.GetU64();
  f->payload = r.GetString();
  return r.ok() && r.AtEnd();
}

bool Decode(const std::string& payload, ShutdownFrame* f) {
  BinaryReader r(payload);
  f->code = r.GetU32();
  f->message = r.GetString();
  return r.ok() && r.AtEnd();
}

void FrameSender::SendEncoded(const std::string& bytes) {
#if defined(__unix__) || defined(__APPLE__)
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return;
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;  // supervisor gone; keep working, exit status suffices
      return;
    }
    written += static_cast<size_t>(n);
  }
#else
  (void)bytes;
  failed_ = true;
#endif
}

}  // namespace catapult::dist
