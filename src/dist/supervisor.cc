#include "src/dist/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>

#include "src/dist/membership.h"
#include "src/dist/shard_plan.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/backoff.h"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>
#define CATAPULT_DIST_POSIX 1
#endif

namespace catapult::dist {

namespace {

using Clock = std::chrono::steady_clock;

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Removes a private shard directory on every exit path from the phase.
struct ScopedDirRemover {
  std::string path;
  ~ScopedDirRemover() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
};

}  // namespace

ShardedPhasesResult RunShardedClusterPhases(
    const GraphDatabase& db, const std::vector<std::vector<GraphId>>& coarse,
    const DistOptions& options, Rng& rng, const RunContext& ctx,
    DistReport* report) {
  ShardedPhasesResult out;
  report->enabled = true;
  report->processes = options.processes;

  ShardExecutionSpec spec;
  spec.db = &db;
  spec.coarse = &coarse;
  spec.fine_enabled = options.fine_enabled;
  spec.fine = options.fine;
  // Exactly the draws the in-process path makes (FineClusterPerCluster):
  // one split per coarse cluster, before any work, so the parent stream's
  // position after this phase is mode-independent.
  if (options.fine_enabled) {
    spec.streams = SplitFineStreams(rng, coarse.size());
  }
  spec.fingerprint = options.fingerprint;
  spec.worker_threads = options.worker_threads;
  spec.mem_soft_limit_bytes = options.mem_soft_limit_bytes;
  spec.mem_hard_limit_bytes = options.mem_hard_limit_bytes;
  spec.deadline = ctx.deadline();
  spec.heartbeat_interval_ms =
      options.heartbeat_interval_ms > 0.0
          ? options.heartbeat_interval_ms
          : std::max(options.heartbeat_timeout_ms / 4.0, 1.0);

  if (coarse.empty()) return out;

  obs::Span phase_span(ctx.tracer(), "dist.sharded_phases");
  // Distributed-trace context: workers (forked or remote) record spans
  // against this id and ship them back in their completion frames; the
  // merge below stitches them under this phase span.
  if (ctx.tracer() != nullptr) {
    spec.trace_id = ctx.tracer()->trace_id();
    spec.parent_span_id = phase_span.id();
  }

  // Shard artifacts live in the run's checkpoint namespace when there is
  // one; otherwise in a private temp directory that only serves this run's
  // retries and is removed on the way out.
  std::error_code ec;
  const bool private_dir = options.checkpoint_dir.empty();
  ScopedDirRemover private_dir_remover;
  if (private_dir) {
#if defined(CATAPULT_DIST_POSIX)
    std::string tmpl =
        (std::filesystem::temp_directory_path(ec) / "catapult-shards-XXXXXX")
            .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) spec.shard_dir = buf.data();
    if (spec.shard_dir.empty()) {
      // mkdtemp failing is already exceptional; the fallback name still
      // includes the pid so concurrent supervisors on one host cannot
      // share (and cross-contaminate) a shard directory.
      spec.shard_dir =
          (std::filesystem::temp_directory_path(ec) /
           ("catapult-shards-p" + std::to_string(::getpid())))
              .string();
      std::filesystem::create_directories(spec.shard_dir, ec);
    }
#else
    spec.shard_dir = (std::filesystem::temp_directory_path(ec) /
                      "catapult-shards-fallback")
                         .string();
    std::filesystem::create_directories(spec.shard_dir, ec);
#endif
    // Removal is scoped, not best-effort-at-the-end: early returns and the
    // remote fleet's failure arms must not leak per-run temp directories.
    private_dir_remover.path = spec.shard_dir;
  } else {
    spec.shard_dir = options.checkpoint_dir + "/shards";
    std::filesystem::create_directories(spec.shard_dir, ec);
  }

  std::vector<size_t> sizes(coarse.size());
  for (size_t i = 0; i < coarse.size(); ++i) sizes[i] = coarse[i].size();
  ShardPlan plan = PlanShards(sizes, std::max<size_t>(options.processes, 1));
  report->shards = plan.shards.size();

  std::vector<std::optional<ShardClusterResult>> cluster_results(coarse.size());
  // Accepted per-shard worker span buffers (first valid completion wins),
  // merged into the supervisor's tracer after the phase, in shard order.
  std::vector<std::vector<obs::SpanRecord>> shard_span_buffers(
      plan.shards.size());

  auto event = [&](ShardEvent::Kind kind, size_t shard,
                   std::string detail = "") {
    report->events.push_back(ShardEvent{kind, shard, std::move(detail)});
  };

  // In-process execution of one shard: the quarantine fallback (and the
  // whole phase on non-POSIX platforms). Same compute path and same
  // pre-split streams as the workers, so output is identical; durable
  // artifacts from dead workers are still honoured.
  auto run_in_process = [&](size_t s) {
    for (size_t idx : plan.shards[s]) {
      if (cluster_results[idx].has_value()) continue;
      ShardClusterResult result;
      std::string err = LoadShardArtifact(spec, idx, &result);
      if (err.empty()) {
        ++report->artifacts_reused;
        obs::Count(obs::Counter::kDistArtifactsReused);
        event(ShardEvent::Kind::kArtifactReused, s,
              "cluster=" + std::to_string(idx));
      } else {
        result = ComputeShardCluster(spec, idx, ctx);
        // Complete fallback results are persisted too, so a resumed run
        // with the same checkpoint directory can still reuse them.
        if (result.Complete()) SaveShardArtifact(spec, idx, result);
      }
      cluster_results[idx] = std::move(result);
    }
  };

  const bool remote =
      !options.listen_address.empty() || options.listen_fd >= 0;
  report->remote = remote;

#if defined(CATAPULT_DIST_POSIX)
  if (remote) {
    // Socket transport: remote catapult_worker processes dial in and are
    // supervised by the membership manager (DESIGN.md §14). Remote workers
    // never see this filesystem, so prior-run artifact reuse happens here
    // rather than inside the worker (fork mode's RunShardWorker does it
    // per shard); the membership loop then assigns only missing clusters.
    std::vector<size_t> cluster_shard(coarse.size(), 0);
    for (size_t s = 0; s < plan.shards.size(); ++s) {
      for (size_t idx : plan.shards[s]) cluster_shard[idx] = s;
    }
    for (size_t idx = 0; idx < coarse.size(); ++idx) {
      ShardClusterResult result;
      if (LoadShardArtifact(spec, idx, &result).empty()) {
        ++report->artifacts_reused;
        obs::Count(obs::Counter::kDistArtifactsReused);
        event(ShardEvent::Kind::kArtifactReused, cluster_shard[idx],
              "cluster=" + std::to_string(idx));
        cluster_results[idx] = std::move(result);
      }
    }
    RemoteFleetOutcome fleet =
        RunRemoteFleet(spec, plan, options, ctx, report, &cluster_results);
    if (fleet.shard_spans.size() == plan.shards.size()) {
      shard_span_buffers = std::move(fleet.shard_spans);
    }
    // Whatever the fleet did not finish — fleet loss, quarantine, stop —
    // completes through the same final rung as fork mode.
    for (size_t s = 0; s < plan.shards.size(); ++s) {
      bool missing = false;
      for (size_t idx : plan.shards[s]) {
        if (!cluster_results[idx].has_value()) {
          missing = true;
          break;
        }
      }
      if (!missing) continue;
      ++report->inprocess_fallbacks;
      obs::Count(obs::Counter::kDistFallbacks);
      event(ShardEvent::Kind::kInProcessFallback, s,
            fleet.fleet_lost ? "remote fleet lost" : "shard incomplete");
      run_in_process(s);
    }
    report->remote_fallback_only =
        fleet.fleet_lost && fleet.remote_clusters == 0;
  } else {
  struct WorkerState {
    enum class Phase {
      kPending,      // waiting for a process slot
      kRunning,      // worker forked, being supervised
      kBackoff,      // failed; next launch gated on launch_after
      kDone,         // results validated and merged
      kQuarantined,  // failure budget exhausted; awaits fallback
      kAbandoned,    // run stop requested before the shard finished
    };
    Phase phase = Phase::kPending;
    size_t attempt = 0;  // failures so far == next launch's attempt number
    pid_t pid = -1;
    int fd = -1;
    FrameReader reader;
    Clock::time_point last_heartbeat{};
    Clock::time_point launch_after{};
    bool got_done = false;
    std::vector<uint64_t> worker_counters;
    // Span buffer + trace-id echo from the worker's ShardDone; accepted
    // only when the echo matches the run's trace id.
    std::vector<obs::SpanRecord> worker_spans;
    uint64_t done_trace_id = 0;
    std::string last_error;
  };
  using Phase = WorkerState::Phase;

  std::vector<WorkerState> shards(plan.shards.size());
  ExponentialBackoff backoff(options.backoff_base_ms, options.backoff_cap_ms);
  const auto hb_timeout = std::chrono::duration<double, std::milli>(
      options.heartbeat_timeout_ms);

  auto quarantine = [&](size_t s, const std::string& reason) {
    shards[s].phase = Phase::kQuarantined;
    ++report->quarantined_shards;
    obs::Count(obs::Counter::kDistQuarantines);
    event(ShardEvent::Kind::kShardQuarantined, s, reason);
  };

  auto fail_shard = [&](size_t s, const std::string& reason) {
    WorkerState& st = shards[s];
    st.last_error = reason;
    ++st.attempt;
    if (st.attempt > options.max_shard_retries) {
      quarantine(s, "failure budget exhausted after " +
                        std::to_string(st.attempt) +
                        " attempts: " + reason);
      return;
    }
    ++report->shard_retries;
    obs::Count(obs::Counter::kDistShardRetries);
    event(ShardEvent::Kind::kShardRetried, s,
          "attempt=" + std::to_string(st.attempt) + ": " + reason);
    double delay_ms = backoff.DelayMs(st.attempt);
    if (delay_ms > 0.0) {
      st.phase = Phase::kBackoff;
      st.launch_after =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 delay_ms));
      ++report->backoff_waits;
      report->backoff_total_ms += delay_ms;
      obs::Count(obs::Counter::kDistBackoffWaits);
      char detail[48];
      std::snprintf(detail, sizeof(detail), "delay_ms=%.0f", delay_ms);
      event(ShardEvent::Kind::kBackoffWait, s, detail);
    } else {
      st.phase = Phase::kPending;
    }
  };

  // Blocks until the worker is gone, closes the pipe, returns the wait
  // status. Safe after SIGKILL or EOF; never signals by itself.
  auto reap = [&](size_t s) -> int {
    WorkerState& st = shards[s];
    int status = 0;
    if (st.pid > 0) {
      while (::waitpid(st.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    if (st.fd >= 0) {
      ::close(st.fd);
      st.fd = -1;
    }
    st.pid = -1;
    return status;
  };

  auto kill_worker = [&](size_t s) {
    if (shards[s].pid > 0) ::kill(shards[s].pid, SIGKILL);
  };

  auto record_death = [&](size_t s, const std::string& reason) {
    ++report->worker_deaths;
    obs::Count(obs::Counter::kDistWorkerDeaths);
    event(ShardEvent::Kind::kWorkerDied, s, reason);
    fail_shard(s, reason);
  };

  // Accepts a cleanly exited worker's shard: every owned artifact must
  // validate on the supervisor's side of the process fence (the envelope
  // CRCs plus the cluster binding), else the shard fails and retries.
  auto validate_and_complete = [&](size_t s) {
    WorkerState& st = shards[s];
    for (size_t idx : plan.shards[s]) {
      ShardClusterResult result;
      std::string err = LoadShardArtifact(spec, idx, &result);
      if (!err.empty()) {
        ++report->artifacts_rejected;
        obs::Count(obs::Counter::kDistArtifactsRejected);
        event(ShardEvent::Kind::kArtifactRejected, s,
              "cluster=" + std::to_string(idx) + ": " + err);
        fail_shard(s, "artifact for cluster " + std::to_string(idx) +
                          " rejected: " + err);
        return;
      }
      cluster_results[idx] = std::move(result);
    }
    st.phase = Phase::kDone;
    for (size_t i = 0;
         i < st.worker_counters.size() && i < obs::kNumCounters; ++i) {
      if (st.worker_counters[i] != 0) {
        obs::Count(static_cast<obs::Counter>(i), st.worker_counters[i]);
      }
    }
    if (!st.worker_spans.empty()) {
      if (spec.trace_id != 0 && st.done_trace_id == spec.trace_id &&
          shard_span_buffers[s].empty()) {
        shard_span_buffers[s] = std::move(st.worker_spans);
      } else {
        obs::Count(obs::Counter::kObsSpansDropped, st.worker_spans.size());
      }
      st.worker_spans.clear();
    }
    event(ShardEvent::Kind::kShardCompleted, s,
          "clusters=" + std::to_string(plan.shards[s].size()));
  };

  auto handle_frames = [&](size_t s) {
    WorkerState& st = shards[s];
    while (std::optional<Frame> frame = st.reader.Next()) {
      st.last_heartbeat = Clock::now();  // any frame proves liveness
      switch (frame->type) {
        case FrameType::kHello: {
          HelloFrame f;
          if (!Decode(frame->payload, &f)) st.reader.Poison("bad hello");
          break;
        }
        case FrameType::kHeartbeat: {
          HeartbeatFrame f;
          if (!Decode(frame->payload, &f)) {
            st.reader.Poison("bad heartbeat");
            break;
          }
          ++report->heartbeats;
          obs::Count(obs::Counter::kDistHeartbeats);
          break;
        }
        case FrameType::kClusterDone: {
          ClusterDoneFrame f;
          if (!Decode(frame->payload, &f)) {
            st.reader.Poison("bad cluster-done");
            break;
          }
          if (f.reused) {
            ++report->artifacts_reused;
            obs::Count(obs::Counter::kDistArtifactsReused);
            event(ShardEvent::Kind::kArtifactReused, s,
                  "cluster=" + std::to_string(f.cluster_index));
          }
          break;
        }
        case FrameType::kShardDone: {
          ShardDoneFrame f;
          if (!Decode(frame->payload, &f)) {
            st.reader.Poison("bad shard-done");
            break;
          }
          st.got_done = true;
          st.worker_counters = std::move(f.counters);
          st.worker_spans = std::move(f.spans);
          st.done_trace_id = f.trace_id;
          break;
        }
        case FrameType::kShardError: {
          ShardErrorFrame f;
          if (!Decode(frame->payload, &f)) {
            st.reader.Poison("bad shard-error");
            break;
          }
          st.last_error = f.message;
          break;
        }
      }
      if (st.reader.corrupt()) break;
    }
  };

  auto finalize_eof = [&](size_t s) {
    WorkerState& st = shards[s];
    int status = reap(s);
    if (st.reader.corrupt()) {
      record_death(s, "poisoned pipe: " + st.reader.error());
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0 && st.got_done) {
      event(ShardEvent::Kind::kWorkerExited, s, "exit 0");
      validate_and_complete(s);
      return;
    }
    std::string reason;
    if (WIFSIGNALED(status)) {
      reason = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      reason = "exit code " + std::to_string(WEXITSTATUS(status));
      if (!st.last_error.empty()) reason += " (" + st.last_error + ")";
    } else {
      reason = "exited without shard-done frame";
      if (!st.last_error.empty()) reason += " (" + st.last_error + ")";
    }
    record_death(s, reason);
  };

  auto launch = [&](size_t s) {
    WorkerState& st = shards[s];
    int fds[2];
    if (::pipe(fds) != 0) {
      fail_shard(s, "pipe() failed");
      return;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      fail_shard(s, "fork() failed");
      return;
    }
    if (pid == 0) {
      // Child. Never returns into the forked copy of the supervisor stack;
      // _exit skips atexit handlers (gtest's included).
      ::close(fds[0]);
      ::_exit(RunShardWorker(spec, s, st.attempt, plan.shards[s], fds[1]));
    }
    ::close(fds[1]);
    int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    st.pid = pid;
    st.fd = fds[0];
    st.reader = FrameReader();
    st.got_done = false;
    st.worker_counters.clear();
    st.worker_spans.clear();
    st.done_trace_id = 0;
    st.last_heartbeat = Clock::now();
    st.phase = Phase::kRunning;
    ++report->workers_spawned;
    obs::Count(obs::Counter::kDistWorkersSpawned);
    event(ShardEvent::Kind::kWorkerSpawned, s,
          "pid=" + std::to_string(pid) +
              " attempt=" + std::to_string(st.attempt));
  };

  while (true) {
    // Fill free process slots with pending / backoff-expired shards.
    size_t running = 0;
    for (const WorkerState& st : shards) {
      if (st.phase == Phase::kRunning) ++running;
    }
    Clock::time_point now = Clock::now();
    for (size_t s = 0; s < shards.size(); ++s) {
      if (running >= options.processes) break;
      WorkerState& st = shards[s];
      if (st.phase == Phase::kPending ||
          (st.phase == Phase::kBackoff && now >= st.launch_after)) {
        launch(s);
        if (st.phase == Phase::kRunning) ++running;
      }
    }

    bool waiting = false;
    for (const WorkerState& st : shards) {
      if (st.phase == Phase::kRunning || st.phase == Phase::kPending ||
          st.phase == Phase::kBackoff) {
        waiting = true;
        break;
      }
    }
    if (!waiting) break;

    if (ctx.StopRequested("dist.supervise")) {
      // Deadline / cancellation / memory breach: reap everything and let
      // the unfinished shards degrade through the in-process fallback,
      // which winds down under this same (stopped) context.
      for (size_t s = 0; s < shards.size(); ++s) {
        WorkerState& st = shards[s];
        if (st.phase == Phase::kRunning) {
          kill_worker(s);
          reap(s);
          event(ShardEvent::Kind::kWorkerDied, s,
                "run stop requested; worker killed");
          st.phase = Phase::kAbandoned;
        } else if (st.phase == Phase::kPending ||
                   st.phase == Phase::kBackoff) {
          st.phase = Phase::kAbandoned;
        }
      }
      break;
    }

    // Sleep until the nearest of: pipe readable, backoff expiry, heartbeat
    // deadline, 50ms tick.
    double timeout_ms = 50.0;
    now = Clock::now();
    for (const WorkerState& st : shards) {
      if (st.phase == Phase::kBackoff) {
        timeout_ms = std::min(
            timeout_ms, std::max(MillisBetween(now, st.launch_after), 0.0));
      } else if (st.phase == Phase::kRunning) {
        double until_deadline = options.heartbeat_timeout_ms -
                                MillisBetween(st.last_heartbeat, now);
        timeout_ms = std::min(timeout_ms, std::max(until_deadline, 0.0));
      }
    }

    std::vector<struct pollfd> poll_fds;
    std::vector<size_t> poll_shard;
    for (size_t s = 0; s < shards.size(); ++s) {
      if (shards[s].phase == Phase::kRunning) {
        poll_fds.push_back({shards[s].fd, POLLIN, 0});
        poll_shard.push_back(s);
      }
    }
    if (!poll_fds.empty()) {
      int rc = ::poll(poll_fds.data(), poll_fds.size(),
                      std::max(1, static_cast<int>(std::ceil(timeout_ms))));
      if (rc < 0 && errno != EINTR) {
        // poll itself failing is unexpected; fall through to the scans.
      }
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(std::max(timeout_ms,
                                                             1.0)));
    }

    for (size_t i = 0; i < poll_fds.size(); ++i) {
      size_t s = poll_shard[i];
      WorkerState& st = shards[s];
      if (st.phase != Phase::kRunning || poll_fds[i].revents == 0) continue;
      bool eof = false;
      char buf[4096];
      for (;;) {
        ssize_t n = ::read(st.fd, buf, sizeof(buf));
        if (n > 0) {
          st.reader.Feed(buf, static_cast<size_t>(n));
          continue;
        }
        if (n == 0) {
          eof = true;
        } else if (errno == EINTR) {
          continue;
        }
        break;  // EOF or EAGAIN
      }
      handle_frames(s);
      if (st.reader.corrupt()) {
        kill_worker(s);
        finalize_eof(s);
        continue;
      }
      if (eof) finalize_eof(s);
    }

    // Heartbeat deadline scan: a silent worker is a hung worker.
    now = Clock::now();
    for (size_t s = 0; s < shards.size(); ++s) {
      WorkerState& st = shards[s];
      if (st.phase != Phase::kRunning) continue;
      if (now - st.last_heartbeat > hb_timeout) {
        kill_worker(s);
        reap(s);
        ++report->worker_hangs;
        obs::Count(obs::Counter::kDistWorkerHangs);
        char detail[64];
        std::snprintf(detail, sizeof(detail),
                      "no heartbeat for %.0fms; killed",
                      MillisBetween(st.last_heartbeat, now));
        event(ShardEvent::Kind::kWorkerHung, s, detail);
        fail_shard(s, "heartbeat deadline missed");
      }
    }
  }

  // The degradation ladder's last rung: quarantined (and stop-abandoned)
  // shards execute in the supervisor, reusing whatever durable artifacts
  // the failed workers left behind.
  for (size_t s = 0; s < shards.size(); ++s) {
    WorkerState& st = shards[s];
    if (st.phase == Phase::kDone) continue;
    ++report->inprocess_fallbacks;
    obs::Count(obs::Counter::kDistFallbacks);
    event(ShardEvent::Kind::kInProcessFallback, s,
          st.phase == Phase::kQuarantined ? st.last_error
                                          : "run stop requested");
    run_in_process(s);
  }
  }  // !remote
#else   // !CATAPULT_DIST_POSIX
  // No fork on this platform: the whole phase executes in-process (still
  // sharded for artifact layout, so checkpoint semantics are identical).
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    event(ShardEvent::Kind::kInProcessFallback, s, "platform without fork");
    ++report->inprocess_fallbacks;
    obs::Count(obs::Counter::kDistFallbacks);
    run_in_process(s);
  }
#endif  // CATAPULT_DIST_POSIX

  // Stitch shipped worker spans into this process's trace, one merge pass
  // in shard order 0..N-1 regardless of completion order, so reruns of the
  // same work produce byte-identical trace documents (under fixed ticks).
  // Each shard's batch lands on its own process track (pid 2+s; the
  // supervisor is pid 1), rooted under a supervisor-side shard span that is
  // itself a child of the phase span.
  if (ctx.tracer() != nullptr && spec.trace_id != 0) {
    for (size_t s = 0; s < plan.shards.size() && s < shard_span_buffers.size();
         ++s) {
      if (shard_span_buffers[s].empty()) continue;
      const int pid = static_cast<int>(2 + s);
      ctx.tracer()->SetProcessName(
          pid, "catapult shard " + std::to_string(s));
      obs::Span shard_span(ctx.tracer(), "dist.shard-" + std::to_string(s),
                           phase_span.id());
      const size_t merged = ctx.tracer()->ImportShardSpans(
          shard_span_buffers[s], pid, shard_span.id(),
          "worker.shard-" + std::to_string(s), 0);
      obs::Count(obs::Counter::kObsSpansMerged, merged);
    }
  }

  // Merge in coarse-cluster order — the exact concatenation order of the
  // in-process FineClusterPerCluster path, which is what makes a P-process
  // run bit-identical to a 1-process run.
  for (size_t c = 0; c < coarse.size(); ++c) {
    if (!cluster_results[c].has_value()) {
      // Defensive: every cluster is planned into some shard, but a dropped
      // result must never silently break the partition invariant.
      cluster_results[c] = ComputeShardCluster(spec, c, ctx);
    }
    ShardClusterResult& r = *cluster_results[c];
    out.fine_complete = out.fine_complete && r.fine_complete;
    out.degraded_csgs += r.degraded_csgs;
    for (auto& fine : r.fine_clusters) {
      out.fine_clusters.push_back(std::move(fine));
    }
    for (auto& csg : r.csgs) out.csgs.push_back(std::move(csg));
  }

  return out;  // a private shard dir is removed by private_dir_remover
}

}  // namespace catapult::dist
