#ifndef CATAPULT_DIST_SUPERVISOR_H_
#define CATAPULT_DIST_SUPERVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/fine_clustering.h"
#include "src/csg/csg.h"
#include "src/dist/dist_report.h"
#include "src/graph/graph_database.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

// The supervisor half of sharded multi-process execution (DESIGN.md §12).
// The supervisor plans shards over the coarse partition, forks one worker
// per shard (at most `processes` concurrently), and supervises them:
// worker death is detected via waitpid, hangs via a heartbeat deadline on
// the worker's pipe; failed shards are retried under deterministic capped
// exponential backoff (src/util/backoff.h), each retry resuming from the
// shard's durable per-cluster artifacts; a shard exhausting its failure
// budget is quarantined and executed in-process as the final rung of the
// degradation ladder. The merged result is bit-identical to a 1-process
// run: each coarse cluster's work depends only on its pre-split rng stream
// and the supervisor concatenates results in coarse-cluster order.

namespace catapult::dist {

struct DistOptions {
  size_t processes = 2;        // concurrent worker process budget
  size_t max_shard_retries = 2;  // failures tolerated per shard
  double heartbeat_timeout_ms = 2000.0;
  double heartbeat_interval_ms = 0.0;  // 0 = heartbeat_timeout_ms / 4
  double backoff_base_ms = 25.0;
  double backoff_cap_ms = 1000.0;
  size_t worker_threads = 1;  // threads inside each worker process

  bool fine_enabled = true;
  FineClusteringOptions fine;

  // Directory of the run's checkpoint store; shard artifacts live in its
  // "shards/" namespace. Empty = a private temporary directory, removed
  // when the phase finishes (artifacts then only serve same-run retries).
  std::string checkpoint_dir;
  uint64_t fingerprint = 0;

  // Per-worker memory limits (each worker charges its own ledger).
  size_t mem_soft_limit_bytes = 0;
  size_t mem_hard_limit_bytes = 0;

  // --- Remote fleet (socket transport, DESIGN.md §14) -----------------------
  // When either a listen address or an adopted listening fd is supplied,
  // the supervisor supervises remote catapult_worker processes that dial
  // in, instead of forking workers. "unix:PATH" or "tcp:HOST:PORT".
  std::string listen_address;
  // An already-bound, already-listening fd to adopt (not owned). Lets
  // tests bind tcp port 0 themselves to learn the real address before the
  // run starts. -1 = disabled.
  int listen_fd = -1;
  // How long the supervisor waits with work pending but no live member
  // (and no handshake in progress) before declaring the fleet lost and
  // finishing via the in-process fallback.
  double join_timeout_ms = 10000.0;
  // A send that cannot make progress for this long marks the connection
  // stalled (half-open peer) and fences the member.
  double write_stall_timeout_ms = 5000.0;
  // Optional admin endpoint for the remote-fleet supervision loop
  // ("unix:PATH" / "tcp:HOST:PORT", empty = disabled): serves /metrics
  // (Prometheus text), /statusz (shard + fleet state JSON) and /healthz
  // while the fleet runs. Best-effort — a bind failure never fails the run.
  std::string admin_listen;
};

// The sharded fine-clustering + CSG phase's merged output, in coarse
// cluster order (identical to the in-process pipeline's output order).
struct ShardedPhasesResult {
  std::vector<std::vector<GraphId>> fine_clusters;
  std::vector<ClusterSummaryGraph> csgs;  // 1:1 with fine_clusters
  bool fine_complete = true;
  size_t degraded_csgs = 0;
};

// Runs fine clustering + CSG folding over `coarse` across worker
// processes. Consumes exactly `coarse.size()` splits of `rng` when fine
// clustering is enabled (none otherwise) — the same draws as the
// in-process path, so the parent stream's position after this call is
// mode-independent. `report` (required) receives supervision diagnostics.
// On non-POSIX platforms every shard executes in-process.
ShardedPhasesResult RunShardedClusterPhases(
    const GraphDatabase& db, const std::vector<std::vector<GraphId>>& coarse,
    const DistOptions& options, Rng& rng, const RunContext& ctx,
    DistReport* report);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_SUPERVISOR_H_
