#include "src/dist/dist_report.h"

namespace catapult::dist {

const char* ToString(ShardEvent::Kind kind) {
  switch (kind) {
    case ShardEvent::Kind::kWorkerSpawned:
      return "worker_spawned";
    case ShardEvent::Kind::kWorkerExited:
      return "worker_exited";
    case ShardEvent::Kind::kWorkerDied:
      return "worker_died";
    case ShardEvent::Kind::kWorkerHung:
      return "worker_hung";
    case ShardEvent::Kind::kShardRetried:
      return "shard_retried";
    case ShardEvent::Kind::kBackoffWait:
      return "backoff_wait";
    case ShardEvent::Kind::kShardQuarantined:
      return "shard_quarantined";
    case ShardEvent::Kind::kInProcessFallback:
      return "inprocess_fallback";
    case ShardEvent::Kind::kShardCompleted:
      return "shard_completed";
    case ShardEvent::Kind::kArtifactReused:
      return "artifact_reused";
    case ShardEvent::Kind::kArtifactRejected:
      return "artifact_rejected";
    case ShardEvent::Kind::kWorkerJoined:
      return "worker_joined";
    case ShardEvent::Kind::kWorkerRejected:
      return "worker_rejected";
    case ShardEvent::Kind::kWorkerReconnected:
      return "worker_reconnected";
    case ShardEvent::Kind::kWorkerFenced:
      return "worker_fenced";
    case ShardEvent::Kind::kShardAssigned:
      return "shard_assigned";
    case ShardEvent::Kind::kFleetLost:
      return "fleet_lost";
  }
  return "unknown";
}

std::string ToString(const ShardEvent& event) {
  std::string out = ToString(event.kind);
  out += " shard=" + std::to_string(event.shard);
  if (!event.detail.empty()) {
    out += " (" + event.detail + ")";
  }
  return out;
}

}  // namespace catapult::dist
