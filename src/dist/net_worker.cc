#include "src/dist/net_worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/channel.h"
#include "src/dist/worker.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/backoff.h"
#include "src/util/deadline.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#define CATAPULT_DIST_NET_POSIX 1
#endif

namespace catapult::dist {

#if defined(CATAPULT_DIST_NET_POSIX)

namespace {

using Clock = std::chrono::steady_clock;

void SleepMillis(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

// Blocks until the next complete frame, EOF/error, or `timeout_ms`
// (<= 0 = wait forever). `*lost` is set when the connection is unusable.
std::optional<Frame> WaitFrame(Channel& channel, FrameReader& reader,
                               double timeout_ms, bool* lost) {
  *lost = false;
  Clock::time_point deadline =
      timeout_ms > 0.0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   timeout_ms))
          : Clock::time_point::max();
  for (;;) {
    if (std::optional<Frame> frame = reader.Next()) return frame;
    if (reader.corrupt() || channel.fd() < 0) {
      *lost = true;
      return std::nullopt;
    }
    Clock::time_point now = Clock::now();
    if (now >= deadline) return std::nullopt;
    double wait_ms = 500.0;
    if (deadline != Clock::time_point::max()) {
      double remaining =
          std::chrono::duration<double, std::milli>(deadline - now).count();
      wait_ms = std::min(wait_ms, std::max(remaining, 1.0));
    }
    struct pollfd pfd = {channel.fd(), POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(wait_ms));
    if (rc < 0 && errno != EINTR) {
      *lost = true;
      return std::nullopt;
    }
    Channel::DrainStatus status = channel.DrainInto(&reader);
    if (status == Channel::DrainStatus::kEof) {
      // The peer's close may trail a final complete frame.
      if (std::optional<Frame> frame = reader.Next()) return frame;
      *lost = true;
      return std::nullopt;
    }
    if (status == Channel::DrainStatus::kError) {
      *lost = true;
      return std::nullopt;
    }
  }
}

// Carries one ShardAssign: computes every cluster and ships the results.
// Returns true while the connection is still usable, false when it was
// (deliberately or not) lost and the caller should reconnect.
bool CarryShard(const GraphDatabase& db, const RemoteWorkerOptions& options,
                const ShardAssignFrame& assign, Channel& channel,
                obs::MetricsRegistry& metrics,
                std::atomic<uint64_t>& clusters_done) {
  size_t max_index = 0;
  for (const ClusterWork& c : assign.clusters) {
    max_index = std::max(max_index, static_cast<size_t>(c.index));
  }
  // Sparse rebuild of the supervisor's coarse partition: only the assigned
  // indices are populated, which is all ComputeShardCluster ever touches.
  std::vector<std::vector<GraphId>> coarse(max_index + 1);
  ShardExecutionSpec spec;
  spec.streams.resize(max_index + 1);
  for (const ClusterWork& c : assign.clusters) {
    coarse[c.index] = c.members;
    spec.streams[c.index] = c.stream;
  }
  spec.db = &db;
  spec.coarse = &coarse;
  spec.fine_enabled = assign.fine_enabled;
  spec.fine.max_cluster_size = assign.fine_max_cluster_size;
  spec.fine.mcs.connected = assign.mcs_connected;
  spec.fine.mcs.match_edge_labels = assign.mcs_match_edge_labels;
  spec.fine.mcs.node_budget = assign.mcs_node_budget;
  spec.fingerprint = options.fingerprint;

  MemoryBudget budget =
      (assign.mem_soft_limit_bytes != 0 || assign.mem_hard_limit_bytes != 0)
          ? MemoryBudget::Limited(assign.mem_soft_limit_bytes,
                                  assign.mem_hard_limit_bytes)
          : MemoryBudget::Unlimited();
  Deadline deadline = assign.deadline_remaining_ms > 0.0
                          ? Deadline::AfterMillis(assign.deadline_remaining_ms)
                          : Deadline::Infinite();
  RunContext ctx = RunContext(deadline).WithMemory(std::move(budget));
  spec.deadline = deadline;

  // Spans are recorded on this (sequential) session thread, so span ids and
  // tick consumption are deterministic for a given assignment — the basis
  // for byte-stable merged traces under fixed clock ticks.
  obs::Tracer tracer;
  obs::Tracer* span_sink =
      assign.trace_id != 0 || options.local_tracer != nullptr ? &tracer
                                                              : nullptr;

  bool first_result = true;
  for (const ClusterWork& cluster : assign.clusters) {
    size_t idx = static_cast<size_t>(cluster.index);
    obs::Span cluster_span(span_sink, "cluster-" + std::to_string(idx));
    ShardClusterResult result = ComputeShardCluster(spec, idx, ctx);
    if (!result.Complete()) {
      // Degraded work never ships: the supervisor retries elsewhere or
      // degrades under its own context via the fallback ladder.
      channel.Send(ShardErrorFrame{assign.shard,
                                   "cluster " + std::to_string(idx) +
                                       " degraded (stop requested)"},
                   FrameType::kShardError);
      return true;  // connection is fine; supervisor decides what's next
    }
    ClusterResultFrame out;
    out.shard = assign.shard;
    out.generation = assign.generation;
    out.cluster_index = idx;
    out.payload = EncodeShardResultPayload(spec, idx, result);
    std::string bytes = EncodeFrame(FrameType::kClusterResult, Encode(out));

    if (first_result && CATAPULT_FAILPOINT(kFailpointStallBeforeResult)) {
      // Hold every frame (results and, by test arrangement, heartbeats)
      // past the supervisor's deadline: by the time these bytes land the
      // generation is fenced and they must be counted, not applied.
      SleepMillis(options.stall_test_ms);
    }
    if (CATAPULT_FAILPOINT(kFailpointDropMidFrame)) {
      // Die halfway through a frame: the supervisor sees a truncated
      // buffer (dead peer, not corruption) and reassigns the shard.
      size_t half = bytes.size() / 2;
      size_t sent = 0;
      while (sent < half) {
        ssize_t n = ::send(channel.fd(), bytes.data() + sent, half - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<size_t>(n);
      }
      channel.Close();
      return false;
    }
    if (!channel.SendEncoded(bytes)) return false;
    if (CATAPULT_FAILPOINT(kFailpointDupClusterResult)) {
      // Duplicate delivery (e.g. an ambiguous timeout followed by a
      // resend): the supervisor must treat results as idempotent.
      channel.SendEncoded(bytes);
    }
    if (first_result && CATAPULT_FAILPOINT(kFailpointKillAfterFirstResult)) {
      ::raise(SIGKILL);
    }
    first_result = false;
    clusters_done.fetch_add(1, std::memory_order_relaxed);
  }

  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  ShardDoneFrame done;
  done.shard = assign.shard;
  done.clusters_done = assign.clusters.size();
  done.counters.assign(snapshot.counters.begin(), snapshot.counters.end());
  done.trace_id = assign.trace_id;
  std::vector<obs::SpanRecord> spans;
  if (span_sink != nullptr) spans = tracer.DrainSpans();
  if (assign.trace_id != 0) done.spans = spans;
  std::string done_bytes = EncodeFrame(FrameType::kShardDone, Encode(done));
  bool sent = channel.SendEncoded(done_bytes);
  if (sent && CATAPULT_FAILPOINT(kFailpointDupShardDone)) {
    // At-least-once completion delivery: the supervisor must merge this
    // shard's spans and counters exactly once, not twice.
    channel.SendEncoded(done_bytes);
  }
  // Worker-local capture for --metrics-out/--trace-out: the same deltas and
  // spans the supervisor merges, kept per process.
  if (options.accumulate != nullptr) options.accumulate->MergeFrom(snapshot);
  if (options.local_tracer != nullptr && !spans.empty()) {
    const int pid = static_cast<int>(2 + assign.shard);
    options.local_tracer->SetProcessName(
        pid, "catapult shard " + std::to_string(assign.shard));
    options.local_tracer->ImportShardSpans(
        spans, pid, 0, "shard-" + std::to_string(assign.shard), 0);
  }
  // Counters are per-shard deltas; a member carrying several shards must
  // not re-ship the first shard's work.
  metrics.Reset();
  return sent;
}

// One connected session: handshake already accepted; heartbeats + shard
// carrying until shutdown or connection loss. Returns the process exit
// code, or -1 to reconnect.
int RunSession(const GraphDatabase& db, const RemoteWorkerOptions& options,
               Channel& channel, FrameReader& reader,
               const JoinAcceptFrame& accept) {
  obs::MetricsRegistry metrics;
  obs::ScopedMetricsScope metrics_scope(&metrics);

  std::atomic<uint64_t> clusters_done{0};
  std::atomic<uint64_t> current_shard{0};
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool stop_heartbeat = false;
  std::thread heartbeat([&] {
    uint64_t seq = 0;
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(accept.heartbeat_interval_ms, 1.0));
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!stop_heartbeat) {
      if (CATAPULT_FAILPOINT(kFailpointDelayHeartbeat)) {
        // A long GC-style pause on the heartbeat path: silent well past
        // the supervisor's deadline, then business as usual.
        lock.unlock();
        SleepMillis(accept.heartbeat_timeout_ms * 2.5);
        lock.lock();
        if (stop_heartbeat) break;
      }
      HeartbeatFrame hb;
      hb.shard = current_shard.load(std::memory_order_relaxed);
      hb.seq = seq++;
      hb.clusters_done = clusters_done.load(std::memory_order_relaxed);
      channel.Send(hb, FrameType::kHeartbeat);
      hb_cv.wait_for(lock, interval, [&] { return stop_heartbeat; });
    }
  });
  auto stop_hb = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mutex);
      stop_heartbeat = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  for (;;) {
    bool lost = false;
    std::optional<Frame> frame = WaitFrame(channel, reader, 0.0, &lost);
    if (lost || channel.failed()) {
      stop_hb();
      return -1;
    }
    if (!frame.has_value()) continue;
    switch (frame->type) {
      case FrameType::kShardAssign: {
        ShardAssignFrame assign;
        if (!Decode(frame->payload, &assign)) {
          stop_hb();
          return kWorkerExitProtocol;
        }
        current_shard.store(assign.shard, std::memory_order_relaxed);
        if (!CarryShard(db, options, assign, channel, metrics,
                        clusters_done)) {
          stop_hb();
          return -1;
        }
        break;
      }
      case FrameType::kShutdown: {
        ShutdownFrame f;
        if (!Decode(frame->payload, &f)) {
          stop_hb();
          return kWorkerExitProtocol;
        }
        stop_hb();
        if (f.code == static_cast<uint32_t>(ShutdownCode::kFenced)) {
          return -1;  // reconnect and rejoin at a bumped generation
        }
        return 0;  // kDone / kCancelled: clean exit
      }
      default:
        break;  // nothing else is addressed to an active worker
    }
  }
}

}  // namespace

int RunRemoteWorker(const GraphDatabase& db,
                    const RemoteWorkerOptions& options) {
  ::signal(SIGPIPE, SIG_IGN);
  Address addr;
  std::string err;
  if (!ParseAddress(options.address, &addr, &err)) {
    return kWorkerExitConnectFailed;
  }
  ExponentialBackoff backoff(options.dial_backoff_base_ms,
                             options.dial_backoff_cap_ms);
  uint64_t prev_worker_id = 0;
  uint64_t prev_generation = 0;
  size_t failures = 0;
  for (;;) {
    if (failures > options.max_dial_attempts) return kWorkerExitConnectFailed;
    // Deterministic capped pacing: attempt n always waits the same delay,
    // whatever generation the worker is rejoining at.
    SleepMillis(backoff.DelayMs(failures));
    std::string dial_err;
    int fd = Dial(addr, options.dial_timeout_ms, &dial_err);
    if (fd < 0) {
      ++failures;
      continue;
    }
    Channel channel(fd, options.write_stall_timeout_ms);
    JoinRequestFrame req;
    req.protocol = options.protocol;
    req.fingerprint = options.fingerprint;
    req.shard_namespace = options.shard_namespace;
    req.worker_name = options.worker_name;
    req.prev_worker_id = prev_worker_id;
    req.prev_generation = prev_generation;
    req.pid = static_cast<uint64_t>(::getpid());
    if (!channel.Send(req, FrameType::kJoinRequest)) {
      ++failures;
      continue;
    }
    FrameReader reader;
    bool lost = false;
    std::optional<Frame> reply =
        WaitFrame(channel, reader, options.handshake_timeout_ms, &lost);
    if (!reply.has_value()) {
      ++failures;
      continue;
    }
    if (reply->type == FrameType::kJoinReject) {
      return kWorkerExitRejected;  // typed refusal: retrying cannot help
    }
    if (reply->type != FrameType::kJoinAccept) return kWorkerExitProtocol;
    JoinAcceptFrame accept;
    if (!Decode(reply->payload, &accept)) return kWorkerExitProtocol;
    failures = 0;
    prev_worker_id = accept.worker_id;
    prev_generation = accept.generation;
    int session = RunSession(db, options, channel, reader, accept);
    if (session >= 0) return session;
    ++failures;  // lost or fenced: reconnect with the previous identity
  }
}

#else  // !CATAPULT_DIST_NET_POSIX

int RunRemoteWorker(const GraphDatabase&, const RemoteWorkerOptions&) {
  return kWorkerExitConnectFailed;
}

#endif  // CATAPULT_DIST_NET_POSIX

}  // namespace catapult::dist
