#include "src/dist/channel.h"

#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define CATAPULT_DIST_NET_POSIX 1
#endif

namespace catapult::dist {

namespace {

#if defined(CATAPULT_DIST_NET_POSIX)
void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string ErrnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
#endif

}  // namespace

bool ParseAddress(const std::string& text, Address* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "bad address '" + text + "': " + why;
    return false;
  };
  if (text.rfind("unix:", 0) == 0) {
    std::string path = text.substr(5);
    if (path.empty()) return fail("empty socket path");
    out->kind = Address::Kind::kUnix;
    out->path = std::move(path);
    out->host.clear();
    out->port = 0;
    out->text = "unix:" + out->path;
    return true;
  }
  if (text.rfind("tcp:", 0) == 0) {
    std::string rest = text.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("expected tcp:HOST:PORT");
    }
    std::string host = rest.substr(0, colon);
    std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return fail("port is not a number");
    }
    unsigned long port = std::strtoul(port_text.c_str(), nullptr, 10);
    if (port > 65535) return fail("port out of range");
    out->kind = Address::Kind::kTcp;
    out->host = std::move(host);
    out->port = static_cast<uint16_t>(port);
    out->path.clear();
    out->text = "tcp:" + out->host + ":" + std::to_string(out->port);
    return true;
  }
  return fail("expected unix:PATH or tcp:HOST:PORT");
}

#if defined(CATAPULT_DIST_NET_POSIX)

namespace {

// Fills a sockaddr for `addr`. Returns "" or the error.
std::string FillSockaddr(const Address& addr, sockaddr_storage* storage,
                         socklen_t* len) {
  std::memset(storage, 0, sizeof(*storage));
  if (addr.kind == Address::Kind::kUnix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    if (addr.path.size() >= sizeof(sun->sun_path)) {
      return "unix socket path too long";
    }
    sun->sun_family = AF_UNIX;
    std::memcpy(sun->sun_path, addr.path.c_str(), addr.path.size() + 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  addr.path.size() + 1);
    return "";
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(addr.port);
  std::string host = addr.host;
  if (host == "localhost") host = "127.0.0.1";
  if (host.empty() || host == "*") host = "0.0.0.0";
  if (::inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    return "host must be a numeric IPv4 address or 'localhost'";
  }
  *len = sizeof(sockaddr_in);
  return "";
}

std::string SockaddrText(const sockaddr_storage& storage) {
  if (storage.ss_family == AF_UNIX) {
    const auto* sun = reinterpret_cast<const sockaddr_un*>(&storage);
    return std::string("unix:") + sun->sun_path;
  }
  if (storage.ss_family == AF_INET) {
    const auto* sin = reinterpret_cast<const sockaddr_in*>(&storage);
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &sin->sin_addr, buf, sizeof(buf));
    return std::string("tcp:") + buf + ":" +
           std::to_string(ntohs(sin->sin_port));
  }
  return "";
}

}  // namespace

Channel::Channel(int fd, double write_stall_timeout_ms)
    : fd_(fd), write_stall_timeout_ms_(write_stall_timeout_ms) {
  if (fd_ >= 0) SetNonBlocking(fd_);
}

Channel::~Channel() { Close(); }

void Channel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Channel::SendEncoded(const std::string& bytes) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (fd_ < 0 || failed_) return false;
  if (CATAPULT_FAILPOINT(kFailpointWriteStall)) {
    // The peer's receive window is full and stays full: every byte we try
    // to push would block past the stall deadline.
    failed_ = true;
    write_stalled_ = true;
    error_ = "write stalled (injected)";
    obs::Count(obs::Counter::kDistNetWriteStalls);
    return false;
  }
  const bool short_writes = CATAPULT_FAILPOINT(kFailpointShortWrite);
  size_t written = 0;
  while (written < bytes.size()) {
    size_t chunk = bytes.size() - written;
    if (short_writes) chunk = 1;  // worst-case kernel chunking
    ssize_t n = ::send(fd_, bytes.data() + written, chunk, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, bytes.data() + written, chunk);  // pipe channel
    }
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd_, POLLOUT, 0};
      int timeout =
          write_stall_timeout_ms_ <= 0.0
              ? -1
              : std::max(1, static_cast<int>(write_stall_timeout_ms_));
      int rc = ::poll(&pfd, 1, timeout);
      if (rc > 0) continue;
      if (rc < 0 && errno == EINTR) continue;
      // Stalled: the peer holds the connection open but reads nothing.
      failed_ = true;
      write_stalled_ = true;
      error_ = "write stalled for " +
               std::to_string(static_cast<long>(write_stall_timeout_ms_)) +
               "ms";
      obs::Count(obs::Counter::kDistNetWriteStalls);
      return false;
    }
    failed_ = true;
    error_ = ErrnoString("send");
    return false;
  }
  return true;
}

Channel::DrainStatus Channel::DrainInto(FrameReader* reader) {
  if (fd_ < 0) return DrainStatus::kError;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == ENOTSOCK) n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader->Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return DrainStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return DrainStatus::kOk;
    failed_ = true;
    error_ = ErrnoString("recv");
    return DrainStatus::kError;
  }
}

Listener::~Listener() { Close(); }

std::string Listener::Listen(const Address& addr) {
  Close();
  sockaddr_storage storage;
  socklen_t len = 0;
  std::string err = FillSockaddr(addr, &storage, &len);
  if (!err.empty()) return err;
  int family = addr.kind == Address::Kind::kUnix ? AF_UNIX : AF_INET;
  int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoString("socket");
  if (addr.kind == Address::Kind::kUnix) {
    // A stale path from a crashed supervisor would make bind fail; a live
    // supervisor's path is a configuration error either way.
    ::unlink(addr.path.c_str());
  } else {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    std::string bind_err = ErrnoString("bind");
    ::close(fd);
    return bind_err;
  }
  if (::listen(fd, 64) != 0) {
    std::string listen_err = ErrnoString("listen");
    ::close(fd);
    return listen_err;
  }
  SetNonBlocking(fd);
  fd_ = fd;
  owned_ = true;
  if (addr.kind == Address::Kind::kUnix) {
    unlink_path_ = addr.path;
    address_ = addr.text;
  } else {
    // Re-read the bound address so port 0 reports the kernel's choice.
    sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      address_ = SockaddrText(bound);
    } else {
      address_ = addr.text;
    }
  }
  return "";
}

void Listener::Adopt(int fd) {
  Close();
  fd_ = fd;
  owned_ = false;
  SetNonBlocking(fd);
  sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    address_ = SockaddrText(bound);
  }
}

int Listener::Accept() {
  if (fd_ < 0) return -1;
  for (;;) {
    int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      SetNonBlocking(client);
      obs::Count(obs::Counter::kDistNetAccepts);
      return client;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

void Listener::Close() {
  if (fd_ >= 0 && owned_) ::close(fd_);
  fd_ = -1;
  owned_ = false;
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
  address_.clear();
}

int Dial(const Address& addr, double timeout_ms, std::string* error) {
  if (CATAPULT_FAILPOINT(kFailpointConnectRefused)) {
    if (error != nullptr) *error = "connection refused (injected)";
    return -1;
  }
  sockaddr_storage storage;
  socklen_t len = 0;
  std::string err = FillSockaddr(addr, &storage, &len);
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return -1;
  }
  int family = addr.kind == Address::Kind::kUnix ? AF_UNIX : AF_INET;
  int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoString("socket");
    return -1;
  }
  SetNonBlocking(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&storage), len) != 0) {
    if (errno != EINPROGRESS) {
      if (error != nullptr) *error = ErrnoString("connect");
      ::close(fd);
      return -1;
    }
    struct pollfd pfd = {fd, POLLOUT, 0};
    int timeout =
        timeout_ms <= 0.0 ? -1 : std::max(1, static_cast<int>(timeout_ms));
    int rc;
    while ((rc = ::poll(&pfd, 1, timeout)) < 0 && errno == EINTR) {
    }
    if (rc <= 0) {
      if (error != nullptr) *error = "connect timed out";
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    if (so_error != 0) {
      if (error != nullptr) {
        *error = std::string("connect: ") + std::strerror(so_error);
      }
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

#else  // !CATAPULT_DIST_NET_POSIX

Channel::Channel(int fd, double write_stall_timeout_ms)
    : fd_(fd), write_stall_timeout_ms_(write_stall_timeout_ms) {
  failed_ = true;
  error_ = "sockets unsupported on this platform";
}
Channel::~Channel() {}
void Channel::Close() { fd_ = -1; }
bool Channel::SendEncoded(const std::string&) { return false; }
Channel::DrainStatus Channel::DrainInto(FrameReader*) {
  return DrainStatus::kError;
}
Listener::~Listener() {}
std::string Listener::Listen(const Address&) {
  return "sockets unsupported on this platform";
}
void Listener::Adopt(int) {}
int Listener::Accept() { return -1; }
void Listener::Close() { fd_ = -1; }
int Dial(const Address&, double, std::string* error) {
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return -1;
}

#endif  // CATAPULT_DIST_NET_POSIX

}  // namespace catapult::dist
