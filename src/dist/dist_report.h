#ifndef CATAPULT_DIST_DIST_REPORT_H_
#define CATAPULT_DIST_DIST_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

// Supervision diagnostics for sharded multi-process execution (DESIGN.md
// §12). Std-only includes: this header is embedded in ExecutionReport
// (src/core/catapult.h) and must not pull the dist machinery with it.

namespace catapult::dist {

// One supervision event, in the order the supervisor observed it.
struct ShardEvent {
  enum class Kind {
    kWorkerSpawned,      // fork succeeded; detail = "pid=... attempt=..."
    kWorkerExited,       // clean exit accepted
    kWorkerDied,         // abnormal exit / nonzero status / poisoned pipe
    kWorkerHung,         // heartbeat deadline missed; worker killed
    kShardRetried,       // shard requeued after a failure
    kBackoffWait,        // retry delayed; detail = "delay_ms=..."
    kShardQuarantined,   // failure budget exhausted
    kInProcessFallback,  // quarantined shard executed in the supervisor
    kShardCompleted,     // shard results merged
    kArtifactReused,     // worker resumed from a prior attempt's checkpoint
    kArtifactRejected,   // shard artifact failed validation; recomputed
    // Remote-fleet membership (DESIGN.md §14).
    kWorkerJoined,       // handshake admitted a fresh member
    kWorkerRejected,     // handshake refused; detail = typed reason
    kWorkerReconnected,  // known identity rejoined at a bumped generation
    kWorkerFenced,       // member declared dead; old generation retired
    kShardAssigned,      // shard's missing clusters sent to a member
    kFleetLost,          // no members left; remaining shards fall back
  };

  Kind kind = Kind::kWorkerSpawned;
  size_t shard = 0;
  std::string detail;
};

const char* ToString(ShardEvent::Kind kind);
std::string ToString(const ShardEvent& event);

// Aggregated supervision report for one run. All counts are zero (and
// `enabled` false) for in-process runs.
struct DistReport {
  bool enabled = false;
  size_t processes = 0;  // requested worker process count
  size_t shards = 0;     // planned shards (<= processes)

  size_t workers_spawned = 0;
  size_t worker_deaths = 0;  // abnormal worker exits observed via waitpid
  size_t worker_hangs = 0;   // heartbeat deadline misses (worker killed)
  size_t shard_retries = 0;
  size_t backoff_waits = 0;
  double backoff_total_ms = 0.0;
  size_t quarantined_shards = 0;
  size_t inprocess_fallbacks = 0;
  size_t artifacts_reused = 0;
  size_t artifacts_rejected = 0;
  size_t heartbeats = 0;

  // Remote fleet (socket transport); all zero / false for fork-mode runs.
  bool remote = false;
  std::string listen_address;     // resolved listener endpoint
  size_t workers_joined = 0;      // admissions (fresh joins + reconnects)
  size_t workers_rejected = 0;    // typed handshake refusals
  size_t reconnects = 0;          // rejoins of a fenced identity
  size_t fenced_frames = 0;       // stale-generation frames discarded
  size_t duplicate_clusters = 0;  // re-delivered results ignored
  size_t write_stalls = 0;        // sends that hit the stall deadline
  size_t remote_clusters = 0;     // cluster results accepted over sockets
  size_t fleet_lost_fallbacks = 0;  // shards abandoned to fallback on loss
  // True when the remote fleet was lost entirely and the run completed
  // only via the in-process fallback — degraded-but-correct; surfaced as
  // a distinct CLI exit code.
  bool remote_fallback_only = false;

  std::vector<ShardEvent> events;
};

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_DIST_REPORT_H_
