#ifndef CATAPULT_DIST_WORKER_H_
#define CATAPULT_DIST_WORKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/fine_clustering.h"
#include "src/csg/csg.h"
#include "src/graph/graph_database.h"
#include "src/util/deadline.h"
#include "src/util/rng.h"

// The worker half of sharded multi-process execution (DESIGN.md §12). A
// worker owns a subset of the coarse clusters and carries each through fine
// clustering (under that cluster's pre-split rng stream) and CSG folding,
// checkpointing every finished cluster as one shard artifact so a retry —
// on any worker, at any attempt — resumes from the last durable cluster
// instead of recomputing the shard. Everything here also runs unforked:
// the supervisor calls ComputeShardCluster directly for the in-process
// fallback of quarantined shards, which is what guarantees fallback output
// is bit-identical to worker output (same code, same stream, same inputs).

namespace catapult::dist {

// Failpoint kill sites evaluated inside the worker process. The armed
// table is fork-inherited from the supervisor, and a child's hit-count
// consumption never propagates back, so sites that should fail *once* are
// additionally gated on attempt == 0 — the retry attempt sees the site
// armed but does not evaluate it. `worker.fail_always` has no gate and
// drives the quarantine path.
inline constexpr char kFailpointKillBeforeCheckpoint[] =
    "worker.kill_before_checkpoint";
inline constexpr char kFailpointKillAfterCheckpoint[] =
    "worker.kill_after_checkpoint";
inline constexpr char kFailpointHangHeartbeat[] = "worker.hang_heartbeat";
inline constexpr char kFailpointCorruptShardArtifact[] =
    "worker.corrupt_shard_artifact";
inline constexpr char kFailpointExitNonzero[] = "worker.exit_nonzero";
inline constexpr char kFailpointFailAlways[] = "worker.fail_always";

// Worker exit codes (also produced by the supervisor's interpretation).
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitShardFailed = 10;   // incomplete/degraded work
inline constexpr int kWorkerExitInjected = 12;      // worker.fail_always
inline constexpr int kWorkerExitInjectedExit = 13;  // worker.exit_nonzero

// Everything a worker (or the in-process fallback) needs to execute shard
// work. Pointers reference supervisor-owned state; in a forked child they
// stay valid via copy-on-write.
struct ShardExecutionSpec {
  const GraphDatabase* db = nullptr;
  // The coarse partition, indexed by the cluster indices in the shard plan.
  const std::vector<std::vector<GraphId>>* coarse = nullptr;
  // Pre-split fine-clustering streams, index-aligned with `coarse` (empty
  // when fine clustering is disabled for the run).
  std::vector<RngState> streams;
  bool fine_enabled = true;
  FineClusteringOptions fine;

  // Directory holding per-cluster shard artifacts (`cluster-<idx>.ckpt`).
  // Namespaced by coarse cluster index, not by shard or attempt, so any
  // retry finds every prior attempt's durable clusters.
  std::string shard_dir;
  uint64_t fingerprint = 0;  // run config fingerprint stamped on artifacts

  size_t worker_threads = 1;
  // Memory limits for the worker's own budget ledger (0 = unlimited).
  // Budgets are per-process: a forked worker charges its own allocations.
  size_t mem_soft_limit_bytes = 0;
  size_t mem_hard_limit_bytes = 0;
  // Absolute deadline; steady_clock is system-wide on the supported
  // platforms, so the value is meaningful across fork.
  Deadline deadline;
  double heartbeat_interval_ms = 500.0;
  // Distributed-trace id of the supervising run (0 = untraced). A worker
  // with a non-zero id records per-cluster spans and ships them, with the
  // id echoed, in its ShardDone frame.
  uint64_t trace_id = 0;
  // Span id of the supervisor's sharded-phase span, carried to remote
  // workers in ShardAssign so shipped context names its parent.
  uint64_t parent_span_id = 0;
};

// One coarse cluster's results: its fine clusters and their CSGs (1:1).
struct ShardClusterResult {
  std::vector<std::vector<GraphId>> fine_clusters;
  std::vector<ClusterSummaryGraph> csgs;
  // Degradation markers, mirroring the in-process pipeline's diagnostics:
  // fine_complete=false when a stop left clusters unsplit; degraded_csgs
  // counts partially folded summaries. Degraded results are never persisted
  // as shard artifacts (workers fail the shard instead; only the in-process
  // fallback, which runs under the supervisor's own context, may keep them).
  bool fine_complete = true;
  size_t degraded_csgs = 0;
  bool Complete() const { return fine_complete && degraded_csgs == 0; }
};

// Path of cluster `cluster_index`'s shard artifact under `shard_dir`.
std::string ShardArtifactPath(const std::string& shard_dir,
                              size_t cluster_index);

// Runs cluster `cluster_index` through fine clustering + CSG folding. All
// internal work is inline (pool-less): callers parallelise across clusters,
// so per-cluster work must not re-enter the pool.
ShardClusterResult ComputeShardCluster(const ShardExecutionSpec& spec,
                                       size_t cluster_index,
                                       const RunContext& ctx);

// Atomically persists a complete result as cluster `cluster_index`'s shard
// artifact (RecordType::kShard). Returns "" on success, else the error.
std::string SaveShardArtifact(const ShardExecutionSpec& spec,
                              size_t cluster_index,
                              const ShardClusterResult& result);

// Encodes a complete result as the kShard record payload — the exact bytes
// SaveShardArtifact wraps into the record envelope. Remote workers ship
// these bytes in a ClusterResult frame (DESIGN.md §14) instead of writing
// to a (possibly remote) filesystem; the supervisor persists them with
// SaveShardArtifactPayload and re-validates via LoadShardArtifact, so a
// remote cluster's artifact is byte-identical to a forked worker's.
std::string EncodeShardResultPayload(const ShardExecutionSpec& spec,
                                     size_t cluster_index,
                                     const ShardClusterResult& result);

// Atomically persists an already-encoded payload as cluster
// `cluster_index`'s artifact. Returns "" on success, else the error.
std::string SaveShardArtifactPayload(const ShardExecutionSpec& spec,
                                     size_t cluster_index,
                                     const std::string& payload);

// Loads and validates cluster `cluster_index`'s shard artifact. Beyond the
// record envelope (magic/CRCs/fingerprint) this cross-checks the binding:
// the stored coarse member list must equal the current cluster, the fine
// clusters must partition it, and each CSG's cluster_size must match its
// fine cluster. Returns "" and fills `out` on success, else the rejection
// reason (missing file included) and leaves `out` untouched.
std::string LoadShardArtifact(const ShardExecutionSpec& spec,
                              size_t cluster_index, ShardClusterResult* out);

// Body of a forked worker process: processes `clusters` (reusing valid
// artifacts, computing + checkpointing the rest), heartbeating on `pipe_fd`
// from a dedicated thread, and reporting per-cluster completions plus a
// final ShardDone/ShardError frame. Returns the exit code; the caller
// _exit()s with it (never returning into the forked copy of the caller's
// stack). POSIX-only; on other platforms returns kWorkerExitShardFailed.
int RunShardWorker(const ShardExecutionSpec& spec, size_t shard_index,
                   size_t attempt, const std::vector<size_t>& clusters,
                   int pipe_fd);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_WORKER_H_
