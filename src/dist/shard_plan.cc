#include "src/dist/shard_plan.h"

#include <algorithm>

namespace catapult::dist {

ShardPlan PlanShards(const std::vector<size_t>& cluster_sizes,
                     size_t num_shards) {
  ShardPlan plan;
  if (cluster_sizes.empty() || num_shards == 0) return plan;
  num_shards = std::min(num_shards, cluster_sizes.size());

  std::vector<size_t> order(cluster_sizes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return cluster_sizes[a] > cluster_sizes[b];
  });

  plan.shards.assign(num_shards, {});
  std::vector<size_t> load(num_shards, 0);
  for (size_t idx : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    plan.shards[lightest].push_back(idx);
    // Weight-0 clusters still cost a unit of bookkeeping; count at least 1
    // so they spread across shards instead of piling onto shard 0.
    load[lightest] += std::max<size_t>(cluster_sizes[idx], 1);
  }

  for (auto& shard : plan.shards) std::sort(shard.begin(), shard.end());
  plan.shards.erase(
      std::remove_if(plan.shards.begin(), plan.shards.end(),
                     [](const auto& s) { return s.empty(); }),
      plan.shards.end());
  return plan;
}

}  // namespace catapult::dist
