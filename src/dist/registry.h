#ifndef CATAPULT_DIST_REGISTRY_H_
#define CATAPULT_DIST_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <vector>

// Remote-fleet membership registry (DESIGN.md §14). Every admitted worker
// is a member keyed by (worker-id, generation). The generation is the
// fencing token: when the supervisor declares a connection dead (heartbeat
// deadline missed, write stall, EOF mid-shard) it marks the member dead,
// which retires the current generation; a zombie still holding the old
// connection keeps its old generation, so every frame it sends afterwards
// fails the IsCurrent check and is counted (dist.net.fenced_frames) but
// never applied. When the worker reconnects presenting its previous
// identity, Join mints generation+1 for the same worker-id — the member's
// history (reconnect count, death time for the reconnect-latency
// histogram) survives the fence.

namespace catapult::dist {

class WorkerRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  struct Admission {
    uint64_t worker_id = 0;
    uint64_t generation = 0;
    bool reconnect = false;  // a previously-seen identity rejoined
    double down_ms = 0.0;    // death-to-rejoin latency (reconnects only)
  };

  // Admits a join. A non-zero (prev_id, prev_gen) naming a known member
  // whose current-or-retired generation matches bumps that member to a
  // fresh generation (a reconnect); anything else — including a stale
  // identity from a different run — mints a new member at generation 1.
  Admission Join(uint64_t prev_worker_id, uint64_t prev_generation,
                 Clock::time_point now);

  // True iff `generation` is `worker_id`'s current generation and the
  // member has not been fenced. Every state-changing frame is gated here.
  bool IsCurrent(uint64_t worker_id, uint64_t generation) const;

  // Fences `worker_id`'s current generation: IsCurrent goes false until
  // the worker rejoins at a bumped generation. Idempotent.
  void MarkDead(uint64_t worker_id, Clock::time_point now);

  size_t alive() const;
  size_t total() const { return members_.size(); }

  // Point-in-time roster for status endpoints: one entry per member ever
  // admitted, with its current generation and liveness.
  struct MemberInfo {
    uint64_t worker_id = 0;
    uint64_t generation = 0;
    bool alive = false;
  };
  std::vector<MemberInfo> Members() const {
    std::vector<MemberInfo> out;
    out.reserve(members_.size());
    for (size_t i = 0; i < members_.size(); ++i) {
      out.push_back(MemberInfo{static_cast<uint64_t>(i + 1),
                               members_[i].generation, members_[i].alive});
    }
    return out;
  }

 private:
  struct Member {
    uint64_t generation = 1;
    bool alive = true;
    Clock::time_point died_at{};
  };
  std::vector<Member> members_;  // worker_id i lives at members_[i - 1]
};

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_REGISTRY_H_
