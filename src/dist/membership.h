#ifndef CATAPULT_DIST_MEMBERSHIP_H_
#define CATAPULT_DIST_MEMBERSHIP_H_

#include <optional>
#include <vector>

#include "src/dist/dist_report.h"
#include "src/dist/shard_plan.h"
#include "src/dist/supervisor.h"
#include "src/dist/worker.h"
#include "src/obs/trace.h"
#include "src/util/deadline.h"

// The remote-fleet membership manager (DESIGN.md §14): the supervisor's
// event loop when workers are separate catapult_worker processes dialing
// in over sockets rather than forked children. Liveness is tracked purely
// in-band — heartbeat deadlines and write-stall timeouts on the connection
// — because there is no pid to waitpid and no SIGCHLD: a SIGKILLed remote
// worker, a severed cable and a wedged peer all look the same from here
// and are all handled the same way (fence the generation, reassign the
// shard's still-missing clusters to a survivor, count the zombie's late
// frames without applying them).

namespace catapult::dist {

struct RemoteFleetOutcome {
  // True when the fleet disappeared (or never materialised) with work
  // still pending: the remaining shards must finish via the supervisor's
  // in-process fallback.
  bool fleet_lost = false;
  // Clusters completed from remote workers' results.
  size_t remote_clusters = 0;
  // Per-shard span buffers shipped by remote workers (index-aligned with
  // plan.shards; empty for shards with no accepted traced completion).
  // Only the first accepted ShardDone whose trace-id echo matches
  // spec.trace_id populates a slot — duplicate or fenced deliveries are
  // dropped (obs.spans_dropped), which is what keeps the merged trace
  // idempotent under retries.
  std::vector<std::vector<obs::SpanRecord>> shard_spans;
};

// Runs the membership/assignment loop over `plan`, filling
// (*cluster_results)[idx] for every cluster a remote worker completes
// (validated through the same artifact envelope as fork-mode results).
// Already-filled entries are respected and never reassigned. Returns when
// every non-quarantined shard is done, the fleet is lost, or the run's
// context requests a stop; unfinished clusters are simply left empty for
// the caller's fallback rungs.
RemoteFleetOutcome RunRemoteFleet(
    const ShardExecutionSpec& spec, const ShardPlan& plan,
    const DistOptions& options, const RunContext& ctx, DistReport* report,
    std::vector<std::optional<ShardClusterResult>>* cluster_results);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_MEMBERSHIP_H_
