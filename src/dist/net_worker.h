#ifndef CATAPULT_DIST_NET_WORKER_H_
#define CATAPULT_DIST_NET_WORKER_H_

#include <cstdint>
#include <string>

#include "src/dist/wire.h"
#include "src/graph/graph_database.h"

// The remote half of network-transparent sharding (DESIGN.md §14): the
// body of the standalone catapult_worker binary. A remote worker dials a
// supervisor endpoint, completes the versioned handshake (protocol +
// ConfigFingerprint + shard namespace; a typed kJoinReject maps to a
// distinct exit code), then loops: receive a ShardAssign carrying coarse
// clusters and their pre-split rng streams, compute each cluster through
// the exact same ComputeShardCluster as forked workers, and ship each
// result back as a ClusterResult frame. On a lost or fenced connection it
// reconnects under capped deterministic backoff, presenting its previous
// (worker-id, generation) so the supervisor bumps its generation instead
// of minting a new member.

namespace catapult::dist {

// Failpoint sites driving the network chaos matrix (tests arm these in
// the worker process; see also the channel-level sites in channel.h).
inline constexpr char kFailpointDupClusterResult[] =
    "dist.net.dup_cluster_result";
inline constexpr char kFailpointDupShardDone[] = "dist.net.dup_shard_done";
inline constexpr char kFailpointDropMidFrame[] = "dist.net.drop_mid_frame";
inline constexpr char kFailpointDelayHeartbeat[] = "dist.net.delay_heartbeat";
inline constexpr char kFailpointStallBeforeResult[] =
    "dist.net.stall_before_result";
inline constexpr char kFailpointKillAfterFirstResult[] =
    "dist.net.kill_after_first_result";

// Remote-worker exit codes (the fork-mode codes live in worker.h).
inline constexpr int kWorkerExitConnectFailed = 20;  // dial budget exhausted
inline constexpr int kWorkerExitRejected = 21;       // typed kJoinReject
inline constexpr int kWorkerExitProtocol = 22;       // malformed supervisor

struct RemoteWorkerOptions {
  std::string address;  // supervisor endpoint: "unix:PATH" / "tcp:HOST:PORT"
  uint64_t fingerprint = 0;  // ConfigFingerprint of this worker's (opts, db)
  std::string shard_namespace = kShardNamespace;
  std::string worker_name = "worker";
  // Overridable for skew tests; production workers never change this.
  uint64_t protocol = kDistProtocolVersion;

  double dial_timeout_ms = 2000.0;
  double handshake_timeout_ms = 5000.0;
  // Reconnect pacing: capped deterministic backoff over the consecutive-
  // failure count (src/util/backoff.h), reset on every successful join.
  double dial_backoff_base_ms = 50.0;
  double dial_backoff_cap_ms = 1000.0;
  // Consecutive dial/handshake failures tolerated before giving up.
  size_t max_dial_attempts = 5;

  double write_stall_timeout_ms = 5000.0;
  // How long kFailpointStallBeforeResult sleeps (tests tune this against
  // the supervisor's heartbeat timeout to manufacture a zombie).
  double stall_test_ms = 0.0;

  // Optional worker-local telemetry capture (both non-owning, may be null),
  // backing the worker binary's --metrics-out/--trace-out: every carried
  // shard's metrics deltas merge into `accumulate`, and its span buffer is
  // also imported into `local_tracer` (one process track per shard), so a
  // fleet run without the admin endpoint still leaves per-process
  // artifacts. Touched only from the worker's session thread.
  obs::MetricsSnapshot* accumulate = nullptr;
  obs::Tracer* local_tracer = nullptr;
};

// Runs the remote worker until the supervisor says the run is over
// (Shutdown kDone/kCancelled → 0), the handshake is refused, or the
// reconnect budget is exhausted. Returns the process exit code.
int RunRemoteWorker(const GraphDatabase& db,
                    const RemoteWorkerOptions& options);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_NET_WORKER_H_
