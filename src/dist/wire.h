#ifndef CATAPULT_DIST_WIRE_H_
#define CATAPULT_DIST_WIRE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"

// Length-prefixed CRC-framed messages, shared by the worker -> supervisor
// pipes (DESIGN.md §12) and the pattern-selection service's client/server
// sockets (DESIGN.md §13). A frame is
//
//   offset  size  field
//        0     4  magic "CTWF" (little-endian u32 0x46575443)
//        4     4  frame type (FrameType)
//        8     4  payload size in bytes
//       12     4  CRC32 of the payload (persist::Crc32, same polynomial as
//                 the checkpoint records)
//       16     -  payload
//
// The reader is incremental (pipes and sockets deliver arbitrary byte
// chunks) and treats any malformed header or checksum mismatch as a
// poisoned stream: framing is lost, so the receiver drops the peer — the
// supervisor kills the worker and retries the shard, the server disconnects
// the client — rather than attempting resynchronisation. A frame truncated
// by a peer death simply stays incomplete in the buffer — that is not
// corruption, just a dead peer.

namespace catapult::dist {

inline constexpr uint32_t kFrameMagic = 0x46575443u;  // "CTWF"
// Frames are tiny (heartbeats, per-cluster completions, one counter
// array); a larger size field is corruption, not data.
inline constexpr uint32_t kMaxFramePayload = 4u << 20;

enum class FrameType : uint32_t {
  kHello = 1,        // worker came up (shard, attempt, pid)
  kHeartbeat = 2,    // liveness (shard, seq, clusters_done)
  kClusterDone = 3,  // one coarse cluster durable (index, reused flag)
  kShardDone = 4,    // all clusters done + the worker's counter deltas
  kShardError = 5,   // structured failure report before a nonzero exit
  // Pattern-selection service (src/serve/, payloads in serve/protocol.h).
  kServeRequest = 6,   // client -> server: panel request for a budget
  kServeResponse = 7,  // server -> client: panel (complete or degraded)
  kServeShed = 8,      // server -> client: admission refused, retry later
  kServeError = 9,     // server -> client: request rejected (bad options)
  kServePing = 10,     // client -> server: liveness/status probe
  kServePong = 11,     // server -> client: probe reply
  // Network-transparent sharding (DESIGN.md §14): a remote catapult_worker
  // dials the supervisor's listener and speaks these in addition to the
  // worker frames above.
  kJoinRequest = 12,    // worker -> sup: versioned handshake
  kJoinAccept = 13,     // sup -> worker: admitted (worker-id, generation)
  kJoinReject = 14,     // sup -> worker: typed refusal, then hangup
  kShardAssign = 15,    // sup -> worker: shard of clusters + rng streams
  kClusterResult = 16,  // worker -> sup: one cluster's encoded artifact
  kShutdown = 17,       // sup -> worker: session over (done/fenced/cancel)
};

// Version of the supervisor<->remote-worker protocol. Bumped on any frame
// layout change; the handshake rejects mismatched peers with a typed
// kJoinReject instead of letting two skewed builds mis-decode each other.
// v2: trace context in kShardAssign, span buffers + trace echo in
// kShardDone.
inline constexpr uint64_t kDistProtocolVersion = 2;

// Shard checkpoint namespace both sides must agree on: remote workers'
// cluster results are persisted by the supervisor as kShard records under
// this namespace, so a worker built for a different artifact layout is
// turned away at the handshake.
inline constexpr char kShardNamespace[] = "shards";

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

// One encoded frame (header + payload), ready for a single write().
std::string EncodeFrame(FrameType type, const std::string& payload);

// Incremental frame decoder over a byte stream.
class FrameReader {
 public:
  void Feed(const char* data, size_t size);

  // The next complete frame, or nullopt when the buffer holds none (or the
  // stream is poisoned). Never blocks.
  std::optional<Frame> Next();

  // True once a malformed header or checksum mismatch was seen; the stream
  // cannot be re-synchronised and the peer should be treated as failed.
  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }

  // Externally poisons the stream (a frame whose CRC passed but whose
  // payload failed to decode — same verdict as header corruption).
  void Poison(const std::string& why) {
    corrupt_ = true;
    error_ = why;
  }

 private:
  std::string buffer_;
  size_t offset_ = 0;
  bool corrupt_ = false;
  std::string error_;
};

// --- frame payloads ---------------------------------------------------------

struct HelloFrame {
  uint64_t shard = 0;
  uint64_t attempt = 0;
  uint64_t pid = 0;
};

struct HeartbeatFrame {
  uint64_t shard = 0;
  uint64_t seq = 0;
  uint64_t clusters_done = 0;
};

struct ClusterDoneFrame {
  uint64_t shard = 0;
  uint64_t cluster_index = 0;
  bool reused = false;  // restored from a prior attempt's shard artifact
};

struct ShardDoneFrame {
  uint64_t shard = 0;
  uint64_t clusters_done = 0;
  // The worker's obs counter deltas, merged into the supervisor's registry
  // so a sharded run's metrics cover the work wherever it ran.
  std::vector<uint64_t> counters;  // size obs::kNumCounters
  // Echo of the assignment's trace id (0 when the assignment carried none):
  // the supervisor imports `spans` only when the echo matches its own
  // trace, so buffers from a stale run are dropped, not mis-merged.
  uint64_t trace_id = 0;
  // The worker's span buffer for this shard, timestamps normalized to the
  // batch's earliest open (Tracer::DrainSpans).
  std::vector<obs::SpanRecord> spans;
};

struct ShardErrorFrame {
  uint64_t shard = 0;
  std::string message;
};

// --- remote-worker handshake and shard-carrying payloads --------------------

struct JoinRequestFrame {
  uint64_t protocol = kDistProtocolVersion;
  uint64_t fingerprint = 0;  // ConfigFingerprint of the worker's (options, db)
  std::string shard_namespace = kShardNamespace;
  std::string worker_name;   // free-form operator label, logs only
  // Rejoin identity: non-zero after a connection loss so the supervisor can
  // bump the worker's generation instead of minting a new member. Zero on a
  // fresh join.
  uint64_t prev_worker_id = 0;
  uint64_t prev_generation = 0;
  uint64_t pid = 0;
};

struct JoinAcceptFrame {
  uint64_t worker_id = 0;
  uint64_t generation = 0;
  double heartbeat_interval_ms = 500.0;
  double heartbeat_timeout_ms = 2000.0;
};

// Why a handshake was refused. The worker maps these to a distinct exit
// code so operators see "wrong build" vs "wrong database" at a glance.
enum class JoinRejectCode : uint32_t {
  kProtocolMismatch = 1,
  kFingerprintMismatch = 2,
  kNamespaceMismatch = 3,
  kDraining = 4,  // supervisor is shutting down; do not rejoin
};

struct JoinRejectFrame {
  uint32_t code = 0;  // JoinRejectCode
  std::string message;
};

// One coarse cluster's work order: its member list and the pre-split rng
// stream its fine clustering must consume (zeros when fine is disabled).
struct ClusterWork {
  uint64_t index = 0;
  std::vector<GraphId> members;
  RngState stream;
};

struct ShardAssignFrame {
  uint64_t shard = 0;
  uint64_t attempt = 0;
  uint64_t generation = 0;  // fencing echo: results must carry it back
  bool fine_enabled = true;
  uint64_t fine_max_cluster_size = 0;
  bool mcs_connected = true;
  bool mcs_match_edge_labels = false;
  uint64_t mcs_node_budget = 0;
  double deadline_remaining_ms = 0.0;  // 0 = no deadline
  uint64_t mem_soft_limit_bytes = 0;
  uint64_t mem_hard_limit_bytes = 0;
  std::vector<ClusterWork> clusters;  // only the still-missing clusters
  // Distributed-trace context: workers record spans against this id and
  // echo it back with their buffers in kShardDone. parent_span_id is the
  // supervisor's sharded-phase span, under which merged worker tracks are
  // parented. Both 0 when the supervisor run is untraced.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct ClusterResultFrame {
  uint64_t shard = 0;
  uint64_t generation = 0;  // fenced generations are counted, never applied
  uint64_t cluster_index = 0;
  // EncodeShardResultPayload bytes (src/dist/worker.h) — the same payload a
  // forked worker persists; the supervisor wraps it into a kShard record.
  std::string payload;
};

enum class ShutdownCode : uint32_t {
  kDone = 1,       // run complete; exit cleanly
  kFenced = 2,     // this connection was declared dead; reconnect + rejoin
  kCancelled = 3,  // run cancelled; exit cleanly
};

struct ShutdownFrame {
  uint32_t code = 0;  // ShutdownCode
  std::string message;
};

std::string Encode(const HelloFrame& f);
std::string Encode(const HeartbeatFrame& f);
std::string Encode(const ClusterDoneFrame& f);
std::string Encode(const ShardDoneFrame& f);
std::string Encode(const ShardErrorFrame& f);
std::string Encode(const JoinRequestFrame& f);
std::string Encode(const JoinAcceptFrame& f);
std::string Encode(const JoinRejectFrame& f);
std::string Encode(const ShardAssignFrame& f);
std::string Encode(const ClusterResultFrame& f);
std::string Encode(const ShutdownFrame& f);
bool Decode(const std::string& payload, HelloFrame* f);
bool Decode(const std::string& payload, HeartbeatFrame* f);
bool Decode(const std::string& payload, ClusterDoneFrame* f);
bool Decode(const std::string& payload, ShardDoneFrame* f);
bool Decode(const std::string& payload, ShardErrorFrame* f);
bool Decode(const std::string& payload, JoinRequestFrame* f);
bool Decode(const std::string& payload, JoinAcceptFrame* f);
bool Decode(const std::string& payload, JoinRejectFrame* f);
bool Decode(const std::string& payload, ShardAssignFrame* f);
bool Decode(const std::string& payload, ClusterResultFrame* f);
bool Decode(const std::string& payload, ShutdownFrame* f);

// Serialised frame writer over a file descriptor, shared by the worker's
// main thread and its heartbeat thread. Each frame is assembled into one
// buffer and written under a mutex so frames never interleave. Write
// errors (supervisor gone) are remembered and further sends no-op: a
// worker that outlives its supervisor just runs to completion and exits.
class FrameSender {
 public:
  explicit FrameSender(int fd) : fd_(fd) {}

  template <typename F>
  void Send(const F& frame_payload, FrameType type) {
    SendEncoded(EncodeFrame(type, Encode(frame_payload)));
  }

  bool failed() const { return failed_; }

 private:
  void SendEncoded(const std::string& bytes);

  int fd_;
  std::mutex mutex_;
  bool failed_ = false;
};

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_WIRE_H_
