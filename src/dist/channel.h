#ifndef CATAPULT_DIST_CHANNEL_H_
#define CATAPULT_DIST_CHANNEL_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/dist/wire.h"

// Socket transport for network-transparent sharding (DESIGN.md §14). The
// CTWF framing in wire.h is transport-agnostic; this file supplies the
// byte-stream underneath it when workers live in other processes or on
// other machines: Unix-domain sockets for same-host fleets and TCP for
// cross-host ones. A Channel wraps one connected, non-blocking fd and adds
// the two things pipes never needed — interleave-safe frame writes with a
// write-stall deadline (a peer that stops reading but keeps the connection
// open must not wedge the supervisor), and a non-blocking drain into a
// FrameReader that distinguishes "no bytes yet" from "peer gone".
//
// Network faults are injectable as failpoints so the chaos tests can drive
// every failure arm deterministically without real packet loss.

namespace catapult::dist {

// Failpoint sites (armed by tests; see src/util/failpoint.h).
inline constexpr char kFailpointConnectRefused[] = "dist.net.connect_refused";
inline constexpr char kFailpointShortWrite[] = "dist.net.short_write";
inline constexpr char kFailpointWriteStall[] = "dist.net.write_stall";

// A parsed endpoint: "unix:/path/to.sock" or "tcp:HOST:PORT". TCP hosts
// are numeric IPv4 (or the literal "localhost"); fleet endpoints are
// operator-configured addresses, not names needing resolution.
struct Address {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;   // kUnix: filesystem path of the socket
  std::string host;   // kTcp
  uint16_t port = 0;  // kTcp; 0 = kernel-assigned (listeners only)
  std::string text;   // canonical form, for logs and reports
};

// Parses `text` into `out`. Returns false and fills `*error` on a
// malformed address (unknown scheme, empty path, bad port...).
bool ParseAddress(const std::string& text, Address* out, std::string* error);

// One connected byte-stream endpoint. Owns the fd (closed on destruction)
// and keeps it non-blocking. Not copyable; not thread-safe for reads, but
// SendEncoded is mutex-serialised so a heartbeat thread and a result
// thread can share the write side, mirroring FrameSender.
class Channel {
 public:
  Channel() = default;
  // Takes ownership of `fd` and switches it to non-blocking.
  explicit Channel(int fd, double write_stall_timeout_ms = 5000.0);
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool open() const { return fd_ >= 0 && !failed_; }
  int fd() const { return fd_; }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  // True when at least one send hit the write-stall deadline.
  bool write_stalled() const { return write_stalled_; }

  // Sends one already-encoded frame, whole or not at all from the peer's
  // perspective (mutex-serialised, written to completion). Blocks at most
  // write_stall_timeout_ms waiting for the socket to accept bytes; a stall
  // or error marks the channel failed and further sends no-op. Returns
  // false once failed.
  bool SendEncoded(const std::string& bytes);

  template <typename F>
  bool Send(const F& frame_payload, FrameType type) {
    return SendEncoded(EncodeFrame(type, Encode(frame_payload)));
  }

  enum class DrainStatus {
    kOk,     // drained everything currently readable (possibly 0 bytes)
    kEof,    // peer closed its write side
    kError,  // read error; channel is dead
  };

  // Reads every currently-available byte into `reader` without blocking.
  DrainStatus DrainInto(FrameReader* reader);

  void Close();

 private:
  int fd_ = -1;
  double write_stall_timeout_ms_ = 5000.0;
  std::mutex write_mutex_;
  bool failed_ = false;
  bool write_stalled_ = false;
  std::string error_;
};

// A listening endpoint. Binds + listens in Listen(), or adopts an
// already-listening fd (tests bind port 0 themselves to learn the real
// address before handing the fd to the supervisor). Unix socket paths
// bound here are unlinked on Close().
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens on `addr`. Returns "" on success, else the error.
  // For tcp port 0, the kernel-assigned port is reflected in address().
  std::string Listen(const Address& addr);

  // Adopts an fd that is already bound + listening. The fd is NOT owned:
  // the creator closes (and unlinks) it. address() is recovered via
  // getsockname where possible.
  void Adopt(int fd);

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  // Canonical text of the bound address ("unix:..." / "tcp:host:port").
  const std::string& address() const { return address_; }

  // Accepts one pending connection, non-blocking. Returns the connected
  // fd (non-blocking) or -1 when none is pending or accept failed.
  int Accept();

  void Close();

 private:
  int fd_ = -1;
  bool owned_ = false;
  std::string unlink_path_;  // non-empty when we bound a unix path
  std::string address_;
};

// Connects to `addr`, waiting at most `timeout_ms` for the connect to
// complete. Returns a connected non-blocking fd, or -1 with `*error` set
// (including the injected kFailpointConnectRefused fault).
int Dial(const Address& addr, double timeout_ms, std::string* error);

}  // namespace catapult::dist

#endif  // CATAPULT_DIST_CHANNEL_H_
