#include "src/dist/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/dist/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/persist/codec.h"
#include "src/persist/record_io.h"
#include "src/util/atomic_file.h"
#include "src/util/failpoint.h"
#include "src/util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <unistd.h>
#define CATAPULT_DIST_POSIX 1
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace catapult::dist {

namespace {

using persist::BinaryReader;
using persist::BinaryWriter;

std::string EncodeShardPayload(const std::vector<GraphId>& coarse_members,
                               size_t cluster_index,
                               const ShardClusterResult& result) {
  BinaryWriter w;
  w.PutU64(cluster_index);
  // The coarse member list binds the artifact to its cluster: a plan change
  // (or a misfiled artifact) is a validation failure, not silent reuse.
  persist::EncodeClusters({coarse_members}, w);
  persist::EncodeClusters(result.fine_clusters, w);
  w.PutU64(result.csgs.size());
  for (const ClusterSummaryGraph& csg : result.csgs) {
    persist::EncodeCsg(csg, w);
  }
  return w.TakeBuffer();
}

std::string DecodeShardPayload(const std::string& payload,
                               const std::vector<GraphId>& coarse_members,
                               size_t cluster_index,
                               ShardClusterResult* out) {
  BinaryReader r(payload);
  uint64_t stored_index = r.GetU64();
  std::vector<std::vector<GraphId>> stored_members;
  if (!persist::DecodeClusters(r, &stored_members)) {
    return "corrupt member list";
  }
  ShardClusterResult result;
  if (!persist::DecodeClusters(r, &result.fine_clusters)) {
    return "corrupt fine clusters";
  }
  uint64_t csg_count = r.GetU64();
  if (!r.ok() || csg_count != result.fine_clusters.size()) {
    return "csg count does not match fine cluster count";
  }
  result.csgs.reserve(csg_count);
  for (uint64_t i = 0; i < csg_count; ++i) {
    std::optional<ClusterSummaryGraph> csg = persist::DecodeCsg(r);
    if (!csg.has_value()) return "corrupt csg";
    result.csgs.push_back(std::move(*csg));
  }
  if (!r.ok() || !r.AtEnd()) return "corrupt shard payload";

  if (stored_index != cluster_index) {
    return "artifact bound to a different cluster index";
  }
  if (stored_members.size() != 1 || stored_members[0] != coarse_members) {
    return "artifact bound to a different coarse cluster";
  }
  // The fine clusters must partition the coarse member set exactly.
  std::vector<GraphId> covered;
  for (const auto& fine : result.fine_clusters) {
    if (fine.empty()) return "empty fine cluster";
    covered.insert(covered.end(), fine.begin(), fine.end());
  }
  std::vector<GraphId> expected = coarse_members;
  std::sort(covered.begin(), covered.end());
  std::sort(expected.begin(), expected.end());
  if (covered != expected) {
    return "fine clusters do not partition the coarse cluster";
  }
  for (size_t i = 0; i < result.csgs.size(); ++i) {
    if (result.csgs[i].cluster_size() != result.fine_clusters[i].size()) {
      return "csg cluster size mismatch";
    }
  }
  *out = std::move(result);
  return "";
}

// Flips one payload bit of an already-written artifact in place, simulating
// a worker that wrote garbage past the record envelope's protection. Driven
// only by the worker.corrupt_shard_artifact kill site.
void CorruptArtifactFile(const std::string& path) {
  std::string bytes;
  if (!ReadWholeFile(path, &bytes).empty()) return;
  if (bytes.size() < 48) return;
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  AtomicWriteFile(path, bytes);
}

}  // namespace

std::string ShardArtifactPath(const std::string& shard_dir,
                              size_t cluster_index) {
  return shard_dir + "/cluster-" + std::to_string(cluster_index) + ".ckpt";
}

ShardClusterResult ComputeShardCluster(const ShardExecutionSpec& spec,
                                       size_t cluster_index,
                                       const RunContext& ctx) {
  const std::vector<GraphId>& cluster = (*spec.coarse)[cluster_index];
  ShardClusterResult result;
  // Inline context: callers parallelise across clusters, so per-cluster
  // work must not re-enter the pool (same rule as FineClusterOne).
  RunContext inline_ctx = ctx.WithPool(nullptr);
  if (spec.fine_enabled) {
    result.fine_clusters =
        FineClusterOne(*spec.db, cluster, spec.fine,
                       spec.streams[cluster_index], inline_ctx,
                       &result.fine_complete);
  } else {
    result.fine_clusters.push_back(cluster);
  }
  result.csgs.reserve(result.fine_clusters.size());
  for (const std::vector<GraphId>& fine : result.fine_clusters) {
    bool fold_ok = true;
    result.csgs.push_back(BuildCsg(*spec.db, fine, inline_ctx, &fold_ok));
    if (!fold_ok) ++result.degraded_csgs;
  }
  return result;
}

std::string SaveShardArtifact(const ShardExecutionSpec& spec,
                              size_t cluster_index,
                              const ShardClusterResult& result) {
  return persist::WriteRecordFile(
      ShardArtifactPath(spec.shard_dir, cluster_index),
      persist::RecordType::kShard, spec.fingerprint,
      EncodeShardPayload((*spec.coarse)[cluster_index], cluster_index,
                         result));
}

std::string EncodeShardResultPayload(const ShardExecutionSpec& spec,
                                     size_t cluster_index,
                                     const ShardClusterResult& result) {
  return EncodeShardPayload((*spec.coarse)[cluster_index], cluster_index,
                            result);
}

std::string SaveShardArtifactPayload(const ShardExecutionSpec& spec,
                                     size_t cluster_index,
                                     const std::string& payload) {
  return persist::WriteRecordFile(
      ShardArtifactPath(spec.shard_dir, cluster_index),
      persist::RecordType::kShard, spec.fingerprint, payload);
}

std::string LoadShardArtifact(const ShardExecutionSpec& spec,
                              size_t cluster_index, ShardClusterResult* out) {
  std::string payload;
  std::string err = persist::ReadRecordFile(
      ShardArtifactPath(spec.shard_dir, cluster_index),
      persist::RecordType::kShard, spec.fingerprint, &payload);
  if (!err.empty()) return err;
  return DecodeShardPayload(payload, (*spec.coarse)[cluster_index],
                            cluster_index, out);
}

#if defined(CATAPULT_DIST_POSIX)

int RunShardWorker(const ShardExecutionSpec& spec, size_t shard_index,
                   size_t attempt, const std::vector<size_t>& clusters,
                   int pipe_fd) {
  // A dead supervisor makes pipe writes fail with EPIPE, not a signal.
  ::signal(SIGPIPE, SIG_IGN);
#if defined(__linux__)
  // Never outlive the supervisor (e.g. the supervisor itself was SIGKILLed).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif

  // The armed failpoint table is fork-inherited and this child's hit-count
  // consumption never propagates back to the supervisor, so one-shot chaos
  // sites are gated on the first attempt: the retry sees them armed but
  // does not evaluate them.
  const bool first_attempt = attempt == 0;

  FrameSender sender(pipe_fd);
  sender.Send(HelloFrame{shard_index, attempt,
                         static_cast<uint64_t>(::getpid())},
              FrameType::kHello);

  if (first_attempt && CATAPULT_FAILPOINT(kFailpointHangHeartbeat)) {
    // A wedged worker: alive as a process, silent on the pipe, making no
    // progress. Only the supervisor's heartbeat deadline can clear it.
    for (;;) ::pause();
  }
  if (CATAPULT_FAILPOINT(kFailpointFailAlways)) {
    sender.Send(ShardErrorFrame{shard_index, "injected: worker.fail_always"},
                FrameType::kShardError);
    return kWorkerExitInjected;
  }
  if (first_attempt && CATAPULT_FAILPOINT(kFailpointExitNonzero)) {
    return kWorkerExitInjectedExit;  // silent abnormal exit, no error frame
  }

  // Worker-private observability and execution environment, all created
  // after the fork: the supervisor forks with a single thread, and every
  // thread this process uses is its own.
  obs::MetricsRegistry metrics;
  obs::ScopedMetricsScope metrics_scope(&metrics);
  // Spans are recorded only for traced runs (trace_id != 0) and shipped in
  // the ShardDone frame; timestamps are normalized at drain, so the
  // worker's own clock origin never leaks into the merged trace.
  obs::Tracer tracer;
  obs::Tracer* span_sink = spec.trace_id != 0 ? &tracer : nullptr;
  ThreadPool pool(spec.worker_threads);
  MemoryBudget budget =
      (spec.mem_soft_limit_bytes != 0 || spec.mem_hard_limit_bytes != 0)
          ? MemoryBudget::Limited(spec.mem_soft_limit_bytes,
                                  spec.mem_hard_limit_bytes)
          : MemoryBudget::Unlimited();
  RunContext ctx = RunContext(spec.deadline)
                       .WithMemory(std::move(budget))
                       .WithPool(&pool)
                       .WithObservability(&metrics, span_sink);

  std::atomic<uint64_t> clusters_done{0};
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool stop_heartbeat = false;
  std::thread heartbeat([&] {
    uint64_t seq = 0;
    auto interval = std::chrono::duration<double, std::milli>(
        std::max(spec.heartbeat_interval_ms, 1.0));
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!stop_heartbeat) {
      sender.Send(HeartbeatFrame{shard_index, seq++,
                                 clusters_done.load(std::memory_order_relaxed)},
                  FrameType::kHeartbeat);
      hb_cv.wait_for(lock, interval, [&] { return stop_heartbeat; });
    }
  });

  std::atomic<bool> failed{false};
  std::vector<std::string> errors(clusters.size());
  ParallelFor(ctx, clusters.size(), 1, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    size_t idx = clusters[i];
    obs::Span cluster_span(span_sink, "cluster-" + std::to_string(idx));
    ShardClusterResult result;
    bool reused = LoadShardArtifact(spec, idx, &result).empty();
    if (!reused) {
      result = ComputeShardCluster(spec, idx, ctx);
      if (!result.Complete()) {
        // Degraded work is never persisted: a retry (or the in-process
        // fallback) must either produce the full result or degrade under
        // the supervisor's own context.
        errors[i] = "cluster " + std::to_string(idx) +
                    " degraded (stop requested)";
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      if (first_attempt &&
          CATAPULT_FAILPOINT(kFailpointKillBeforeCheckpoint)) {
        ::raise(SIGKILL);
      }
      std::string err = SaveShardArtifact(spec, idx, result);
      if (first_attempt &&
          CATAPULT_FAILPOINT(kFailpointCorruptShardArtifact)) {
        CorruptArtifactFile(ShardArtifactPath(spec.shard_dir, idx));
      }
      if (first_attempt && CATAPULT_FAILPOINT(kFailpointKillAfterCheckpoint)) {
        ::raise(SIGKILL);
      }
      if (!err.empty()) {
        errors[i] = "cluster " + std::to_string(idx) +
                    " checkpoint failed: " + err;
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
    sender.Send(ClusterDoneFrame{shard_index, idx, reused},
                FrameType::kClusterDone);
    clusters_done.fetch_add(1, std::memory_order_relaxed);
  });

  {
    std::lock_guard<std::mutex> lock(hb_mutex);
    stop_heartbeat = true;
  }
  hb_cv.notify_all();
  heartbeat.join();

  if (failed.load()) {
    std::string message = "shard failed";
    for (const std::string& err : errors) {
      if (!err.empty()) {
        message = err;
        break;
      }
    }
    sender.Send(ShardErrorFrame{shard_index, message}, FrameType::kShardError);
    return kWorkerExitShardFailed;
  }

  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  ShardDoneFrame done;
  done.shard = shard_index;
  done.clusters_done = clusters_done.load();
  done.counters.assign(snapshot.counters.begin(), snapshot.counters.end());
  done.trace_id = spec.trace_id;
  if (span_sink != nullptr) done.spans = tracer.DrainSpans();
  sender.Send(done, FrameType::kShardDone);
  return kWorkerExitOk;
}

#else  // !CATAPULT_DIST_POSIX

int RunShardWorker(const ShardExecutionSpec&, size_t, size_t,
                   const std::vector<size_t>&, int) {
  return kWorkerExitShardFailed;
}

#endif

}  // namespace catapult::dist
