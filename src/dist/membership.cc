#include "src/dist/membership.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/dist/channel.h"
#include "src/dist/registry.h"
#include "src/dist/wire.h"
#include "src/obs/admin.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/backoff.h"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <poll.h>
#define CATAPULT_DIST_NET_POSIX 1
#endif

namespace catapult::dist {

namespace {

using Clock = std::chrono::steady_clock;

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

Clock::time_point AfterMillis(Clock::time_point from, double ms) {
  return from + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

#if defined(CATAPULT_DIST_NET_POSIX)

RemoteFleetOutcome RunRemoteFleet(
    const ShardExecutionSpec& spec, const ShardPlan& plan,
    const DistOptions& options, const RunContext& ctx, DistReport* report,
    std::vector<std::optional<ShardClusterResult>>* cluster_results) {
  RemoteFleetOutcome outcome;

  Listener listener;
  if (options.listen_fd >= 0) {
    listener.Adopt(options.listen_fd);
  } else {
    Address addr;
    std::string err;
    if (!ParseAddress(options.listen_address, &addr, &err) ||
        !(err = listener.Listen(addr)).empty()) {
      // An unusable listener is fleet loss before the fleet existed; the
      // caller's fallback rungs finish the run.
      report->events.push_back(ShardEvent{ShardEvent::Kind::kFleetLost, 0,
                                          "listener: " + err});
      outcome.fleet_lost = true;
      return outcome;
    }
  }
  report->listen_address = listener.address();

  // Optional live-telemetry endpoint: the handler runs on the admin
  // server's own thread and only ever reads the latest published strings,
  // so the supervision loop never blocks on a scrape.
  // Declared before `admin` so the server (whose handler thread reads
  // them) is destroyed first on every return path.
  std::mutex admin_mutex;
  std::string admin_metrics_text;
  std::string admin_statusz;
  obs::AdminServer admin;
  const Clock::time_point admin_started = Clock::now();
  if (!options.admin_listen.empty()) {
    std::string admin_err = admin.Start(
        options.admin_listen, [&](const std::string& path) {
          obs::AdminResponse resp;
          std::lock_guard<std::mutex> lock(admin_mutex);
          if (path == "/metrics") {
            resp.body = admin_metrics_text;
          } else if (path == "/statusz") {
            resp.body = admin_statusz;
            resp.content_type = "application/json";
          } else {
            resp.status = 404;
            resp.body = "not found\n";
          }
          return resp;
        });
    if (!admin_err.empty()) {
      // Best-effort: telemetry must never take down the fleet.
      std::fprintf(stderr, "catapult: dist admin endpoint unavailable: %s\n",
                   admin_err.c_str());
    }
  }

  const double hb_interval_ms =
      options.heartbeat_interval_ms > 0.0
          ? options.heartbeat_interval_ms
          : std::max(options.heartbeat_timeout_ms / 4.0, 1.0);

  struct ShardState {
    enum class Phase { kPending, kAssigned, kDone, kQuarantined };
    Phase phase = Phase::kPending;
    size_t attempt = 0;  // failures so far
    Clock::time_point retry_after{};
    std::string last_error;
  };
  using ShardPhase = ShardState::Phase;

  struct Conn {
    enum class State { kHandshaking, kActive, kFenced };
    std::unique_ptr<Channel> channel;
    FrameReader reader;
    State state = State::kHandshaking;
    uint64_t worker_id = 0;
    uint64_t generation = 0;
    Clock::time_point last_heartbeat{};
    Clock::time_point handshake_deadline{};
    // Index into plan.shards, or npos when idle.
    size_t assigned_shard = static_cast<size_t>(-1);
    std::vector<uint64_t> worker_counters;
    // Span buffer + trace-id echo from the last ShardDone; accepted into
    // the outcome only when the echo matches the run's trace id.
    std::vector<obs::SpanRecord> worker_spans;
    uint64_t done_trace_id = 0;
    bool got_done = false;
  };
  using ConnState = Conn::State;
  constexpr size_t kNone = static_cast<size_t>(-1);

  std::vector<ShardState> shards(plan.shards.size());
  std::vector<std::unique_ptr<Conn>> conns;
  WorkerRegistry registry;
  ExponentialBackoff backoff(options.backoff_base_ms, options.backoff_cap_ms);
  outcome.shard_spans.resize(plan.shards.size());

  // Shards whose every cluster already has a result (prior-run artifacts
  // pre-loaded by the caller) are complete before any worker joins.
  auto shard_missing = [&](size_t s) {
    std::vector<size_t> missing;
    for (size_t idx : plan.shards[s]) {
      if (!(*cluster_results)[idx].has_value()) missing.push_back(idx);
    }
    return missing;
  };
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shard_missing(s).empty()) shards[s].phase = ShardPhase::kDone;
  }

  auto event = [&](ShardEvent::Kind kind, size_t shard,
                   std::string detail = "") {
    report->events.push_back(ShardEvent{kind, shard, std::move(detail)});
  };

  auto quarantine = [&](size_t s, const std::string& reason) {
    shards[s].phase = ShardPhase::kQuarantined;
    shards[s].last_error = reason;
    ++report->quarantined_shards;
    obs::Count(obs::Counter::kDistQuarantines);
    event(ShardEvent::Kind::kShardQuarantined, s, reason);
  };

  auto fail_shard = [&](size_t s, const std::string& reason) {
    ShardState& st = shards[s];
    st.last_error = reason;
    st.phase = ShardPhase::kPending;
    ++st.attempt;
    if (st.attempt > options.max_shard_retries) {
      quarantine(s, "failure budget exhausted after " +
                        std::to_string(st.attempt) + " attempts: " + reason);
      return;
    }
    ++report->shard_retries;
    obs::Count(obs::Counter::kDistShardRetries);
    event(ShardEvent::Kind::kShardRetried, s,
          "attempt=" + std::to_string(st.attempt) + ": " + reason);
    double delay_ms = backoff.DelayMs(st.attempt);
    st.retry_after = AfterMillis(Clock::now(), delay_ms);
    if (delay_ms > 0.0) {
      ++report->backoff_waits;
      report->backoff_total_ms += delay_ms;
      obs::Count(obs::Counter::kDistBackoffWaits);
      char detail[48];
      std::snprintf(detail, sizeof(detail), "delay_ms=%.0f", delay_ms);
      event(ShardEvent::Kind::kBackoffWait, s, detail);
    }
  };

  // Declares a member dead and retires its generation. The connection is
  // kept in a draining state: any frame the zombie still sends is counted
  // as fenced and never applied; the (best-effort) kFenced shutdown tells
  // a live-but-slow worker to reconnect and rejoin.
  auto fence = [&](Conn& c, const std::string& reason) {
    if (c.state == ConnState::kFenced) return;
    if (c.state == ConnState::kActive) {
      registry.MarkDead(c.worker_id, Clock::now());
      if (c.channel->write_stalled()) ++report->write_stalls;
      event(ShardEvent::Kind::kWorkerFenced,
            c.assigned_shard == kNone ? 0 : c.assigned_shard,
            "worker=" + std::to_string(c.worker_id) +
                " gen=" + std::to_string(c.generation) + ": " + reason);
      c.channel->Send(ShutdownFrame{static_cast<uint32_t>(
                                        ShutdownCode::kFenced),
                                    reason},
                      FrameType::kShutdown);
      ++report->worker_deaths;
      obs::Count(obs::Counter::kDistWorkerDeaths);
      if (c.assigned_shard != kNone) {
        fail_shard(c.assigned_shard, reason);
        c.assigned_shard = kNone;
      }
    }
    c.state = ConnState::kFenced;
  };

  auto complete_shard = [&](Conn& c) {
    size_t s = c.assigned_shard;
    shards[s].phase = ShardPhase::kDone;
    for (size_t i = 0;
         i < c.worker_counters.size() && i < obs::kNumCounters; ++i) {
      if (c.worker_counters[i] != 0) {
        obs::Count(static_cast<obs::Counter>(i), c.worker_counters[i]);
      }
    }
    // Span shipment: accept the buffer only when the trace-id echo matches
    // the run and no earlier completion already filled this shard's slot —
    // a duplicate or stale-trace buffer is counted and dropped, never
    // merged twice.
    if (!c.worker_spans.empty()) {
      if (spec.trace_id != 0 && c.done_trace_id == spec.trace_id &&
          outcome.shard_spans[s].empty()) {
        outcome.shard_spans[s] = std::move(c.worker_spans);
      } else {
        obs::Count(obs::Counter::kObsSpansDropped, c.worker_spans.size());
      }
    }
    event(ShardEvent::Kind::kShardCompleted, s,
          "clusters=" + std::to_string(plan.shards[s].size()) +
              " worker=" + std::to_string(c.worker_id));
    c.assigned_shard = kNone;
    c.worker_counters.clear();
    c.worker_spans.clear();
    c.done_trace_id = 0;
    c.got_done = false;
  };

  auto handle_frame = [&](Conn& c, const Frame& frame) {
    // Anything a fenced connection still delivers — or a stale-generation
    // echo racing a reassignment — is observed but never applied.
    bool fenced = c.state == ConnState::kFenced;
    if (!fenced && frame.type == FrameType::kClusterResult) {
      ClusterResultFrame probe;
      if (Decode(frame.payload, &probe) &&
          (probe.generation != c.generation ||
           !registry.IsCurrent(c.worker_id, c.generation))) {
        fenced = true;
      }
    }
    if (fenced) {
      ++report->fenced_frames;
      obs::Count(obs::Counter::kDistNetFencedFrames);
      return;
    }

    if (c.state == ConnState::kHandshaking) {
      if (frame.type != FrameType::kJoinRequest) {
        c.reader.Poison("frame before handshake");
        return;
      }
      JoinRequestFrame req;
      if (!Decode(frame.payload, &req)) {
        c.reader.Poison("bad join-request");
        return;
      }
      JoinRejectFrame reject;
      if (req.protocol != kDistProtocolVersion) {
        reject.code = static_cast<uint32_t>(JoinRejectCode::kProtocolMismatch);
        reject.message = "protocol " + std::to_string(req.protocol) +
                         " != " + std::to_string(kDistProtocolVersion);
      } else if (req.fingerprint != spec.fingerprint) {
        reject.code =
            static_cast<uint32_t>(JoinRejectCode::kFingerprintMismatch);
        reject.message = "config/database fingerprint mismatch";
      } else if (req.shard_namespace != kShardNamespace) {
        reject.code = static_cast<uint32_t>(JoinRejectCode::kNamespaceMismatch);
        reject.message = "shard namespace '" + req.shard_namespace +
                         "' != '" + kShardNamespace + "'";
      }
      if (reject.code != 0) {
        ++report->workers_rejected;
        obs::Count(obs::Counter::kDistNetRejects);
        event(ShardEvent::Kind::kWorkerRejected, 0,
              "name=" + req.worker_name + ": " + reject.message);
        c.channel->Send(reject, FrameType::kJoinReject);
        c.channel->Close();
        c.state = ConnState::kFenced;  // closed; reaped by the cleanup pass
        return;
      }
      WorkerRegistry::Admission adm =
          registry.Join(req.prev_worker_id, req.prev_generation, Clock::now());
      c.state = ConnState::kActive;
      c.worker_id = adm.worker_id;
      c.generation = adm.generation;
      c.last_heartbeat = Clock::now();
      ++report->workers_joined;
      obs::Count(obs::Counter::kDistNetJoins);
      obs::SetGaugeMax(obs::Gauge::kDistWorkersPeak, registry.alive());
      if (adm.reconnect) {
        ++report->reconnects;
        obs::Count(obs::Counter::kDistNetReconnects);
        obs::Observe(obs::Hist::kDistReconnectMillis,
                     static_cast<uint64_t>(adm.down_ms));
        event(ShardEvent::Kind::kWorkerReconnected, 0,
              "worker=" + std::to_string(adm.worker_id) +
                  " gen=" + std::to_string(adm.generation) +
                  " name=" + req.worker_name);
      } else {
        event(ShardEvent::Kind::kWorkerJoined, 0,
              "worker=" + std::to_string(adm.worker_id) +
                  " name=" + req.worker_name);
      }
      JoinAcceptFrame accept;
      accept.worker_id = adm.worker_id;
      accept.generation = adm.generation;
      accept.heartbeat_interval_ms = hb_interval_ms;
      accept.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
      if (!c.channel->Send(accept, FrameType::kJoinAccept)) {
        fence(c, "join-accept send failed: " + c.channel->error());
      }
      return;
    }

    c.last_heartbeat = Clock::now();  // any live-generation frame is liveness
    switch (frame.type) {
      case FrameType::kHeartbeat: {
        HeartbeatFrame f;
        if (!Decode(frame.payload, &f)) {
          c.reader.Poison("bad heartbeat");
          break;
        }
        ++report->heartbeats;
        obs::Count(obs::Counter::kDistHeartbeats);
        break;
      }
      case FrameType::kClusterResult: {
        ClusterResultFrame f;
        if (!Decode(frame.payload, &f)) {
          c.reader.Poison("bad cluster-result");
          break;
        }
        if (c.assigned_shard == kNone || f.shard != c.assigned_shard ||
            std::find(plan.shards[f.shard].begin(), plan.shards[f.shard].end(),
                      static_cast<size_t>(f.cluster_index)) ==
                plan.shards[f.shard].end()) {
          c.reader.Poison("cluster-result for unassigned work");
          break;
        }
        size_t idx = static_cast<size_t>(f.cluster_index);
        if ((*cluster_results)[idx].has_value()) {
          // Re-delivery (retry crossing a reassignment, or an injected
          // duplicate): results are idempotent by construction.
          ++report->duplicate_clusters;
          obs::Count(obs::Counter::kDistNetDuplicateClusters);
          break;
        }
        // Persist the payload under the same envelope a forked worker
        // writes, then re-validate through the same loader: the supervisor
        // side of the trust boundary never believes a remote result it
        // cannot re-derive the binding of.
        std::string err = SaveShardArtifactPayload(spec, idx, f.payload);
        ShardClusterResult result;
        if (err.empty()) err = LoadShardArtifact(spec, idx, &result);
        if (!err.empty()) {
          ++report->artifacts_rejected;
          obs::Count(obs::Counter::kDistArtifactsRejected);
          event(ShardEvent::Kind::kArtifactRejected, f.shard,
                "cluster=" + std::to_string(idx) + ": " + err);
          fence(c, "cluster " + std::to_string(idx) + " rejected: " + err);
          break;
        }
        (*cluster_results)[idx] = std::move(result);
        ++outcome.remote_clusters;
        ++report->remote_clusters;
        obs::Count(obs::Counter::kDistNetRemoteClusters);
        break;
      }
      case FrameType::kShardDone: {
        ShardDoneFrame f;
        if (!Decode(frame.payload, &f)) {
          c.reader.Poison("bad shard-done");
          break;
        }
        if (c.assigned_shard == kNone || f.shard != c.assigned_shard) break;
        c.got_done = true;
        c.worker_counters = std::move(f.counters);
        c.worker_spans = std::move(f.spans);
        c.done_trace_id = f.trace_id;
        if (shard_missing(c.assigned_shard).empty()) {
          complete_shard(c);
        } else {
          fence(c, "shard-done with clusters still missing");
        }
        break;
      }
      case FrameType::kShardError: {
        ShardErrorFrame f;
        if (Decode(frame.payload, &f) && c.assigned_shard != kNone) {
          fence(c, "worker reported: " + f.message);
        }
        break;
      }
      default:
        // Hello/ClusterDone and the serve frames have no meaning on a
        // membership connection.
        c.reader.Poison("unexpected frame type");
        break;
    }
  };

  // Snapshot-and-publish for the admin endpoint: one pass over the loop's
  // own state per iteration, stored under the admin mutex for the scrape
  // thread. Cheap enough to run unconditionally per tick.
  auto publish_admin = [&] {
    if (!admin.started()) return;
    std::string metrics_text;
    if (ctx.metrics() != nullptr) {
      metrics_text = obs::RenderPrometheusText(ctx.metrics()->Snapshot());
    }
    size_t done = 0, pending = 0, assigned = 0, quarantined = 0;
    for (const ShardState& st : shards) {
      switch (st.phase) {
        case ShardPhase::kDone: ++done; break;
        case ShardPhase::kPending: ++pending; break;
        case ShardPhase::kAssigned: ++assigned; break;
        case ShardPhase::kQuarantined: ++quarantined; break;
      }
    }
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("uptime_ms");
    w.Value(MillisBetween(admin_started, Clock::now()));
    w.Key("fingerprint");
    w.Value(spec.fingerprint);
    w.Key("listen_address");
    w.Value(listener.address());
    w.Key("shards");
    w.BeginObject();
    w.Key("total");
    w.Value(static_cast<uint64_t>(shards.size()));
    w.Key("done");
    w.Value(static_cast<uint64_t>(done));
    w.Key("pending");
    w.Value(static_cast<uint64_t>(pending));
    w.Key("assigned");
    w.Value(static_cast<uint64_t>(assigned));
    w.Key("quarantined");
    w.Value(static_cast<uint64_t>(quarantined));
    w.EndObject();
    w.Key("remote_clusters");
    w.Value(static_cast<uint64_t>(outcome.remote_clusters));
    w.Key("workers_alive");
    w.Value(static_cast<uint64_t>(registry.alive()));
    w.Key("workers");
    w.BeginArray();
    for (const WorkerRegistry::MemberInfo& m : registry.Members()) {
      w.BeginObject();
      w.Key("worker_id");
      w.Value(m.worker_id);
      w.Key("generation");
      w.Value(m.generation);
      w.Key("alive");
      w.Value(m.alive);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::string statusz = w.str() + "\n";
    std::lock_guard<std::mutex> lock(admin_mutex);
    admin_metrics_text = std::move(metrics_text);
    admin_statusz = std::move(statusz);
  };
  publish_admin();

  Clock::time_point no_fleet_since = Clock::now();
  bool had_fleet_gap_timer = true;

  for (;;) {
    Clock::time_point now = Clock::now();
    publish_admin();

    // Work left?
    bool work_left = false;
    for (const ShardState& st : shards) {
      if (st.phase == ShardPhase::kPending ||
          st.phase == ShardPhase::kAssigned) {
        work_left = true;
        break;
      }
    }
    if (!work_left) {
      for (auto& c : conns) {
        if (c->state == ConnState::kActive) {
          c->channel->Send(ShutdownFrame{static_cast<uint32_t>(
                                             ShutdownCode::kDone),
                                         "run complete"},
                           FrameType::kShutdown);
        }
      }
      break;
    }

    if (ctx.StopRequested("dist.net.supervise")) {
      for (auto& c : conns) {
        if (c->state == ConnState::kActive) {
          c->channel->Send(ShutdownFrame{static_cast<uint32_t>(
                                             ShutdownCode::kCancelled),
                                         "run stop requested"},
                           FrameType::kShutdown);
        }
      }
      break;
    }

    // Assignment: pending shards (past their backoff) to idle members, in
    // worker-id admission order — deterministic given the same fleet.
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardState& st = shards[s];
      if (st.phase != ShardPhase::kPending || now < st.retry_after) continue;
      Conn* idle = nullptr;
      for (auto& c : conns) {
        if (c->state == ConnState::kActive && c->assigned_shard == kNone &&
            !c->channel->failed()) {
          if (idle == nullptr || c->worker_id < idle->worker_id) {
            idle = c.get();
          }
        }
      }
      if (idle == nullptr) break;
      ShardAssignFrame assign;
      assign.shard = s;
      assign.attempt = st.attempt;
      assign.generation = idle->generation;
      assign.fine_enabled = spec.fine_enabled;
      assign.fine_max_cluster_size = spec.fine.max_cluster_size;
      assign.mcs_connected = spec.fine.mcs.connected;
      assign.mcs_match_edge_labels = spec.fine.mcs.match_edge_labels;
      assign.mcs_node_budget = spec.fine.mcs.node_budget;
      assign.deadline_remaining_ms =
          spec.deadline.infinite() ? 0.0
                                   : spec.deadline.RemainingSeconds() * 1e3;
      assign.mem_soft_limit_bytes = spec.mem_soft_limit_bytes;
      assign.mem_hard_limit_bytes = spec.mem_hard_limit_bytes;
      assign.trace_id = spec.trace_id;
      assign.parent_span_id = spec.parent_span_id;
      for (size_t idx : shard_missing(s)) {
        ClusterWork work;
        work.index = idx;
        work.members = (*spec.coarse)[idx];
        if (spec.fine_enabled) work.stream = spec.streams[idx];
        assign.clusters.push_back(std::move(work));
      }
      if (!idle->channel->Send(assign, FrameType::kShardAssign)) {
        fence(*idle, "assign send failed: " + idle->channel->error());
        continue;  // shard stays pending; try the next idle member
      }
      idle->assigned_shard = s;
      idle->got_done = false;
      st.phase = ShardPhase::kAssigned;
      event(ShardEvent::Kind::kShardAssigned, s,
            "worker=" + std::to_string(idle->worker_id) +
                " gen=" + std::to_string(idle->generation) + " clusters=" +
                std::to_string(assign.clusters.size()) +
                " attempt=" + std::to_string(st.attempt));
    }

    // Fleet-loss detection: pending work, nobody alive, nobody knocking.
    bool prospects = false;
    for (const auto& c : conns) {
      if (c->state != ConnState::kFenced) {
        prospects = true;
        break;
      }
    }
    if (prospects) {
      had_fleet_gap_timer = false;
    } else {
      if (!had_fleet_gap_timer) {
        no_fleet_since = now;
        had_fleet_gap_timer = true;
      }
      if (MillisBetween(no_fleet_since, now) >= options.join_timeout_ms) {
        size_t lost = 0;
        for (const ShardState& st : shards) {
          if (st.phase == ShardPhase::kPending ||
              st.phase == ShardPhase::kAssigned) {
            ++lost;
          }
        }
        report->fleet_lost_fallbacks += lost;
        event(ShardEvent::Kind::kFleetLost, 0,
              "no members for " +
                  std::to_string(static_cast<long>(options.join_timeout_ms)) +
                  "ms; " + std::to_string(lost) + " shards fall back");
        outcome.fleet_lost = true;
        break;
      }
    }

    // Poll: listener + every connection, until the nearest deadline.
    double timeout_ms = 50.0;
    for (const auto& c : conns) {
      if (c->state == ConnState::kActive) {
        double until = options.heartbeat_timeout_ms -
                       MillisBetween(c->last_heartbeat, now);
        timeout_ms = std::min(timeout_ms, std::max(until, 0.0));
      } else if (c->state == ConnState::kHandshaking) {
        double until = MillisBetween(now, c->handshake_deadline);
        timeout_ms = std::min(timeout_ms, std::max(until, 0.0));
      }
    }
    for (const ShardState& st : shards) {
      if (st.phase == ShardPhase::kPending) {
        double until = MillisBetween(now, st.retry_after);
        if (until > 0.0) timeout_ms = std::min(timeout_ms, until);
      }
    }

    std::vector<struct pollfd> poll_fds;
    std::vector<Conn*> poll_conns;
    if (listener.open()) {
      poll_fds.push_back({listener.fd(), POLLIN, 0});
      poll_conns.push_back(nullptr);
    }
    for (auto& c : conns) {
      if (c->channel->fd() >= 0) {
        poll_fds.push_back({c->channel->fd(), POLLIN, 0});
        poll_conns.push_back(c.get());
      }
    }
    if (!poll_fds.empty()) {
      int rc = ::poll(poll_fds.data(), poll_fds.size(),
                      std::max(1, static_cast<int>(std::ceil(timeout_ms))));
      (void)rc;
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::max(timeout_ms, 1.0)));
    }

    for (size_t i = 0; i < poll_fds.size(); ++i) {
      if (poll_fds[i].revents == 0) continue;
      if (poll_conns[i] == nullptr) {
        // Listener readable: accept everything pending.
        for (;;) {
          int fd = listener.Accept();
          if (fd < 0) break;
          auto conn = std::make_unique<Conn>();
          conn->channel = std::make_unique<Channel>(
              fd, options.write_stall_timeout_ms);
          conn->handshake_deadline =
              AfterMillis(Clock::now(), options.heartbeat_timeout_ms);
          conns.push_back(std::move(conn));
        }
        continue;
      }
      Conn& c = *poll_conns[i];
      Channel::DrainStatus status = c.channel->DrainInto(&c.reader);
      while (std::optional<Frame> frame = c.reader.Next()) {
        handle_frame(c, *frame);
        if (c.reader.corrupt() || c.channel->fd() < 0) break;
      }
      if (c.reader.corrupt()) {
        fence(c, "poisoned stream: " + c.reader.error());
        c.channel->Close();
      } else if (status != Channel::DrainStatus::kOk) {
        // EOF or read error: a handshake that never happened just goes
        // away; an active member's disappearance fences it.
        fence(c, status == Channel::DrainStatus::kEof
                     ? "connection closed"
                     : "read error: " + c.channel->error());
        c.channel->Close();
      }
    }

    now = Clock::now();
    for (auto& c : conns) {
      if (c->state == ConnState::kActive) {
        if (c->channel->failed()) {
          fence(*c, "send failed: " + c->channel->error());
        } else if (MillisBetween(c->last_heartbeat, now) >
                   options.heartbeat_timeout_ms) {
          ++report->worker_hangs;
          obs::Count(obs::Counter::kDistWorkerHangs);
          char detail[64];
          std::snprintf(detail, sizeof(detail), "no heartbeat for %.0fms",
                        MillisBetween(c->last_heartbeat, now));
          event(ShardEvent::Kind::kWorkerHung,
                c->assigned_shard == kNone ? 0 : c->assigned_shard, detail);
          fence(*c, "heartbeat deadline missed");
        }
      } else if (c->state == ConnState::kHandshaking &&
                 now >= c->handshake_deadline) {
        c->channel->Close();
        c->state = ConnState::kFenced;  // drained no more; drop below
      }
    }

    // Drop connections that are fenced and fully closed.
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->state == ConnState::kFenced &&
                                        c->channel->fd() < 0;
                               }),
                conns.end());
  }

  return outcome;
}

#else  // !CATAPULT_DIST_NET_POSIX

RemoteFleetOutcome RunRemoteFleet(
    const ShardExecutionSpec&, const ShardPlan&, const DistOptions&,
    const RunContext&, DistReport* report,
    std::vector<std::optional<ShardClusterResult>>*) {
  report->events.push_back(ShardEvent{ShardEvent::Kind::kFleetLost, 0,
                                      "sockets unsupported on this platform"});
  RemoteFleetOutcome outcome;
  outcome.fleet_lost = true;
  return outcome;
}

#endif  // CATAPULT_DIST_NET_POSIX

}  // namespace catapult::dist
