#include "src/csg/csg.h"

#include <algorithm>

#include "src/graph/algorithms.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace catapult {

int ClusterSummaryGraph::FindEdge(VertexId u, VertexId v) const {
  if (u >= incident_.size() || v >= incident_.size()) return -1;
  const std::vector<size_t>& list =
      incident_[u].size() <= incident_[v].size() ? incident_[u]
                                                 : incident_[v];
  for (size_t idx : list) {
    const CsgEdge& e = edges_[idx];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      return static_cast<int>(idx);
    }
  }
  return -1;
}

Graph ClusterSummaryGraph::ToGraph() const {
  Graph g;
  for (Label label : vertex_labels_) g.AddVertex(label);
  for (const CsgEdge& e : edges_) g.AddEdge(e.u, e.v);
  return g;
}

FlatGraph ClusterSummaryGraph::ToFlat() const {
  return FlatGraph::Build(ToGraph());
}

double ClusterSummaryGraph::Compactness(double t) const {
  if (edges_.empty()) return 0.0;
  double threshold = t * static_cast<double>(cluster_size_);
  size_t heavy = 0;
  for (const CsgEdge& e : edges_) {
    if (static_cast<double>(e.support.Count()) >= threshold) ++heavy;
  }
  return static_cast<double>(heavy) / static_cast<double>(edges_.size());
}

VertexId ClusterSummaryGraph::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  vertex_support_.emplace_back(cluster_size_);
  incident_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

void ClusterSummaryGraph::MarkVertex(VertexId v, size_t member) {
  CATAPULT_CHECK(v < vertex_support_.size());
  vertex_support_[v].Set(member);
}

void ClusterSummaryGraph::MarkEdge(VertexId u, VertexId v, size_t member) {
  CATAPULT_CHECK(u != v);
  int idx = FindEdge(u, v);
  if (idx < 0) {
    CsgEdge edge;
    edge.u = u;
    edge.v = v;
    edge.support = DynamicBitset(cluster_size_);
    edges_.push_back(std::move(edge));
    idx = static_cast<int>(edges_.size() - 1);
    incident_[u].push_back(static_cast<size_t>(idx));
    incident_[v].push_back(static_cast<size_t>(idx));
  }
  edges_[static_cast<size_t>(idx)].support.Set(member);
}

std::optional<ClusterSummaryGraph> ClusterSummaryGraph::FromParts(
    size_t cluster_size, std::vector<Label> vertex_labels,
    std::vector<DynamicBitset> vertex_support, std::vector<CsgEdge> edges) {
  if (cluster_size == 0) return std::nullopt;
  if (vertex_support.size() != vertex_labels.size()) return std::nullopt;
  for (const DynamicBitset& support : vertex_support) {
    if (support.size() != cluster_size) return std::nullopt;
  }
  ClusterSummaryGraph csg(cluster_size);
  csg.vertex_labels_ = std::move(vertex_labels);
  csg.vertex_support_ = std::move(vertex_support);
  csg.incident_.assign(csg.vertex_labels_.size(), {});
  for (size_t i = 0; i < edges.size(); ++i) {
    CsgEdge& e = edges[i];
    if (e.u >= csg.vertex_labels_.size() || e.v >= csg.vertex_labels_.size() ||
        e.u == e.v || e.support.size() != cluster_size) {
      return std::nullopt;
    }
    if (csg.FindEdge(e.u, e.v) >= 0) return std::nullopt;  // duplicate edge
    csg.incident_[e.u].push_back(i);
    csg.incident_[e.v].push_back(i);
    csg.edges_.push_back(std::move(e));
  }
  return csg;
}

namespace {

// Greedy label/adjacency-guided mapping of `g` into `csg` (the closure-tree
// heuristic). mapping[gv] is the summary vertex for gv, or -1 where a new
// vertex would be created. Returns the number of g-edges whose endpoints
// map to an existing summary edge.
size_t GreedyFoldMapping(const ClusterSummaryGraph& csg, const Graph& g,
                         std::vector<int>& mapping) {
  mapping.assign(g.NumVertices(), -1);
  if (g.NumVertices() == 0) return 0;
  VertexId start = 0;
  for (VertexId v = 1; v < g.NumVertices(); ++v) {
    if (g.Degree(v) > g.Degree(start)) start = v;
  }
  std::vector<VertexId> order = BfsOrder(g, start);
  if (order.size() < g.NumVertices()) {
    std::vector<bool> seen(g.NumVertices(), false);
    for (VertexId v : order) seen[v] = true;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!seen[v]) order.push_back(v);
    }
  }
  std::vector<bool> summary_used(csg.NumVertices(), false);
  for (VertexId gv : order) {
    Label label = g.VertexLabel(gv);
    int best = -1;
    size_t best_adjacency = 0;
    size_t best_support = 0;
    for (VertexId sv = 0; sv < csg.NumVertices(); ++sv) {
      if (summary_used[sv] || csg.VertexLabel(sv) != label) continue;
      size_t adjacency = 0;
      for (const Graph::Neighbor& n : g.Neighbors(gv)) {
        int mapped = mapping[n.to];
        if (mapped >= 0 &&
            csg.FindEdge(sv, static_cast<VertexId>(mapped)) >= 0) {
          ++adjacency;
        }
      }
      size_t support = csg.VertexSupport(sv).Count();
      if (best < 0 || adjacency > best_adjacency ||
          (adjacency == best_adjacency && support > best_support)) {
        best = static_cast<int>(sv);
        best_adjacency = adjacency;
        best_support = support;
      }
    }
    mapping[gv] = best;
    if (best >= 0) summary_used[static_cast<VertexId>(best)] = true;
  }
  size_t mapped_edges = 0;
  for (const Edge& e : g.EdgeList()) {
    int mu = mapping[e.u];
    int mv = mapping[e.v];
    if (mu >= 0 && mv >= 0 &&
        csg.FindEdge(static_cast<VertexId>(mu),
                     static_cast<VertexId>(mv)) >= 0) {
      ++mapped_edges;
    }
  }
  return mapped_edges;
}

}  // namespace

double MappedEdgeFraction(const ClusterSummaryGraph& csg, const Graph& g) {
  if (g.NumEdges() == 0) return 0.0;
  std::vector<int> mapping;
  size_t mapped = GreedyFoldMapping(csg, g, mapping);
  return static_cast<double>(mapped) / static_cast<double>(g.NumEdges());
}

ClusterSummaryGraph BuildCsg(const GraphDatabase& db,
                             const std::vector<GraphId>& member_ids) {
  return BuildCsg(db, member_ids, RunContext::NoLimit());
}

ClusterSummaryGraph BuildCsg(const GraphDatabase& db,
                             const std::vector<GraphId>& member_ids,
                             const RunContext& ctx, bool* complete) {
  if (complete != nullptr) *complete = true;
  ClusterSummaryGraph csg(member_ids.size());
  // Memory governance: every member folded grows the summary (vertices,
  // edges, and their member-support bitsets); the growth is charged after
  // each fold and a refused charge stops folding — a valid, just less
  // complete, closure. Under soft-limit pressure only the first half of the
  // members are folded (partial CSGs, the ladder's cheaper summary rung).
  const size_t per_vertex_bytes =
      ApproxBitsetBytes(member_ids.size()) + 56;
  const size_t per_edge_bytes = ApproxBitsetBytes(member_ids.size()) + 32;
  const size_t soft_member_cap =
      ctx.memory().SoftExceeded()
          ? std::max<size_t>(1, member_ids.size() / 2)
          : member_ids.size();
  size_t charged_vertices = 0;
  size_t charged_edges = 0;
  for (size_t member = 0; member < member_ids.size(); ++member) {
    // Fold member 0 unconditionally (a non-empty cluster must yield a
    // non-empty summary); later members are skipped once the deadline
    // passes or the memory budget refuses the summary's growth, leaving a
    // valid partial closure.
    if (member > 0 && (member >= soft_member_cap ||
                       ctx.StopRequested("csg.fold_member"))) {
      if (complete != nullptr) *complete = false;
      break;
    }
    if (member > 0) {
      size_t delta = (csg.NumVertices() - charged_vertices) * per_vertex_bytes +
                     (csg.NumEdges() - charged_edges) * per_edge_bytes;
      if (delta > 0 && !ctx.memory().TryCharge(delta, "csg.fold")) {
        if (complete != nullptr) *complete = false;
        break;
      }
      charged_vertices = csg.NumVertices();
      charged_edges = csg.NumEdges();
    }
    const Graph& g = db.graph(member_ids[member]);
    if (g.NumVertices() == 0) continue;
    obs::Count(obs::Counter::kCsgFolds);

    // Map g's vertices into the summary in BFS order from the highest-
    // degree vertex, greedily choosing the same-label summary vertex that
    // realises the most edges to already-mapped neighbours (ties: the
    // vertex supported by more members, then the lowest id).
    VertexId start = 0;
    for (VertexId v = 1; v < g.NumVertices(); ++v) {
      if (g.Degree(v) > g.Degree(start)) start = v;
    }
    std::vector<VertexId> order = BfsOrder(g, start);
    // Disconnected member graphs: append remaining vertices (the library's
    // data generators produce connected graphs, but be safe).
    if (order.size() < g.NumVertices()) {
      std::vector<bool> seen(g.NumVertices(), false);
      for (VertexId v : order) seen[v] = true;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (!seen[v]) order.push_back(v);
      }
    }

    std::vector<int> mapping(g.NumVertices(), -1);
    std::vector<bool> summary_used(csg.NumVertices(), false);
    for (VertexId gv : order) {
      Label label = g.VertexLabel(gv);
      int best = -1;
      size_t best_adjacency = 0;
      size_t best_support = 0;
      for (VertexId sv = 0; sv < csg.NumVertices(); ++sv) {
        if (summary_used[sv] || csg.VertexLabel(sv) != label) continue;
        size_t adjacency = 0;
        for (const Graph::Neighbor& n : g.Neighbors(gv)) {
          int mapped = mapping[n.to];
          if (mapped >= 0 &&
              csg.FindEdge(sv, static_cast<VertexId>(mapped)) >= 0) {
            ++adjacency;
          }
        }
        size_t support = csg.VertexSupport(sv).Count();
        if (best < 0 || adjacency > best_adjacency ||
            (adjacency == best_adjacency && support > best_support)) {
          best = static_cast<int>(sv);
          best_adjacency = adjacency;
          best_support = support;
        }
      }
      VertexId target;
      if (best < 0) {
        obs::Count(obs::Counter::kCsgDummyPads);
        target = csg.AddVertex(label);
        summary_used.push_back(false);
      } else {
        obs::Count(obs::Counter::kCsgVerticesMapped);
        target = static_cast<VertexId>(best);
      }
      mapping[gv] = static_cast<int>(target);
      summary_used[target] = true;
      csg.MarkVertex(target, member);
    }

    for (const Edge& e : g.EdgeList()) {
      csg.MarkEdge(static_cast<VertexId>(mapping[e.u]),
                   static_cast<VertexId>(mapping[e.v]), member);
    }
  }
  return csg;
}

std::vector<ClusterSummaryGraph> BuildCsgs(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters) {
  return BuildCsgs(db, clusters, RunContext::NoLimit());
}

std::vector<ClusterSummaryGraph> BuildCsgs(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters, const RunContext& ctx,
    size_t* degraded) {
  if (degraded != nullptr) *degraded = 0;
  // Each cluster's closure fold is independent (rng-free, reads only its own
  // members, writes only its own summary slot), so folds run on the
  // context's thread pool; the degraded count is reduced in cluster order
  // afterwards. Memory charges land on the shared atomic ledger — with no
  // binding hard limit (the determinism contract's precondition) every
  // charge succeeds and the output is identical at any thread count.
  std::vector<ClusterSummaryGraph> csgs(clusters.size(),
                                        ClusterSummaryGraph(1));
  std::vector<uint8_t> complete(clusters.size(), 1);
  ParallelFor(ctx, clusters.size(), 1, [&](size_t c) {
    bool ok = true;
    csgs[c] = BuildCsg(db, clusters[c], ctx, &ok);
    complete[c] = ok ? 1 : 0;
  });
  if (degraded != nullptr) {
    for (uint8_t ok : complete) {
      if (ok == 0) ++*degraded;
    }
  }
  return csgs;
}

}  // namespace catapult
