#ifndef CATAPULT_CSG_CSG_H_
#define CATAPULT_CSG_CSG_H_

#include <optional>
#include <vector>

#include "src/graph/flat_graph.h"
#include "src/graph/graph_database.h"
#include "src/util/bitset.h"
#include "src/util/deadline.h"

namespace catapult {

// A cluster summary graph (Section 4.2): the closure graph of all data
// graphs in one cluster. Every vertex and edge carries the set of member
// graphs (by position within the cluster) containing it. Dummy labels never
// appear: a member graph simply leaves its bit unset on parts it lacks,
// which is equivalent to the paper's epsilon-removal.
class ClusterSummaryGraph {
 public:
  // One summarised edge with its supporting members.
  struct CsgEdge {
    VertexId u = 0;
    VertexId v = 0;
    DynamicBitset support;  // bit i: cluster member i contains this edge
  };

  ClusterSummaryGraph(size_t cluster_size) : cluster_size_(cluster_size) {}

  // Number of member graphs summarised.
  size_t cluster_size() const { return cluster_size_; }

  size_t NumVertices() const { return vertex_labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  Label VertexLabel(VertexId v) const {
    CATAPULT_CHECK(v < vertex_labels_.size());
    return vertex_labels_[v];
  }
  const DynamicBitset& VertexSupport(VertexId v) const {
    CATAPULT_CHECK(v < vertex_support_.size());
    return vertex_support_[v];
  }
  const std::vector<CsgEdge>& edges() const { return edges_; }

  // Edge indices incident to `v`.
  const std::vector<size_t>& IncidentEdges(VertexId v) const {
    CATAPULT_CHECK(v < incident_.size());
    return incident_[v];
  }

  // Index of edge {u, v}, or -1 if absent.
  int FindEdge(VertexId u, VertexId v) const;

  // Plain labelled-graph view (drops support sets). Used for the cluster-
  // coverage subgraph isomorphism tests and for compactness accounting.
  Graph ToGraph() const;

  // Flat CSR form of the same view (DESIGN.md §15), for callers that feed
  // the summary straight into the flat iso kernels. Selection builds all
  // summaries into one FlatGraphDatabase arena instead (see
  // BuildFlatSummaryIndex); this per-summary form serves one-off tests.
  FlatGraph ToFlat() const;

  // csg compactness xi_t (Section 6.1): fraction of summary edges contained
  // in at least t * cluster_size() member graphs.
  double Compactness(double t) const;

  // --- mutation API used by the builder ---
  VertexId AddVertex(Label label);
  void MarkVertex(VertexId v, size_t member);
  // Adds support of `member` to edge {u, v}, creating the edge if needed.
  void MarkEdge(VertexId u, VertexId v, size_t member);

  // Reconstructs a summary from serialized parts (the checkpoint decode
  // path), validating every invariant the mutation API normally guarantees:
  // support universes equal cluster_size, edge endpoints in range, no
  // self-loops, no duplicate edges. Returns std::nullopt instead of
  // aborting when the parts are inconsistent, so a corrupt checkpoint is a
  // recoverable condition.
  static std::optional<ClusterSummaryGraph> FromParts(
      size_t cluster_size, std::vector<Label> vertex_labels,
      std::vector<DynamicBitset> vertex_support, std::vector<CsgEdge> edges);

 private:
  size_t cluster_size_;
  std::vector<Label> vertex_labels_;
  std::vector<DynamicBitset> vertex_support_;
  std::vector<CsgEdge> edges_;
  std::vector<std::vector<size_t>> incident_;
};

// Builds the CSG of the cluster `member_ids` (graph ids into `db`) by
// iteratively closing each member into the summary (Section 4.2). The
// vertex mapping of each incoming graph is the greedy label/adjacency-guided
// heuristic of closure-trees [He & Singh, ICDE'06]: vertices are mapped in
// BFS order to same-label summary vertices maximising already-realised
// adjacency, and unmappable vertices extend the summary (the paper's dummy-
// vertex extension).
ClusterSummaryGraph BuildCsg(const GraphDatabase& db,
                             const std::vector<GraphId>& member_ids);

// Deadline-aware variant: folding polls `ctx` between members (failpoint
// site "csg.fold_member"). The first member is always folded, so the
// summary is never empty for a non-empty cluster; on expiry the remaining
// members are simply not folded (their support bits stay unset), which is a
// valid — just less complete — closure. `complete` (optional) reports
// whether every member was folded.
ClusterSummaryGraph BuildCsg(const GraphDatabase& db,
                             const std::vector<GraphId>& member_ids,
                             const RunContext& ctx, bool* complete = nullptr);

// Dry-run of the closure step: greedily maps `g` onto `csg` exactly the way
// BuildCsg would, without mutating the summary, and returns the fraction of
// g's edges that land on existing summary edges (1.0 = g folds in with no
// growth). Used by incremental maintenance as a structural affinity score.
double MappedEdgeFraction(const ClusterSummaryGraph& csg, const Graph& g);

// Builds one CSG per cluster.
std::vector<ClusterSummaryGraph> BuildCsgs(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters);

// Deadline-aware variant: always returns one CSG per cluster (selection
// relies on the 1:1 correspondence), but clusters whose turn comes after
// expiry get a summary folded from fewer members. `degraded` (optional)
// receives the number of partially folded summaries. Per-cluster folds are
// independent and run on the context's thread pool; with no binding memory
// hard limit the result is identical at every thread count.
std::vector<ClusterSummaryGraph> BuildCsgs(
    const GraphDatabase& db,
    const std::vector<std::vector<GraphId>>& clusters, const RunContext& ctx,
    size_t* degraded = nullptr);

}  // namespace catapult

#endif  // CATAPULT_CSG_CSG_H_
