#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/json.h"

namespace catapult::obs {

namespace internal {
constinit thread_local MetricsShard* tls_shard = nullptr;
}  // namespace internal

namespace {

constexpr const char* kCounterNames[] = {
    "vf2.calls",
    "vf2.nodes",
    "vf2.budget_exhausted",
    "ged.bipartite_calls",
    "walk.steps",
    "walk.dead_ends",
    "walk.pcp_emitted",
    "walk.pcp_deduplicated",
    "kmeans.iterations",
    "kmeans.reassignments",
    "fine.split_rounds",
    "csg.folds",
    "csg.vertices_mapped",
    "csg.dummy_pads",
    "selector.cache_hits",
    "selector.cache_misses",
    "selector.cache_evictions",
    "selector.div_folds",
    "selector.div_pruned",
    "ckpt.records_written",
    "ckpt.records_read",
    "ckpt.bytes_written",
    "ckpt.bytes_read",
    "ckpt.fsyncs",
    "mem.charges",
    "mem.charge_refused",
    "mem.soft_pressure",
    "failpoint.fires",
    "dist.workers_spawned",
    "dist.worker_deaths",
    "dist.worker_hangs",
    "dist.shard_retries",
    "dist.backoff_waits",
    "dist.quarantines",
    "dist.inprocess_fallbacks",
    "dist.heartbeats",
    "dist.artifacts_reused",
    "dist.artifacts_rejected",
    "serve.accepted",
    "serve.disconnects",
    "serve.requests",
    "serve.responses",
    "serve.shed",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.degraded",
    "serve.poisoned_streams",
    "serve.idle_reaped",
    "serve.write_timeouts",
    "serve.accept_failures",
    "dist.net.accepts",
    "dist.net.joins",
    "dist.net.rejects",
    "dist.net.reconnects",
    "dist.net.fenced_frames",
    "dist.net.duplicate_clusters",
    "dist.net.write_stalls",
    "dist.net.remote_clusters",
    "obs.spans_merged",
    "obs.spans_dropped",
    "serve.slow_requests",
    "serve.reqlog_dropped",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) == kNumCounters,
              "counter name table out of sync with the Counter enum");

constexpr const char* kGaugeNames[] = {
    "mem.peak_bytes",
    "selector.cache_peak",
    "pool.threads",
    "serve.queue_depth_peak",
    "serve.sessions_peak",
    "dist.workers_peak",
};
static_assert(sizeof(kGaugeNames) / sizeof(kGaugeNames[0]) == kNumGauges,
              "gauge name table out of sync with the Gauge enum");

constexpr const char* kHistNames[] = {
    "vf2.nodes_per_call",
    "ged.matrix_dim",
    "walk.pcp_edges",
    "ckpt.record_bytes",
    "serve.request_millis",
    "dist.reconnect_millis",
    "serve.queue_wait_millis",
};
static_assert(sizeof(kHistNames) / sizeof(kHistNames[0]) == kNumHists,
              "histogram name table out of sync with the Hist enum");

}  // namespace

uint64_t HistData::Quantile(double p) const {
  if (count == 0) return 0;
  if (p <= 0.0) return min;
  if (p >= 1.0) return max;
  // Rank of the target observation, 1-based.
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    // Linear interpolation across the bucket's value range. Bucket 0 holds
    // only the value 0; bucket 64 is open-ended, so its upper edge clamps
    // to the observed max.
    if (b == 0) return std::clamp<uint64_t>(0, min, max);
    const double lo = static_cast<double>(uint64_t{1} << (b - 1));
    const double hi = b >= 64 ? static_cast<double>(max)
                              : static_cast<double>((uint64_t{1} << b) - 1);
    const double frac =
        (target - static_cast<double>(cumulative)) / in_bucket;
    const double value = lo + (hi - lo) * frac;
    const uint64_t rounded = static_cast<uint64_t>(value + 0.5);
    return std::clamp(rounded, min, max);
  }
  return max;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  enabled = enabled || other.enabled;
  for (size_t i = 0; i < kNumCounters; ++i) counters[i] += other.counters[i];
  for (size_t i = 0; i < kNumGauges; ++i) {
    gauges[i] = std::max(gauges[i], other.gauges[i]);
  }
  for (size_t i = 0; i < kNumHists; ++i) hists[i].MergeFrom(other.hists[i]);
}

const char* CounterName(Counter c) {
  return kCounterNames[static_cast<size_t>(c)];
}
const char* GaugeName(Gauge g) { return kGaugeNames[static_cast<size_t>(g)]; }
const char* HistName(Hist h) { return kHistNames[static_cast<size_t>(h)]; }

std::array<uint64_t, kNumCounters> ThreadCounterSnapshot() {
#if !defined(CATAPULT_DISABLE_OBS)
  MetricsShard* shard = internal::tls_shard;
  if (shard != nullptr) return shard->counters;
#endif
  return {};
}

MetricsShard* MetricsRegistry::ShardForThisThread() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, shard] : shards_) {
    if (id == me) return shard.get();
  }
  shards_.emplace_back(me, std::make_unique<MetricsShard>());
  return shards_.back().second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.enabled = true;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, shard] : shards_) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      snapshot.counters[i] += shard->counters[i];
    }
    for (size_t i = 0; i < kNumGauges; ++i) {
      snapshot.gauges[i] = std::max(snapshot.gauges[i], shard->gauges[i]);
    }
    for (size_t i = 0; i < kNumHists; ++i) {
      snapshot.hists[i].MergeFrom(shard->hists[i]);
    }
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, shard] : shards_) *shard = MetricsShard{};
}

ScopedMetricsScope::ScopedMetricsScope(MetricsRegistry* registry) {
#if !defined(CATAPULT_DISABLE_OBS)
  if (registry != nullptr) {
    previous_ = internal::tls_shard;
    internal::tls_shard = registry->ShardForThisThread();
    installed_ = true;
  }
#else
  (void)registry;
#endif
}

ScopedMetricsScope::~ScopedMetricsScope() {
#if !defined(CATAPULT_DISABLE_OBS)
  if (installed_) internal::tls_shard = previous_;
#endif
}

std::string HumanSummary(const MetricsSnapshot& snapshot, bool include_zeros) {
  std::string out;
  char line[160];
  out += "counters:\n";
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (snapshot.counters[i] == 0 && !include_zeros) continue;
    std::snprintf(line, sizeof(line), "  %-24s %12llu\n", kCounterNames[i],
                  static_cast<unsigned long long>(snapshot.counters[i]));
    out += line;
  }
  out += "gauges:\n";
  for (size_t i = 0; i < kNumGauges; ++i) {
    if (snapshot.gauges[i] == 0 && !include_zeros) continue;
    std::snprintf(line, sizeof(line), "  %-24s %12llu\n", kGaugeNames[i],
                  static_cast<unsigned long long>(snapshot.gauges[i]));
    out += line;
  }
  out += "histograms:\n";
  for (size_t i = 0; i < kNumHists; ++i) {
    const HistData& h = snapshot.hists[i];
    if (h.count == 0 && !include_zeros) continue;
    std::snprintf(line, sizeof(line),
                  "  %-24s count=%llu mean=%.1f min=%llu max=%llu "
                  "p50=%llu p95=%llu p99=%llu\n",
                  kHistNames[i], static_cast<unsigned long long>(h.count),
                  h.Mean(),
                  static_cast<unsigned long long>(h.count == 0 ? 0 : h.min),
                  static_cast<unsigned long long>(h.max),
                  static_cast<unsigned long long>(h.Quantile(0.50)),
                  static_cast<unsigned long long>(h.Quantile(0.95)),
                  static_cast<unsigned long long>(h.Quantile(0.99)));
    out += line;
  }
  return out;
}

void RenderMetricsFields(const MetricsSnapshot& snapshot, JsonWriter& json) {
  json.Key("enabled").Value(snapshot.enabled);
  json.Key("counters").BeginObject();
  for (size_t i = 0; i < kNumCounters; ++i) {
    json.Key(kCounterNames[i]).Value(snapshot.counters[i]);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (size_t i = 0; i < kNumGauges; ++i) {
    json.Key(kGaugeNames[i]).Value(snapshot.gauges[i]);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (size_t i = 0; i < kNumHists; ++i) {
    const HistData& h = snapshot.hists[i];
    json.Key(kHistNames[i]).BeginObject();
    json.Key("count").Value(h.count);
    json.Key("sum").Value(h.sum);
    json.Key("min").Value(h.count == 0 ? uint64_t{0} : h.min);
    json.Key("max").Value(h.max);
    json.Key("buckets").BeginArray();
    size_t last = kHistBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (size_t b = 0; b < last; ++b) json.Value(h.buckets[b]);
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
}

}  // namespace catapult::obs
