#ifndef CATAPULT_OBS_METRICS_H_
#define CATAPULT_OBS_METRICS_H_

// Process-wide metrics registry: monotonic counters, high-watermark gauges
// and fixed-bucket log2 histograms covering the pipeline's hot primitives
// (VF2, bipartite GED, random walks, k-means, CSG folds, the selector
// coverage cache, checkpoint I/O, the memory budget and failpoints).
//
// Design constraints (DESIGN.md §11):
//  * Zero cross-thread synchronization on hot paths. Each thread writes a
//    private MetricsShard through a thread_local pointer; Count()/Observe()
//    are one TLS load, one branch and a plain (non-atomic) add. Shards are
//    merged only at Snapshot(), which the pipeline calls after its parallel
//    regions have joined — the ThreadPool's join handshake provides the
//    happens-before edge, so merging reads plain writes safely.
//  * Zero overhead when disabled. With no registry attached the TLS pointer
//    is null and every helper is a load+branch — no atomic ops, no locks.
//    Defining CATAPULT_DISABLE_OBS compiles the helpers down to nothing.
//  * No effect on results. Instrumentation only ever writes counters; no
//    decision in the pipeline reads them, so a run with metrics enabled is
//    bit-identical to a disabled run at any thread count (asserted by
//    tests/obs_test.cc). Counter merging is commutative, so totals are also
//    independent of the thread count.
//
// This header deliberately includes nothing from src/ so every subsystem
// (including src/util) can instrument itself without include cycles.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace catapult::obs {

// Monotonic event counters. Append new entries just before kCount and add
// the matching name to kCounterNames in metrics.cc.
enum class Counter : uint32_t {
  kVf2Calls = 0,         // subgraph-isomorphism searches started
  kVf2Nodes,             // search-tree nodes expanded across all searches
  kVf2BudgetExhausted,   // searches cut short by a node budget
  kGedBipartiteCalls,    // bipartite GED lower-bound evaluations
  kWalkSteps,            // random-walk edge extensions attempted
  kWalkDeadEnds,         // walks stopped early (no extensible edge)
  kPcpEmitted,           // non-empty candidate patterns produced by walks
  kPcpDeduplicated,      // candidates dropped as duplicates of earlier ones
  kKmeansIterations,     // coarse-clustering Lloyd rounds executed
  kKmeansReassignments,  // graphs that changed cluster in a round
  kFineSplitRounds,      // fine-clustering level-order split rounds
  kCsgFolds,             // member graphs folded into a summary graph
  kCsgVerticesMapped,    // member vertices mapped onto existing CSG vertices
  kCsgDummyPads,         // CSG vertices added because no mapping existed
  kSelectorCacheHits,    // coverage-cache lookups served from the cache
  kSelectorCacheMisses,  // coverage-cache lookups that ran VF2
  kSelectorCacheEvictions,  // cache entries dropped under memory pressure
  kSelectorDivFolds,     // diversity GED evaluations folded into a memo
  kSelectorDivPruned,    // diversity folds skipped by the lower bound
  kCheckpointRecordsWritten,
  kCheckpointRecordsRead,
  kCheckpointBytesWritten,
  kCheckpointBytesRead,
  kCheckpointFsyncs,     // fsync/fdatasync calls issued by atomic writes
  kMemCharges,           // successful MemoryBudget::TryCharge calls
  kMemChargeRefused,     // charges refused by the hard limit
  kMemSoftPressure,      // charges that crossed the soft limit
  kFailpointFires,       // armed failpoints that actually fired
  kDistWorkersSpawned,   // shard worker processes forked
  kDistWorkerDeaths,     // abnormal worker exits observed via waitpid
  kDistWorkerHangs,      // heartbeat deadline misses (worker killed)
  kDistShardRetries,     // shards requeued after a worker failure
  kDistBackoffWaits,     // retry launches delayed by the backoff policy
  kDistQuarantines,      // shards that exhausted their failure budget
  kDistFallbacks,        // quarantined shards executed in-process
  kDistHeartbeats,       // heartbeat frames received by the supervisor
  kDistArtifactsReused,  // clusters restored from prior-attempt artifacts
  kDistArtifactsRejected,  // shard artifacts that failed validation
  kServeAccepted,          // client connections accepted by the server
  kServeDisconnects,       // client connections closed (any reason)
  kServeRequests,          // well-formed selection requests received
  kServeResponses,         // panel responses handed to the write path
  kServeShed,              // requests refused with an explicit retry-after
  kServeCacheHits,         // panels served from the keyed result cache
  kServeCacheMisses,       // panels computed by a fresh selection run
  kServeDegraded,          // responses whose panel was deadline/limit degraded
  kServePoisonedStreams,   // clients dropped for torn/corrupt frames
  kServeIdleReaped,        // idle sessions closed by the reaper
  kServeWriteTimeouts,     // slow clients dropped mid-write
  kServeAcceptFailures,    // accept() errors survived (EMFILE & friends)
  kDistNetAccepts,         // remote-worker connections accepted
  kDistNetJoins,           // handshakes admitted (fresh joins + rejoins)
  kDistNetRejects,         // handshakes refused with a typed kJoinReject
  kDistNetReconnects,      // rejoins of a previously-seen worker identity
  kDistNetFencedFrames,    // frames from a fenced generation (never applied)
  kDistNetDuplicateClusters,  // re-delivered cluster results (idempotent)
  kDistNetWriteStalls,     // sends that hit the write-stall deadline
  kDistNetRemoteClusters,  // cluster results accepted from remote workers
  kObsSpansMerged,         // worker spans imported into the merged trace
  kObsSpansDropped,        // shipped spans discarded (trace mismatch/no tracer)
  kServeSlowRequests,      // requests whose run time crossed --slow-request-ms
  kServeReqlogDropped,     // request-log events dropped by the bounded queue
  kCount
};

// High-watermark gauges: Gauge() keeps the maximum value ever set, which
// merges commutatively across shards (unlike a last-writer-wins gauge).
enum class Gauge : uint32_t {
  kMemPeakBytes = 0,     // peak concurrent MemoryBudget usage observed
  kSelectorCachePeak,    // peak coverage-cache entry count
  kPoolThreads,          // resolved worker-thread count of the run
  kServeQueueDepthPeak,  // peak admission-queue depth observed
  kServeSessionsPeak,    // peak concurrent client sessions
  kDistWorkersPeak,      // peak concurrent remote-fleet members
  kCount
};

// Fixed-bucket log2 histograms: value v lands in bucket floor(log2(v)) + 1
// (v == 0 in bucket 0), so bucket b > 0 covers [2^(b-1), 2^b).
enum class Hist : uint32_t {
  kVf2NodesPerCall = 0,  // search-tree nodes expanded per VF2 search
  kGedMatrixDim,         // bipartite cost-matrix dimension (na + nb)
  kPcpEdges,             // edge count of emitted candidate patterns
  kCheckpointRecordBytes,  // payload size of checkpoint records written
  kServeRequestMillis,   // admission-to-response latency per served request
  kDistReconnectMillis,  // death-to-rejoin latency per worker reconnect
  kServeQueueWaitMillis,  // admission-to-worker-pickup wait per served request
  kCount
};

inline constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);
inline constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);
inline constexpr size_t kNumHists = static_cast<size_t>(Hist::kCount);
inline constexpr size_t kHistBuckets = 65;  // bucket 64 = values >= 2^63

const char* CounterName(Counter c);
const char* GaugeName(Gauge g);
const char* HistName(Hist h);

// Bucket index of `v` under the log2 bucketing scheme above.
constexpr size_t HistBucket(uint64_t v) {
  if (v == 0) return 0;
  size_t b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;  // floor(log2(v)) + 1, <= 64
}

// Per-histogram accumulator (count/sum/min/max + bucket array).
struct HistData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;  // UINT64_MAX while empty
  uint64_t max = 0;
  std::array<uint64_t, kHistBuckets> buckets{};

  void Record(uint64_t v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[HistBucket(v)];
  }
  void MergeFrom(const HistData& other) {
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    for (size_t i = 0; i < kHistBuckets; ++i) buckets[i] += other.buckets[i];
  }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Estimated p-quantile (p in [0, 1]) by linear interpolation inside the
  // log2 bucket holding the p-th observation, clamped to [min, max]. Exact
  // at the extremes; within a factor-of-2 band elsewhere, which is all a
  // log2 histogram can promise.
  uint64_t Quantile(double p) const;
};

// One thread's private slice of the registry. Plain (non-atomic) fields:
// only the owning thread writes, and the registry reads only after the
// owning thread's parallel region joined (or, for the calling thread, on
// the calling thread itself).
struct MetricsShard {
  std::array<uint64_t, kNumCounters> counters{};
  std::array<uint64_t, kNumGauges> gauges{};
  std::array<HistData, kNumHists> hists{};
};

namespace internal {
// The currently installed shard of the calling thread; null when metrics
// are disabled for this thread. constinit: guaranteed no TLS init guard on
// the hot path.
extern constinit thread_local MetricsShard* tls_shard;
}  // namespace internal

// --- Hot-path recording helpers --------------------------------------------
// One TLS load + branch when disabled; a plain add when enabled. Never any
// atomic operation or lock. CATAPULT_DISABLE_OBS compiles them to nothing.

inline void Count(Counter c, uint64_t n = 1) {
#if !defined(CATAPULT_DISABLE_OBS)
  MetricsShard* shard = internal::tls_shard;
  if (shard != nullptr) shard->counters[static_cast<size_t>(c)] += n;
#else
  (void)c;
  (void)n;
#endif
}

inline void SetGaugeMax(Gauge g, uint64_t v) {
#if !defined(CATAPULT_DISABLE_OBS)
  MetricsShard* shard = internal::tls_shard;
  if (shard != nullptr) {
    uint64_t& slot = shard->gauges[static_cast<size_t>(g)];
    if (v > slot) slot = v;
  }
#else
  (void)g;
  (void)v;
#endif
}

inline void Observe(Hist h, uint64_t v) {
#if !defined(CATAPULT_DISABLE_OBS)
  MetricsShard* shard = internal::tls_shard;
  if (shard != nullptr) shard->hists[static_cast<size_t>(h)].Record(v);
#else
  (void)h;
  (void)v;
#endif
}

// True when the calling thread currently records into a shard. Lets call
// sites skip work that only feeds metrics (e.g. sizing computations).
inline bool MetricsEnabled() {
#if !defined(CATAPULT_DISABLE_OBS)
  return internal::tls_shard != nullptr;
#else
  return false;
#endif
}

// Read-only view of the calling thread's counters (zeros when disabled).
// Used by the tracer to compute per-span counter deltas.
std::array<uint64_t, kNumCounters> ThreadCounterSnapshot();

// --- Merged snapshot --------------------------------------------------------

struct MetricsSnapshot {
  bool enabled = false;  // false when no registry was attached to the run
  std::array<uint64_t, kNumCounters> counters{};
  std::array<uint64_t, kNumGauges> gauges{};
  std::array<HistData, kNumHists> hists{};

  uint64_t counter(Counter c) const {
    return counters[static_cast<size_t>(c)];
  }
  uint64_t gauge(Gauge g) const { return gauges[static_cast<size_t>(g)]; }
  const HistData& hist(Hist h) const {
    return hists[static_cast<size_t>(h)];
  }

  // Folds `other` in: counters/histograms add, gauges keep the maximum.
  // `enabled` ORs, so merging an empty snapshot is the identity.
  void MergeFrom(const MetricsSnapshot& other);
};

// Human-readable multi-line rendering (used by the CLI's --print-stats).
// Counters and gauges print one per line; histograms print
// count/mean/min/max. Zero-valued entries are skipped unless
// `include_zeros`.
std::string HumanSummary(const MetricsSnapshot& snapshot,
                         bool include_zeros = false);

class JsonWriter;

// Appends {"counters": {...}, "gauges": {...}, "histograms": {...}} fields
// into the writer's currently open object. Every name is always present so
// the schema is stable; histograms render as
// {"count": n, "sum": s, "min": m, "max": M, "buckets": [...]} with the
// bucket array trimmed of trailing zeros.
void RenderMetricsFields(const MetricsSnapshot& snapshot, JsonWriter& json);

// --- Registry ---------------------------------------------------------------

// Owns one shard per participating thread, keyed by thread id so a thread
// re-entering a scope reuses its shard. The mutex is taken only when a
// scope is installed (once per parallel region per thread) and at
// Snapshot(), never on the recording path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The calling thread's shard, created on first use. Stable address for
  // the registry's lifetime.
  MetricsShard* ShardForThisThread();

  // Merged totals across every shard. Must not race with threads actively
  // recording into this registry's shards; the pipeline guarantees this by
  // snapshotting only after its parallel regions joined.
  MetricsSnapshot Snapshot() const;

  // Drops all recorded values (shards stay allocated and installed scopes
  // remain valid). Same non-concurrency contract as Snapshot().
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::thread::id, std::unique_ptr<MetricsShard>>>
      shards_;
};

// Installs `registry`'s shard for the calling thread for the scope's
// lifetime, restoring the previous shard (usually none) on destruction.
// A null registry installs nothing and records nothing.
class ScopedMetricsScope {
 public:
  explicit ScopedMetricsScope(MetricsRegistry* registry);
  ~ScopedMetricsScope();

  ScopedMetricsScope(const ScopedMetricsScope&) = delete;
  ScopedMetricsScope& operator=(const ScopedMetricsScope&) = delete;

 private:
  MetricsShard* previous_ = nullptr;
  bool installed_ = false;
};

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_METRICS_H_
