#include "src/obs/clock.h"

#include <atomic>

namespace catapult::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;
static_assert(SteadyClock::is_steady,
              "the observability clock must be monotonic");

// Process-wide anchor so default ticks start near zero (keeps trace
// timestamps small and readable). Captured on first use.
SteadyClock::time_point ProcessAnchor() {
  static const SteadyClock::time_point anchor = SteadyClock::now();
  return anchor;
}

uint64_t DefaultTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           ProcessAnchor())
          .count());
}

// The installed tick source. Relaxed is sufficient: installation happens in
// tests before the threads under test start (ScopedTickSourceForTest is
// documented single-threaded), and readers only need *a* valid function
// pointer, never ordering against other memory.
std::atomic<TickSource> g_tick_source{&DefaultTicks};

}  // namespace

uint64_t NowNanos() {
  return g_tick_source.load(std::memory_order_relaxed)();
}

ScopedTickSourceForTest::ScopedTickSourceForTest(TickSource source)
    : previous_(g_tick_source.exchange(source == nullptr ? &DefaultTicks
                                                         : source,
                                       std::memory_order_relaxed)) {}

ScopedTickSourceForTest::~ScopedTickSourceForTest() {
  g_tick_source.store(previous_, std::memory_order_relaxed);
}

}  // namespace catapult::obs
