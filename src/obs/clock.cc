#include "src/obs/clock.h"

#include <atomic>
#include <cstdlib>

namespace catapult::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;
static_assert(SteadyClock::is_steady,
              "the observability clock must be monotonic");

// Process-wide anchor so default ticks start near zero (keeps trace
// timestamps small and readable). Captured on first use.
SteadyClock::time_point ProcessAnchor() {
  static const SteadyClock::time_point anchor = SteadyClock::now();
  return anchor;
}

uint64_t DefaultTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           ProcessAnchor())
          .count());
}

// Step for the fixed tick source. Written once, in EnableFixedTicks, before
// any thread that reads it exists.
uint64_t g_fixed_step_ns = 1000;

// Per-thread counter for the fixed source: each thread's clock reads form an
// independent arithmetic sequence, insulating measured threads from clock
// consumption by background threads.
thread_local uint64_t tls_fixed_ticks = 0;

uint64_t FixedTicks() { return tls_fixed_ticks += g_fixed_step_ns; }

// The installed tick source. Relaxed is sufficient: installation happens in
// tests before the threads under test start (ScopedTickSourceForTest is
// documented single-threaded), and readers only need *a* valid function
// pointer, never ordering against other memory.
std::atomic<TickSource> g_tick_source{&DefaultTicks};

}  // namespace

uint64_t NowNanos() {
  return g_tick_source.load(std::memory_order_relaxed)();
}

void EnableFixedTicks(uint64_t step_ns) {
  g_fixed_step_ns = step_ns == 0 ? 1000 : step_ns;
  g_tick_source.store(&FixedTicks, std::memory_order_relaxed);
}

void InstallTicksFromEnv() {
  const char* value = std::getenv("CATAPULT_FIXED_TICKS");
  if (value == nullptr) return;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  const bool valid = end != value && *end == '\0' && parsed > 0;
  EnableFixedTicks(valid ? static_cast<uint64_t>(parsed) : 1000);
}

ScopedTickSourceForTest::ScopedTickSourceForTest(TickSource source)
    : previous_(g_tick_source.exchange(source == nullptr ? &DefaultTicks
                                                         : source,
                                       std::memory_order_relaxed)) {}

ScopedTickSourceForTest::~ScopedTickSourceForTest() {
  g_tick_source.store(previous_, std::memory_order_relaxed);
}

}  // namespace catapult::obs
