#ifndef CATAPULT_OBS_TRACE_H_
#define CATAPULT_OBS_TRACE_H_

// Span-based tracer emitting Chrome trace-event JSON, loadable directly in
// chrome://tracing or https://ui.perfetto.dev. Spans are RAII objects with
// *explicit parent handles*: a child span is given its parent's id() rather
// than being inferred from thread-local nesting, so spans opened inside
// worker threads attach to the phase span that spawned the region even
// though they run on a different thread. Each span also records the delta
// of the owning thread's metric counters between open and close, emitted as
// trace-event args — hovering a VF2-heavy span in Perfetto shows exactly
// how many calls/nodes it spent.
//
// Spans are coarse (phases, sub-phases, per-cluster folds, checkpoint
// writes), so the tracer is a simple mutex-protected event buffer; the
// per-event lock never sits on an inner loop. A null Tracer* produces inert
// spans that do nothing, which is how a disabled run avoids all tracing
// cost.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace catapult::obs {

// One completed ("ph":"X") trace event.
struct TraceEvent {
  std::string name;
  uint64_t start_ns = 0;  // obs::NowNanos() at span open
  uint64_t dur_ns = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  int tid = 0;             // small per-tracer thread index
  int pid = 0;             // process track; 0 renders as 1 (the host process)
  // Non-zero counter deltas over the span's lifetime on its own thread.
  std::vector<std::pair<Counter, uint64_t>> counter_deltas;
};

// Wire-portable record of one completed span, as shipped by shard workers
// back to the supervisor in completion frames. Span/parent ids are local to
// the worker's batch; ImportShardSpans remaps them into the merged tracer's
// id space. Timestamps are normalized (relative to the batch's earliest
// open) so merged traces are independent of worker wall clocks.
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root within the batch
  uint32_t tid = 0;
  std::vector<std::pair<Counter, uint64_t>> counter_deltas;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Fresh process-unique span id (> 0; 0 means "no parent").
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Appends a finished event; thread-safe.
  void Emit(TraceEvent event);

  size_t event_count() const;

  // Distributed-trace correlation id carried in CTWF frames; 0 = unset.
  // Workers echo it back with their span buffers, and ToJson surfaces it as
  // a top-level "traceId" key when non-zero.
  void SetTraceId(uint64_t id) {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  uint64_t trace_id() const {
    return trace_id_.load(std::memory_order_relaxed);
  }

  // Names a process track ("ph":"M" process_name metadata in ToJson). The
  // host process is pid 1; merged worker shards get stable pids above it.
  void SetProcessName(int pid, std::string name);

  // Removes all buffered events and returns them as wire-portable records
  // with timestamps normalized to the batch's earliest span open. Used by
  // shard workers to ship their buffer in the completion frame.
  std::vector<SpanRecord> DrainSpans();

  // Merges one worker's shipped span batch onto process track `pid`:
  // assigns fresh span ids in record order, rewrites parent links (unknown
  // or zero parents attach to a synthetic root named `root_name` that spans
  // the whole batch), and rebases timestamps at `base_ns`. The root is
  // parented under `parent_span_id` in this tracer's id space. Returns the
  // number of spans imported (excluding the synthetic root). Deterministic:
  // equal batches imported in equal order produce identical events.
  size_t ImportShardSpans(const std::vector<SpanRecord>& spans, int pid,
                          uint64_t parent_span_id,
                          const std::string& root_name, uint64_t base_ns);

  // The full Chrome trace document:
  // {"traceEvents": [...], "displayTimeUnit": "ms"}. Timestamps and
  // durations are microseconds, as the trace-event format specifies.
  // Process-name metadata events come first (by pid), then completed spans
  // in emission order — no sorting, so output is deterministic.
  std::string ToJson() const;
  bool WriteFile(const std::string& path) const;

 private:
  int TidLocked(std::thread::id id);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> tids_;
  std::map<int, std::string> process_names_;
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<uint64_t> trace_id_{0};
};

// RAII span. Construct with the owning tracer (null = inert) and the
// parent's id (0 = root). The event is emitted on destruction or Close().
class Span {
 public:
  Span(Tracer* tracer, std::string name, uint64_t parent_id = 0);
  ~Span() { Close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // This span's id, for handing to children. 0 when inert: a child of an
  // inert span is simply a root span of whatever tracer *it* gets.
  uint64_t id() const { return id_; }
  bool active() const { return tracer_ != nullptr; }

  // Emits the event early; idempotent.
  void Close();

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  std::array<uint64_t, kNumCounters> counters_at_open_{};
};

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_TRACE_H_
