#include "src/obs/reqlog.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace catapult::obs {

std::string RequestLog::Start(const std::string& path, size_t capacity) {
  if (started_) return "request log already started";
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return "request log open " + path + ": " + std::strerror(errno);
  }
  capacity_ = capacity == 0 ? 1 : capacity;
  stop_ = false;
  dropped_ = 0;
  thread_ = std::thread(&RequestLog::WriterLoop, this);
  started_ = true;
  return "";
}

bool RequestLog::Record(const RequestLogEvent& event) {
  if (!started_) return false;
  std::string line = Render(event);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(line));
  }
  cv_.notify_one();
  return true;
}

uint64_t RequestLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void RequestLog::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  started_ = false;
}

void RequestLog::WriterLoop() {
  for (;;) {
    std::vector<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (batch.empty() && stop_) return;
    }
    std::string out;
    for (std::string& line : batch) {
      out += line;
      out += '\n';
    }
    size_t written = 0;
    while (written < out.size()) {
      const ssize_t n =
          ::write(fd_, out.data() + written, out.size() - written);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // disk gone: drop the rest, never wedge the writer
      }
      written += static_cast<size_t>(n);
    }
  }
}

std::string RequestLog::Render(const RequestLogEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key("request_id").Value(event.request_id);
  json.Key("budget").Value(event.budget_key);
  json.Key("outcome").Value(event.outcome);
  if (!event.detail.empty()) json.Key("detail").Value(event.detail);
  json.Key("queue_wait_ms").Value(event.queue_wait_ms);
  json.Key("run_ms").Value(event.run_ms);
  json.Key("panel_patterns").Value(event.panel_patterns);
  json.Key("panel_bytes").Value(event.panel_bytes);
  json.Key("worker").Value(event.worker);
  json.Key("slow").Value(event.slow);
  if (event.trace_id != 0) {
    json.Key("trace_id").Value(event.trace_id);
    json.Key("parent_span_id").Value(event.parent_span_id);
  }
  json.EndObject();
  return json.str();
}

}  // namespace catapult::obs
