#include "src/obs/admin.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/signal.h"

namespace catapult::obs {

namespace {

// Per-connection I/O allowance. Admin exchanges are one short request line
// and a few KB of response; anything slower is a wedged or hostile peer and
// is dropped rather than buffered.
constexpr int kIoTimeoutMs = 2000;
constexpr size_t kMaxRequestBytes = 4096;

// Waits until `fd` is ready for `events` or the deadline passes.
bool WaitReady(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_ms) > 0 &&
         (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 404: return "404 Not Found";
    default: return "500 Internal Server Error";
  }
}

// Extracts the request path from one request line: either an HTTP request
// line ("GET /metrics HTTP/1.1") or a bare path ("/metrics").
std::string ParseRequestPath(const std::string& line) {
  size_t begin = 0;
  const size_t space = line.find(' ');
  if (space != std::string::npos && !line.empty() && line[0] != '/') {
    begin = space + 1;  // skip the method token
  }
  size_t end = line.find(' ', begin);
  if (end == std::string::npos) end = line.size();
  while (end > begin && (line[end - 1] == '\r' || line[end - 1] == '\n')) {
    --end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

std::string AdminServer::Start(const std::string& address,
                               AdminHandler handler) {
  if (started_) return "admin server already started";
  dist::Address parsed;
  std::string error;
  if (!dist::ParseAddress(address, &parsed, &error)) return error;
  error = listener_.Listen(parsed);
  if (!error.empty()) return error;
  if (::pipe(stop_pipe_) != 0) {
    listener_.Close();
    return "admin stop pipe: " + std::string(std::strerror(errno));
  }
  ::fcntl(stop_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(stop_pipe_[1], F_SETFL, O_NONBLOCK);
  signal_fd_ = ShutdownSignals::Instance().SubscribeFd();
  handler_ = std::move(handler);
  address_ = listener_.address();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&AdminServer::Serve, this);
  started_ = true;
  return "";
}

void AdminServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  (void)!::write(stop_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (signal_fd_ >= 0) ::close(signal_fd_);
  signal_fd_ = -1;
  started_ = false;
}

void AdminServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfds[3];
    pfds[0] = {listener_.fd(), POLLIN, 0};
    pfds[1] = {stop_pipe_[0], POLLIN, 0};
    pfds[2] = {signal_fd_, POLLIN, 0};
    if (::poll(pfds, 3, 500) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // A shutdown signal retires the endpoint exactly like Stop(): probes
    // must start failing as soon as the process begins winding down.
    if ((pfds[1].revents | pfds[2].revents) & POLLIN) return;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    for (int fd = listener_.Accept(); fd >= 0; fd = listener_.Accept()) {
      HandleConnection(fd);
      ::close(fd);
    }
  }
}

void AdminServer::HandleConnection(int fd) {
  // Read until the first newline (the request line is all we route on).
  std::string request;
  while (request.find('\n') == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    if (!WaitReady(fd, POLLIN, kIoTimeoutMs)) return;
    char buf[1024];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  const std::string path = ParseRequestPath(request);
  AdminResponse response;
  if (path == "/healthz") {
    response.body = "ok\n";
  } else if (handler_) {
    response = handler_(path);
  } else {
    response.status = 404;
    response.body = "not found\n";
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  std::string out = "HTTP/1.0 ";
  out += StatusText(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    if (!WaitReady(fd, POLLOUT, kIoTimeoutMs)) return;
    const ssize_t n = ::write(fd, out.data() + sent, out.size() - sent);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace catapult::obs
