#ifndef CATAPULT_OBS_EXPORT_H_
#define CATAPULT_OBS_EXPORT_H_

// Prometheus text exposition (version 0.0.4) of a MetricsSnapshot, served
// by the admin endpoint's /metrics path. Metric names are the registry
// names with dots mapped to underscores under a `catapult_` prefix:
// "serve.request_millis" becomes catapult_serve_request_millis. Counters
// render as `# TYPE ... counter`, high-watermark gauges as gauge, and the
// fixed log2 histograms as native Prometheus histograms — cumulative
// `_bucket{le="..."}` series (bucket b's upper edge is 2^b - 1; bucket 0 is
// le="0"; the open-ended top bucket folds into le="+Inf"), plus `_sum` and
// `_count`. Trailing all-zero buckets are trimmed so molecule-sized runs
// don't ship sixty empty series per histogram.

#include <string>

#include "src/obs/metrics.h"

namespace catapult::obs {

// The Prometheus metric name for a registry name ("vf2.calls" ->
// "catapult_vf2_calls").
std::string PrometheusName(const std::string& registry_name);

// Renders the whole snapshot in exposition format. Deterministic: output
// order follows the enum order, so equal snapshots render byte-identically.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_EXPORT_H_
