#ifndef CATAPULT_OBS_ADMIN_H_
#define CATAPULT_OBS_ADMIN_H_

// Live-telemetry admin endpoint (DESIGN.md §16). A second, line-oriented
// listener next to the serving/fleet socket: a client connects, sends one
// request line — either a bare path ("/metrics\n") or an HTTP request line
// ("GET /metrics HTTP/1.1\r\n...") — and receives a minimal HTTP/1.0
// response with Content-Length and Connection: close. That is exactly
// enough for `curl`, Prometheus scrapers, `nc`, and shell probes, without
// pulling an HTTP stack into the binary.
//
// The server owns one background thread that polls the listener, a stop
// pipe, and the process shutdown-signal fd (src/util/signal.h), so SIGTERM
// tears the endpoint down even if the owner never calls Stop(). Request
// handling is synchronous and bounded: admin responses are tiny (a few KB
// of exposition text), admin traffic is rare, and a stalled scraper must
// not pin memory — writes time out rather than buffer.
//
// Paths are routed through a caller-supplied handler; /healthz is answered
// built-in so a probe works even while the owner is busy swapping state.

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "src/dist/channel.h"

namespace catapult::obs {

// Response from an admin handler: body plus content type.
struct AdminResponse {
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  int status = 200;  // 200 or 404; anything else maps to 500
};

// Handler for one request path ("/metrics", "/statusz", ...). Invoked on
// the admin thread, concurrently with the owner's other threads: it must
// be thread-safe and fast (snapshot + render, no blocking on request
// processing locks).
using AdminHandler = std::function<AdminResponse(const std::string& path)>;

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer() { Stop(); }
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds `address` ("unix:/path" or "tcp:host:port") and starts the admin
  // thread. Returns "" on success, else the error. `handler` answers every
  // path except /healthz (answered built-in with "ok\n").
  std::string Start(const std::string& address, AdminHandler handler);

  bool started() const { return started_; }
  // Canonical bound address (reflects kernel-assigned TCP ports).
  const std::string& address() const { return address_; }
  // Total requests answered (including /healthz and 404s).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Stops the admin thread and closes the listener. Idempotent.
  void Stop();

 private:
  void Serve();
  void HandleConnection(int fd);

  dist::Listener listener_;
  AdminHandler handler_;
  std::thread thread_;
  std::string address_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  int stop_pipe_[2] = {-1, -1};
  int signal_fd_ = -1;
};

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_ADMIN_H_
