#include "src/obs/trace.h"

#include <fstream>

#include "src/obs/clock.h"
#include "src/obs/json.h"

namespace catapult::obs {

int Tracer::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void Tracer::Emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.tid = TidLocked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::SetProcessName(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

std::vector<SpanRecord> Tracer::DrainSpans() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(events_.size());
  uint64_t min_start = UINT64_MAX;
  for (const TraceEvent& e : events_) {
    if (e.start_ns < min_start) min_start = e.start_ns;
  }
  for (TraceEvent& e : events_) {
    SpanRecord record;
    record.name = std::move(e.name);
    record.start_ns = e.start_ns - min_start;
    record.dur_ns = e.dur_ns;
    record.span_id = e.span_id;
    record.parent_id = e.parent_id;
    record.tid = static_cast<uint32_t>(e.tid < 0 ? 0 : e.tid);
    record.counter_deltas = std::move(e.counter_deltas);
    out.push_back(std::move(record));
  }
  events_.clear();
  return out;
}

size_t Tracer::ImportShardSpans(const std::vector<SpanRecord>& spans, int pid,
                                uint64_t parent_span_id,
                                const std::string& root_name,
                                uint64_t base_ns) {
  if (spans.empty()) return 0;
  // Pass 1: mint fresh ids in record order (deterministic given a
  // deterministic import order) and find the batch's extent.
  const uint64_t root_id = NextSpanId();
  std::map<uint64_t, uint64_t> remap;
  std::vector<uint64_t> fresh(spans.size());
  uint64_t batch_end = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    fresh[i] = NextSpanId();
    if (spans[i].span_id != 0) remap[spans[i].span_id] = fresh[i];
    const uint64_t end = spans[i].start_ns + spans[i].dur_ns;
    if (end > batch_end) batch_end = end;
  }
  // Pass 2: emit the synthetic root, then the rebased children. Events are
  // appended directly (not via Emit) so tid/pid come from the records, not
  // from the importing thread.
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent root;
  root.name = root_name;
  root.start_ns = base_ns;
  root.dur_ns = batch_end;
  root.span_id = root_id;
  root.parent_id = parent_span_id;
  root.tid = 0;
  root.pid = pid;
  events_.push_back(std::move(root));
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    TraceEvent e;
    e.name = s.name;
    e.start_ns = base_ns + s.start_ns;
    e.dur_ns = s.dur_ns;
    e.span_id = fresh[i];
    const auto parent = remap.find(s.parent_id);
    e.parent_id = parent == remap.end() ? root_id : parent->second;
    e.tid = static_cast<int>(s.tid);
    e.pid = pid;
    e.counter_deltas = s.counter_deltas;
    events_.push_back(std::move(e));
  }
  return spans.size();
}

std::string Tracer::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [pid, name] : process_names_) {
      json.BeginObject();
      json.Key("name").Value("process_name");
      json.Key("ph").Value("M");
      json.Key("pid").Value(pid == 0 ? 1 : pid);
      json.Key("tid").Value(0);
      json.Key("args").BeginObject();
      json.Key("name").Value(name);
      json.EndObject();
      json.EndObject();
    }
    for (const TraceEvent& e : events_) {
      json.BeginObject();
      json.Key("name").Value(e.name);
      json.Key("cat").Value("catapult");
      json.Key("ph").Value("X");
      json.Key("ts").Value(e.start_ns / 1000);   // microseconds
      json.Key("dur").Value(e.dur_ns / 1000);
      json.Key("pid").Value(e.pid == 0 ? 1 : e.pid);
      json.Key("tid").Value(e.tid);
      json.Key("args").BeginObject();
      json.Key("span_id").Value(e.span_id);
      json.Key("parent_id").Value(e.parent_id);
      for (const auto& [counter, delta] : e.counter_deltas) {
        json.Key(CounterName(counter)).Value(delta);
      }
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").Value("ms");
  const uint64_t trace_id = trace_id_.load(std::memory_order_relaxed);
  if (trace_id != 0) json.Key("traceId").Value(trace_id);
  json.EndObject();
  return json.str();
}

bool Tracer::WriteFile(const std::string& path) const {
  const std::string doc = ToJson();
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) return false;
  stream << doc << '\n';
  return static_cast<bool>(stream);
}

Span::Span(Tracer* tracer, std::string name, uint64_t parent_id)
    : tracer_(tracer), name_(std::move(name)), parent_id_(parent_id) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->NextSpanId();
  start_ns_ = NowNanos();
  counters_at_open_ = ThreadCounterSnapshot();
}

void Span::Close() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_ns = start_ns_;
  const uint64_t now = NowNanos();
  event.dur_ns = now >= start_ns_ ? now - start_ns_ : 0;
  event.span_id = id_;
  event.parent_id = parent_id_;
  const std::array<uint64_t, kNumCounters> at_close = ThreadCounterSnapshot();
  for (size_t i = 0; i < kNumCounters; ++i) {
    const uint64_t delta = at_close[i] - counters_at_open_[i];
    if (delta != 0) {
      event.counter_deltas.emplace_back(static_cast<Counter>(i), delta);
    }
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // idempotent close
  tracer->Emit(std::move(event));
}

}  // namespace catapult::obs
