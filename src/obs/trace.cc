#include "src/obs/trace.h"

#include <fstream>

#include "src/obs/clock.h"
#include "src/obs/json.h"

namespace catapult::obs {

int Tracer::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void Tracer::Emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  event.tid = TidLocked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent& e : events_) {
      json.BeginObject();
      json.Key("name").Value(e.name);
      json.Key("cat").Value("catapult");
      json.Key("ph").Value("X");
      json.Key("ts").Value(e.start_ns / 1000);   // microseconds
      json.Key("dur").Value(e.dur_ns / 1000);
      json.Key("pid").Value(1);
      json.Key("tid").Value(e.tid);
      json.Key("args").BeginObject();
      json.Key("span_id").Value(e.span_id);
      json.Key("parent_id").Value(e.parent_id);
      for (const auto& [counter, delta] : e.counter_deltas) {
        json.Key(CounterName(counter)).Value(delta);
      }
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").Value("ms");
  json.EndObject();
  return json.str();
}

bool Tracer::WriteFile(const std::string& path) const {
  const std::string doc = ToJson();
  std::ofstream stream(path, std::ios::binary | std::ios::trunc);
  if (!stream) return false;
  stream << doc << '\n';
  return static_cast<bool>(stream);
}

Span::Span(Tracer* tracer, std::string name, uint64_t parent_id)
    : tracer_(tracer), name_(std::move(name)), parent_id_(parent_id) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->NextSpanId();
  start_ns_ = NowNanos();
  counters_at_open_ = ThreadCounterSnapshot();
}

void Span::Close() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.start_ns = start_ns_;
  const uint64_t now = NowNanos();
  event.dur_ns = now >= start_ns_ ? now - start_ns_ : 0;
  event.span_id = id_;
  event.parent_id = parent_id_;
  const std::array<uint64_t, kNumCounters> at_close = ThreadCounterSnapshot();
  for (size_t i = 0; i < kNumCounters; ++i) {
    const uint64_t delta = at_close[i] - counters_at_open_[i];
    if (delta != 0) {
      event.counter_deltas.emplace_back(static_cast<Counter>(i), delta);
    }
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // idempotent close
  tracer->Emit(std::move(event));
}

}  // namespace catapult::obs
