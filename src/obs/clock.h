#ifndef CATAPULT_OBS_CLOCK_H_
#define CATAPULT_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

// The single measurement time source for the whole system: phase timers,
// span tracing and metrics all read obs::NowNanos(), which counts
// monotonic nanoseconds since a process-wide anchor taken on first use.
// Pinned to steady_clock: durations feed the deadline slice-donation logic,
// the parallel-speedup accounting and trace-event timestamps, all of which
// would misbehave if the clock could jump (NTP adjustment, suspend/resume)
// mid-phase.
//
// Tests can install a deterministic tick source with ScopedTickSourceForTest
// so trace files and timing-dependent assertions are reproducible down to
// the nanosecond. The Deadline class keeps its own raw steady_clock reads on
// purpose — deadlines are control plane, not measurement, and must not be
// influenced by a test clock.

namespace catapult::obs {

// Function producing monotonic nanoseconds since some fixed origin.
using TickSource = uint64_t (*)();

// Monotonic nanoseconds since the process anchor (or whatever the installed
// tick source reports). Never decreases under the default source.
uint64_t NowNanos();

// Installs a deterministic tick source that advances a thread-local counter
// by `step_ns` per read. Thread-locality makes timestamps a function of each
// thread's own clock-read count, so background threads (heartbeats, admin
// pollers) cannot perturb the timestamps of the thread doing measured work —
// the property the byte-stable trace reruns rely on. Process-wide and
// irreversible by design: used once at startup, before threads exist.
void EnableFixedTicks(uint64_t step_ns);

// Reads CATAPULT_FIXED_TICKS from the environment and, when set, calls
// EnableFixedTicks with its value (nanoseconds per read; an unparseable or
// empty value falls back to 1000). Call at the top of main(), before any
// observability state is touched.
void InstallTicksFromEnv();

// Convenience conversions of NowNanos().
inline double NowSeconds() { return static_cast<double>(NowNanos()) * 1e-9; }
inline uint64_t NowMicros() { return NowNanos() / 1000; }

// RAII override of the tick source; restores the previous source on
// destruction. Test-only: not for concurrent installation from multiple
// threads, though reads (NowNanos) from any thread are safe.
class ScopedTickSourceForTest {
 public:
  explicit ScopedTickSourceForTest(TickSource source);
  ~ScopedTickSourceForTest();

  ScopedTickSourceForTest(const ScopedTickSourceForTest&) = delete;
  ScopedTickSourceForTest& operator=(const ScopedTickSourceForTest&) = delete;

 private:
  TickSource previous_;
};

// Simple stopwatch over NowNanos(), used for the paper's timing measures
// (clustering time, pattern generation time) and the per-phase wall times in
// ExecutionReport. Lives here so phase timers and span timestamps can never
// disagree about what time it is.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "phase timings must come from a monotonic clock");

  WallTimer() : start_(NowNanos()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = NowNanos(); }

  // Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(NowNanos() - start_) * 1e-9;
  }

  // Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  uint64_t start_;
};

}  // namespace catapult::obs

namespace catapult {
// The stopwatch predates the obs layer; existing call sites use the
// unqualified name.
using obs::WallTimer;
}  // namespace catapult

#endif  // CATAPULT_OBS_CLOCK_H_
