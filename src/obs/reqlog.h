#ifndef CATAPULT_OBS_REQLOG_H_
#define CATAPULT_OBS_REQLOG_H_

// Structured request log (DESIGN.md §16): one JSONL line per served,
// shed, or failed request, written by a dedicated writer thread off a
// bounded in-memory queue. Request-path threads only format a small struct
// and enqueue under a short mutex; they never touch the filesystem, so a
// slow disk cannot slow serving. When the queue is full the event is
// *dropped* and counted (serve.reqlog_dropped) — losing a log line is
// always preferable to backpressuring the request path.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace catapult::obs {

// One request's outcome, as recorded by the server.
struct RequestLogEvent {
  uint64_t request_id = 0;
  std::string budget_key;  // "eta_min-eta_max x gamma"
  std::string outcome;     // ok | cache_hit | shed | error | degraded
  std::string detail;      // shed reason / error message, "" otherwise
  double queue_wait_ms = 0.0;
  double run_ms = 0.0;
  uint64_t panel_patterns = 0;
  uint64_t panel_bytes = 0;
  int worker = -1;  // serving worker thread index; -1 = event-loop path
  bool slow = false;
  uint64_t trace_id = 0;        // propagated client context, 0 = none
  uint64_t parent_span_id = 0;  // propagated client context
};

class RequestLog {
 public:
  RequestLog() = default;
  ~RequestLog() { Stop(); }
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  // Opens `path` for append and starts the writer thread. Returns "" on
  // success, else the error. `capacity` bounds the in-memory queue.
  std::string Start(const std::string& path, size_t capacity = 1024);

  bool started() const { return started_; }

  // Enqueues one event; drops it (returning false) when the queue is full
  // or the log is not running. Thread-safe; never blocks on I/O.
  bool Record(const RequestLogEvent& event);

  uint64_t dropped() const;

  // Flushes the queue and stops the writer thread. Idempotent.
  void Stop();

 private:
  void WriterLoop();
  static std::string Render(const RequestLogEvent& event);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  size_t capacity_ = 0;
  uint64_t dropped_ = 0;
  bool stop_ = false;
  bool started_ = false;
  int fd_ = -1;
  std::thread thread_;
};

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_REQLOG_H_
