#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>

namespace catapult::obs {

namespace {

void AppendLine(std::string& out, const std::string& name,
                unsigned long long value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string PrometheusName(const std::string& registry_name) {
  std::string out = "catapult_";
  out.reserve(out.size() + registry_name.size());
  for (char c : registry_name) out += c == '.' ? '_' : c;
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (size_t i = 0; i < kNumCounters; ++i) {
    const std::string name =
        PrometheusName(CounterName(static_cast<Counter>(i)));
    out += "# TYPE " + name + " counter\n";
    AppendLine(out, name, snapshot.counters[i]);
  }
  for (size_t i = 0; i < kNumGauges; ++i) {
    const std::string name = PrometheusName(GaugeName(static_cast<Gauge>(i)));
    out += "# TYPE " + name + " gauge\n";
    AppendLine(out, name, snapshot.gauges[i]);
  }
  for (size_t i = 0; i < kNumHists; ++i) {
    const HistData& h = snapshot.hists[i];
    const std::string name = PrometheusName(HistName(static_cast<Hist>(i)));
    out += "# TYPE " + name + " histogram\n";
    // Cumulative buckets up to the last populated one; the open-ended log2
    // top bucket (values >= 2^63) folds into +Inf, which always equals the
    // total count as the exposition format requires.
    size_t last = kHistBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    last = std::min<size_t>(last, 64);  // bucket 64 has no finite upper edge
    uint64_t cumulative = 0;
    for (size_t b = 0; b < last; ++b) {
      cumulative += h.buckets[b];
      const uint64_t edge = b == 0 ? 0 : (uint64_t{1} << b) - 1;
      out += name + "_bucket{le=\"" + std::to_string(edge) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    AppendLine(out, name + "_sum", h.sum);
    AppendLine(out, name + "_count", h.count);
  }
  return out;
}

}  // namespace catapult::obs
