#ifndef CATAPULT_OBS_JSON_H_
#define CATAPULT_OBS_JSON_H_

// Minimal streaming JSON writer shared by every machine-readable artifact
// the system emits: selection reports (src/core/report.cc), metrics dumps
// and Chrome trace files (src/obs/), and the BENCH_*.json files written by
// the bench harnesses. Handles comma placement and full string escaping;
// the caller is responsible for balanced Begin/End calls. Numbers are
// emitted with enough precision to round-trip a double, and non-finite
// doubles degrade to null (JSON has no Inf/NaN literals, and a single bad
// value must not make the whole document unparseable).
//
// Promoted out of bench/bench_common.h so the report writer and the bench
// harnesses share one escaping implementation instead of three.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

namespace catapult::obs {

class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per nesting level and a
  // space after each key's colon; 0 (the default) emits the compact form.
  // Both forms parse identically — pretty is for artifacts people read
  // (selection reports), compact for machine-consumed dumps (traces,
  // metrics, bench output).
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  // Key of the next value inside an object; follow with Value/Begin*.
  JsonWriter& Key(const std::string& name) {
    ItemPrefix();
    Escaped(name);
    out_ += indent_ > 0 ? ": " : ":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    ItemPrefix();
    Escaped(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(double v) {
    ItemPrefix();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(uint64_t v) {
    ItemPrefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    ItemPrefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int v) {
    ItemPrefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(bool v) {
    ItemPrefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Null() {
    ItemPrefix();
    out_ += "null";
    return *this;
  }

  const std::string& str() const { return out_; }

  // Writes the document to `path` (with a trailing newline); returns false
  // on I/O failure, which callers report but do not abort on.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << out_ << '\n';
    return static_cast<bool>(out);
  }

  // JSON string escaping (quotes, backslashes, all C0 control characters).
  // Exposed so one-off writers that cannot use the streaming interface can
  // still share the escaping rules.
  static void AppendEscaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

 private:
  JsonWriter& Open(char c) {
    ItemPrefix();
    out_ += c;
    ++depth_;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char c) {
    --depth_;
    if (indent_ > 0) NewlineIndent();
    out_ += c;
    need_comma_ = true;
    pending_value_ = false;
    return *this;
  }
  // Emitted before every item (key, value, or opener): the separating comma
  // and, in pretty mode, the newline + indentation — unless the item is the
  // value that follows its own key.
  void ItemPrefix() {
    if (pending_value_) {
      pending_value_ = false;  // value follows its key on the same line
      return;
    }
    if (need_comma_) out_ += ',';
    if (indent_ > 0 && depth_ > 0) NewlineIndent();
    need_comma_ = true;
  }
  void NewlineIndent() {
    out_ += '\n';
    out_.append(static_cast<size_t>(depth_ * indent_), ' ');
  }
  void Escaped(const std::string& s) { AppendEscaped(out_, s); }

  std::string out_;
  int indent_ = 0;
  int depth_ = 0;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

}  // namespace catapult::obs

#endif  // CATAPULT_OBS_JSON_H_
