#include "src/sample/sampling.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace catapult {

size_t EagerSampleSize(const EagerSamplingOptions& options) {
  CATAPULT_CHECK(options.epsilon > 0.0 && options.rho > 0.0 &&
                 options.rho < 1.0);
  double size = 1.0 / (2.0 * options.epsilon * options.epsilon) *
                std::log(2.0 / options.rho);
  return static_cast<size_t>(std::ceil(size));
}

double LoweredSupportThreshold(double min_support, size_t sample_size,
                               const EagerSamplingOptions& options) {
  CATAPULT_CHECK(sample_size > 0);
  CATAPULT_CHECK(options.phi > 0.0 && options.phi < 1.0);
  double slack = std::sqrt(1.0 / (2.0 * static_cast<double>(sample_size)) *
                           std::log(1.0 / options.phi));
  double lowered = min_support - slack;
  // Keep the threshold strictly positive: a zero threshold would make the
  // miner enumerate everything.
  return std::clamp(lowered, std::min(0.01, min_support), min_support);
}

std::vector<GraphId> EagerSample(size_t db_size,
                                 const EagerSamplingOptions& options,
                                 Rng& rng) {
  size_t target = EagerSampleSize(options);
  std::vector<size_t> indices = rng.SampleIndices(db_size, target);
  std::vector<GraphId> ids;
  ids.reserve(indices.size());
  for (size_t i : indices) ids.push_back(static_cast<GraphId>(i));
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t CochranSampleSize(const LazySamplingOptions& options) {
  double q = 1.0 - options.p;
  double size = options.z * options.z * options.p * q /
                (options.e * options.e);
  return static_cast<size_t>(std::ceil(size));
}

size_t LazySampleSize(size_t total_population, size_t cluster_size,
                      const LazySamplingOptions& options) {
  CATAPULT_CHECK(total_population > 0);
  double sample = static_cast<double>(CochranSampleSize(options)) /
                  static_cast<double>(total_population) *
                  static_cast<double>(cluster_size);
  size_t rounded = static_cast<size_t>(std::ceil(sample));
  return std::clamp<size_t>(rounded, 1, cluster_size);
}

std::vector<std::vector<GraphId>> LazySampleClusters(
    const std::vector<std::vector<GraphId>>& clusters,
    size_t total_population, const LazySamplingOptions& options, Rng& rng) {
  std::vector<std::vector<GraphId>> result;
  result.reserve(clusters.size());
  for (const auto& cluster : clusters) {
    if (cluster.size() <= options.min_cluster_size_to_sample) {
      result.push_back(cluster);
      continue;
    }
    size_t target =
        LazySampleSize(total_population, cluster.size(), options);
    if (target >= cluster.size()) {
      result.push_back(cluster);
      continue;
    }
    std::vector<size_t> picks = rng.SampleIndices(cluster.size(), target);
    std::vector<GraphId> sampled;
    sampled.reserve(picks.size());
    for (size_t i : picks) sampled.push_back(cluster[i]);
    result.push_back(std::move(sampled));
  }
  return result;
}

}  // namespace catapult
