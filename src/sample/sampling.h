#ifndef CATAPULT_SAMPLE_SAMPLING_H_
#define CATAPULT_SAMPLE_SAMPLING_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace catapult {

// Eager sampling (Section 4.3): a uniform random sample drawn *before*
// clustering, sized by the Toivonen bound so that frequent-subtree
// frequencies in the sample deviate from the truth by more than `epsilon`
// with probability at most `rho`.
struct EagerSamplingOptions {
  double epsilon = 0.02;  // error bound on subtree frequency
  double rho = 0.01;      // probability of exceeding epsilon

  // Probability that a truly frequent subtree is missed when mining the
  // sample at the lowered threshold (Lemma 4.4's phi).
  double phi = 0.01;
};

// |S_eager| >= 1/(2 eps^2) * ln(2/rho). Independent of |D|.
size_t EagerSampleSize(const EagerSamplingOptions& options);

// Lowered support threshold for mining the sample (Lemma 4.4):
// low_fr = min_fr - sqrt(1/(2 |S|) * ln(1/phi)), clamped to (0, min_fr].
double LoweredSupportThreshold(double min_support, size_t sample_size,
                               const EagerSamplingOptions& options);

// Draws the eager sample: min(EagerSampleSize(), db_size) distinct graph
// ids. When the database is smaller than the bound, sampling is a no-op and
// all ids are returned.
std::vector<GraphId> EagerSample(size_t db_size,
                                 const EagerSamplingOptions& options,
                                 Rng& rng);

// Lazy sampling (Section 4.3 / Lemma 4.5): proportional stratified sampling
// of oversized coarse clusters.
struct LazySamplingOptions {
  double p = 0.5;   // estimated proportion sampled
  double z = 1.65;  // normal abscissa for the desired confidence (95%)
  double e = 0.03;  // desired precision

  // Clusters at or below this size are kept whole; only larger clusters are
  // down-sampled (sampling a 5-graph cluster to 2 would only destroy
  // signal).
  size_t min_cluster_size_to_sample = 50;
};

// Cochran representative sample size for the whole population:
// |S_sample| = z^2 p q / e^2.
size_t CochranSampleSize(const LazySamplingOptions& options);

// Lemma 4.5: |S_lazy(C)| = |S_sample| / |D| * |C| (at least 1).
size_t LazySampleSize(size_t total_population, size_t cluster_size,
                      const LazySamplingOptions& options);

// Applies lazy sampling to every cluster: clusters larger than the
// threshold are reduced to their Lemma 4.5 size by uniform sampling without
// replacement; others pass through unchanged.
std::vector<std::vector<GraphId>> LazySampleClusters(
    const std::vector<std::vector<GraphId>>& clusters,
    size_t total_population, const LazySamplingOptions& options, Rng& rng);

}  // namespace catapult

#endif  // CATAPULT_SAMPLE_SAMPLING_H_
