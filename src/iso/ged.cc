#include "src/iso/ged.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace catapult {

namespace {

constexpr VertexId kEpsilon = static_cast<VertexId>(-1);  // deleted vertex

// Multiset-intersection size of two sorted label vectors.
size_t SortedIntersectionSize(const std::vector<Label>& a,
                              const std::vector<Label>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

std::vector<Label> SortedLabels(const Graph& g) {
  std::vector<Label> labels(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) labels[v] = g.VertexLabel(v);
  std::sort(labels.begin(), labels.end());
  return labels;
}

struct GedSearch {
  const Graph& a;
  const Graph& b;
  const GedOptions& options;
  std::vector<VertexId> order;       // a-vertices in assignment order
  std::vector<VertexId> assignment;  // a-vertex -> b-vertex or kEpsilon
  std::vector<bool> b_used;
  double best = 0.0;
  uint64_t nodes = 0;
  bool exact = true;

  GedSearch(const Graph& a_in, const Graph& b_in, const GedOptions& opt)
      : a(a_in), b(b_in), options(opt) {
    order.resize(a.NumVertices());
    for (VertexId v = 0; v < a.NumVertices(); ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
      return a.Degree(l) > a.Degree(r);
    });
    assignment.assign(a.NumVertices(), kEpsilon);
    b_used.assign(b.NumVertices(), false);
  }

  // Incremental cost of assigning order[depth] -> bv (possibly kEpsilon),
  // given assignments for order[0..depth).
  double StepCost(size_t depth, VertexId bv) const {
    VertexId u = order[depth];
    double cost = 0.0;
    if (bv == kEpsilon) {
      cost += 1.0;  // vertex deletion
    } else if (a.VertexLabel(u) != b.VertexLabel(bv)) {
      cost += 1.0;  // vertex relabel
    }
    for (size_t d = 0; d < depth; ++d) {
      VertexId u2 = order[d];
      VertexId bv2 = assignment[u2];
      bool a_edge = a.HasEdge(u, u2);
      bool b_edge =
          (bv != kEpsilon && bv2 != kEpsilon) ? b.HasEdge(bv, bv2) : false;
      if (a_edge && b_edge) {
        if (a.EdgeLabel(u, u2) != b.EdgeLabel(bv, bv2)) cost += 1.0;
      } else if (a_edge != b_edge) {
        cost += 1.0;  // edge deletion or insertion
      }
    }
    return cost;
  }

  // Cost contributed at a leaf: unmatched b-vertices are inserted, along
  // with every b-edge touching at least one of them.
  double LeafCost() const {
    double cost = 0.0;
    for (VertexId v = 0; v < b.NumVertices(); ++v) {
      if (!b_used[v]) cost += 1.0;
    }
    for (const Edge& e : b.EdgeList()) {
      if (!b_used[e.u] || !b_used[e.v]) cost += 1.0;
    }
    return cost;
  }

  // Admissible lower bound on the remaining cost at `depth`: label-multiset
  // mismatch of undecided a-vertices vs unused b-vertices.
  double RemainingLowerBound(size_t depth) const {
    std::vector<Label> ra;
    ra.reserve(order.size() - depth);
    for (size_t d = depth; d < order.size(); ++d) {
      ra.push_back(a.VertexLabel(order[d]));
    }
    std::vector<Label> rb;
    for (VertexId v = 0; v < b.NumVertices(); ++v) {
      if (!b_used[v]) rb.push_back(b.VertexLabel(v));
    }
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    size_t common = SortedIntersectionSize(ra, rb);
    return static_cast<double>(std::max(ra.size(), rb.size()) - common);
  }

  void Dfs(size_t depth, double cost_so_far) {
    if (options.node_budget != 0 && nodes >= options.node_budget) {
      exact = false;
      return;
    }
    ++nodes;
    if (cost_so_far + RemainingLowerBound(depth) >= best) return;
    if (depth == order.size()) {
      double total = cost_so_far + LeafCost();
      if (total < best) best = total;
      return;
    }
    VertexId u = order[depth];
    // Prefer same-label b-vertices first (cheap moves explored early).
    std::vector<VertexId> candidates;
    for (VertexId v = 0; v < b.NumVertices(); ++v) {
      if (!b_used[v]) candidates.push_back(v);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](VertexId l, VertexId r) {
                       bool le = b.VertexLabel(l) == a.VertexLabel(u);
                       bool re = b.VertexLabel(r) == a.VertexLabel(u);
                       return le > re;
                     });
    for (VertexId v : candidates) {
      double step = StepCost(depth, v);
      assignment[u] = v;
      b_used[v] = true;
      Dfs(depth + 1, cost_so_far + step);
      b_used[v] = false;
      assignment[u] = kEpsilon;
      if (!exact) return;
    }
    // Delete u.
    double step = StepCost(depth, kEpsilon);
    assignment[u] = kEpsilon;
    Dfs(depth + 1, cost_so_far + step);
  }

  // Greedy upper bound to seed branch-and-bound.
  double GreedyUpperBound() {
    double cost = 0.0;
    for (size_t depth = 0; depth < order.size(); ++depth) {
      VertexId u = order[depth];
      double best_step = StepCost(depth, kEpsilon);
      VertexId best_v = kEpsilon;
      for (VertexId v = 0; v < b.NumVertices(); ++v) {
        if (b_used[v]) continue;
        double step = StepCost(depth, v);
        if (step < best_step) {
          best_step = step;
          best_v = v;
        }
      }
      assignment[u] = best_v;
      if (best_v != kEpsilon) b_used[best_v] = true;
      cost += best_step;
    }
    cost += LeafCost();
    // Reset state for the exact search.
    for (size_t depth = 0; depth < order.size(); ++depth) {
      VertexId u = order[depth];
      if (assignment[u] != kEpsilon) b_used[assignment[u]] = false;
      assignment[u] = kEpsilon;
    }
    return cost;
  }
};

}  // namespace

double GedLowerBound(const Graph& a, const Graph& b) {
  std::vector<Label> la = SortedLabels(a);
  std::vector<Label> lb = SortedLabels(b);
  size_t common = SortedIntersectionSize(la, lb);
  size_t va = a.NumVertices();
  size_t vb = b.NumVertices();
  double vertex_term =
      static_cast<double>(va > vb ? va - vb : vb - va) +
      static_cast<double>(std::min(va, vb) - common);
  size_t ea = a.NumEdges();
  size_t eb = b.NumEdges();
  double edge_term = static_cast<double>(ea > eb ? ea - eb : eb - ea);
  return vertex_term + edge_term;
}

GedResult GraphEditDistance(const Graph& a, const Graph& b,
                            GedOptions options) {
  GedSearch search(a, b, options);
  // `best` starts at the greedy bound + 1 ulp of slack so the exact search
  // can rediscover an equal-cost solution.
  search.best = search.GreedyUpperBound() + 1e-9;
  double greedy = search.best;
  search.Dfs(0, 0.0);
  GedResult result;
  result.distance = std::min(search.best, greedy);
  // Strip the slack epsilon if nothing better was found.
  result.distance = std::round(result.distance);
  result.exact = search.exact;
  return result;
}

}  // namespace catapult
