#ifndef CATAPULT_ISO_GED_H_
#define CATAPULT_ISO_GED_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace catapult {

// Options for graph edit distance computation. All edit operations (vertex
// insertion/deletion/relabelling, edge insertion/deletion) cost 1, the
// uniform-cost model implied by the paper's use of GED as a structural
// diversity measure.
struct GedOptions {
  // Branch-and-bound node budget (0 = unlimited). When hit, the best upper
  // bound found so far is returned (still an admissible *upper* bound on the
  // true distance) and `exact` is reported false via GedResult.
  uint64_t node_budget = 500000;
};

// Result of a GED computation.
struct GedResult {
  double distance = 0.0;
  bool exact = true;
};

// Lower bound on GED(a, b) per Definition 5.1 of the paper:
//   |V|-term = ||VA|-|VB|| + min(|VA|,|VB|) - |L(VA) ^ L(VB)|
//   |E|-term = ||EA|-|EB||
// where L(VA) ^ L(VB) is the multiset intersection of vertex labels (the
// exact number of vertex substitutions plus insertions/deletions needed,
// ignoring structure). Cheap: O(|V| log |V|).
double GedLowerBound(const Graph& a, const Graph& b);

// Exact graph edit distance via depth-first branch-and-bound over vertex
// assignments, seeded with a greedy upper bound and pruned with label-based
// lower bounds. Exponential in the worst case; intended for canned-pattern
// sized graphs (<= ~13 vertices), with anytime fallback under `node_budget`.
GedResult GraphEditDistance(const Graph& a, const Graph& b,
                            GedOptions options = {});

}  // namespace catapult

#endif  // CATAPULT_ISO_GED_H_
