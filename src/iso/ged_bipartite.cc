#include "src/iso/ged_bipartite.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace catapult {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr VertexId kEpsilon = static_cast<VertexId>(-1);

// Multiset of incident edge-label keys of `v`, sorted.
std::vector<EdgeLabelKey> IncidentKeys(const Graph& g, VertexId v) {
  std::vector<EdgeLabelKey> keys;
  keys.reserve(g.Degree(v));
  for (const Graph::Neighbor& n : g.Neighbors(v)) {
    keys.push_back(g.EdgeKey(v, n.to));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

size_t MultisetIntersection(const std::vector<EdgeLabelKey>& a,
                            const std::vector<EdgeLabelKey>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return common;
}

// Exact edit cost implied by a complete vertex assignment (uniform costs,
// same model as iso/ged.cc): the assignment-based method's final step.
double CostOfAssignment(const Graph& a, const Graph& b,
                        const std::vector<VertexId>& mapping) {
  double cost = 0.0;
  std::vector<bool> b_used(b.NumVertices(), false);
  for (VertexId u = 0; u < a.NumVertices(); ++u) {
    VertexId v = mapping[u];
    if (v == kEpsilon) {
      cost += 1.0;
    } else {
      b_used[v] = true;
      if (a.VertexLabel(u) != b.VertexLabel(v)) cost += 1.0;
    }
  }
  for (VertexId v = 0; v < b.NumVertices(); ++v) {
    if (!b_used[v]) cost += 1.0;
  }
  // Edges of a: substituted, relabelled, or deleted.
  for (const Edge& e : a.EdgeList()) {
    VertexId mu = mapping[e.u];
    VertexId mv = mapping[e.v];
    if (mu != kEpsilon && mv != kEpsilon && b.HasEdge(mu, mv)) {
      if (b.EdgeLabel(mu, mv) != e.label) cost += 1.0;
    } else {
      cost += 1.0;
    }
  }
  // Edges of b that are not images of a-edges: insertions.
  std::vector<int> inverse(b.NumVertices(), -1);
  for (VertexId u = 0; u < a.NumVertices(); ++u) {
    if (mapping[u] != kEpsilon) inverse[mapping[u]] = static_cast<int>(u);
  }
  for (const Edge& e : b.EdgeList()) {
    int iu = inverse[e.u];
    int iv = inverse[e.v];
    bool covered = iu >= 0 && iv >= 0 &&
                   a.HasEdge(static_cast<VertexId>(iu),
                             static_cast<VertexId>(iv));
    if (!covered) cost += 1.0;
  }
  return cost;
}

}  // namespace

double SolveAssignment(const std::vector<double>& cost, size_t n,
                       std::vector<size_t>* assignment) {
  CATAPULT_CHECK(cost.size() == n * n);
  if (n == 0) {
    if (assignment != nullptr) assignment->clear();
    return 0.0;
  }
  // Hungarian algorithm (shortest augmenting path formulation), 1-based.
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);    // p[j]: row matched to column j
  std::vector<size_t> way(n + 1, 0);  // predecessor columns
  auto C = [&](size_t i, size_t j) { return cost[(i - 1) * n + (j - 1)]; };

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = C(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  if (assignment != nullptr) {
    assignment->assign(n, 0);
    for (size_t j = 1; j <= n; ++j) {
      if (p[j] != 0) (*assignment)[p[j] - 1] = j - 1;
    }
  }
  double total = 0.0;
  for (size_t j = 1; j <= n; ++j) total += C(p[j], j);
  return total;
}

namespace {

// Greedy local improvement: swap the targets of two a-vertices (or retarget
// one to an unused b-vertex / epsilon) while the exact induced cost drops.
// The cost matrix frequently has ties on sparse unlabelled regions (a known
// weakness of the plain assignment method); a short hill-climb recovers
// most of the gap at polynomial cost.
double ImproveMapping(const Graph& a, const Graph& b,
                      std::vector<VertexId>& mapping) {
  double best = CostOfAssignment(a, b, mapping);
  bool improved = true;
  while (improved) {
    improved = false;
    // Pairwise target swaps.
    for (VertexId i = 0; i < a.NumVertices() && !improved; ++i) {
      for (VertexId j = i + 1; j < a.NumVertices() && !improved; ++j) {
        std::swap(mapping[i], mapping[j]);
        double cost = CostOfAssignment(a, b, mapping);
        if (cost < best - 1e-12) {
          best = cost;
          improved = true;
        } else {
          std::swap(mapping[i], mapping[j]);
        }
      }
    }
    if (improved) continue;
    // Retarget one a-vertex to any unused b-vertex or epsilon.
    std::vector<bool> used(b.NumVertices(), false);
    for (VertexId u = 0; u < a.NumVertices(); ++u) {
      if (mapping[u] != kEpsilon) used[mapping[u]] = true;
    }
    for (VertexId u = 0; u < a.NumVertices() && !improved; ++u) {
      VertexId original = mapping[u];
      for (VertexId v = 0; v <= b.NumVertices() && !improved; ++v) {
        VertexId target =
            v == b.NumVertices() ? kEpsilon : static_cast<VertexId>(v);
        if (target != kEpsilon && used[target]) continue;
        if (target == original) continue;
        mapping[u] = target;
        double cost = CostOfAssignment(a, b, mapping);
        if (cost < best - 1e-12) {
          best = cost;
          improved = true;
          if (original != kEpsilon) used[original] = false;
          if (target != kEpsilon) used[target] = true;
        } else {
          mapping[u] = original;
        }
      }
    }
  }
  return best;
}

double BipartiteGedOneWay(const Graph& a, const Graph& b) {
  const size_t na = a.NumVertices();
  const size_t nb = b.NumVertices();
  const size_t n = na + nb;
  if (n == 0) return 0.0;

  // Precompute incident-edge key multisets.
  std::vector<std::vector<EdgeLabelKey>> keys_a(na);
  std::vector<std::vector<EdgeLabelKey>> keys_b(nb);
  for (VertexId u = 0; u < na; ++u) keys_a[u] = IncidentKeys(a, u);
  for (VertexId v = 0; v < nb; ++v) keys_b[v] = IncidentKeys(b, v);

  // (na + nb) x (na + nb) matrix:
  //   [ substitution | deletion  ]
  //   [ insertion    | zero      ]
  // Edge contributions are halved because each edge is seen from both of
  // its endpoints (the standard Riesen-Neuhaus construction).
  std::vector<double> cost(n * n, 0.0);
  auto At = [&](size_t i, size_t j) -> double& { return cost[i * n + j]; };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i < na && j < nb) {
        double c = a.VertexLabel(static_cast<VertexId>(i)) ==
                           b.VertexLabel(static_cast<VertexId>(j))
                       ? 0.0
                       : 1.0;
        size_t da = keys_a[i].size();
        size_t db = keys_b[j].size();
        size_t common = MultisetIntersection(keys_a[i], keys_b[j]);
        c += 0.5 * static_cast<double>(da + db - 2 * common);
        At(i, j) = c;
      } else if (i < na && j >= nb) {
        // Deleting a-vertex i is only available on its own column.
        At(i, j) = (j - nb == i)
                       ? 1.0 + 0.5 * static_cast<double>(keys_a[i].size())
                       : kInf;
      } else if (i >= na && j < nb) {
        At(i, j) = (i - na == j)
                       ? 1.0 + 0.5 * static_cast<double>(keys_b[j].size())
                       : kInf;
      } else {
        At(i, j) = 0.0;
      }
    }
  }

  std::vector<size_t> assignment;
  SolveAssignment(cost, n, &assignment);

  // Translate into a vertex mapping and evaluate its exact edit cost: that
  // is a genuine upper bound on GED(a, b).
  std::vector<VertexId> mapping(na, kEpsilon);
  for (size_t i = 0; i < na; ++i) {
    if (assignment[i] < nb) {
      mapping[i] = static_cast<VertexId>(assignment[i]);
    }
  }
  return ImproveMapping(a, b, mapping);
}

}  // namespace

double BipartiteGed(const Graph& a, const Graph& b) {
  obs::Count(obs::Counter::kGedBipartiteCalls);
  obs::Observe(obs::Hist::kGedMatrixDim, a.NumVertices() + b.NumVertices());
  // The assignment heuristic is not symmetric; evaluate both directions and
  // keep the tighter (both are valid upper bounds).
  double forward = BipartiteGedOneWay(a, b);
  double backward = BipartiteGedOneWay(b, a);
  return std::min(forward, backward);
}

}  // namespace catapult
