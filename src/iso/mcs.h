#ifndef CATAPULT_ISO_MCS_H_
#define CATAPULT_ISO_MCS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace catapult {

// Options for maximum (connected) common subgraph search.
struct McsOptions {
  // If true, computes the maximum connected common subgraph (MCCS); if
  // false, pieces of the common subgraph may be disconnected (MCS).
  bool connected = true;

  // If true, edge labels must match in addition to vertex labels.
  bool match_edge_labels = false;

  // Backtracking-node budget (0 = unlimited). MCS/MCCS are NP-complete; when
  // the budget is hit, the best mapping found so far is returned with
  // `exact == false` (anytime behaviour). The default is tuned so that a
  // similarity query on two molecule-sized graphs costs well under a
  // millisecond while staying exact for most such pairs; raise it when exact
  // optima matter more than throughput.
  uint64_t node_budget = 20000;
};

// Result of an MCS/MCCS computation.
struct McsResult {
  // Number of edges of the common subgraph (|G| = |E| per the paper).
  size_t common_edges = 0;
  // Number of mapped vertex pairs.
  size_t common_vertices = 0;
  // The vertex mapping (a-vertex, b-vertex) realising the common subgraph.
  std::vector<std::pair<VertexId, VertexId>> mapping;
  // True if the search provably found the optimum.
  bool exact = true;
};

// McGregor-style branch-and-bound maximum (connected) common subgraph of `a`
// and `b`. Maximises the number of common *edges*, consistent with the
// paper's size measure |G| = |E| and with its similarity definitions.
McsResult MaxCommonSubgraph(const Graph& a, const Graph& b,
                            McsOptions options = {});

// Similarity omega(a, b) = |G_common| / min(|a|, |b|), where |.| counts
// edges (Section 2). Pass options.connected=true for omega_mccs, false for
// omega_mcs. Returns 0 when either graph has no edges.
double McsSimilarity(const Graph& a, const Graph& b, McsOptions options = {});

}  // namespace catapult

#endif  // CATAPULT_ISO_MCS_H_
