#include "src/iso/flat_vf2.h"

#include <deque>

#include "src/obs/metrics.h"

namespace catapult {

namespace {

// Mirrors the batching of vf2.cc: one bookkeeping record per search.
void RecordSearch(uint64_t nodes, bool budget_exhausted) {
  obs::Count(obs::Counter::kVf2Calls);
  obs::Count(obs::Counter::kVf2Nodes, nodes);
  obs::Observe(obs::Hist::kVf2NodesPerCall, nodes);
  if (budget_exhausted) obs::Count(obs::Counter::kVf2BudgetExhausted);
}

// Root choice: rarest label in the target, ties broken by highest pattern
// degree — the same ranking SubgraphIsomorphism computes from a label-count
// map, read here from the precomputed domain counts.
VertexId PickRoot(const FlatGraphView& pattern, const LabelDomains& domains) {
  VertexId best = 0;
  size_t rb = domains.CountOf(pattern.VertexLabel(0));
  for (VertexId v = 1; v < pattern.num_vertices; ++v) {
    size_t rv = domains.CountOf(pattern.VertexLabel(v));
    if (rv < rb || (rv == rb && pattern.Degree(v) > pattern.Degree(best))) {
      best = v;
      rb = rv;
    }
  }
  return best;
}

struct FlatSearch {
  const FlatGraphView& pattern;
  const FlatGraphView& target;
  const LabelDomains& domains;
  const IsoOptions& options;
  std::vector<VertexId> order;
  std::vector<int> parent;
  std::vector<int> position;
  std::vector<VertexId> mapping;
  std::vector<bool> target_used;
  uint64_t nodes = 0;
  bool found = false;

  FlatSearch(const FlatGraphView& p, const FlatGraphView& t,
             const LabelDomains& d, const IsoOptions& opt)
      : pattern(p), target(t), domains(d), options(opt) {
    order.reserve(pattern.NumVertices());
    parent.assign(pattern.NumVertices(), -1);
    position.assign(pattern.NumVertices(), -1);
    std::deque<VertexId> frontier = {PickRoot(pattern, domains)};
    std::vector<bool> discovered(pattern.NumVertices(), false);
    discovered[frontier.front()] = true;
    while (!frontier.empty()) {
      VertexId v = frontier.front();
      frontier.pop_front();
      position[v] = static_cast<int>(order.size());
      order.push_back(v);
      for (const FlatNeighbor* n = pattern.NeighborsBegin(v);
           n != pattern.NeighborsEnd(v); ++n) {
        if (!discovered[n->to]) {
          discovered[n->to] = true;
          parent[n->to] = static_cast<int>(v);
          frontier.push_back(n->to);
        }
      }
    }
    CATAPULT_CHECK_MSG(order.size() == pattern.NumVertices(),
                       "pattern must be connected");
    mapping.assign(pattern.NumVertices(), 0);
    target_used.assign(target.NumVertices(), false);
  }

  // Extends the embedding with pv -> tv (label compatibility already
  // established by the caller). Returns false only to stop the search.
  bool TryCandidate(size_t depth, VertexId pv, size_t pv_degree, VertexId tv) {
    if (target_used[tv]) return true;
    if (target.Degree(tv) < pv_degree) return true;
    for (const FlatNeighbor* n = pattern.NeighborsBegin(pv);
         n != pattern.NeighborsEnd(pv); ++n) {
      if (position[n->to] >= static_cast<int>(depth)) continue;  // unmatched
      const FlatNeighbor* e = target.FindEdge(tv, mapping[n->to]);
      if (e == nullptr) return true;
      if (options.match_edge_labels && e->edge_label != n->edge_label) {
        return true;
      }
    }
    if (options.induced) {
      for (size_t d = 0; d < depth; ++d) {
        VertexId other = order[d];
        if (!pattern.HasEdge(pv, other) &&
            target.HasEdge(tv, mapping[other])) {
          return true;
        }
      }
    }
    mapping[pv] = tv;
    target_used[tv] = true;
    bool keep_going = Backtrack(depth + 1);
    target_used[tv] = false;
    return keep_going;
  }

  bool Backtrack(size_t depth) {
    if (options.node_budget != 0 && nodes >= options.node_budget) {
      if (options.budget_exhausted != nullptr) {
        *options.budget_exhausted = true;
      }
      return false;
    }
    ++nodes;

    if (depth == order.size()) {
      found = true;
      return false;  // existence only: stop at the first embedding
    }

    VertexId pv = order[depth];
    Label pv_label = pattern.VertexLabel(pv);
    size_t pv_degree = pattern.Degree(pv);

    if (depth == 0) {
      // Set bits of the root label's domain, ascending: exactly the
      // candidates the naive 0..V scan accepts, in the same order.
      const uint64_t* words = domains.Words(pv_label);
      if (words == nullptr) return true;
      size_t num_words = domains.words_per_domain();
      for (size_t w = 0; w < num_words; ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
          VertexId tv = static_cast<VertexId>(
              (w << 6) + static_cast<size_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
          if (!TryCandidate(depth, pv, pv_degree, tv)) return false;
        }
      }
    } else {
      VertexId anchor_tv = mapping[static_cast<VertexId>(parent[pv])];
      for (const FlatNeighbor* n = target.NeighborsBegin(anchor_tv);
           n != target.NeighborsEnd(anchor_tv); ++n) {
        if (n->to_label != pv_label) continue;
        if (!TryCandidate(depth, pv, pv_degree, n->to)) return false;
      }
    }
    return true;
  }
};

}  // namespace

bool FlatContainsSubgraph(const FlatGraphView& pattern,
                          const FlatGraphView& target,
                          const LabelDomains* target_domains,
                          IsoOptions options) {
  CATAPULT_CHECK(pattern.NumVertices() > 0);
  if (options.budget_exhausted != nullptr) {
    *options.budget_exhausted = false;
  }
  LabelDomains local;
  if (target_domains == nullptr) {
    local = LabelDomains::Build(target);
    target_domains = &local;
  }
  FlatSearch search(pattern, target, *target_domains, options);
  if (pattern.NumVertices() > target.NumVertices() ||
      pattern.NumEdges() > target.NumEdges()) {
    return false;  // same silent precheck as SubgraphIsomorphism::Exists
  }
  search.Backtrack(0);
  RecordSearch(search.nodes, options.node_budget != 0 &&
                                 search.nodes >= options.node_budget);
  return search.found;
}

}  // namespace catapult
