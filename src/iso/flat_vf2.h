#ifndef CATAPULT_ISO_FLAT_VF2_H_
#define CATAPULT_ISO_FLAT_VF2_H_

// Flat-layout subgraph-isomorphism existence kernel (DESIGN.md §15).
//
// Drop-in replacement for ContainsSubgraph on FlatGraphView inputs, used by
// the selection hot path (coverage tests against CSG summaries). The search
// is bit-identical to SubgraphIsomorphism on the equivalent Graph inputs:
// same root choice, same BFS matching order, same candidate sequences (flat
// adjacency preserves insertion order; the root domain bitset enumerates
// exactly the label-compatible vertices the naive 0..V scan accepts, in the
// same ascending order), and the same one-increment-per-Backtrack node
// accounting — so results, node counts, truncation points and the
// vf2.* observability counters are all unchanged. Only the lookup costs
// differ: edge-consistency checks binary-search the sorted permutation
// instead of scanning neighbour vectors, and label-incompatible candidates
// are skipped without touching the used/degree state.

#include "src/graph/flat_graph.h"
#include "src/iso/vf2.h"

namespace catapult {

// True if `pattern` (connected, non-empty) has an embedding in `target`.
// `target_domains` (optional) supplies precomputed per-label root candidate
// bitsets and label-frequency counts for `target`; when null they are
// derived on the fly from the view (one O(V) pass).
bool FlatContainsSubgraph(const FlatGraphView& pattern,
                          const FlatGraphView& target,
                          const LabelDomains* target_domains,
                          IsoOptions options = {});

}  // namespace catapult

#endif  // CATAPULT_ISO_FLAT_VF2_H_
