#include "src/iso/vf2.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "src/obs/metrics.h"

namespace catapult {

namespace {

// One bookkeeping batch per search (not per node): the per-node cost of
// instrumentation inside Backtrack would dwarf the work it measures.
void RecordSearch(uint64_t nodes, bool budget_exhausted) {
  obs::Count(obs::Counter::kVf2Calls);
  obs::Count(obs::Counter::kVf2Nodes, nodes);
  obs::Observe(obs::Hist::kVf2NodesPerCall, nodes);
  if (budget_exhausted) obs::Count(obs::Counter::kVf2BudgetExhausted);
}

// Chooses the root of the matching order: rarest label in the target, ties
// broken by highest pattern degree.
VertexId PickRoot(const Graph& pattern, const Graph& target) {
  std::unordered_map<Label, size_t> target_label_count;
  for (VertexId v = 0; v < target.NumVertices(); ++v) {
    ++target_label_count[target.VertexLabel(v)];
  }
  auto Rarity = [&](VertexId v) {
    auto it = target_label_count.find(pattern.VertexLabel(v));
    return it == target_label_count.end() ? size_t{0} : it->second;
  };
  VertexId best = 0;
  for (VertexId v = 1; v < pattern.NumVertices(); ++v) {
    size_t rv = Rarity(v);
    size_t rb = Rarity(best);
    if (rv < rb || (rv == rb && pattern.Degree(v) > pattern.Degree(best))) {
      best = v;
    }
  }
  return best;
}

}  // namespace

SubgraphIsomorphism::SubgraphIsomorphism(const Graph& pattern,
                                         const Graph& target,
                                         IsoOptions options)
    : pattern_(pattern), target_(target), options_(options) {
  CATAPULT_CHECK(pattern.NumVertices() > 0);
  if (options_.budget_exhausted != nullptr) {
    *options_.budget_exhausted = false;
  }
  // BFS matching order from the root. The pattern is connected by contract,
  // so every non-root vertex is discovered from an earlier vertex, which
  // becomes its anchor: its match constrains the candidate set to the
  // anchor's target neighbourhood.
  order_.reserve(pattern_.NumVertices());
  parent_.assign(pattern_.NumVertices(), -1);   // anchor vertex id, by vertex
  position_.assign(pattern_.NumVertices(), -1);  // index in order_, by vertex
  std::deque<VertexId> frontier = {PickRoot(pattern_, target_)};
  std::vector<bool> discovered(pattern_.NumVertices(), false);
  discovered[frontier.front()] = true;
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    position_[v] = static_cast<int>(order_.size());
    order_.push_back(v);
    for (const Graph::Neighbor& n : pattern_.Neighbors(v)) {
      if (!discovered[n.to]) {
        discovered[n.to] = true;
        parent_[n.to] = static_cast<int>(v);
        frontier.push_back(n.to);
      }
    }
  }
  CATAPULT_CHECK_MSG(order_.size() == pattern_.NumVertices(),
                     "pattern must be connected");
  mapping_.assign(pattern_.NumVertices(), 0);
  target_used_.assign(target_.NumVertices(), false);
}

bool SubgraphIsomorphism::Backtrack(
    size_t depth, const std::function<bool(const Embedding&)>& visitor,
    size_t& found) {
  if (options_.node_budget != 0 && nodes_ >= options_.node_budget) {
    if (options_.budget_exhausted != nullptr) {
      *options_.budget_exhausted = true;
    }
    return false;  // Abort the whole search.
  }
  ++nodes_;

  if (depth == order_.size()) {
    ++found;
    return visitor(mapping_);
  }

  VertexId pv = order_[depth];
  Label pv_label = pattern_.VertexLabel(pv);
  size_t pv_degree = pattern_.Degree(pv);

  // Tries to extend the partial embedding with pv -> tv. Returns false only
  // when the entire search should stop.
  auto TryCandidate = [&](VertexId tv) -> bool {
    if (target_used_[tv]) return true;
    if (target_.VertexLabel(tv) != pv_label) return true;
    if (target_.Degree(tv) < pv_degree) return true;
    // Every pattern edge from pv to an already-matched vertex must be
    // realised in the target.
    for (const Graph::Neighbor& n : pattern_.Neighbors(pv)) {
      if (position_[n.to] >= static_cast<int>(depth)) continue;  // unmatched
      VertexId mapped = mapping_[n.to];
      if (!target_.HasEdge(tv, mapped)) return true;
      if (options_.match_edge_labels &&
          target_.EdgeLabel(tv, mapped) != pattern_.EdgeLabel(pv, n.to)) {
        return true;
      }
    }
    if (options_.induced) {
      // Matched pattern vertices non-adjacent to pv must stay non-adjacent.
      for (size_t d = 0; d < depth; ++d) {
        VertexId other = order_[d];
        if (!pattern_.HasEdge(pv, other) &&
            target_.HasEdge(tv, mapping_[other])) {
          return true;
        }
      }
    }
    mapping_[pv] = tv;
    target_used_[tv] = true;
    bool keep_going = Backtrack(depth + 1, visitor, found);
    target_used_[tv] = false;
    return keep_going;
  };

  if (depth == 0) {
    for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
      if (!TryCandidate(tv)) return false;
    }
  } else {
    VertexId anchor = static_cast<VertexId>(parent_[pv]);
    for (const Graph::Neighbor& n : target_.Neighbors(mapping_[anchor])) {
      if (!TryCandidate(n.to)) return false;
    }
  }
  return true;
}

bool SubgraphIsomorphism::Exists() {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return false;
  }
  size_t found = 0;
  nodes_ = 0;
  Backtrack(0, [](const Embedding&) { return false; }, found);
  RecordSearch(nodes_, BudgetExhausted());
  return found > 0;
}

size_t SubgraphIsomorphism::Count(size_t cap) {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return 0;
  }
  size_t found = 0;
  nodes_ = 0;
  Backtrack(0,
            [&](const Embedding&) { return cap == 0 || found < cap; },
            found);
  RecordSearch(nodes_, BudgetExhausted());
  return found;
}

size_t SubgraphIsomorphism::Enumerate(
    const std::function<bool(const Embedding&)>& visitor) {
  if (pattern_.NumVertices() > target_.NumVertices() ||
      pattern_.NumEdges() > target_.NumEdges()) {
    return 0;
  }
  size_t found = 0;
  nodes_ = 0;
  Backtrack(0, visitor, found);
  RecordSearch(nodes_, BudgetExhausted());
  return found;
}

bool ContainsSubgraph(const Graph& pattern, const Graph& target,
                      IsoOptions options) {
  return SubgraphIsomorphism(pattern, target, options).Exists();
}

std::vector<Embedding> FindEmbeddings(const Graph& pattern,
                                      const Graph& target, size_t max_count,
                                      IsoOptions options) {
  std::vector<Embedding> embeddings;
  SubgraphIsomorphism iso(pattern, target, options);
  iso.Enumerate([&](const Embedding& e) {
    embeddings.push_back(e);
    return max_count == 0 || embeddings.size() < max_count;
  });
  return embeddings;
}

bool AreIsomorphic(const Graph& a, const Graph& b, IsoOptions options) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  if (a.NumVertices() == 0) return true;
  if (GraphFingerprint(a) != GraphFingerprint(b)) return false;
  // With equal vertex and edge counts, an embedding is a bijection covering
  // all edges, i.e. an isomorphism (induced holds automatically, but is
  // cheap to enforce and prunes the search).
  options.induced = true;
  return ContainsSubgraph(a, b, options);
}

bool AreIsomorphicWithFingerprints(const Graph& a, const Graph& b,
                                   uint64_t fp_a, uint64_t fp_b,
                                   IsoOptions options) {
  if (fp_a != fp_b) return false;
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  if (a.NumVertices() == 0) return true;
  options.induced = true;
  return ContainsSubgraph(a, b, options);
}

uint64_t GraphFingerprint(const Graph& g) {
  // Weisfeiler-Leman style colour refinement hashed into 64 bits. This is an
  // invariant: isomorphic graphs always produce the same value.
  auto Mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::vector<uint64_t> color(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    color[v] = Mix(0x12345678ULL, g.VertexLabel(v));
  }
  const int kRounds = 3;
  std::vector<uint64_t> next(g.NumVertices());
  std::vector<uint64_t> neighbor_colors;
  for (int round = 0; round < kRounds; ++round) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      neighbor_colors.clear();
      neighbor_colors.reserve(g.Degree(v));
      for (const Graph::Neighbor& n : g.Neighbors(v)) {
        neighbor_colors.push_back(color[n.to]);
      }
      std::sort(neighbor_colors.begin(), neighbor_colors.end());
      uint64_t h = Mix(color[v], 0xABCDEFULL);
      for (uint64_t c : neighbor_colors) h = Mix(h, c);
      next[v] = h;
    }
    color.swap(next);
  }
  std::sort(color.begin(), color.end());
  uint64_t h = Mix(g.NumVertices(), g.NumEdges());
  for (uint64_t c : color) h = Mix(h, c);
  return h;
}

}  // namespace catapult
