#ifndef CATAPULT_ISO_GED_BIPARTITE_H_
#define CATAPULT_ISO_GED_BIPARTITE_H_

#include "src/graph/graph.h"

namespace catapult {

// Assignment-based graph edit distance approximation of Riesen, Neuhaus &
// Bunke [GbRPR'07] - the paper's reference [32] for GED computation.
//
// A cost matrix over (a-vertex or deletion) x (b-vertex or insertion) is
// built, where the cost of mapping u -> v combines the vertex substitution
// cost with an estimate of the induced edge edit cost (matching the two
// vertices' incident-edge label multisets); the optimal assignment is found
// with the Hungarian algorithm in O((|Va|+|Vb|)^3), and the edit operations
// implied by the assignment are summed.
//
// The result is an *upper bound* on the true GED (every assignment induces
// a valid edit path) that is typically tight for molecule-sized graphs, at
// polynomial cost - the selector can use it instead of the exponential
// exact search when pattern sets grow large.
double BipartiteGed(const Graph& a, const Graph& b);

// Solves the square assignment problem for `cost` (row-major n x n),
// returning the minimal total cost; `assignment` (optional) receives the
// column chosen for each row. Exposed for tests.
double SolveAssignment(const std::vector<double>& cost, size_t n,
                       std::vector<size_t>* assignment = nullptr);

}  // namespace catapult

#endif  // CATAPULT_ISO_GED_BIPARTITE_H_
