#ifndef CATAPULT_ISO_VF2_H_
#define CATAPULT_ISO_VF2_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/graph.h"

namespace catapult {

// Options for subgraph isomorphism search.
struct IsoOptions {
  // If true, requires an induced embedding (non-edges of the pattern must map
  // to non-edges of the target). The paper's containment tests (coverage,
  // "p is contained in Q") use ordinary subgraph isomorphism, i.e. false.
  bool induced = false;

  // If true, edge labels must match; otherwise only vertex labels matter
  // (molecule benchmarks in the paper treat single/double bonds alike, cf.
  // Example 1.1: "single and double bonds are both represented as unweighted
  // edges").
  bool match_edge_labels = false;

  // Backtracking-node budget; 0 means unlimited. When the budget is hit the
  // search reports "not found" and sets `budget_exhausted` (if provided).
  uint64_t node_budget = 0;
  bool* budget_exhausted = nullptr;
};

// A pattern->target embedding: mapping[i] is the target vertex matched to
// pattern vertex i.
using Embedding = std::vector<VertexId>;

// VF2-style backtracking subgraph isomorphism.
//
// The matching order is a BFS order of the pattern rooted at its most
// constrained vertex (rarest label, then highest degree), so every vertex
// after the first is matched adjacent to already-matched vertices; candidate
// target vertices are filtered by label, degree, and adjacency consistency.
class SubgraphIsomorphism {
 public:
  // `pattern` must be connected and non-empty.
  SubgraphIsomorphism(const Graph& pattern, const Graph& target,
                      IsoOptions options = {});

  // True if at least one embedding exists.
  bool Exists();

  // Number of embeddings, stopping early at `cap` (0 = no cap). Note that
  // automorphic images count separately.
  size_t Count(size_t cap);

  // Invokes `visitor` for each embedding until it returns false or the
  // search space is exhausted. Returns the number of embeddings visited.
  size_t Enumerate(const std::function<bool(const Embedding&)>& visitor);

 private:
  bool Backtrack(size_t depth, const std::function<bool(const Embedding&)>& visitor,
                 size_t& found);

  // True when the last search stopped because it hit the node budget.
  bool BudgetExhausted() const {
    return options_.node_budget != 0 && nodes_ >= options_.node_budget;
  }

  const Graph& pattern_;
  const Graph& target_;
  IsoOptions options_;
  std::vector<VertexId> order_;  // pattern vertices in matching order
  std::vector<int> parent_;      // BFS anchor vertex id, indexed by vertex
  std::vector<int> position_;    // index in order_, indexed by vertex
  Embedding mapping_;                    // pattern vertex -> target vertex
  std::vector<bool> target_used_;
  uint64_t nodes_ = 0;
};

// Convenience: true if `pattern` has an embedding in `target`.
bool ContainsSubgraph(const Graph& pattern, const Graph& target,
                      IsoOptions options = {});

// Convenience: up to `max_count` embeddings of `pattern` in `target`.
std::vector<Embedding> FindEmbeddings(const Graph& pattern,
                                      const Graph& target, size_t max_count,
                                      IsoOptions options = {});

// True if `a` and `b` are isomorphic as labelled graphs.
bool AreIsomorphic(const Graph& a, const Graph& b, IsoOptions options = {});

// AreIsomorphic for callers that already hold the graphs' fingerprints
// (selector dedup and cache probes compare many pairs against the same
// graph; recomputing the colour-refinement hash per pair dominated the
// comparison). `fp_a` / `fp_b` must equal GraphFingerprint(a) / (b).
bool AreIsomorphicWithFingerprints(const Graph& a, const Graph& b,
                                   uint64_t fp_a, uint64_t fp_b,
                                   IsoOptions options = {});

// Isomorphism-invariant 64-bit fingerprint (colour-refinement hash). Equal
// graphs hash equal; unequal hashes imply non-isomorphism. Used to bucket
// candidates before exact isomorphism checks in mining and deduplication.
uint64_t GraphFingerprint(const Graph& g);

}  // namespace catapult

#endif  // CATAPULT_ISO_VF2_H_
