#include "src/iso/mcs.h"

#include <algorithm>
#include <tuple>

#include "src/util/check.h"

namespace catapult {

namespace {

// Shared search state for both the connected and the unconnected variant.
struct SearchState {
  const Graph& a;
  const Graph& b;
  const McsOptions& options;
  std::vector<bool> a_used;
  std::vector<bool> b_used;
  std::vector<std::pair<VertexId, VertexId>> mapping;
  size_t current_edges = 0;
  uint64_t nodes = 0;
  bool exact = true;
  McsResult best;

  SearchState(const Graph& a_in, const Graph& b_in, const McsOptions& opt)
      : a(a_in), b(b_in), options(opt) {
    a_used.assign(a.NumVertices(), false);
    b_used.assign(b.NumVertices(), false);
  }

  bool BudgetExhausted() {
    if (options.node_budget != 0 && nodes >= options.node_budget) {
      exact = false;
      return true;
    }
    ++nodes;
    return false;
  }

  // Number of common edges gained by adding the pair (u, v) on top of the
  // current mapping.
  size_t Gain(VertexId u, VertexId v) const {
    size_t gain = 0;
    for (const auto& [x, y] : mapping) {
      if (a.HasEdge(u, x) && b.HasEdge(v, y)) {
        if (!options.match_edge_labels ||
            a.EdgeLabel(u, x) == b.EdgeLabel(v, y)) {
          ++gain;
        }
      }
    }
    return gain;
  }

  void RecordBest() {
    if (current_edges > best.common_edges ||
        (current_edges == best.common_edges &&
         mapping.size() > best.common_vertices)) {
      best.common_edges = current_edges;
      best.common_vertices = mapping.size();
      best.mapping = mapping;
    }
  }

  void Push(VertexId u, VertexId v, size_t gain) {
    a_used[u] = true;
    b_used[v] = true;
    mapping.emplace_back(u, v);
    current_edges += gain;
  }

  void Pop(size_t gain) {
    auto [u, v] = mapping.back();
    mapping.pop_back();
    a_used[u] = false;
    b_used[v] = false;
    current_edges -= gain;
  }
};

// Grows a connected common subgraph from the current mapping. Records the
// best mapping at every node (anytime).
void ConnectedExtend(SearchState& state) {
  if (state.BudgetExhausted()) return;
  state.RecordBest();

  // Trivial upper bound: every additional common edge consumes a distinct
  // edge of each graph.
  size_t upper = state.current_edges +
                 std::min(state.a.NumEdges(), state.b.NumEdges()) -
                 state.current_edges;
  if (upper <= state.best.common_edges) return;

  // Candidate pairs adjacent to the mapped region with positive gain.
  struct Candidate {
    VertexId u, v;
    size_t gain;
  };
  std::vector<Candidate> candidates;
  for (const auto& [x, y] : state.mapping) {
    for (const Graph::Neighbor& na : state.a.Neighbors(x)) {
      if (state.a_used[na.to]) continue;
      for (const Graph::Neighbor& nb : state.b.Neighbors(y)) {
        if (state.b_used[nb.to]) continue;
        if (state.a.VertexLabel(na.to) != state.b.VertexLabel(nb.to)) {
          continue;
        }
        size_t gain = state.Gain(na.to, nb.to);
        if (gain > 0) candidates.push_back({na.to, nb.to, gain});
      }
    }
  }
  // Deduplicate (the same pair can be adjacent to several mapped pairs).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& l, const Candidate& r) {
              return std::tie(l.u, l.v) < std::tie(r.u, r.v);
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& l, const Candidate& r) {
                                 return l.u == r.u && l.v == r.v;
                               }),
                   candidates.end());
  // Best-gain first: improves the anytime bound quickly.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& l, const Candidate& r) {
                     return l.gain > r.gain;
                   });
  for (const Candidate& c : candidates) {
    state.Push(c.u, c.v, c.gain);
    ConnectedExtend(state);
    state.Pop(c.gain);
    if (!state.exact) return;
  }
}

// Per-index upper bounds for the unconnected search: remaining[i] is the
// number of a-edges touching any vertex still undecided at depth i, i.e.
// order[i..]. The undecided set depends only on the (fixed) order and the
// index, never on the mapping, so hoisting the computation out of the search
// leaves the pruning — and thus the whole search tree — unchanged.
std::vector<size_t> RemainingEdgeBounds(const Graph& a,
                                        const std::vector<VertexId>& order) {
  std::vector<size_t> remaining(order.size() + 1, 0);
  std::vector<bool> undecided(a.NumVertices(), false);
  std::vector<Edge> edges = a.EdgeList();
  for (size_t index = order.size(); index-- > 0;) {
    undecided[order[index]] = true;
    size_t count = 0;
    for (const Edge& e : edges) {
      if (undecided[e.u] || undecided[e.v]) ++count;
    }
    remaining[index] = count;
  }
  return remaining;
}

// Unconnected MCS: decide a-vertices in a fixed order (map or skip).
void UnconnectedExtend(SearchState& state,
                       const std::vector<VertexId>& order,
                       const std::vector<size_t>& remaining, size_t index) {
  if (state.BudgetExhausted()) return;
  state.RecordBest();
  if (index == order.size()) return;

  // Upper bound: remaining a-edges touching undecided vertices.
  if (state.current_edges + remaining[index] <= state.best.common_edges) {
    return;
  }

  VertexId u = order[index];
  Label lu = state.a.VertexLabel(u);
  for (VertexId v = 0; v < state.b.NumVertices(); ++v) {
    if (state.b_used[v] || state.b.VertexLabel(v) != lu) continue;
    size_t gain = state.Gain(u, v);
    state.Push(u, v, gain);
    UnconnectedExtend(state, order, remaining, index + 1);
    state.Pop(gain);
    if (!state.exact) return;
  }
  // Skip u entirely.
  UnconnectedExtend(state, order, remaining, index + 1);
}

}  // namespace

McsResult MaxCommonSubgraph(const Graph& a, const Graph& b,
                            McsOptions options) {
  SearchState state(a, b, options);
  if (a.NumVertices() == 0 || b.NumVertices() == 0) return state.best;

  if (options.connected) {
    // Try every label-compatible seed pair. Seeds are tried highest-degree
    // first so large common regions are found early.
    std::vector<std::pair<VertexId, VertexId>> seeds;
    for (VertexId u = 0; u < a.NumVertices(); ++u) {
      for (VertexId v = 0; v < b.NumVertices(); ++v) {
        if (a.VertexLabel(u) == b.VertexLabel(v)) seeds.emplace_back(u, v);
      }
    }
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](const auto& l, const auto& r) {
                       return a.Degree(l.first) + b.Degree(l.second) >
                              a.Degree(r.first) + b.Degree(r.second);
                     });
    for (const auto& [u, v] : seeds) {
      state.Push(u, v, 0);
      ConnectedExtend(state);
      state.Pop(0);
      if (!state.exact) break;
      // Optimal already: cannot beat min edge count.
      if (state.best.common_edges == std::min(a.NumEdges(), b.NumEdges())) {
        break;
      }
    }
  } else {
    std::vector<VertexId> order(a.NumVertices());
    for (VertexId v = 0; v < a.NumVertices(); ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(), [&](VertexId l, VertexId r) {
      return a.Degree(l) > a.Degree(r);
    });
    UnconnectedExtend(state, order, RemainingEdgeBounds(a, order), 0);
  }
  state.best.exact = state.exact;
  return state.best;
}

double McsSimilarity(const Graph& a, const Graph& b, McsOptions options) {
  size_t min_edges = std::min(a.NumEdges(), b.NumEdges());
  if (min_edges == 0) return 0.0;
  McsResult result = MaxCommonSubgraph(a, b, options);
  return static_cast<double>(result.common_edges) /
         static_cast<double>(min_edges);
}

}  // namespace catapult
