#include "src/data/query_generator.h"

#include <algorithm>

#include <map>

#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {

std::vector<Graph> GenerateQueryWorkload(const GraphDatabase& db,
                                         const QueryWorkloadOptions& options) {
  CATAPULT_CHECK(!db.empty());
  CATAPULT_CHECK(options.max_edges >= options.min_edges);
  Rng rng(options.seed);
  std::vector<Graph> queries;
  queries.reserve(options.count);
  while (queries.size() < options.count) {
    const Graph& source = db.graph(
        static_cast<GraphId>(rng.UniformInt(db.size())));
    if (source.NumEdges() == 0) continue;
    size_t want = static_cast<size_t>(
        rng.UniformInRange(static_cast<int64_t>(options.min_edges),
                           static_cast<int64_t>(options.max_edges)));
    Graph query = RandomConnectedSubgraph(source, want, rng);
    if (query.NumEdges() == 0) continue;
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<Graph> GenerateQueryMix(const GraphDatabase& db,
                                    const std::vector<Graph>& frequent_pool,
                                    const QueryMixOptions& options) {
  CATAPULT_CHECK(!db.empty());
  Rng rng(options.seed);

  // Verification sample for support checks.
  std::vector<size_t> sample_indices =
      rng.SampleIndices(db.size(), options.verification_sample);
  auto SampleSupport = [&](const Graph& q) {
    size_t hits = 0;
    for (size_t i : sample_indices) {
      if (ContainsSubgraph(q, db.graph(static_cast<GraphId>(i)))) ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(sample_indices.size());
  };

  size_t infrequent_target = static_cast<size_t>(
      options.infrequent_fraction * static_cast<double>(options.count) + 0.5);
  size_t frequent_target = options.count - infrequent_target;

  std::vector<Graph> queries;
  queries.reserve(options.count);

  // Frequent queries: sample from the pool (filtered to the size window).
  std::vector<const Graph*> usable_pool;
  for (const Graph& g : frequent_pool) {
    if (g.NumEdges() >= options.min_edges &&
        g.NumEdges() <= options.max_edges) {
      usable_pool.push_back(&g);
    }
  }
  for (size_t i = 0; i < frequent_target; ++i) {
    if (usable_pool.empty()) break;
    queries.push_back(*usable_pool[rng.UniformInt(usable_pool.size())]);
  }

  // Rarest vertex labels of the database (for the perturbation fallback).
  std::vector<Label> rare_labels;
  {
    std::map<Label, size_t> counts;
    for (const Graph& g : db.graphs()) {
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        ++counts[g.VertexLabel(v)];
      }
    }
    std::vector<std::pair<size_t, Label>> ordered;
    for (const auto& [label, count] : counts) {
      ordered.emplace_back(count, label);
    }
    std::sort(ordered.begin(), ordered.end());
    for (const auto& [count, label] : ordered) {
      rare_labels.push_back(label);
      if (rare_labels.size() == 3) break;
    }
  }

  // Infrequent queries: random subgraphs re-drawn until rare; if a draw's
  // parts are all common, relabel a couple of vertices to rare labels
  // (queries are user-drawn and need not occur in D).
  while (queries.size() < options.count) {
    Graph candidate;
    for (int attempt = 0; attempt < 20; ++attempt) {
      const Graph& source =
          db.graph(static_cast<GraphId>(rng.UniformInt(db.size())));
      if (source.NumEdges() < options.min_edges) continue;
      size_t want = static_cast<size_t>(
          rng.UniformInRange(static_cast<int64_t>(options.min_edges),
                             static_cast<int64_t>(options.max_edges)));
      Graph q = RandomConnectedSubgraph(source, want, rng);
      if (q.NumEdges() < options.min_edges) continue;
      if (SampleSupport(q) < options.frequent_threshold) {
        candidate = std::move(q);
        break;
      }
      candidate = std::move(q);  // Keep the last draw as fallback.
    }
    if (candidate.NumEdges() == 0) break;
    if (options.perturb_labels_for_infrequent && !rare_labels.empty() &&
        SampleSupport(candidate) >= options.frequent_threshold) {
      size_t to_relabel = 1 + candidate.NumVertices() / 8;
      for (size_t r = 0; r < to_relabel; ++r) {
        VertexId v =
            static_cast<VertexId>(rng.UniformInt(candidate.NumVertices()));
        candidate.SetVertexLabel(
            v, rare_labels[rng.UniformInt(rare_labels.size())]);
      }
    }
    queries.push_back(std::move(candidate));
  }
  return queries;
}

}  // namespace catapult
