#include "src/data/molecule_generator.h"

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/util/rng.h"

namespace catapult {

namespace {

// Atom alphabet with a PubChem-like skew.
struct AtomDistribution {
  std::vector<Label> labels;
  std::vector<double> weights;
};

AtomDistribution MakeAtoms(LabelMap& labels, size_t alphabet_size) {
  AtomDistribution atoms;
  const char* names[8] = {"C", "O", "N", "S", "Cl", "P", "F", "Br"};
  const double weights[8] = {0.68, 0.10, 0.09, 0.05, 0.03, 0.02, 0.02, 0.01};
  size_t n = std::clamp<size_t>(alphabet_size, 2, 26);
  for (size_t i = 0; i < std::min<size_t>(n, 8); ++i) {
    atoms.labels.push_back(labels.Intern(names[i]));
    atoms.weights.push_back(weights[i]);
  }
  if (n > 8) {
    // The long tail splits the rare mass evenly.
    double tail_total = 0.06;
    double each = tail_total / static_cast<double>(n - 8);
    for (size_t i = 8; i < n; ++i) {
      atoms.labels.push_back(labels.Intern("X" + std::to_string(i)));
      atoms.weights.push_back(each);
    }
  }
  return atoms;
}

// Appends a ring of the given labels to `g`; returns its vertex ids.
std::vector<VertexId> AddRing(Graph& g, const std::vector<Label>& ring) {
  std::vector<VertexId> ids;
  ids.reserve(ring.size());
  for (Label label : ring) ids.push_back(g.AddVertex(label));
  for (size_t i = 0; i < ids.size(); ++i) {
    g.AddEdge(ids[i], ids[(i + 1) % ids.size()]);
  }
  return ids;
}

// Appends a path; returns its vertex ids.
std::vector<VertexId> AddPath(Graph& g, const std::vector<Label>& path) {
  std::vector<VertexId> ids;
  for (Label label : path) ids.push_back(g.AddVertex(label));
  for (size_t i = 0; i + 1 < ids.size(); ++i) g.AddEdge(ids[i], ids[i + 1]);
  return ids;
}

// Builds one of the eight primitive scaffolds into a fresh graph.
Graph BuildPrimitiveScaffold(size_t family, const AtomDistribution& atoms) {
  // The alphabet can be clamped as low as two labels; reuse the last label
  // for the missing hetero-atoms instead of reading past the vector.
  auto at = [&](size_t i) {
    return atoms.labels[std::min(i, atoms.labels.size() - 1)];
  };
  const Label C = at(0);
  const Label O = at(1);
  const Label N = at(2);
  const Label S = at(3);
  Graph g;
  switch (family % 8) {
    case 0: {  // Benzene-like six-ring.
      AddRing(g, {C, C, C, C, C, C});
      break;
    }
    case 1: {  // Pyridine-like hetero six-ring.
      AddRing(g, {C, C, C, C, C, N});
      break;
    }
    case 2: {  // Furan-like five-ring.
      AddRing(g, {C, C, C, C, O});
      break;
    }
    case 3: {  // Urea-like star: N-C(-O)-N with a carbon tail.
      VertexId c = g.AddVertex(C);
      VertexId n1 = g.AddVertex(N);
      VertexId n2 = g.AddVertex(N);
      VertexId o = g.AddVertex(O);
      g.AddEdge(c, n1);
      g.AddEdge(c, n2);
      g.AddEdge(c, o);
      VertexId tail = g.AddVertex(C);
      g.AddEdge(n1, tail);
      break;
    }
    case 4: {  // Carbon chain.
      AddPath(g, {C, C, C, C, C});
      break;
    }
    case 5: {  // Fused six-rings (naphthalene-like).
      std::vector<VertexId> ring = AddRing(g, {C, C, C, C, C, C});
      VertexId a = g.AddVertex(C);
      VertexId b = g.AddVertex(C);
      VertexId c = g.AddVertex(C);
      VertexId d = g.AddVertex(C);
      g.AddEdge(ring[0], a);
      g.AddEdge(a, b);
      g.AddEdge(b, c);
      g.AddEdge(c, d);
      g.AddEdge(d, ring[1]);
      break;
    }
    case 6: {  // Thiophene-like five-ring with a carboxyl-ish arm.
      std::vector<VertexId> ring = AddRing(g, {C, C, C, C, S});
      VertexId arm = g.AddVertex(C);
      VertexId o1 = g.AddVertex(O);
      VertexId o2 = g.AddVertex(O);
      g.AddEdge(ring[0], arm);
      g.AddEdge(arm, o1);
      g.AddEdge(arm, o2);
      break;
    }
    default: {  // Amide chain: C-C(-O)-N-C.
      VertexId c1 = g.AddVertex(C);
      VertexId c2 = g.AddVertex(C);
      VertexId o = g.AddVertex(O);
      VertexId n = g.AddVertex(N);
      VertexId c3 = g.AddVertex(C);
      g.AddEdge(c1, c2);
      g.AddEdge(c2, o);
      g.AddEdge(c2, n);
      g.AddEdge(n, c3);
      break;
    }
  }
  return g;
}

// Builds the scaffold of family `family`. Families 0-7 are the primitive
// scaffolds; higher ids are ordered pairs of primitives joined by a bridge
// edge (up to 64 distinct families), mirroring how real compound families
// combine multiple functional groups.
Graph BuildScaffold(size_t family, const AtomDistribution& atoms) {
  size_t first = family % 8;
  size_t second = (family / 8) % 8;
  Graph g = BuildPrimitiveScaffold(first, atoms);
  if (family < 8) return g;
  Graph other = BuildPrimitiveScaffold(second, atoms);
  VertexId offset = static_cast<VertexId>(g.NumVertices());
  for (VertexId v = 0; v < other.NumVertices(); ++v) {
    g.AddVertex(other.VertexLabel(v));
  }
  for (const Edge& e : other.EdgeList()) {
    g.AddEdge(offset + e.u, offset + e.v, e.label);
  }
  g.AddEdge(0, offset);  // bridge
  return g;
}

constexpr size_t kMaxDegree = 4;

}  // namespace

GraphDatabase GenerateMoleculeDatabase(
    const MoleculeGeneratorOptions& options) {
  CATAPULT_CHECK(options.min_vertices >= 5);
  CATAPULT_CHECK(options.max_vertices >= options.min_vertices);
  GraphDatabase db;
  AtomDistribution atoms = MakeAtoms(db.labels(), options.alphabet_size);
  Rng rng(options.seed);
  size_t families = std::max<size_t>(1, options.scaffold_families);

  for (size_t i = 0; i < options.num_graphs; ++i) {
    size_t family = options.scaffold_family_offset + rng.UniformInt(families);
    Graph g = BuildScaffold(family, atoms);

    size_t target = static_cast<size_t>(rng.UniformInRange(
        static_cast<int64_t>(options.min_vertices),
        static_cast<int64_t>(options.max_vertices)));

    // Decorate: attach random atoms to random under-degree vertices.
    while (g.NumVertices() < target) {
      std::vector<VertexId> attachable;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (g.Degree(v) < kMaxDegree) attachable.push_back(v);
      }
      if (attachable.empty()) break;
      VertexId host = attachable[rng.UniformInt(attachable.size())];
      Label label;
      if (rng.Bernoulli(options.family_label_bias)) {
        // Family-preferred non-carbon atom (rotating by family).
        label = atoms.labels[1 + family % (atoms.labels.size() - 1)];
      } else {
        label = atoms.labels[rng.WeightedIndex(atoms.weights)];
      }
      VertexId leaf = g.AddVertex(label);
      g.AddEdge(host, leaf);
    }

    // Occasionally close one extra ring between two nearby carbons.
    if (rng.Bernoulli(options.extra_ring_probability) &&
        g.NumVertices() >= 6) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        VertexId u = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
        if (g.Degree(u) >= kMaxDegree) continue;
        // Walk 4-5 steps away from u and close the ring.
        VertexId w = u;
        VertexId prev = u;
        size_t steps = 4 + rng.UniformInt(2);
        for (size_t s = 0; s < steps; ++s) {
          const auto& nbrs = g.Neighbors(w);
          VertexId next = nbrs[rng.UniformInt(nbrs.size())].to;
          if (next == prev && nbrs.size() > 1) {
            next = nbrs[rng.UniformInt(nbrs.size())].to;
          }
          prev = w;
          w = next;
        }
        if (w != u && !g.HasEdge(u, w) && g.Degree(w) < kMaxDegree) {
          g.AddEdge(u, w);
          break;
        }
      }
    }
    db.Add(std::move(g));
  }
  return db;
}

}  // namespace catapult
