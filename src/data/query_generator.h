#ifndef CATAPULT_DATA_QUERY_GENERATOR_H_
#define CATAPULT_DATA_QUERY_GENERATOR_H_

#include <vector>

#include "src/graph/graph_database.h"
#include "src/mining/subgraph_miner.h"
#include "src/util/rng.h"

namespace catapult {

// Subgraph-query workload generation (Section 6.1: "1000 subgraph queries
// with sizes in the range [4-40] ... randomly selecting connected subgraphs
// from the dataset").
struct QueryWorkloadOptions {
  size_t count = 1000;
  size_t min_edges = 4;
  size_t max_edges = 40;
  uint64_t seed = 7;
};

// Draws `count` random connected subgraph queries: pick a random data graph,
// extract a random connected subgraph of a uniform size in
// [min_edges, max_edges] (capped by the graph's own size, floored at
// min(min_edges, |G|)).
std::vector<Graph> GenerateQueryWorkload(const GraphDatabase& db,
                                         const QueryWorkloadOptions& options);

// Exp 9's mixed workloads Q_x: a fraction `infrequent_fraction` of the
// queries are infrequent subgraphs, the rest are frequent ones.
struct QueryMixOptions {
  size_t count = 50;
  double infrequent_fraction = 0.2;  // the x of Q_x

  // A query counts as frequent when it appears in at least this fraction of
  // a verification sample of the database.
  double frequent_threshold = 0.04;
  size_t verification_sample = 200;

  size_t min_edges = 4;
  size_t max_edges = 14;
  uint64_t seed = 11;

  // When a random subgraph refuses to be infrequent (its parts are all
  // common), relabel a couple of its vertices to the database's rarest
  // vertex labels. User queries are not restricted to subgraphs of D
  // (Section 3.3: users "may frequently pose infrequent subgraph
  // queries"), and rare functional groups are exactly what makes real
  // queries infrequent.
  bool perturb_labels_for_infrequent = true;
};

// Builds Q_x: frequent queries are drawn from `frequent_pool` (e.g. mined
// frequent subgraphs of >= min_edges edges, possibly repeated); infrequent
// queries are random connected subgraphs re-drawn until their support on a
// verification sample falls below the threshold (best effort, bounded
// retries).
std::vector<Graph> GenerateQueryMix(const GraphDatabase& db,
                                    const std::vector<Graph>& frequent_pool,
                                    const QueryMixOptions& options);

}  // namespace catapult

#endif  // CATAPULT_DATA_QUERY_GENERATOR_H_
