#ifndef CATAPULT_DATA_MOLECULE_GENERATOR_H_
#define CATAPULT_DATA_MOLECULE_GENERATOR_H_

#include <cstdint>

#include "src/graph/graph_database.h"

namespace catapult {

// Synthetic molecule-like graph databases.
//
// The paper evaluates on AIDS / PubChem / eMolecules chemical-compound
// repositories, which cannot be shipped here; this generator reproduces the
// statistical regime those algorithms actually consume:
//  * skewed vertex-label distribution (C dominates, then O/N, then S/Cl/...);
//  * small connected graphs (default 8-30 vertices) with degree <= 4;
//  * recurring ring/chain scaffolds (benzene-like C6 rings, hetero 5-rings,
//    carbonyl/urea-like stars, chains, fused ring pairs) decorated with
//    random branches, giving the database genuine cluster structure;
//  * sparse topology (|E| close to |V|).
struct MoleculeGeneratorOptions {
  size_t num_graphs = 1000;
  size_t min_vertices = 8;
  size_t max_vertices = 30;

  // Number of scaffold families; graphs built from the same family share
  // topology. Families 0-7 are primitive scaffolds; families 8-63 are
  // ordered pairs of primitives joined by a bridge (values above 64 wrap).
  size_t scaffold_families = 6;

  // Number of distinct vertex labels (2..26). The first eight are real
  // atom symbols with a PubChem-like skew; additional labels ("X8"...)
  // model the long tail of element/charge/isotope variants that real
  // repositories carry (AIDS has ~60 labels) and share the tail mass.
  size_t alphabet_size = 8;

  // First family id used: graphs draw families uniformly from
  // [scaffold_family_offset, scaffold_family_offset + scaffold_families).
  // Lets callers compose databases dominated by specific motifs (see the
  // drug_discovery example).
  size_t scaffold_family_offset = 0;

  // Probability that a decorated graph receives one extra ring closure.
  double extra_ring_probability = 0.25;

  // Probability that a decoration atom is drawn from the scaffold family's
  // preferred hetero-atom instead of the global skewed distribution. Real
  // compound families share functional groups, not just scaffolds; this is
  // what gives the database genuine cluster structure for the clustering
  // and CSG stages to find. Set to 0 for fully family-agnostic decoration.
  double family_label_bias = 0.45;

  uint64_t seed = 1234;
};

// Generates the database. Deterministic given options.seed. Every graph is
// connected and simple; vertex labels are interned atom symbols ("C", "N",
// "O", "S", "Cl", "P", "F", "Br").
GraphDatabase GenerateMoleculeDatabase(const MoleculeGeneratorOptions& options);

}  // namespace catapult

#endif  // CATAPULT_DATA_MOLECULE_GENERATOR_H_
