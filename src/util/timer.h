#ifndef CATAPULT_UTIL_TIMER_H_
#define CATAPULT_UTIL_TIMER_H_

#include <chrono>

namespace catapult {

// Simple wall-clock stopwatch used by the benchmark harnesses to report the
// paper's timing measures (clustering time, pattern generation time).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_TIMER_H_
