#ifndef CATAPULT_UTIL_TIMER_H_
#define CATAPULT_UTIL_TIMER_H_

#include <chrono>

namespace catapult {

// Simple stopwatch used for the paper's timing measures (clustering time,
// pattern generation time) and the per-phase wall times in ExecutionReport.
// Pinned to steady_clock: phase durations feed the deadline slice-donation
// logic and the parallel-speedup accounting, both of which would misbehave
// if the clock could jump (NTP adjustment, suspend/resume) while worker
// threads are mid-phase.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "phase timings must come from a monotonic clock");

  WallTimer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_TIMER_H_
