#ifndef CATAPULT_UTIL_SIGNAL_H_
#define CATAPULT_UTIL_SIGNAL_H_

#include <csignal>

#include "src/util/deadline.h"

// Self-pipe shutdown-signal bridge shared by the CLI and the server
// (DESIGN.md §13). SIGINT/SIGTERM must wind a run down cooperatively, but a
// signal handler may only touch async-signal-safe state: no mutexes, no
// allocation, no condition variables. The handler here does exactly two
// POSIX-blessed things — store the signal number into a sig_atomic_t and
// write() one byte to a private non-blocking pipe — and a background watcher
// thread does everything else outside signal context: it cancels the shared
// CancelToken (so RunContext::StopRequested observes the shutdown) and
// forwards one byte to every subscribed pipe (so poll()-driven event loops
// like catapult_serve wake immediately).
//
// This replaces the CLI's previous std::signal handler, which cancelled a
// global CancelToken directly from signal context — benign on the platforms
// we run on, but outside the async-signal-safety contract — and gives the
// server a fd it can fold into its poll set.

namespace catapult {

class ShutdownSignals {
 public:
  // The process-wide instance. The first call installs sigaction handlers
  // (SA_RESTART) for SIGINT and SIGTERM and starts the watcher thread; the
  // instance is intentionally never destroyed so a signal arriving during
  // static destruction still has valid state to land in.
  static ShutdownSignals& Instance();

  // Cancelled by the watcher as soon as a shutdown signal arrives. Hand it
  // (or a copy) into RunContext so the pipeline winds down cooperatively.
  CancelToken token() const;

  // The last shutdown signal received, 0 if none yet. A plain read of a
  // sig_atomic_t, safe from any thread.
  int last_signal() const;
  bool Received() const { return last_signal() != 0; }

  // Registers and returns the read end of a fresh pipe that becomes
  // readable (one byte, the signal number) when a shutdown signal arrives.
  // Poll loops fold it into their fd set; the caller owns the returned fd
  // and closes it when done. A signal already received is reported
  // immediately (the byte is pre-written), so subscribing is race-free.
  int SubscribeFd();

  // Test hook: re-arms the bridge as if no signal had been seen — installs
  // a fresh token and clears the latched signal number. Previously
  // subscribed fds are dropped (tests close them). Not for production use:
  // a real shutdown request must stay latched.
  void ResetForTest();

  ShutdownSignals(const ShutdownSignals&) = delete;
  ShutdownSignals& operator=(const ShutdownSignals&) = delete;

 private:
  ShutdownSignals();
  void WatcherLoop();
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_SIGNAL_H_
