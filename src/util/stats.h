#ifndef CATAPULT_UTIL_STATS_H_
#define CATAPULT_UTIL_STATS_H_

#include <vector>

namespace catapult {

// Summary statistics over a sample. All functions tolerate empty input by
// returning 0 (the benchmark harnesses print aggregates over possibly-empty
// query subsets, e.g. "all queries that used at least one pattern").
double Mean(const std::vector<double>& values);
double Max(const std::vector<double>& values);
double Min(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// p in [0, 100]; linear interpolation between closest ranks.
double Percentile(std::vector<double> values, double p);

// Kendall rank correlation coefficient (tau-a) between two equally sized
// score vectors. Used by Exp 10 to compare cognitive-load measures against
// observed task-time ranks. Returns 0 for fewer than two items.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace catapult

#endif  // CATAPULT_UTIL_STATS_H_
