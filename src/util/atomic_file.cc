#include "src/util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/failpoint.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace catapult {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// Flushes `file` to stable storage. Returns false (with errno set) on
// failure or when the "persist.fsync" failpoint is armed.
bool SyncFile(std::FILE* file) {
  if (CATAPULT_FAILPOINT("persist.fsync")) {
    errno = EIO;
    return false;
  }
  obs::Count(obs::Counter::kCheckpointFsyncs);
#if defined(_WIN32)
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(fileno(file)) == 0;
#endif
}

// Best-effort fsync of the directory containing `path`, so the rename that
// published a file in it is itself durable. Failure is not reported: the
// file content is already safe, only the directory entry may be replayed.
void SyncParentDirectory(const std::string& path) {
#if !defined(_WIN32)
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    obs::Count(obs::Counter::kCheckpointFsyncs);
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

std::string AtomicWriteFile(const std::string& path,
                            const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return ErrnoMessage("cannot open", tmp);

  // A torn write models a crash that persisted only a prefix of the bytes;
  // the rename below still happens, so the *reader* must catch it via the
  // record checksum / size checks.
  size_t to_write = bytes.size();
  if (CATAPULT_FAILPOINT("persist.torn_write")) to_write /= 2;

  bool ok = to_write == 0 ||
            std::fwrite(bytes.data(), 1, to_write, file) == to_write;
  ok = ok && std::fflush(file) == 0;
  ok = ok && SyncFile(file);
  std::string error;
  if (!ok) error = ErrnoMessage("cannot write", tmp);
  if (std::fclose(file) != 0 && error.empty()) {
    error = ErrnoMessage("cannot close", tmp);
  }
  if (error.empty() && CATAPULT_FAILPOINT("persist.rename")) {
    errno = EIO;
    error = ErrnoMessage("cannot rename", tmp);
  }
  if (error.empty() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = ErrnoMessage("cannot rename", tmp);
  }
  if (!error.empty()) {
    std::remove(tmp.c_str());
    return error;
  }
  SyncParentDirectory(path);
  return std::string();
}

std::string ReadWholeFile(const std::string& path, std::string* out) {
  out->clear();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return ErrnoMessage("cannot open", path);
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
    if (CATAPULT_FAILPOINT("persist.short_read")) {
      out->resize(out->size() / 2);
      break;
    }
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return ErrnoMessage("cannot read", path);
  if (!out->empty() && CATAPULT_FAILPOINT("persist.bit_flip")) {
    (*out)[out->size() / 2] ^= 0x10;
  }
  return std::string();
}

}  // namespace catapult
