#include "src/util/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "src/obs/metrics.h"

namespace catapult::failpoint {

namespace {

struct Site {
  long remaining = 0;  // firings left; < 0 = unlimited
  bool armed = false;
  size_t hits = 0;
};

// Number of currently armed sites; the lock-free gate consulted by every
// CATAPULT_FAILPOINT before touching the registry.
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, Site>& Registry() {
  static auto* registry = new std::unordered_map<std::string, Site>();
  return *registry;
}

}  // namespace

void Arm(const std::string& site, long count) {
  std::lock_guard<std::mutex> lock(Mutex());
  Site& s = Registry()[site];
  if (!s.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  s.armed = true;
  s.remaining = count;
  s.hits = 0;
}

void Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  if (it == Registry().end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  for (auto& [name, site] : Registry()) {
    if (site.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  Registry().clear();
}

size_t HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

bool AnyArmed() { return g_armed_count.load(std::memory_order_relaxed) > 0; }

bool Evaluate(const char* site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(site);
  if (it == Registry().end() || !it->second.armed) return false;
  Site& s = it->second;
  if (s.remaining == 0) return false;
  if (s.remaining > 0) --s.remaining;
  ++s.hits;
  obs::Count(obs::Counter::kFailpointFires);
  return true;
}

ScopedFailpoint::ScopedFailpoint(std::string site, long count)
    : site_(std::move(site)) {
  Arm(site_, count);
}

ScopedFailpoint::~ScopedFailpoint() { Disarm(site_); }

}  // namespace catapult::failpoint
