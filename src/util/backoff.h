#ifndef CATAPULT_UTIL_BACKOFF_H_
#define CATAPULT_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstddef>

// Deterministic capped exponential backoff for shard retries (DESIGN.md
// §12). Unlike the jittered backoff of networked retry loops, the schedule
// here is a pure function of the attempt number: the sharded executor's
// whole recovery sequence must replay identically under the chaos suite's
// fixed kill-site seeds, so randomised jitter is deliberately absent.
// Thundering-herd concerns do not apply — at most `processes` workers of
// one supervisor ever back off, against local fork(), not a shared service.

namespace catapult {

class ExponentialBackoff {
 public:
  // `base_ms` is the delay after the first failure; each further failure
  // doubles it (times `multiplier`) up to `cap_ms`. Non-positive inputs are
  // clamped so a zero-configured policy degrades to "retry immediately"
  // instead of dividing by zero or sleeping forever.
  ExponentialBackoff(double base_ms, double cap_ms, double multiplier = 2.0)
      : base_ms_(std::max(0.0, base_ms)),
        cap_ms_(std::max(0.0, cap_ms)),
        multiplier_(std::max(1.0, multiplier)) {}

  // Delay before retry number `attempt` (1-based: attempt 1 follows the
  // first failure). attempt 0 returns 0 (no failure yet, no wait).
  double DelayMs(size_t attempt) const {
    if (attempt == 0) return 0.0;
    double delay = base_ms_;
    for (size_t i = 1; i < attempt; ++i) {
      delay *= multiplier_;
      if (delay >= cap_ms_) return cap_ms_;
    }
    return std::min(delay, cap_ms_);
  }

  double base_ms() const { return base_ms_; }
  double cap_ms() const { return cap_ms_; }

 private:
  double base_ms_;
  double cap_ms_;
  double multiplier_;
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_BACKOFF_H_
