#ifndef CATAPULT_UTIL_CHECK_H_
#define CATAPULT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight runtime assertions for programmer errors. These are enabled in
// all build types: the library's contracts (e.g. "vertex id must be in
// range") are cheap to verify relative to the NP-hard work done around them,
// and silent memory corruption in a research codebase is far more expensive
// than the check.

// Aborts with a message when `condition` is false.
#define CATAPULT_CHECK(condition)                                          \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "CATAPULT_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

// Aborts with a formatted message when `condition` is false.
#define CATAPULT_CHECK_MSG(condition, ...)                                 \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "CATAPULT_CHECK failed at %s:%d: %s: ",         \
                   __FILE__, __LINE__, #condition);                        \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // CATAPULT_UTIL_CHECK_H_
