#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace catapult {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const size_t n = a.size();
  long long concordant = 0;
  long long discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      double prod = da * db;
      if (prod > 0) ++concordant;
      if (prod < 0) ++discordant;
      // Ties contribute to neither (tau-a convention on the denominator).
    }
  }
  double denom = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace catapult
