#ifndef CATAPULT_UTIL_ATOMIC_FILE_H_
#define CATAPULT_UTIL_ATOMIC_FILE_H_

#include <string>

// Crash-safe whole-file I/O primitives shared by the checkpoint store
// (src/persist/) and the database writer (src/graph/io.cc).
//
// The write protocol is the classic temp + fsync + rename sequence: the
// bytes are written to a sibling temporary file, flushed to stable storage,
// and renamed over the destination, so a reader never observes a partially
// written file under the final name — after a crash the destination holds
// either the complete old content or the complete new content. The parent
// directory is fsynced after the rename so the rename itself is durable.
//
// Every failure mode is covered by a deterministic failpoint
// (src/util/failpoint.h) so recovery code can be tested without real disk
// faults:
//   "persist.torn_write"  - only a prefix of the bytes reaches the file
//                           (simulates a crash mid-write that still renamed,
//                           i.e. a corrupted-but-present artifact)
//   "persist.fsync"       - fsync reports an I/O error
//   "persist.rename"      - the final rename fails
//   "persist.short_read"  - a read returns fewer bytes than the file holds
//   "persist.bit_flip"    - one bit of the bytes read is inverted

namespace catapult {

// Atomically replaces `path` with `bytes`. Returns an empty string on
// success, otherwise a descriptive error ("cannot open ...: <errno>"); on
// failure the destination file is untouched and the temporary is removed.
std::string AtomicWriteFile(const std::string& path, const std::string& bytes);

// Reads the entire file into `out`. Returns an empty string on success,
// otherwise a descriptive error. `out` is cleared first.
std::string ReadWholeFile(const std::string& path, std::string* out);

}  // namespace catapult

#endif  // CATAPULT_UTIL_ATOMIC_FILE_H_
