#ifndef CATAPULT_UTIL_BITSET_H_
#define CATAPULT_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace catapult {

// Fixed-universe dynamic bitset. Used for feature vectors (graph contains
// frequent subtree t?) and for the per-vertex/edge supporting-graph sets of
// cluster summary graphs.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  // Creates a bitset over the universe [0, num_bits) with all bits clear.
  explicit DynamicBitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  // Number of bits in the universe.
  size_t size() const { return num_bits_; }

  // Sets bit `i`.
  void Set(size_t i) {
    CATAPULT_CHECK(i < num_bits_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  // Clears bit `i`.
  void Clear(size_t i) {
    CATAPULT_CHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  // Returns bit `i`.
  bool Test(size_t i) const {
    CATAPULT_CHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Number of set bits.
  size_t Count() const;

  // True if no bit is set.
  bool None() const;

  // In-place union / intersection. Both operands must share a universe size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  // Number of set bits in the intersection with `other`, without
  // materialising it.
  size_t IntersectCount(const DynamicBitset& other) const;

  // Number of set bits in the union with `other`.
  size_t UnionCount(const DynamicBitset& other) const;

  // Hamming distance (number of differing bits).
  size_t HammingDistance(const DynamicBitset& other) const;

  // Indices of all set bits, ascending.
  std::vector<size_t> ToIndices() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_BITSET_H_
