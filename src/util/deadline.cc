#include "src/util/deadline.h"

#include <algorithm>
#include <limits>

namespace catapult {

Deadline Deadline::AfterSeconds(double seconds) {
  Deadline d;
  d.infinite_ = false;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 std::max(0.0, seconds)));
  return d;
}

Deadline Deadline::At(Clock::time_point when) {
  Deadline d;
  d.infinite_ = false;
  d.at_ = when;
  return d;
}

double Deadline::RemainingSeconds() const {
  if (infinite_) return std::numeric_limits<double>::infinity();
  double remaining =
      std::chrono::duration<double>(at_ - Clock::now()).count();
  return std::max(0.0, remaining);
}

Deadline Deadline::Fraction(double fraction) const {
  if (infinite_) return *this;
  fraction = std::clamp(fraction, 0.0, 1.0);
  Clock::time_point now = Clock::now();
  if (now >= at_) return *this;  // Already expired; slicing cannot extend.
  auto remaining = at_ - now;
  return At(now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          std::chrono::duration<double>(remaining).count() *
                          fraction)));
}

Deadline Deadline::Earliest(const Deadline& a, const Deadline& b) {
  if (a.infinite_) return b;
  if (b.infinite_) return a;
  return a.at_ <= b.at_ ? a : b;
}

uint64_t RunContext::TightenNodeBudget(uint64_t configured,
                                       double nodes_per_second) const {
  if (deadline_.infinite()) return configured;
  double allowance = deadline_.RemainingSeconds() * nodes_per_second;
  uint64_t adaptive =
      allowance >= 1.0 ? static_cast<uint64_t>(allowance) : uint64_t{1};
  if (configured == 0) return adaptive;
  return std::min(configured, adaptive);
}

}  // namespace catapult
