#include "src/util/mem_budget.h"

#include "src/obs/metrics.h"

namespace catapult {

std::string ResourceError::ToString() const {
  return "memory budget exhausted at " + site + ": charge of " +
         std::to_string(requested) + " bytes with " + std::to_string(used) +
         " tracked against a hard limit of " + std::to_string(hard_limit);
}

MemoryBudget MemoryBudget::Limited(size_t soft_bytes, size_t hard_bytes) {
  MemoryBudget budget;
  if (soft_bytes == 0 && hard_bytes != 0) {
    soft_bytes = hard_bytes / 4 * 3;
  }
  budget.state_->soft_limit = soft_bytes;
  budget.state_->hard_limit = hard_bytes;
  return budget;
}

bool MemoryBudget::TryCharge(size_t bytes, const char* site) const {
  State& s = *state_;
  const size_t hard = s.hard_limit;
  // Fault injection: an armed site (or the global "mem.charge") models the
  // allocator failing here, regardless of the ledger.
  bool injected =
      CATAPULT_FAILPOINT("mem.charge") ||
      (site != nullptr && CATAPULT_FAILPOINT(site));
  if (!injected) {
    size_t current = s.used.load(std::memory_order_relaxed);
    for (;;) {
      if (hard != 0 && (bytes > hard || current > hard - bytes)) break;
      if (s.used.compare_exchange_weak(current, current + bytes,
                                       std::memory_order_relaxed)) {
        size_t next = current + bytes;
        size_t peak = s.peak.load(std::memory_order_relaxed);
        while (peak < next && !s.peak.compare_exchange_weak(
                                  peak, next, std::memory_order_relaxed)) {
        }
        obs::Count(obs::Counter::kMemCharges);
        obs::SetGaugeMax(obs::Gauge::kMemPeakBytes, next);
        if (s.soft_limit != 0 && next >= s.soft_limit &&
            current < s.soft_limit) {
          obs::Count(obs::Counter::kMemSoftPressure);
        }
        return true;
      }
    }
  }
  // Refused: latch the first breach for attribution. The error fields are
  // populated *before* the breached flag is raised (both under the mutex),
  // so a concurrent reader that observes HardBreached() == true is
  // guaranteed to find a fully attributed error() — the flag is the last
  // write of the losing charge, never the first.
  obs::Count(obs::Counter::kMemChargeRefused);
  {
    std::lock_guard<std::mutex> lock(s.error_mutex);
    if (!s.breached.load(std::memory_order_relaxed)) {
      s.first_error.site = site != nullptr ? site : "unknown";
      s.first_error.requested = bytes;
      s.first_error.used = s.used.load(std::memory_order_relaxed);
      s.first_error.hard_limit = hard;
      s.breached.store(true, std::memory_order_release);
    }
  }
  return false;
}

void MemoryBudget::Release(size_t bytes) const {
  State& s = *state_;
  size_t current = s.used.load(std::memory_order_relaxed);
  for (;;) {
    size_t next = current >= bytes ? current - bytes : 0;
    if (s.used.compare_exchange_weak(current, next,
                                     std::memory_order_relaxed)) {
      return;
    }
  }
}

ResourceError MemoryBudget::error() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.error_mutex);
  return s.first_error;
}

size_t ApproxGraphBytes(size_t vertices, size_t edges) {
  // Per vertex: label + adjacency-list header; per edge: two Neighbor
  // entries (undirected adjacency) plus EdgeList slack.
  return vertices * 40 + edges * 24 + 64;
}

size_t ApproxBitsetBytes(size_t bits) { return (bits + 63) / 64 * 8 + 48; }

}  // namespace catapult
