#include "src/util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/util/deadline.h"

namespace catapult {

namespace {
using Clock = std::chrono::steady_clock;

uint64_t NanosSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}
}  // namespace

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

ThreadPool::ThreadPool(size_t threads)
    : num_threads_(std::clamp<size_t>(threads, 1, kMaxThreads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.busy_seconds = busy_nanos_.load(std::memory_order_relaxed) * 1e-9;
  s.items = items_.load(std::memory_order_relaxed);
  s.regions = regions_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::RunChunks(Job& job) {
  // One shard install per (job, thread): instrumentation inside the body
  // records into this thread's private shard with no further locking.
  obs::ScopedMetricsScope metrics_scope(job.metrics);
  const Clock::time_point start = Clock::now();
  uint64_t ran = 0;
  for (;;) {
    const size_t begin =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) break;
    const size_t end = std::min(job.n, begin + job.grain);
    for (size_t i = begin; i < end; ++i) (*job.body)(i);
    ran += end - begin;
    job.done.fetch_add(end - begin, std::memory_order_acq_rel);
  }
  if (ran > 0) {
    busy_nanos_.fetch_add(NanosSince(start), std::memory_order_relaxed);
    items_.fetch_add(ran, std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || job_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = job_seq_;
      job = job_;
      if (job == nullptr) continue;  // job already retired by the caller
      ++workers_in_job_;
    }
    RunChunks(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_in_job_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& body,
                             obs::MetricsRegistry* metrics) {
  if (n == 0) return;
  regions_.fetch_add(1, std::memory_order_relaxed);
  grain = std::max<size_t>(grain, 1);

  if (num_threads_ == 1 || n == 1) {
    // Inline sequential execution in index order: the default path has the
    // exact observable behaviour of a plain loop.
    obs::ScopedMetricsScope metrics_scope(metrics);
    const Clock::time_point start = Clock::now();
    for (size_t i = 0; i < n; ++i) body(i);
    busy_nanos_.fetch_add(NanosSince(start), std::memory_order_relaxed);
    items_.fetch_add(n, std::memory_order_relaxed);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  job.grain = grain;
  job.metrics = metrics;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  RunChunks(job);  // the calling thread participates

  // The job is complete once every item ran AND no worker still holds the
  // job pointer; only then may `job` (a stack object) be destroyed.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return job.done.load(std::memory_order_acquire) == n &&
           workers_in_job_ == 0;
  });
  job_ = nullptr;
}

size_t Parallelism(const RunContext& ctx) {
  return ctx.pool() == nullptr ? 1 : ctx.pool()->num_threads();
}

void ParallelFor(const RunContext& ctx, size_t n, size_t grain,
                 const std::function<void(size_t)>& body) {
  if (ctx.pool() != nullptr) {
    ctx.pool()->ParallelFor(n, grain, body, ctx.metrics());
  } else {
    // No pool: the calling thread runs inline and already holds whatever
    // shard scope the pipeline installed, so nothing to set up here.
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

}  // namespace catapult
