#ifndef CATAPULT_UTIL_THREAD_POOL_H_
#define CATAPULT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size worker pool with a deterministic ParallelFor. The pipeline's
// parallel phases all follow the same shape: the caller allocates one result
// slot per item, ParallelFor fills the slots (any thread may execute any
// item), and the caller then reduces the slots *sequentially in index order*.
// Because every data-dependent decision — reductions, arg-max tie-breaks,
// floating-point accumulation order, RNG consumption — happens either before
// the fork (pre-split child RNG streams drawn on the calling thread in task
// order) or after the join (ordered slot scan), an N-thread run is
// bit-identical to a 1-thread run of the same seed.
//
// A pool of size 1 spawns no threads at all: ParallelFor executes inline on
// the calling thread in strict index order, which keeps the default path
// observably identical to the pre-pool sequential code (including failpoint
// firing order and memory-charge order).

namespace catapult {

namespace obs {
class MetricsRegistry;
}  // namespace obs

class ThreadPool {
 public:
  // Number of logical CPUs, never 0 (falls back to 1 when the runtime cannot
  // tell). This is what `--threads 0` resolves to.
  static size_t HardwareThreads();

  // Creates a pool that executes ParallelFor bodies on `threads` threads in
  // total (the calling thread participates, so `threads - 1` workers are
  // spawned). `threads` is clamped to [1, kMaxThreads].
  explicit ThreadPool(size_t threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Cumulative execution counters, aggregated across all threads. `busy
  // seconds` is the time spent inside ParallelFor bodies (caller included);
  // comparing a phase's busy-time delta against its wall time yields the
  // phase's effective parallelism for ExecutionReport.
  struct Stats {
    double busy_seconds = 0.0;
    uint64_t items = 0;       // body invocations completed
    uint64_t regions = 0;     // ParallelFor calls executed
  };
  Stats stats() const;

  // Runs body(i) for every i in [0, n). Items are claimed in chunks of
  // `grain` (>= 1) off a shared counter; the chunk layout depends only on
  // `n` and `grain`, never on the thread count, and each item writes only
  // its own slot, so outputs are identical at any pool size. Blocks until
  // all n items completed. Bodies must not call back into the same pool
  // (no nested parallelism) and must not throw.
  //
  // With num_threads() == 1 this is exactly `for (i = 0; i < n; ++i)
  // body(i)` on the calling thread — same order, same thread, no atomics
  // beyond the stats counters.
  //
  // When `metrics` is non-null, every participating thread installs its
  // thread-local shard of that registry for the duration of the job (once
  // per thread per job, not per item), so obs::Count()/Observe() calls
  // inside the body record without any cross-thread synchronization.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t)>& body,
                   obs::MetricsRegistry* metrics = nullptr);
  void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
    ParallelFor(n, 1, body);
  }

  // Upper bound on pool size; a sanity clamp, far above useful parallelism
  // for this workload.
  static constexpr size_t kMaxThreads = 256;

 private:
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    size_t grain = 1;
    obs::MetricsRegistry* metrics = nullptr;  // shard scope for workers
    std::atomic<size_t> next{0};   // next unclaimed item index
    std::atomic<size_t> done{0};   // items completed
  };

  void WorkerLoop();
  void RunChunks(Job& job);

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;   // caller waits here for completion
  Job* job_ = nullptr;                // current job, guarded by mutex_
  uint64_t job_seq_ = 0;              // bumped per job, guarded by mutex_
  size_t workers_in_job_ = 0;         // workers inside RunChunks
  bool stop_ = false;

  std::atomic<uint64_t> busy_nanos_{0};
  std::atomic<uint64_t> items_{0};
  std::atomic<uint64_t> regions_{0};
};

class RunContext;

// Effective parallelism of `ctx`: the pool's thread count, or 1 when the
// context carries no pool.
size_t Parallelism(const RunContext& ctx);

// Runs body(i) for i in [0, n) on the context's pool; with no pool (or a
// 1-thread pool) this is a plain in-order loop on the calling thread.
void ParallelFor(const RunContext& ctx, size_t n, size_t grain,
                 const std::function<void(size_t)>& body);

}  // namespace catapult

#endif  // CATAPULT_UTIL_THREAD_POOL_H_
