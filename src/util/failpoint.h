#ifndef CATAPULT_UTIL_FAILPOINT_H_
#define CATAPULT_UTIL_FAILPOINT_H_

#include <cstddef>
#include <string>

// Deterministic failpoint-style fault injection (the rocksdb/etcd idiom).
// Code declares named sites via CATAPULT_FAILPOINT("some.site"); tests arm a
// site to force its failure path (deadline expiry, budget exhaustion, parse
// failure) and assert that the degradation ladder actually engages.
//
// Fast path: when nothing is armed, a site costs one relaxed atomic load of
// a global counter. Defining CATAPULT_DISABLE_FAILPOINTS compiles every site
// down to the constant `false` for builds that want literal zero cost.

namespace catapult::failpoint {

// Arms `site`: its next `count` evaluations fire (count < 0 = fire on every
// evaluation until disarmed). Re-arming resets the count and hit counter.
void Arm(const std::string& site, long count = -1);

// Disarms `site`; evaluations no longer fire. Hit counts survive until the
// site is re-armed (so tests can disarm, then assert).
void Disarm(const std::string& site);

// Disarms every site and clears all hit counts.
void DisarmAll();

// Number of times `site` fired since it was last armed.
size_t HitCount(const std::string& site);

// True when at least one site is armed (the fast-path gate).
bool AnyArmed();

// Evaluates `site`: true iff armed with firings remaining (consumes one).
// Use the CATAPULT_FAILPOINT macro instead of calling this directly.
bool Evaluate(const char* site);

// RAII arming for tests: arms in the constructor, disarms in the destructor.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site, long count = -1);
  ~ScopedFailpoint();
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace catapult::failpoint

#if defined(CATAPULT_DISABLE_FAILPOINTS)
#define CATAPULT_FAILPOINT(site) false
#else
#define CATAPULT_FAILPOINT(site)            \
  (::catapult::failpoint::AnyArmed() &&     \
   ::catapult::failpoint::Evaluate(site))
#endif

#endif  // CATAPULT_UTIL_FAILPOINT_H_
