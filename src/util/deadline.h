#ifndef CATAPULT_UTIL_DEADLINE_H_
#define CATAPULT_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/util/failpoint.h"
#include "src/util/mem_budget.h"

// Deadline-aware execution support. The Catapult pipeline chains several
// NP-hard primitives (GED, MCS/MCCS, VF2); a pathological database can stall
// any of them indefinitely. A RunContext carries a monotonic wall-clock
// deadline plus a cooperative cancellation token down the whole call chain,
// and every phase polls it at iteration granularity: on expiry a phase winds
// down and returns its best partial result (anytime semantics) instead of
// running on. Remaining time is also translated into node budgets for the
// backtracking kernels so a single kernel call cannot consume the entire
// slice of a later phase.

namespace catapult {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

class ThreadPool;

// A point on the monotonic clock by which work should stop. Infinite by
// default; value-copyable.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterSeconds(double seconds);
  static Deadline AfterMillis(double ms) { return AfterSeconds(ms * 1e-3); }
  static Deadline At(Clock::time_point when);

  bool infinite() const { return infinite_; }
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }

  // Remaining time in seconds: never negative, +infinity when infinite.
  double RemainingSeconds() const;

  // The earlier of this deadline and `now + fraction * remaining`: slices
  // the overall allowance into a per-phase allocation. A phase finishing
  // early automatically donates its unused time to later phases, because
  // later slices are taken from the then-remaining total. Infinite deadlines
  // slice to infinite.
  Deadline Fraction(double fraction) const;

  // The earlier of two deadlines.
  static Deadline Earliest(const Deadline& a, const Deadline& b);

 private:
  bool infinite_;
  Clock::time_point at_{};
};

// Shared cooperative cancellation flag. Copies observe the same flag, so a
// token handed into RunCatapult can be cancelled concurrently (e.g. by a
// serving thread whose client disconnected) and is observed by the deepest
// work loops at their next poll.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool Cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Execution context threaded through the pipeline: deadline + cancellation
// token + memory budget + budget translation. Copy freely; copies share the
// token and the memory ledger.
class RunContext {
 public:
  // Conservative exploration speed assumed for the backtracking kernels when
  // converting remaining seconds into node budgets. The VF2/MCS/GED kernels
  // expand well over this many nodes per second on molecule-sized graphs, so
  // the translation errs toward finishing before the deadline.
  static constexpr double kDefaultNodesPerSecond = 2e6;

  RunContext() = default;
  explicit RunContext(Deadline deadline) : deadline_(deadline) {}
  RunContext(Deadline deadline, CancelToken token)
      : deadline_(deadline), cancel_(std::move(token)) {}
  RunContext(Deadline deadline, CancelToken token, MemoryBudget memory)
      : deadline_(deadline),
        cancel_(std::move(token)),
        memory_(std::move(memory)) {}

  static RunContext NoLimit() { return RunContext(); }
  static RunContext WithDeadlineMillis(double ms) {
    return RunContext(Deadline::AfterMillis(ms));
  }

  const Deadline& deadline() const { return deadline_; }
  const CancelToken& cancel_token() const { return cancel_; }

  // The shared memory ledger (unlimited by default). Producers charge their
  // input-proportional structures through this handle; a refused charge
  // latches the breach, which every subsequent StopRequested poll observes,
  // so a hard memory breach winds the whole pipeline down exactly like a
  // deadline expiry — best-effort partial results, never an OOM kill.
  const MemoryBudget& memory() const { return memory_; }
  MemoryBudget& memory() { return memory_; }

  // Copy of this context charging against `memory` instead.
  RunContext WithMemory(MemoryBudget memory) const {
    RunContext copy = *this;
    copy.memory_ = std::move(memory);
    return copy;
  }

  // Copy of this context whose parallel regions execute on `pool` (non-
  // owning; may be nullptr to force inline execution). The pool must outlive
  // every copy of the context that references it.
  RunContext WithPool(ThreadPool* pool) const {
    RunContext copy = *this;
    copy.pool_ = pool;
    return copy;
  }

  // Pool for parallel regions; nullptr means "run inline on the calling
  // thread", which is observably identical to a 1-thread pool.
  ThreadPool* pool() const { return pool_; }

  // Copy of this context recording metrics into `metrics` and spans into
  // `tracer` (both non-owning; either may be nullptr to disable that half).
  // Observability handles live here, next to the deadline and pool, rather
  // than in CatapultOptions: they are execution environment, not
  // configuration, so ConfigFingerprint never sees them and resume
  // compatibility cannot depend on whether a run was traced.
  RunContext WithObservability(obs::MetricsRegistry* metrics,
                               obs::Tracer* tracer) const {
    RunContext copy = *this;
    copy.metrics_ = metrics;
    copy.tracer_ = tracer;
    return copy;
  }

  // Metrics registry for this run; nullptr = metrics disabled (hot-path
  // recording helpers see a null thread-local shard and no-op).
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Span tracer for this run; nullptr = tracing disabled (spans are inert).
  obs::Tracer* tracer() const { return tracer_; }

  // Requests cooperative cancellation; observed by all copies of this
  // context at their next StopRequested poll.
  void Cancel() const { cancel_.Cancel(); }

  // True when no deadline is set (a cancellation can still stop work).
  bool Unlimited() const { return deadline_.infinite(); }

  // The cooperative stop poll. True when the deadline expired, the token was
  // cancelled, the memory budget's hard limit was breached, or — in tests —
  // the failpoint `site` is armed. Work loops call this once per iteration
  // and wind down with their best partial result when it fires. With no
  // deadline, no cancellation, no memory limit, and no armed failpoints this
  // is three relaxed loads, so the unlimited path stays behaviourally and
  // observably identical to pre-deadline code.
  bool StopRequested(const char* site = nullptr) const {
    if (site != nullptr && CATAPULT_FAILPOINT(site)) return true;
    return cancel_.Cancelled() || memory_.HardBreached() ||
           deadline_.Expired();
  }

  // Sub-context whose deadline covers `fraction` of the remaining time (the
  // memory ledger is shared, not sliced: bytes, unlike seconds, are returned
  // when a phase frees its structures).
  RunContext Slice(double fraction) const {
    RunContext copy = *this;
    copy.deadline_ = deadline_.Fraction(fraction);
    return copy;
  }

  // Tightens a configured kernel node budget (0 = unlimited) against the
  // remaining time at `nodes_per_second`: the kernel may use at most the
  // nodes affordable before the deadline. Unlimited contexts return
  // `configured` unchanged; expired contexts return 1 so kernels return
  // immediately but still produce their valid trivial answer.
  uint64_t TightenNodeBudget(
      uint64_t configured,
      double nodes_per_second = kDefaultNodesPerSecond) const;

 private:
  Deadline deadline_;
  CancelToken cancel_;
  MemoryBudget memory_;
  ThreadPool* pool_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_DEADLINE_H_
