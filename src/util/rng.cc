#include "src/util/rng.h"

#include <cmath>

namespace catapult {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

RngState Rng::SaveState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) state.words[i] = state_[i];
  return state;
}

void Rng::RestoreState(const RngState& state) {
  CATAPULT_CHECK_MSG(state.Valid(), "all-zero RngState");
  for (size_t i = 0; i < 4; ++i) state_[i] = state.words[i];
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  CATAPULT_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  CATAPULT_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformReal() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CATAPULT_CHECK(w >= 0.0 && std::isfinite(w));
    total += w;
  }
  CATAPULT_CHECK_MSG(total > 0.0, "all weights are zero");
  double target = UniformReal() * total;
  double acc = 0.0;
  size_t last_positive = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    last_positive = i;
    acc += weights[i];
    if (target < acc) return i;
  }
  return last_positive;  // Floating-point slack: fall back to the last one.
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> result;
  if (k >= n) {
    result.resize(n);
    for (size_t i = 0; i < n; ++i) result[i] = i;
    return result;
  }
  result.reserve(k);
  for (size_t i = 0; i < n; ++i) {
    if (result.size() < k) {
      result.push_back(i);
    } else {
      size_t j = UniformInt(i + 1);
      if (j < k) result[j] = i;
    }
  }
  return result;
}

}  // namespace catapult
