#ifndef CATAPULT_UTIL_RNG_H_
#define CATAPULT_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace catapult {

// An Rng stream position, captured with Rng::SaveState and replayed with
// Rng::RestoreState. Checkpoints persist it so a resumed pipeline continues
// the exact pseudo-random stream of the interrupted run (bit-identical
// output). The all-zero state is invalid (xoshiro's absorbing fixed point);
// decoders must reject it.
struct RngState {
  std::array<uint64_t, 4> words = {0, 0, 0, 0};

  bool Valid() const {
    return (words[0] | words[1] | words[2] | words[3]) != 0;
  }
  friend bool operator==(const RngState& a, const RngState& b) {
    return a.words == b.words;
  }
};

// Deterministic pseudo-random number generator (xoshiro256** seeded via
// SplitMix64). Every randomised component in the library takes an explicit
// `Rng&` so that experiments are reproducible bit-for-bit from a seed.
//
// Not thread-safe; create one Rng per thread.
class Rng {
 public:
  // Seeds the generator. Two Rng instances built from the same seed produce
  // identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Captures the current stream position.
  RngState SaveState() const;

  // Resumes from a previously saved position: after RestoreState(s) the
  // generator produces exactly the values it produced after SaveState()
  // returned s. `state` must be Valid() (CHECK).
  void RestoreState(const RngState& state);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Splits off an independent child generator: consumes exactly one draw
  // from this stream and seeds the child from it (SplitMix64 expansion in
  // the child's constructor decorrelates the streams). Parallel tasks each
  // take a pre-split child on the calling thread, in task order, so the
  // parent stream's consumption — and therefore the run's entire output —
  // is independent of execution interleaving and thread count.
  Rng Split() { return Rng(Next()); }

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t UniformInt(uint64_t bound);

  // Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  // Returns a uniform double in [0, 1).
  double UniformReal();

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional to
  // weights[i]. Zero-weight entries are never chosen. Requires at least one
  // strictly positive weight.
  //
  // This is the continuous equivalent of the paper's LCM integerisation of
  // candidate-adjacent-edge weights (Section 5): replicating an edge k times
  // and drawing uniformly is identical to drawing proportionally to k.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) (reservoir sampling). If
  // k >= n, returns all indices 0..n-1.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace catapult

#endif  // CATAPULT_UTIL_RNG_H_
