#include "src/util/bitset.h"

#include <bit>

namespace catapult {

size_t DynamicBitset::Count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += std::popcount(word);
  return total;
}

bool DynamicBitset::None() const {
  for (uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  CATAPULT_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  CATAPULT_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

size_t DynamicBitset::IntersectCount(const DynamicBitset& other) const {
  CATAPULT_CHECK(num_bits_ == other.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

size_t DynamicBitset::UnionCount(const DynamicBitset& other) const {
  CATAPULT_CHECK(num_bits_ == other.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] | other.words_[i]);
  }
  return total;
}

size_t DynamicBitset::HammingDistance(const DynamicBitset& other) const {
  CATAPULT_CHECK(num_bits_ == other.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] ^ other.words_[i]);
  }
  return total;
}

std::vector<size_t> DynamicBitset::ToIndices() const {
  std::vector<size_t> indices;
  indices.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      indices.push_back((w << 6) + static_cast<size_t>(bit));
      word &= word - 1;
    }
  }
  return indices;
}

}  // namespace catapult
