#ifndef CATAPULT_UTIL_MEM_BUDGET_H_
#define CATAPULT_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/failpoint.h"

// Memory governance for the ingestion-to-selection path. The pipeline
// materialises several data structures whose size is controlled by the input
// (parsed graphs, feature-vector matrices, cluster summary graphs, candidate
// pattern caches); an adversarial database can grow any of them without
// bound. A MemoryBudget is an accounting ledger those producers charge
// *before* allocating: crossing the soft limit is a pressure signal that
// sheds optional work (sampling, coarse-only clustering, partial CSG folds,
// cache eviction), and a charge that would cross the hard limit is refused —
// the producer then winds down with its best partial result and the breach
// surfaces as a structured ResourceError, never as an OOM kill.
//
// The ledger tracks the dominant, input-proportional structures, not every
// allocation; the hard limit therefore bounds tracked bytes, with a
// constant-factor slop for untracked bookkeeping.

namespace catapult {

// The first refused charge of a budget: which charge site asked, for how
// much, and what the ledger looked like. Carried in ExecutionReport /
// IngestReport so a hard breach is always attributable.
struct ResourceError {
  std::string site;        // e.g. "ingest.graph", "csg.fold", "mem.features"
  size_t requested = 0;    // bytes the failing charge asked for
  size_t used = 0;         // tracked bytes at the time of the refusal
  size_t hard_limit = 0;   // the limit that refused it

  std::string ToString() const;
};

// Shared, thread-safe byte ledger with a soft and a hard limit. Copies share
// state (the CancelToken idiom), so a budget handed into RunCatapult is the
// same ledger every phase charges. Default-constructed budgets are
// unlimited: charges are still tracked (peak reporting) but never refused.
class MemoryBudget {
 public:
  MemoryBudget() : state_(std::make_shared<State>()) {}

  static MemoryBudget Unlimited() { return MemoryBudget(); }

  // A budget refusing charges past `hard_bytes`, signalling pressure past
  // `soft_bytes`. `soft_bytes` of 0 defaults to 3/4 of the hard limit;
  // `hard_bytes` of 0 means no hard limit.
  static MemoryBudget Limited(size_t soft_bytes, size_t hard_bytes);

  bool limited() const {
    return state_->soft_limit != 0 || state_->hard_limit != 0;
  }
  size_t soft_limit() const { return state_->soft_limit; }
  size_t hard_limit() const { return state_->hard_limit; }

  // Attempts to add `bytes` to the ledger. Returns false — leaving the
  // ledger unchanged — when the charge would cross the hard limit, or when
  // the failpoint `site` (or the global site "mem.charge") is armed to
  // fault-inject an allocation failure. The first refusal is latched as the
  // budget's ResourceError and HardBreached() stays true from then on, so
  // every later StopRequested poll observes the breach.
  // Const like CancelToken::Cancel: copies share the ledger, so charging
  // through a const RunContext& is the normal case.
  bool TryCharge(size_t bytes, const char* site) const;

  // Removes `bytes` from the ledger (a tracked structure was freed).
  void Release(size_t bytes) const;

  // Tracked bytes now / at the high-water mark.
  size_t used() const { return state_->used.load(std::memory_order_relaxed); }
  size_t peak() const { return state_->peak.load(std::memory_order_relaxed); }

  // True once tracked usage is at or past the soft limit: producers should
  // shed optional work but may keep charging.
  bool SoftExceeded() const {
    size_t soft = state_->soft_limit;
    return soft != 0 && used() >= soft;
  }

  // Sticky: true once any charge was refused.
  bool HardBreached() const {
    return state_->breached.load(std::memory_order_relaxed);
  }

  // The latched first refusal; meaningful only when HardBreached().
  ResourceError error() const;

 private:
  struct State {
    size_t soft_limit = 0;  // 0 = no soft signal
    size_t hard_limit = 0;  // 0 = no hard limit
    std::atomic<size_t> used{0};
    std::atomic<size_t> peak{0};
    std::atomic<bool> breached{false};
    std::mutex error_mutex;
    ResourceError first_error;
  };

  std::shared_ptr<State> state_;
};

// RAII charge: charges in the constructor, releases what was charged in the
// destructor. `ok()` is false when the charge was refused (nothing will be
// released).
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(MemoryBudget budget, size_t bytes, const char* site)
      : budget_(std::move(budget)), bytes_(bytes) {
    ok_ = budget_.TryCharge(bytes_, site);
  }
  ~ScopedMemoryCharge() {
    if (ok_) budget_.Release(bytes_);
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  bool ok() const { return ok_; }

 private:
  MemoryBudget budget_;
  size_t bytes_;
  bool ok_ = false;
};

// Byte estimates for the structures the pipeline charges. Deliberately
// rounded up: adjacency lists, allocator headers and growth slack are folded
// into per-element constants.
size_t ApproxGraphBytes(size_t vertices, size_t edges);
size_t ApproxBitsetBytes(size_t bits);

}  // namespace catapult

#endif  // CATAPULT_UTIL_MEM_BUDGET_H_
