#include "src/util/signal.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace catapult {

namespace {

// Signal-handler-visible state. Only plain stores/loads of sig_atomic_t and
// a write() on a pre-opened fd happen in signal context; everything richer
// lives behind the watcher thread.
volatile std::sig_atomic_t g_signum = 0;
volatile std::sig_atomic_t g_pipe_write_fd = -1;

extern "C" void HandleShutdownSignal(int signum) {
  g_signum = signum;
  int fd = g_pipe_write_fd;
  if (fd >= 0) {
    unsigned char byte = static_cast<unsigned char>(signum);
#if defined(__unix__) || defined(__APPLE__)
    // The pipe is non-blocking; a full pipe just means a wakeup is already
    // pending, which is all a repeated signal needs to convey.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
#endif
  }
}

void SetCloexecNonblock(int fd) {
#if defined(__unix__) || defined(__APPLE__)
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
#else
  (void)fd;
#endif
}

struct BridgeState {
  std::mutex mutex;
  CancelToken token;
  std::vector<int> subscriber_write_fds;
  bool delivered = false;  // watcher already fanned a signal out
  int self_pipe_read = -1;
};

BridgeState& State() {
  static BridgeState* state = new BridgeState();
  return *state;
}

}  // namespace

ShutdownSignals& ShutdownSignals::Instance() {
  static ShutdownSignals* instance = new ShutdownSignals();
  return *instance;
}

ShutdownSignals::ShutdownSignals() {
#if defined(__unix__) || defined(__APPLE__)
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    SetCloexecNonblock(fds[0]);
    SetCloexecNonblock(fds[1]);
    State().self_pipe_read = fds[0];
    g_pipe_write_fd = fds[1];
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
#else
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
#endif
  std::thread(&ShutdownSignals::WatcherLoop, this).detach();
}

void ShutdownSignals::WatcherLoop() {
#if defined(__unix__) || defined(__APPLE__)
  BridgeState& state = State();
  const int fd = state.self_pipe_read;
  for (;;) {
    unsigned char byte = 0;
    ssize_t n = ::read(fd, &byte, 1);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking read end: park briefly instead of converting the pipe
      // back to blocking (ResetForTest may race a re-arm).
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    if (n <= 0 && errno != EINTR) return;  // pipe gone; process is exiting
    if (n <= 0) continue;
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.delivered) continue;  // repeated Ctrl-C: already fanned out
    state.delivered = true;
    state.token.Cancel();
    for (int sub : state.subscriber_write_fds) {
      [[maybe_unused]] ssize_t w = ::write(sub, &byte, 1);
    }
  }
#endif
}

CancelToken ShutdownSignals::token() const {
  BridgeState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.token;
}

int ShutdownSignals::last_signal() const {
  return static_cast<int>(g_signum);
}

int ShutdownSignals::SubscribeFd() {
#if defined(__unix__) || defined(__APPLE__)
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return -1;
  SetCloexecNonblock(fds[0]);
  SetCloexecNonblock(fds[1]);
  BridgeState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.delivered) {
    unsigned char byte = static_cast<unsigned char>(g_signum);
    [[maybe_unused]] ssize_t w = ::write(fds[1], &byte, 1);
  }
  state.subscriber_write_fds.push_back(fds[1]);
  return fds[0];
#else
  return -1;
#endif
}

void ShutdownSignals::ResetForTest() {
  BridgeState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  g_signum = 0;
  state.delivered = false;
  state.token = CancelToken();
#if defined(__unix__) || defined(__APPLE__)
  for (int fd : state.subscriber_write_fds) ::close(fd);
#endif
  state.subscriber_write_fds.clear();
}

}  // namespace catapult
