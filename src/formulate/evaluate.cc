#include "src/formulate/evaluate.h"

#include <algorithm>

#include "src/core/pattern_score.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"
#include "src/iso/ged.h"
#include "src/iso/vf2.h"

namespace catapult {

QueryFormulation FormulateQuery(const Graph& query, const GuiModel& gui,
                                const CoverOptions& options) {
  QueryFormulation out;
  out.steps_total = StepsEdgeAtATime(query);

  const Graph* effective_query = &query;
  Graph relabelled;
  if (gui.unlabelled && !gui.patterns.empty()) {
    // Exp 3 normalisation: erase the query's labels so unlabelled panel
    // patterns can match anywhere.
    Label common = gui.patterns.front().NumVertices() > 0
                       ? gui.patterns.front().VertexLabel(0)
                       : 0;
    relabelled = RelabelAllVertices(query, common);
    effective_query = &relabelled;
  }

  QueryCover cover = MaxPatternCover(*effective_query, gui.patterns, options);
  out.patterns_used = cover.uses.size();
  out.steps_patterns =
      StepsWithPatterns(query, gui.patterns, cover, gui.unlabelled);
  out.mu = ReductionRatio(out.steps_total, out.steps_patterns);
  return out;
}

WorkloadReport EvaluateGui(const std::vector<Graph>& queries,
                           const GuiModel& gui, const CoverOptions& options,
                           std::vector<QueryFormulation>* details) {
  WorkloadReport report;
  report.num_queries = queries.size();
  if (queries.empty()) return report;
  size_t missed = 0;
  double mu_sum = 0.0;
  double steps_sum = 0.0;
  for (const Graph& query : queries) {
    QueryFormulation f = FormulateQuery(query, gui, options);
    if (f.patterns_used == 0) ++missed;
    report.max_mu = std::max(report.max_mu, f.mu);
    mu_sum += f.mu;
    steps_sum += static_cast<double>(f.steps_patterns);
    if (details != nullptr) details->push_back(f);
  }
  report.avg_mu = mu_sum / static_cast<double>(queries.size());
  report.mp_percent = 100.0 * static_cast<double>(missed) /
                      static_cast<double>(queries.size());
  report.avg_steps = steps_sum / static_cast<double>(queries.size());
  return report;
}

double SubgraphCoverage(const std::vector<Graph>& patterns,
                        const GraphDatabase& db, size_t sample_cap,
                        uint64_t iso_node_budget) {
  if (db.empty() || patterns.empty()) return 0.0;
  IsoOptions iso;
  iso.node_budget = iso_node_budget;

  // Deterministic stride sample when capped.
  size_t n = db.size();
  size_t count = (sample_cap == 0 || sample_cap >= n) ? n : sample_cap;
  size_t stride = n / count;
  if (stride == 0) stride = 1;

  size_t tested = 0;
  size_t covered = 0;
  for (size_t i = 0; i < n && tested < count; i += stride, ++tested) {
    const Graph& g = db.graph(static_cast<GraphId>(i));
    for (const Graph& p : patterns) {
      if (ContainsSubgraph(p, g, iso)) {
        ++covered;
        break;
      }
    }
  }
  return tested == 0 ? 0.0
                     : static_cast<double>(covered) /
                           static_cast<double>(tested);
}

double AverageSetDiversity(const std::vector<Graph>& patterns) {
  if (patterns.size() < 2) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    std::vector<Graph> rest;
    rest.reserve(patterns.size() - 1);
    for (size_t j = 0; j < patterns.size(); ++j) {
      if (j != i) rest.push_back(patterns[j]);
    }
    total += PatternSetDiversity(patterns[i], rest);
  }
  return total / static_cast<double>(patterns.size());
}

double AverageCognitiveLoad(const std::vector<Graph>& patterns) {
  if (patterns.empty()) return 0.0;
  double total = 0.0;
  for (const Graph& p : patterns) total += CognitiveLoad(p);
  return total / static_cast<double>(patterns.size());
}

}  // namespace catapult
