#include "src/formulate/gui.h"

#include "src/util/check.h"

namespace catapult {

namespace {

Graph Ring(size_t n, Label label) {
  CATAPULT_CHECK(n >= 3);
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

Graph Chain(size_t vertices, Label label) {
  CATAPULT_CHECK(vertices >= 2);
  Graph g;
  for (size_t i = 0; i < vertices; ++i) g.AddVertex(label);
  for (size_t i = 0; i + 1 < vertices; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

Graph Star(size_t leaves, Label label) {
  Graph g;
  VertexId center = g.AddVertex(label);
  for (size_t i = 0; i < leaves; ++i) {
    g.AddEdge(center, g.AddVertex(label));
  }
  return g;
}

// Two triangles sharing one edge (4 vertices, 5 edges).
Graph FusedTriangles(Label label) {
  Graph g;
  VertexId a = g.AddVertex(label);
  VertexId b = g.AddVertex(label);
  VertexId c = g.AddVertex(label);
  VertexId d = g.AddVertex(label);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  g.AddEdge(b, d);
  g.AddEdge(d, c);
  return g;
}

// A 6-ring with one chain arm (7 vertices, 7 edges).
Graph RingWithTail(Label label) {
  Graph g = Ring(6, label);
  VertexId tail = g.AddVertex(label);
  g.AddEdge(0, tail);
  return g;
}

}  // namespace

GuiModel MakePubChemGui(Label common_label) {
  GuiModel gui;
  gui.name = "PubChem";
  gui.unlabelled = true;
  // Sizes in edges: 3,4,5,6,7,8 rings; 3,4,5-edge chains; 3-edge star;
  // 5-edge fused triangles; 7-edge ring-with-tail. 12 patterns, sizes 3-8.
  gui.patterns.push_back(Ring(3, common_label));
  gui.patterns.push_back(Ring(4, common_label));
  gui.patterns.push_back(Ring(5, common_label));
  gui.patterns.push_back(Ring(6, common_label));
  gui.patterns.push_back(Ring(7, common_label));
  gui.patterns.push_back(Ring(8, common_label));
  gui.patterns.push_back(Chain(4, common_label));  // 3 edges
  gui.patterns.push_back(Chain(5, common_label));  // 4 edges
  gui.patterns.push_back(Chain(6, common_label));  // 5 edges
  gui.patterns.push_back(Star(3, common_label));   // 3 edges
  gui.patterns.push_back(FusedTriangles(common_label));
  gui.patterns.push_back(RingWithTail(common_label));
  return gui;
}

GuiModel MakeEMolGui(Label common_label) {
  GuiModel gui;
  gui.name = "eMolecules";
  gui.unlabelled = true;
  gui.patterns.push_back(Ring(3, common_label));
  gui.patterns.push_back(Ring(4, common_label));
  gui.patterns.push_back(Ring(5, common_label));
  gui.patterns.push_back(Ring(6, common_label));
  gui.patterns.push_back(Chain(4, common_label));  // 3 edges
  gui.patterns.push_back(RingWithTail(common_label));
  return gui;
}

GuiModel MakeCatapultGui(std::vector<Graph> patterns) {
  GuiModel gui;
  gui.name = "Catapult";
  gui.unlabelled = false;
  gui.patterns = std::move(patterns);
  return gui;
}

}  // namespace catapult
