#ifndef CATAPULT_FORMULATE_COVER_H_
#define CATAPULT_FORMULATE_COVER_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/iso/vf2.h"

namespace catapult {

// Options for computing the maximal pattern cover of a query.
struct CoverOptions {
  // Cap on embeddings enumerated per pattern (keeps the conflict graph
  // small; molecule-sized queries rarely have more).
  size_t max_embeddings_per_pattern = 128;

  // Node budget per subgraph-isomorphism enumeration.
  uint64_t iso_node_budget = 2000000;
};

// One use of a canned pattern inside a query.
struct PatternUse {
  size_t pattern_index = 0;       // index into the pattern set
  Embedding embedding;            // pattern vertex -> query vertex
};

// A set of vertex-disjoint pattern embeddings covering part of a query.
struct QueryCover {
  std::vector<PatternUse> uses;
  size_t covered_vertices = 0;
  size_t covered_edges = 0;  // query edges realised by pattern edges
};

// Computes a maximal-weight collection of non-overlapping pattern
// embeddings in `query` (Section 6.1): every embedding of every pattern is
// a node of a conflict graph weighted by its vertex count, and the greedy
// maximum-weight-independent-set heuristic of [Sakai et al.] (take the
// best weight/(degree+1) node, delete its neighbourhood, repeat) selects
// the bag PQ of pattern uses. Patterns may be used multiple times via
// distinct non-overlapping embeddings.
QueryCover MaxPatternCover(const Graph& query,
                           const std::vector<Graph>& patterns,
                           const CoverOptions& options = {});

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_COVER_H_
