#ifndef CATAPULT_FORMULATE_EVALUATE_H_
#define CATAPULT_FORMULATE_EVALUATE_H_

#include <vector>

#include "src/formulate/cover.h"
#include "src/formulate/gui.h"
#include "src/graph/graph_database.h"

namespace catapult {

// Outcome of visually formulating one query with one GUI.
struct QueryFormulation {
  size_t steps_total = 0;     // edge-at-a-time baseline
  size_t steps_patterns = 0;  // step_P with the GUI's pattern panel
  double mu = 0.0;            // reduction ratio
  size_t patterns_used = 0;   // |PQ|
};

// Formulates `query` with `gui`. For unlabelled panels the query is first
// relabelled to the panel's common label (Exp 3's normalisation, which
// favours the unlabelled GUI) and relabelling steps are charged per placed
// pattern vertex.
QueryFormulation FormulateQuery(const Graph& query, const GuiModel& gui,
                                const CoverOptions& options = {});

// Aggregate workload report (the paper's MP / max mu / avg mu measures).
struct WorkloadReport {
  size_t num_queries = 0;
  double max_mu = 0.0;
  double avg_mu = 0.0;
  double mp_percent = 0.0;  // % of queries using no canned pattern
  double avg_steps = 0.0;   // average step_P
};

// Evaluates `gui` over a workload; `details` (optional) receives the
// per-query formulations, index-aligned with `queries`.
WorkloadReport EvaluateGui(const std::vector<Graph>& queries,
                           const GuiModel& gui,
                           const CoverOptions& options = {},
                           std::vector<QueryFormulation>* details = nullptr);

// Subgraph coverage scov(P, D) (Section 3.2): the fraction of data graphs
// containing at least one pattern. `sample_cap` bounds the number of graphs
// tested (0 = all; deterministic prefix-stride sample otherwise).
double SubgraphCoverage(const std::vector<Graph>& patterns,
                        const GraphDatabase& db, size_t sample_cap = 0,
                        uint64_t iso_node_budget = 2000000);

// Average pairwise-minimum GED over the set (the paper's reported div).
double AverageSetDiversity(const std::vector<Graph>& patterns);

// Average cognitive load over the set.
double AverageCognitiveLoad(const std::vector<Graph>& patterns);

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_EVALUATE_H_
