#ifndef CATAPULT_FORMULATE_SESSION_H_
#define CATAPULT_FORMULATE_SESSION_H_

#include <string>
#include <vector>

#include "src/formulate/cover.h"
#include "src/formulate/gui.h"
#include "src/graph/label_map.h"

namespace catapult {

// One concrete visual-formulation action, in the vocabulary of the paper's
// Example 1.1 walkthrough ("Select and drag P1 to the query construction
// canvas", "Construct an edge between ...", "Label all vertices ...").
struct FormulationStep {
  enum class Kind {
    kPlacePattern,   // drag canned pattern `pattern_index` onto the canvas
    kAddVertex,      // add query vertex `u` with its label
    kAddEdge,        // draw the edge {u, v}
    kRelabelVertex,  // assign the proper label to vertex `u` (unlabelled
                     // panels only)
  };
  Kind kind;
  size_t pattern_index = 0;  // kPlacePattern
  VertexId u = 0;            // kAddVertex / kAddEdge / kRelabelVertex
  VertexId v = 0;            // kAddEdge
};

// A complete step-by-step script that reconstructs a query with a GUI's
// pattern panel. `steps.size()` equals StepsWithPatterns() for the same
// cover, making the script an executable witness of the step counts used
// throughout the evaluation.
struct FormulationPlan {
  std::vector<FormulationStep> steps;
  QueryCover cover;  // the pattern placements behind the script
};

// Plans the formulation of `query` under `gui` (computing the pattern cover
// internally, with the same unlabelled-panel normalisation as
// FormulateQuery).
FormulationPlan PlanFormulation(const Graph& query, const GuiModel& gui,
                                const CoverOptions& options = {});

// Renders a plan as numbered human-readable lines; `labels` (optional) maps
// label ids to names for nicer output.
std::string DescribePlan(const FormulationPlan& plan, const Graph& query,
                         const GuiModel& gui,
                         const LabelMap* labels = nullptr);

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_SESSION_H_
