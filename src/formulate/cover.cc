#include "src/formulate/cover.h"

#include <algorithm>

#include "src/util/check.h"

namespace catapult {

QueryCover MaxPatternCover(const Graph& query,
                           const std::vector<Graph>& patterns,
                           const CoverOptions& options) {
  QueryCover cover;
  if (query.NumVertices() == 0) return cover;

  // Enumerate candidate embeddings.
  struct Node {
    size_t pattern_index;
    Embedding embedding;
    double weight;     // |Vp| per the paper
    size_t degree = 0; // conflicts
    bool alive = true;
  };
  std::vector<Node> nodes;
  IsoOptions iso;
  iso.node_budget = options.iso_node_budget;
  for (size_t pi = 0; pi < patterns.size(); ++pi) {
    const Graph& p = patterns[pi];
    if (p.NumVertices() == 0 || p.NumEdges() > query.NumEdges()) continue;
    std::vector<Embedding> embeddings =
        FindEmbeddings(p, query, options.max_embeddings_per_pattern, iso);
    for (Embedding& e : embeddings) {
      nodes.push_back({pi, std::move(e),
                       static_cast<double>(p.NumVertices()), 0, true});
    }
  }
  if (nodes.empty()) return cover;

  // Conflict = two embeddings share a query vertex.
  auto Conflicts = [&](const Node& a, const Node& b) {
    for (VertexId va : a.embedding) {
      for (VertexId vb : b.embedding) {
        if (va == vb) return true;
      }
    }
    return false;
  };
  std::vector<std::vector<size_t>> adjacency(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      if (Conflicts(nodes[i], nodes[j])) {
        adjacency[i].push_back(j);
        adjacency[j].push_back(i);
        ++nodes[i].degree;
        ++nodes[j].degree;
      }
    }
  }

  // Greedy MWIS (GWMIN): repeatedly take the alive node maximising
  // weight / (degree + 1), then kill its neighbourhood.
  std::vector<bool> used_query_vertex(query.NumVertices(), false);
  while (true) {
    int best = -1;
    double best_score = -1.0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].alive) continue;
      double score =
          nodes[i].weight / static_cast<double>(nodes[i].degree + 1);
      if (score > best_score ||
          (score == best_score && best >= 0 &&
           nodes[i].weight > nodes[static_cast<size_t>(best)].weight)) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    Node& chosen = nodes[static_cast<size_t>(best)];
    chosen.alive = false;
    for (size_t j : adjacency[static_cast<size_t>(best)]) {
      if (nodes[j].alive) {
        nodes[j].alive = false;
        for (size_t k : adjacency[j]) {
          if (nodes[k].alive && nodes[k].degree > 0) --nodes[k].degree;
        }
      }
    }
    for (VertexId qv : chosen.embedding) used_query_vertex[qv] = true;
    cover.uses.push_back({chosen.pattern_index, chosen.embedding});
  }

  // Coverage accounting.
  for (bool used : used_query_vertex) {
    if (used) ++cover.covered_vertices;
  }
  for (const PatternUse& use : cover.uses) {
    cover.covered_edges += patterns[use.pattern_index].NumEdges();
  }
  return cover;
}

}  // namespace catapult
