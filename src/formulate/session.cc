#include "src/formulate/session.h"

#include <sstream>
#include <unordered_set>

#include "src/graph/algorithms.h"
#include "src/util/check.h"

namespace catapult {

FormulationPlan PlanFormulation(const Graph& query, const GuiModel& gui,
                                const CoverOptions& options) {
  FormulationPlan plan;

  const Graph* effective_query = &query;
  Graph relabelled;
  if (gui.unlabelled && !gui.patterns.empty() &&
      gui.patterns.front().NumVertices() > 0) {
    relabelled =
        RelabelAllVertices(query, gui.patterns.front().VertexLabel(0));
    effective_query = &relabelled;
  }
  plan.cover = MaxPatternCover(*effective_query, gui.patterns, options);

  // Query vertices and edges realised by pattern placements.
  std::vector<bool> vertex_covered(query.NumVertices(), false);
  auto PackEdge = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  std::unordered_set<uint64_t> edge_covered;

  for (const PatternUse& use : plan.cover.uses) {
    FormulationStep place;
    place.kind = FormulationStep::Kind::kPlacePattern;
    place.pattern_index = use.pattern_index;
    plan.steps.push_back(place);

    const Graph& pattern = gui.patterns[use.pattern_index];
    for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
      vertex_covered[use.embedding[pv]] = true;
    }
    for (const Edge& pe : pattern.EdgeList()) {
      edge_covered.insert(
          PackEdge(use.embedding[pe.u], use.embedding[pe.v]));
    }
    if (gui.unlabelled) {
      for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
        FormulationStep relabel;
        relabel.kind = FormulationStep::Kind::kRelabelVertex;
        relabel.u = use.embedding[pv];
        plan.steps.push_back(relabel);
      }
    }
  }

  // Remaining vertices, then remaining edges.
  for (VertexId v = 0; v < query.NumVertices(); ++v) {
    if (vertex_covered[v]) continue;
    FormulationStep add;
    add.kind = FormulationStep::Kind::kAddVertex;
    add.u = v;
    plan.steps.push_back(add);
  }
  for (const Edge& e : query.EdgeList()) {
    if (edge_covered.contains(PackEdge(e.u, e.v))) continue;
    FormulationStep add;
    add.kind = FormulationStep::Kind::kAddEdge;
    add.u = e.u;
    add.v = e.v;
    plan.steps.push_back(add);
  }
  return plan;
}

std::string DescribePlan(const FormulationPlan& plan, const Graph& query,
                         const GuiModel& gui, const LabelMap* labels) {
  auto LabelName = [&](Label label) {
    if (labels != nullptr && label < labels->size()) {
      return labels->Name(label);
    }
    return std::to_string(label);
  };
  std::ostringstream out;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const FormulationStep& step = plan.steps[i];
    out << "Step " << (i + 1) << ": ";
    switch (step.kind) {
      case FormulationStep::Kind::kPlacePattern: {
        const Graph& p = gui.patterns[step.pattern_index];
        out << "select and drag pattern P" << (step.pattern_index + 1)
            << " (|V|=" << p.NumVertices() << ", |E|=" << p.NumEdges()
            << ") onto the canvas";
        break;
      }
      case FormulationStep::Kind::kAddVertex:
        out << "add a vertex labelled "
            << LabelName(query.VertexLabel(step.u)) << " (v" << step.u
            << ")";
        break;
      case FormulationStep::Kind::kAddEdge:
        out << "construct an edge between v" << step.u << " and v" << step.v;
        break;
      case FormulationStep::Kind::kRelabelVertex:
        out << "relabel v" << step.u << " to "
            << LabelName(query.VertexLabel(step.u));
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace catapult
