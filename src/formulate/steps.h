#ifndef CATAPULT_FORMULATE_STEPS_H_
#define CATAPULT_FORMULATE_STEPS_H_

#include <vector>

#include "src/formulate/cover.h"
#include "src/graph/graph.h"

namespace catapult {

// The visual-formulation step model of Section 6.1. A step is the addition
// of a vertex, an edge, or a whole pattern, or the relabelling of one
// vertex.

// Steps to build `query` edge-at-a-time: one per vertex plus one per edge.
size_t StepsEdgeAtATime(const Graph& query);

// How vertex relabelling of unlabelled panel patterns is charged (Exp 3):
enum class RelabelCostModel {
  // Optimistic: one step per placed pattern vertex (the paper's
  // step_P(gui) = step_P + |V_Pl| accounting).
  kOneStep,
  // Faithful to the GUI interaction: selecting a vertex label costs one
  // extra step whenever it differs from the previously selected label
  // (2-step labelling), one step otherwise (1-step labelling), charged in
  // placement order.
  kSequential,
};

// Step count for one query under a pattern set, given its cover:
//   step_P = |PQ| + |VQ \ V_PQ| + |EQ \ E_PQ|
// and, when the patterns are unlabelled (PubChem/eMol GUIs), the
// relabelling steps per placed pattern vertex under `relabel_model`.
size_t StepsWithPatterns(const Graph& query,
                         const std::vector<Graph>& patterns,
                         const QueryCover& cover, bool patterns_unlabelled,
                         RelabelCostModel relabel_model =
                             RelabelCostModel::kOneStep);

// Reduction ratio mu = (step_total - step_P) / step_total (Section 6.1).
double ReductionRatio(size_t steps_total, size_t steps_with_patterns);

// Relative reduction mu_G = (step_P(gui) - step_P(other)) / step_P(gui)
// (Exp 3 / Exp 6 / Exp 9 all use this shape with different baselines).
double RelativeReduction(size_t baseline_steps, size_t catapult_steps);

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_STEPS_H_
