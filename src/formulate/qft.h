#ifndef CATAPULT_FORMULATE_QFT_H_
#define CATAPULT_FORMULATE_QFT_H_

#include <vector>

#include "src/formulate/evaluate.h"
#include "src/util/rng.h"

namespace catapult {

// Simulated human query-formulation-time model for Exp 4 and Exp 10.
//
// The paper measured 25 volunteers; offline we replace them with the HCI
// cost model its analysis relies on (documented in DESIGN.md/EXPERIMENTS.md):
//   QFT = sum over steps of a per-step motor time
//       + one visual-search episode per pattern use, whose duration grows
//         linearly with the panel size and with the used pattern's
//         cognitive load (denser patterns take longer to recognise, the
//         Exp 10 premise from [Huang et al.] / [Kobourov et al.]),
//       + lognormal-ish noise (multiplicative, seeded, to emulate
//         participant variance without changing orderings on average).
struct QftModel {
  double seconds_per_step = 2.2;        // click-and-drag / relabel action
  double search_base_seconds = 1.0;     // locating any pattern in the panel
  double search_per_pattern = 0.08;     // scanning cost per panel entry
  double search_per_cog = 1.5;          // extra recognition time per cog unit
  double noise_stddev = 0.15;           // relative noise per trial
};

// Simulated time (seconds) for one participant trial of `query` on `gui`.
double SimulateQft(const Graph& query, const GuiModel& gui,
                   const QftModel& model, Rng& rng,
                   const CoverOptions& options = {});

// Averages `trials` simulated participants (the paper averages 5 trials per
// query).
double AverageQft(const Graph& query, const GuiModel& gui,
                  const QftModel& model, size_t trials, Rng& rng,
                  const CoverOptions& options = {});

// Simulated time for the Exp 10 micro-task: decide whether pattern p is
// useful for query Q (p ⊆ Q?). Dominated by visually parsing the pattern,
// so it grows with the pattern's cognitive load.
double SimulateDecisionTime(const Graph& pattern, const QftModel& model,
                            Rng& rng);

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_QFT_H_
