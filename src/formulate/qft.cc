#include "src/formulate/qft.h"

#include <cmath>

#include "src/core/pattern_score.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"

namespace catapult {

namespace {

// Multiplicative noise around 1.0 (clamped positive).
double Noise(const QftModel& model, Rng& rng) {
  // Sum of uniforms approximates a normal; cheap and deterministic.
  double z = 0.0;
  for (int i = 0; i < 4; ++i) z += rng.UniformReal();
  z = (z - 2.0) * std::sqrt(3.0);  // ~N(0, 1)
  double factor = 1.0 + model.noise_stddev * z;
  return factor < 0.2 ? 0.2 : factor;
}

}  // namespace

double SimulateQft(const Graph& query, const GuiModel& gui,
                   const QftModel& model, Rng& rng,
                   const CoverOptions& options) {
  const Graph* effective_query = &query;
  Graph relabelled;
  if (gui.unlabelled && !gui.patterns.empty() &&
      gui.patterns.front().NumVertices() > 0) {
    relabelled =
        RelabelAllVertices(query, gui.patterns.front().VertexLabel(0));
    effective_query = &relabelled;
  }
  QueryCover cover = MaxPatternCover(*effective_query, gui.patterns, options);
  size_t steps =
      StepsWithPatterns(query, gui.patterns, cover, gui.unlabelled);

  double time = static_cast<double>(steps) * model.seconds_per_step;
  for (const PatternUse& use : cover.uses) {
    double cog = CognitiveLoad(gui.patterns[use.pattern_index]);
    time += model.search_base_seconds +
            model.search_per_pattern * static_cast<double>(gui.patterns.size()) +
            model.search_per_cog * cog;
  }
  return time * Noise(model, rng);
}

double AverageQft(const Graph& query, const GuiModel& gui,
                  const QftModel& model, size_t trials, Rng& rng,
                  const CoverOptions& options) {
  if (trials == 0) return 0.0;
  double total = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    total += SimulateQft(query, gui, model, rng, options);
  }
  return total / static_cast<double>(trials);
}

double SimulateDecisionTime(const Graph& pattern, const QftModel& model,
                            Rng& rng) {
  double cog = CognitiveLoad(pattern);
  double base = model.search_base_seconds + model.search_per_cog * cog +
                0.15 * static_cast<double>(pattern.NumVertices());
  return base * Noise(model, rng);
}

}  // namespace catapult
