#ifndef CATAPULT_FORMULATE_GUI_H_
#define CATAPULT_FORMULATE_GUI_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/label_map.h"

namespace catapult {

// A visual query interface's canned-pattern panel.
struct GuiModel {
  std::string name;
  std::vector<Graph> patterns;

  // True when the panel's patterns carry no vertex labels: formulation then
  // incurs the relabelling steps of Exp 3 and containment is tested on a
  // label-erased copy of the query.
  bool unlabelled = false;
};

// The PubChem-like interface of Exp 3: 12 patterns with sizes (edge counts)
// in [3, 8] - rings of 3..8 vertices, short chains, a star, and one fused
// bicyclic - 11 of them unlabelled (modelled by assigning every vertex the
// `common_label`). Mirrors Figure 1's panel as described in Section 6.2.
GuiModel MakePubChemGui(Label common_label);

// The eMolecules-like interface of Exp 3: 6 unlabelled patterns with sizes
// in [3, 8] (rings of 3..6, a chain, a fused pair).
GuiModel MakeEMolGui(Label common_label);

// Wraps a Catapult-selected pattern set as a (labelled) GUI model.
GuiModel MakeCatapultGui(std::vector<Graph> patterns);

}  // namespace catapult

#endif  // CATAPULT_FORMULATE_GUI_H_
