#include "src/formulate/steps.h"

#include "src/util/check.h"

namespace catapult {

size_t StepsEdgeAtATime(const Graph& query) {
  return query.NumVertices() + query.NumEdges();
}

size_t StepsWithPatterns(const Graph& query,
                         const std::vector<Graph>& patterns,
                         const QueryCover& cover, bool patterns_unlabelled,
                         RelabelCostModel relabel_model) {
  size_t pattern_steps = cover.uses.size();
  CATAPULT_CHECK(cover.covered_vertices <= query.NumVertices());
  CATAPULT_CHECK(cover.covered_edges <= query.NumEdges());
  size_t remaining_vertices = query.NumVertices() - cover.covered_vertices;
  size_t remaining_edges = query.NumEdges() - cover.covered_edges;
  size_t relabel_steps = 0;
  if (patterns_unlabelled) {
    if (relabel_model == RelabelCostModel::kOneStep) {
      for (const PatternUse& use : cover.uses) {
        relabel_steps += patterns[use.pattern_index].NumVertices();
      }
    } else {
      // Sequential 1-step/2-step labelling: walk placed vertices in
      // placement order; re-selecting the label palette costs an extra
      // step whenever the needed label changes.
      bool have_selection = false;
      Label selected = 0;
      for (const PatternUse& use : cover.uses) {
        const Graph& p = patterns[use.pattern_index];
        for (VertexId pv = 0; pv < p.NumVertices(); ++pv) {
          Label needed = query.VertexLabel(use.embedding[pv]);
          if (!have_selection || needed != selected) {
            relabel_steps += 2;  // pick label, then click the vertex
            selected = needed;
            have_selection = true;
          } else {
            relabel_steps += 1;  // click the vertex
          }
        }
      }
    }
  }
  return pattern_steps + remaining_vertices + remaining_edges + relabel_steps;
}

double ReductionRatio(size_t steps_total, size_t steps_with_patterns) {
  if (steps_total == 0) return 0.0;
  return (static_cast<double>(steps_total) -
          static_cast<double>(steps_with_patterns)) /
         static_cast<double>(steps_total);
}

double RelativeReduction(size_t baseline_steps, size_t catapult_steps) {
  if (baseline_steps == 0) return 0.0;
  return (static_cast<double>(baseline_steps) -
          static_cast<double>(catapult_steps)) /
         static_cast<double>(baseline_steps);
}

}  // namespace catapult
