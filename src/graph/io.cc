#include "src/graph/io.h"

#include <fstream>
#include <sstream>

namespace catapult {

void WriteDatabase(const GraphDatabase& db, std::ostream& out) {
  for (GraphId id = 0; id < db.size(); ++id) {
    const Graph& g = db.graph(id);
    out << "t # " << id << "\n";
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      out << "v " << v << " " << db.labels().Name(g.VertexLabel(v)) << "\n";
    }
    for (const Edge& e : g.EdgeList()) {
      out << "e " << e.u << " " << e.v << " " << e.label << "\n";
    }
  }
}

bool WriteDatabaseToFile(const GraphDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteDatabase(db, out);
  return static_cast<bool>(out);
}

std::optional<GraphDatabase> ReadDatabase(std::istream& in) {
  GraphDatabase db;
  Graph current;
  bool has_current = false;

  auto FlushCurrent = [&]() {
    if (has_current) db.Add(std::move(current));
    current = Graph();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    char kind = 0;
    tokens >> kind;
    if (kind == 't') {
      FlushCurrent();
      has_current = true;
    } else if (kind == 'v') {
      if (!has_current) return std::nullopt;
      long long id = -1;
      std::string label;
      tokens >> id >> label;
      if (!tokens || id != static_cast<long long>(current.NumVertices())) {
        return std::nullopt;  // Vertices must be dense and in order.
      }
      current.AddVertex(db.labels().Intern(label));
    } else if (kind == 'e') {
      if (!has_current) return std::nullopt;
      long long u = -1;
      long long v = -1;
      tokens >> u >> v;
      if (!tokens || u < 0 || v < 0 || u == v ||
          u >= static_cast<long long>(current.NumVertices()) ||
          v >= static_cast<long long>(current.NumVertices())) {
        return std::nullopt;
      }
      long long edge_label = 0;
      tokens >> edge_label;  // Optional; leaves 0 on failure.
      if (current.HasEdge(static_cast<VertexId>(u),
                          static_cast<VertexId>(v))) {
        return std::nullopt;
      }
      current.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                      static_cast<Label>(edge_label));
    } else {
      return std::nullopt;
    }
  }
  FlushCurrent();
  return db;
}

std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadDatabase(in);
}

}  // namespace catapult
