#include "src/graph/io.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/util/atomic_file.h"
#include "src/util/failpoint.h"

namespace catapult {

void WriteDatabase(const GraphDatabase& db, std::ostream& out) {
  for (GraphId id = 0; id < db.size(); ++id) {
    const Graph& g = db.graph(id);
    out << "t # " << id << "\n";
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      out << "v " << v << " " << db.labels().Name(g.VertexLabel(v)) << "\n";
    }
    for (const Edge& e : g.EdgeList()) {
      out << "e " << e.u << " " << e.v << " " << e.label << "\n";
    }
  }
}

IoStatus WriteDatabaseToFile(const GraphDatabase& db,
                             const std::string& path) {
  std::ostringstream out;
  WriteDatabase(db, out);
  std::string error = AtomicWriteFile(path, out.str());
  if (!error.empty()) return IoStatus::Error(std::move(error));
  return IoStatus::Ok();
}

std::string IngestReport::Summary() const {
  std::string s = "ingested " + std::to_string(graphs_ingested) + " graphs";
  if (graphs_quarantined > 0 || !quarantine_reasons.empty()) {
    s += ", quarantined " + std::to_string(graphs_quarantined) + " (";
    bool first = true;
    for (const auto& [reason, count] : quarantine_reasons) {
      if (!first) s += ", ";
      s += reason + ": " + std::to_string(count);
      first = false;
    }
    s += ")";
  }
  if (stopped_early) s += "; stopped early: " + stop_reason;
  return s;
}

namespace {

// Reads one '\n'-terminated line into `line`, buffering at most `max_bytes`
// bytes. An overlong line sets `*overlong` and the remainder is *discarded
// unread* — the 100MB-line attack costs max_bytes of memory, not 100MB.
// Returns false only at immediate end of input.
bool ReadBoundedLine(std::istream& in, std::string& line, size_t max_bytes,
                     bool* overlong) {
  using Traits = std::char_traits<char>;
  line.clear();
  *overlong = false;
  std::streambuf* sb = in.rdbuf();
  if (sb == nullptr) return false;
  int c = sb->sbumpc();
  if (Traits::eq_int_type(c, Traits::eof())) return false;
  while (!Traits::eq_int_type(c, Traits::eof())) {
    if (c == '\n') return true;
    if (line.size() >= max_bytes) {
      *overlong = true;
      while (!Traits::eq_int_type(c, Traits::eof()) && c != '\n') {
        c = sb->sbumpc();
      }
      return true;
    }
    line.push_back(Traits::to_char_type(c));
    c = sb->sbumpc();
  }
  return true;  // final line without a trailing newline
}

// One graph being assembled. Labels stay as strings until the graph commits,
// so a quarantined label bomb never pollutes the database's LabelMap.
struct PendingGraph {
  std::vector<std::string> vertex_labels;
  struct PendingEdge {
    VertexId u = 0;
    VertexId v = 0;
    Label label = 0;
  };
  std::vector<PendingEdge> edges;
  std::unordered_set<uint64_t> edge_keys;  // packed min<<32|max

  void Clear() {
    vertex_labels.clear();
    edges.clear();
    edge_keys.clear();
  }
};

uint64_t PackEdge(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

// FNV-1a accumulator for the quarantine digest.
struct DigestMixer {
  uint64_t hash = 0;  // 0 until the first quarantined record

  void Mix(uint64_t value) {
    if (hash == 0) hash = 0xCBF29CE484222325ULL;
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    if (hash == 0) hash = 0xCBF29CE484222325ULL;
    for (char c : s) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001B3ULL;
    }
  }
};

}  // namespace

std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          const IngestOptions& options,
                                          IngestReport* report,
                                          ParseError* error) {
  const ParseLimits& limits = options.limits;
  MemoryBudget memory = options.memory;
  IngestReport local_report;
  IngestReport& rep = report != nullptr ? *report : local_report;
  rep = IngestReport();

  GraphDatabase db;
  PendingGraph pending;
  bool has_current = false;   // a 't' header opened a graph
  bool skipping = false;      // discarding the rest of a quarantined graph
  bool stop_reading = false;
  size_t line_number = 0;
  size_t headers_seen = 0;    // input-order graph count ('t' records)
  DigestMixer digest;

  // Current graph's input-order index (0 before any header, matching the
  // ParseError convention).
  auto CurrentIndex = [&]() -> size_t {
    return headers_seen == 0 ? 0 : headers_seen - 1;
  };

  auto CountReason = [&](const std::string& reason) {
    for (auto& [name, count] : rep.quarantine_reasons) {
      if (name == reason) {
        ++count;
        return;
      }
    }
    rep.quarantine_reasons.emplace_back(reason, 1);
  };

  // Strict-mode failure: abandon the whole read.
  auto Fail = [&](const std::string& message) -> std::optional<GraphDatabase> {
    if (error != nullptr) {
      error->line = line_number;
      error->graph_index = CurrentIndex();
      error->message = message;
    }
    return std::nullopt;
  };

  // Quarantines the record at the current line: the enclosing graph (if one
  // is open) is dropped and its remaining lines discarded; pre-header junk
  // is counted by reason without claiming a graph.
  auto Quarantine = [&](const std::string& reason) {
    CountReason(reason);
    digest.Mix(CurrentIndex());
    digest.MixString(reason);
    if (has_current) {
      ++rep.graphs_quarantined;
      if (rep.quarantined_indices.size() < IngestReport::kMaxRecordedIndices) {
        rep.quarantined_indices.push_back(CurrentIndex());
      }
      pending.Clear();
      has_current = false;
      skipping = true;
    }
  };

  // Commits the pending graph into the database: db-wide label limit, memory
  // charge, then interning + assembly. Returns false when the graph was
  // quarantined or ingestion must stop (strict failures are reported through
  // `commit_error`).
  std::string commit_error;
  auto Commit = [&]() -> bool {
    if (!has_current) return true;
    has_current = false;

    // Distinct-label limit is database-wide: count only labels this graph
    // would newly intern.
    size_t new_labels = 0;
    size_t new_label_bytes = 0;
    {
      std::unordered_set<std::string> fresh;
      for (const std::string& name : pending.vertex_labels) {
        if (db.labels().Find(name) != LabelMap::kUnknown ||
            fresh.count(name) > 0) {
          continue;
        }
        fresh.insert(name);
        ++new_labels;
        new_label_bytes += name.size() + 64;  // name + intern table slack
      }
    }
    if (db.labels().size() + new_labels > limits.max_labels) {
      const std::string reason = "vertex label limit exceeded";
      if (options.strict) {
        commit_error = reason;
        return false;
      }
      // Re-open so Quarantine attributes the drop to this graph.
      has_current = true;
      Quarantine(reason);
      return false;
    }

    size_t bytes =
        ApproxGraphBytes(pending.vertex_labels.size(), pending.edges.size()) +
        new_label_bytes;
    if (!memory.TryCharge(bytes, "ingest.graph")) {
      rep.stopped_early = true;
      rep.mem_breached = true;
      rep.resource_error = memory.error();
      rep.stop_reason = rep.resource_error.ToString();
      stop_reading = true;
      pending.Clear();
      if (options.strict) {
        commit_error = rep.stop_reason;
        return false;
      }
      return false;
    }

    Graph g;
    g.Reserve(pending.vertex_labels.size(), pending.edges.size());
    for (const std::string& name : pending.vertex_labels) {
      g.AddVertex(db.labels().Intern(name));
    }
    for (const PendingGraph::PendingEdge& e : pending.edges) {
      g.AddEdge(e.u, e.v, e.label);
    }
    db.Add(std::move(g));
    ++rep.graphs_ingested;
    pending.Clear();

    if (limits.max_graphs != 0 && db.size() >= limits.max_graphs) {
      rep.stopped_early = true;
      rep.stop_reason = "max_graphs limit reached";
      stop_reading = true;
    }
    return true;
  };

  std::string line;
  bool overlong = false;
  while (!stop_reading &&
         ReadBoundedLine(in, line, limits.max_line_bytes, &overlong)) {
    ++line_number;
    ++rep.lines_read;

    if (overlong) {
      if (skipping) continue;
      if (options.strict) return Fail("line exceeds max_line_bytes");
      Quarantine("line exceeds max_line_bytes");
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (line.find('\0') != std::string::npos) {
      if (skipping) continue;
      if (options.strict) return Fail("NUL byte in record");
      Quarantine("NUL byte in record");
      continue;
    }
    if (CATAPULT_FAILPOINT("io.parse")) {
      if (options.strict) {
        return Fail("injected parse failure (failpoint io.parse)");
      }
      Quarantine("injected parse failure (failpoint io.parse)");
      continue;
    }

    std::istringstream tokens(line);
    char kind = 0;
    tokens >> kind;

    if (kind == 't') {
      if (!Commit()) {
        if (!commit_error.empty()) return Fail(commit_error);
        if (stop_reading) break;
      }
      // Commit may have quarantined the finished graph (label limit), which
      // arms skip mode; the header at hand starts a fresh graph either way.
      skipping = false;
      ++headers_seen;
      has_current = true;
      continue;
    }
    if (skipping) continue;

    if (kind == 'v') {
      if (!has_current) {
        const std::string reason = "vertex record before any 't' graph header";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      long long id = -1;
      std::string label;
      tokens >> id >> label;
      if (!tokens) {
        if (options.strict) return Fail("expected 'v <id> <label>'");
        Quarantine("expected 'v <id> <label>'");
        continue;
      }
      if (id != static_cast<long long>(pending.vertex_labels.size())) {
        const std::string reason =
            "vertex ids must be dense and in order (expected " +
            std::to_string(pending.vertex_labels.size()) + ", got " +
            std::to_string(id) + ")";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      if (pending.vertex_labels.size() >= limits.max_vertices_per_graph) {
        const std::string reason = "vertex limit exceeded";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      if (label.size() > limits.max_label_bytes) {
        const std::string reason = "vertex label too long";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      pending.vertex_labels.push_back(std::move(label));
    } else if (kind == 'e') {
      if (!has_current) {
        const std::string reason = "edge record before any 't' graph header";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      long long u = -1;
      long long v = -1;
      tokens >> u >> v;
      if (!tokens) {
        if (options.strict) return Fail("expected 'e <u> <v> [<label>]'");
        Quarantine("expected 'e <u> <v> [<label>]'");
        continue;
      }
      if (u < 0 || v < 0) {
        if (options.strict) return Fail("negative edge endpoint");
        Quarantine("negative edge endpoint");
        continue;
      }
      if (u == v) {
        const std::string reason = "self-loop edge " + std::to_string(u);
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      const long long nv = static_cast<long long>(pending.vertex_labels.size());
      if (u >= nv || v >= nv) {
        const std::string reason = "edge endpoint out of range (graph has " +
                                   std::to_string(nv) + " vertices)";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      if (pending.edges.size() >= limits.max_edges_per_graph) {
        const std::string reason = "edge limit exceeded";
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      long long edge_label = 0;
      tokens >> edge_label;  // Optional; leaves 0 on failure.
      uint64_t key =
          PackEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
      if (!pending.edge_keys.insert(key).second) {
        const std::string reason =
            "duplicate edge " + std::to_string(u) + "-" + std::to_string(v);
        if (options.strict) return Fail(reason);
        Quarantine(reason);
        continue;
      }
      pending.edges.push_back({static_cast<VertexId>(u),
                               static_cast<VertexId>(v),
                               static_cast<Label>(edge_label)});
    } else {
      const std::string reason =
          std::string("unknown record type '") + kind + "'";
      if (options.strict) return Fail(reason);
      Quarantine(reason);
    }
  }

  if (!stop_reading && !Commit() && !commit_error.empty()) {
    return Fail(commit_error);
  }
  rep.quarantine_digest = digest.hash;
  rep.mem_peak_bytes = memory.peak();
  if (memory.HardBreached() && !rep.mem_breached) {
    rep.mem_breached = true;
    rep.resource_error = memory.error();
  }
  return db;
}

std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  const IngestOptions& options,
                                                  IngestReport* report,
                                                  ParseError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      error->line = 0;
      error->graph_index = 0;
      error->message = "cannot open file";
    }
    if (report != nullptr) *report = IngestReport();
    return std::nullopt;
  }
  return ReadDatabase(in, options, report, error);
}

std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          ParseError* error) {
  IngestOptions strict;
  strict.strict = true;
  return ReadDatabase(in, strict, nullptr, error);
}

std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  ParseError* error) {
  IngestOptions strict;
  strict.strict = true;
  return ReadDatabaseFromFile(path, strict, nullptr, error);
}

}  // namespace catapult
