#include "src/graph/io.h"

#include <fstream>
#include <sstream>

#include "src/util/atomic_file.h"
#include "src/util/failpoint.h"

namespace catapult {

void WriteDatabase(const GraphDatabase& db, std::ostream& out) {
  for (GraphId id = 0; id < db.size(); ++id) {
    const Graph& g = db.graph(id);
    out << "t # " << id << "\n";
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      out << "v " << v << " " << db.labels().Name(g.VertexLabel(v)) << "\n";
    }
    for (const Edge& e : g.EdgeList()) {
      out << "e " << e.u << " " << e.v << " " << e.label << "\n";
    }
  }
}

IoStatus WriteDatabaseToFile(const GraphDatabase& db,
                             const std::string& path) {
  std::ostringstream out;
  WriteDatabase(db, out);
  std::string error = AtomicWriteFile(path, out.str());
  if (!error.empty()) return IoStatus::Error(std::move(error));
  return IoStatus::Ok();
}

std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          ParseError* error) {
  GraphDatabase db;
  Graph current;
  bool has_current = false;
  size_t line_number = 0;

  auto Fail = [&](std::string message) -> std::optional<GraphDatabase> {
    if (error != nullptr) {
      error->line = line_number;
      error->message = std::move(message);
    }
    return std::nullopt;
  };

  auto FlushCurrent = [&]() {
    if (has_current) db.Add(std::move(current));
    current = Graph();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (CATAPULT_FAILPOINT("io.parse")) {
      return Fail("injected parse failure (failpoint io.parse)");
    }
    std::istringstream tokens(line);
    char kind = 0;
    tokens >> kind;
    if (kind == 't') {
      FlushCurrent();
      has_current = true;
    } else if (kind == 'v') {
      if (!has_current) {
        return Fail("vertex record before any 't' graph header");
      }
      long long id = -1;
      std::string label;
      tokens >> id >> label;
      if (!tokens) return Fail("expected 'v <id> <label>'");
      if (id != static_cast<long long>(current.NumVertices())) {
        return Fail("vertex ids must be dense and in order (expected " +
                    std::to_string(current.NumVertices()) + ", got " +
                    std::to_string(id) + ")");
      }
      current.AddVertex(db.labels().Intern(label));
    } else if (kind == 'e') {
      if (!has_current) {
        return Fail("edge record before any 't' graph header");
      }
      long long u = -1;
      long long v = -1;
      tokens >> u >> v;
      if (!tokens) return Fail("expected 'e <u> <v> [<label>]'");
      if (u < 0 || v < 0) return Fail("negative edge endpoint");
      if (u == v) return Fail("self-loop edge " + std::to_string(u));
      if (u >= static_cast<long long>(current.NumVertices()) ||
          v >= static_cast<long long>(current.NumVertices())) {
        return Fail("edge endpoint out of range (graph has " +
                    std::to_string(current.NumVertices()) + " vertices)");
      }
      long long edge_label = 0;
      tokens >> edge_label;  // Optional; leaves 0 on failure.
      if (current.HasEdge(static_cast<VertexId>(u),
                          static_cast<VertexId>(v))) {
        return Fail("duplicate edge " + std::to_string(u) + "-" +
                    std::to_string(v));
      }
      current.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                      static_cast<Label>(edge_label));
    } else {
      return Fail(std::string("unknown record type '") + kind + "'");
    }
  }
  FlushCurrent();
  return db;
}

std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  ParseError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      error->line = 0;
      error->message = "cannot open file";
    }
    return std::nullopt;
  }
  return ReadDatabase(in, error);
}

}  // namespace catapult
