#include "src/graph/label_map.h"

namespace catapult {

Label LabelMap::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Label label = static_cast<Label>(names_.size());
  names_.push_back(name);
  index_.emplace(name, label);
  return label;
}

Label LabelMap::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kUnknown : it->second;
}

const std::string& LabelMap::Name(Label label) const {
  CATAPULT_CHECK(label < names_.size());
  return names_[label];
}

}  // namespace catapult
