#ifndef CATAPULT_GRAPH_GRAPH_H_
#define CATAPULT_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace catapult {

// Vertex index within a single graph.
using VertexId = uint32_t;
// Integer vertex/edge label (interned via LabelMap for string labels).
using Label = uint32_t;
// Index of a data graph within a GraphDatabase.
using GraphId = uint32_t;

inline constexpr GraphId kInvalidGraphId = static_cast<GraphId>(-1);

// Canonical key of a labelled edge: the unordered pair of endpoint vertex
// labels packed into one word (paper Section 3.2 footnote: "an edge label can
// be considered as concatenation of labels of the end vertices").
using EdgeLabelKey = uint64_t;

// Packs the unordered label pair {a, b} into an EdgeLabelKey.
inline EdgeLabelKey MakeEdgeLabelKey(Label a, Label b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// An undirected edge with its (canonicalised) endpoints.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Label label = 0;  // Explicit edge label; 0 when unused.
};

// A connected(-able), undirected, simple graph with labelled vertices and
// optionally labelled edges. This is the unit stored in a GraphDatabase and
// the representation of queries and canned patterns.
//
// The paper defines |G| = |E| (graph "size" is the edge count); see Size().
// Vertices are dense indices [0, NumVertices()).
class Graph {
 public:
  // One adjacency entry.
  struct Neighbor {
    VertexId to = 0;
    Label edge_label = 0;
  };

  Graph() = default;

  // Pre-allocates capacity; purely an optimisation.
  void Reserve(size_t vertices, size_t edges);

  // Adds a vertex with `label`; returns its id (consecutive from 0).
  VertexId AddVertex(Label label);

  // Adds the undirected edge {u, v}. Self-loops and duplicate edges are
  // programmer errors (CHECK-fail): data sources are deduplicated on load.
  void AddEdge(VertexId u, VertexId v, Label edge_label = 0);

  // Number of vertices / edges.
  size_t NumVertices() const { return vertex_labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  // Paper convention: the size of a graph is its edge count.
  size_t Size() const { return num_edges_; }

  // Label of vertex `v`.
  Label VertexLabel(VertexId v) const {
    CATAPULT_CHECK(v < vertex_labels_.size());
    return vertex_labels_[v];
  }

  // Overwrites the label of vertex `v` (used by the GUI relabelling model).
  void SetVertexLabel(VertexId v, Label label) {
    CATAPULT_CHECK(v < vertex_labels_.size());
    vertex_labels_[v] = label;
  }

  // Adjacency list of `v` (unordered).
  const std::vector<Neighbor>& Neighbors(VertexId v) const {
    CATAPULT_CHECK(v < adj_.size());
    return adj_[v];
  }

  // Degree of `v`.
  size_t Degree(VertexId v) const { return Neighbors(v).size(); }

  // True if the undirected edge {u, v} exists.
  bool HasEdge(VertexId u, VertexId v) const;

  // Label of the edge {u, v}; CHECK-fails if absent.
  Label EdgeLabel(VertexId u, VertexId v) const;

  // Canonical labelled-edge key of {u, v} based on endpoint vertex labels.
  EdgeLabelKey EdgeKey(VertexId u, VertexId v) const {
    return MakeEdgeLabelKey(VertexLabel(u), VertexLabel(v));
  }

  // All edges, each reported once with u < v.
  std::vector<Edge> EdgeList() const;

  // Graph density rho = 2|E| / (|V| (|V|-1)); 0 for graphs with < 2 vertices.
  double Density() const;

  // Identifier of this graph within its database (kInvalidGraphId if free-
  // standing, e.g. a query or pattern).
  GraphId id() const { return id_; }
  void set_id(GraphId id) { id_ = id; }

  // Human-readable dump ("v0(C)-v1(O), ..."), for tests and debugging.
  std::string DebugString() const;

 private:
  GraphId id_ = kInvalidGraphId;
  std::vector<Label> vertex_labels_;
  std::vector<std::vector<Neighbor>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace catapult

#endif  // CATAPULT_GRAPH_GRAPH_H_
