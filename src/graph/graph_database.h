#ifndef CATAPULT_GRAPH_GRAPH_DATABASE_H_
#define CATAPULT_GRAPH_GRAPH_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/label_map.h"

namespace catapult {

// Aggregate statistics of a database, used by benchmark harnesses.
struct DatabaseStats {
  size_t num_graphs = 0;
  size_t total_vertices = 0;
  size_t total_edges = 0;
  size_t max_vertices = 0;
  size_t max_edges = 0;
  double avg_vertices = 0.0;
  double avg_edges = 0.0;
  size_t num_vertex_labels = 0;
  size_t num_edge_label_keys = 0;
};

// A repository of small/medium data graphs (the paper's D). Owns the graphs
// and the shared LabelMap. Graph ids are their indices.
class GraphDatabase {
 public:
  GraphDatabase() = default;

  // Movable, not copyable (databases can be large; copy explicitly via
  // Subset when needed).
  GraphDatabase(GraphDatabase&&) = default;
  GraphDatabase& operator=(GraphDatabase&&) = default;
  GraphDatabase(const GraphDatabase&) = delete;
  GraphDatabase& operator=(const GraphDatabase&) = delete;

  // Appends `graph`, assigning its id; returns the id.
  GraphId Add(Graph graph);

  // Number of graphs.
  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  // Access by id.
  const Graph& graph(GraphId id) const {
    CATAPULT_CHECK(id < graphs_.size());
    return graphs_[id];
  }
  const std::vector<Graph>& graphs() const { return graphs_; }

  // Shared label dictionary.
  LabelMap& labels() { return labels_; }
  const LabelMap& labels() const { return labels_; }

  // New database containing copies of the graphs with the given ids (ids are
  // reassigned densely; the LabelMap is copied so labels stay comparable).
  GraphDatabase Subset(const std::vector<GraphId>& ids) const;

  // Frequency map: labelled-edge key -> number of graphs containing at least
  // one edge with that key. This is |L(e, D)| from Section 3.2.
  std::unordered_map<EdgeLabelKey, size_t> EdgeLabelSupport() const;

  // All distinct labelled-edge keys present in the database.
  std::vector<EdgeLabelKey> DistinctEdgeLabelKeys() const;

  // Aggregate statistics.
  DatabaseStats Stats() const;

 private:
  std::vector<Graph> graphs_;
  LabelMap labels_;
};

}  // namespace catapult

#endif  // CATAPULT_GRAPH_GRAPH_DATABASE_H_
