#ifndef CATAPULT_GRAPH_LABEL_MAP_H_
#define CATAPULT_GRAPH_LABEL_MAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"

namespace catapult {

// Bidirectional mapping between string labels (atom symbols such as "C",
// "N", "O") and dense integer Labels. A GraphDatabase owns one LabelMap so
// that labels are comparable across its graphs, queries, and patterns.
class LabelMap {
 public:
  LabelMap() = default;

  // Returns the Label for `name`, interning it on first use.
  Label Intern(const std::string& name);

  // Returns the Label for `name` or kUnknown if never interned.
  static constexpr Label kUnknown = static_cast<Label>(-1);
  Label Find(const std::string& name) const;

  // Returns the string for `label`; CHECK-fails on out-of-range labels.
  const std::string& Name(Label label) const;

  // Number of distinct labels interned so far.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Label> index_;
  std::vector<std::string> names_;
};

}  // namespace catapult

#endif  // CATAPULT_GRAPH_LABEL_MAP_H_
