#ifndef CATAPULT_GRAPH_ALGORITHMS_H_
#define CATAPULT_GRAPH_ALGORITHMS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace catapult {

// True if `g` is connected (the empty graph and single vertices count as
// connected).
bool IsConnected(const Graph& g);

// True if `g` is connected and acyclic.
bool IsTree(const Graph& g);

// Connected components; result[v] is the component index of vertex v,
// components are numbered densely from 0.
std::vector<int> ConnectedComponents(const Graph& g);

// BFS visit order starting from `start`, restricted to its component.
std::vector<VertexId> BfsOrder(const Graph& g, VertexId start);

// Extracts a uniformly grown random connected subgraph of `g` with exactly
// `num_edges` edges (or fewer if g is smaller): starts from a random edge and
// repeatedly adds a random incident edge of the partial subgraph. Vertex ids
// are remapped densely; labels are preserved. Used to generate subgraph query
// workloads (Section 6.1: "randomly selecting connected subgraphs").
Graph RandomConnectedSubgraph(const Graph& g, size_t num_edges, Rng& rng);

// Induced subgraph on `vertices` (which must be distinct ids of g); vertex
// ids are remapped densely in the given order.
Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices);

// Returns a copy of `g` with every vertex relabelled to `label` (the
// "unlabelled GUI pattern" normalisation used by Exp 3).
Graph RelabelAllVertices(const Graph& g, Label label);

// True if `a` and `b` are identical as labelled adjacency structures under
// the identity vertex mapping (NOT isomorphism; used by tests).
bool StructurallyEqual(const Graph& a, const Graph& b);

}  // namespace catapult

#endif  // CATAPULT_GRAPH_ALGORITHMS_H_
