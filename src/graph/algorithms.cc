#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace catapult {

bool IsConnected(const Graph& g) {
  if (g.NumVertices() <= 1) return true;
  return BfsOrder(g, 0).size() == g.NumVertices();
}

bool IsTree(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return IsConnected(g) && g.NumEdges() == g.NumVertices() - 1;
}

std::vector<int> ConnectedComponents(const Graph& g) {
  std::vector<int> component(g.NumVertices(), -1);
  int next = 0;
  for (VertexId start = 0; start < g.NumVertices(); ++start) {
    if (component[start] != -1) continue;
    std::deque<VertexId> frontier = {start};
    component[start] = next;
    while (!frontier.empty()) {
      VertexId v = frontier.front();
      frontier.pop_front();
      for (const Graph::Neighbor& n : g.Neighbors(v)) {
        if (component[n.to] == -1) {
          component[n.to] = next;
          frontier.push_back(n.to);
        }
      }
    }
    ++next;
  }
  return component;
}

std::vector<VertexId> BfsOrder(const Graph& g, VertexId start) {
  CATAPULT_CHECK(start < g.NumVertices());
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> order;
  std::deque<VertexId> frontier = {start};
  seen[start] = true;
  while (!frontier.empty()) {
    VertexId v = frontier.front();
    frontier.pop_front();
    order.push_back(v);
    for (const Graph::Neighbor& n : g.Neighbors(v)) {
      if (!seen[n.to]) {
        seen[n.to] = true;
        frontier.push_back(n.to);
      }
    }
  }
  return order;
}

Graph RandomConnectedSubgraph(const Graph& g, size_t num_edges, Rng& rng) {
  Graph result;
  if (g.NumEdges() == 0) return result;
  num_edges = std::min(num_edges, g.NumEdges());

  // Pick a uniform random starting edge.
  std::vector<Edge> all_edges = g.EdgeList();
  const Edge& first = all_edges[rng.UniformInt(all_edges.size())];

  std::unordered_map<VertexId, VertexId> remap;  // original -> new id
  auto MapVertex = [&](VertexId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VertexId nv = result.AddVertex(g.VertexLabel(v));
    remap.emplace(v, nv);
    return nv;
  };

  // Edges already chosen, keyed on the original endpoints.
  auto EdgeKey64 = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  std::unordered_set<uint64_t> chosen;
  std::vector<VertexId> vertices_in;  // original ids in the partial subgraph

  auto TakeEdge = [&](VertexId u, VertexId v, Label elabel) {
    chosen.insert(EdgeKey64(u, v));
    bool u_new = remap.find(u) == remap.end();
    bool v_new = remap.find(v) == remap.end();
    VertexId nu = MapVertex(u);
    VertexId nv = MapVertex(v);
    if (u_new) vertices_in.push_back(u);
    if (v_new) vertices_in.push_back(v);
    result.AddEdge(nu, nv, elabel);
  };

  TakeEdge(first.u, first.v, first.label);

  while (result.NumEdges() < num_edges) {
    // Collect frontier edges: incident to the partial subgraph, not chosen.
    std::vector<Edge> frontier;
    for (VertexId u : vertices_in) {
      for (const Graph::Neighbor& n : g.Neighbors(u)) {
        if (!chosen.contains(EdgeKey64(u, n.to))) {
          frontier.push_back({u, n.to, n.edge_label});
        }
      }
    }
    if (frontier.empty()) break;
    const Edge& pick = frontier[rng.UniformInt(frontier.size())];
    TakeEdge(pick.u, pick.v, pick.label);
  }
  return result;
}

Graph InducedSubgraph(const Graph& g, const std::vector<VertexId>& vertices) {
  Graph result;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId v : vertices) {
    CATAPULT_CHECK(!remap.contains(v));
    remap.emplace(v, result.AddVertex(g.VertexLabel(v)));
  }
  for (VertexId v : vertices) {
    for (const Graph::Neighbor& n : g.Neighbors(v)) {
      auto it = remap.find(n.to);
      if (it != remap.end() && v < n.to) {
        result.AddEdge(remap[v], it->second, n.edge_label);
      }
    }
  }
  return result;
}

Graph RelabelAllVertices(const Graph& g, Label label) {
  Graph result = g;
  for (VertexId v = 0; v < result.NumVertices(); ++v) {
    result.SetVertexLabel(v, label);
  }
  return result;
}

bool StructurallyEqual(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    if (a.VertexLabel(v) != b.VertexLabel(v)) return false;
  }
  for (const Edge& e : a.EdgeList()) {
    if (!b.HasEdge(e.u, e.v)) return false;
    if (b.EdgeLabel(e.u, e.v) != e.label) return false;
  }
  return true;
}

}  // namespace catapult
