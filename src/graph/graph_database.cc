#include "src/graph/graph_database.h"

#include <unordered_set>

namespace catapult {

GraphId GraphDatabase::Add(Graph graph) {
  GraphId id = static_cast<GraphId>(graphs_.size());
  graph.set_id(id);
  graphs_.push_back(std::move(graph));
  return id;
}

GraphDatabase GraphDatabase::Subset(const std::vector<GraphId>& ids) const {
  GraphDatabase subset;
  subset.labels_ = labels_;
  for (GraphId id : ids) {
    subset.Add(graph(id));
  }
  return subset;
}

std::unordered_map<EdgeLabelKey, size_t> GraphDatabase::EdgeLabelSupport()
    const {
  std::unordered_map<EdgeLabelKey, size_t> support;
  std::unordered_set<EdgeLabelKey> seen;
  for (const Graph& g : graphs_) {
    seen.clear();
    for (const Edge& e : g.EdgeList()) {
      seen.insert(g.EdgeKey(e.u, e.v));
    }
    for (EdgeLabelKey key : seen) ++support[key];
  }
  return support;
}

std::vector<EdgeLabelKey> GraphDatabase::DistinctEdgeLabelKeys() const {
  std::unordered_set<EdgeLabelKey> keys;
  for (const Graph& g : graphs_) {
    for (const Edge& e : g.EdgeList()) {
      keys.insert(g.EdgeKey(e.u, e.v));
    }
  }
  return std::vector<EdgeLabelKey>(keys.begin(), keys.end());
}

DatabaseStats GraphDatabase::Stats() const {
  DatabaseStats stats;
  stats.num_graphs = graphs_.size();
  std::unordered_set<Label> vertex_labels;
  std::unordered_set<EdgeLabelKey> edge_keys;
  for (const Graph& g : graphs_) {
    stats.total_vertices += g.NumVertices();
    stats.total_edges += g.NumEdges();
    stats.max_vertices = std::max(stats.max_vertices, g.NumVertices());
    stats.max_edges = std::max(stats.max_edges, g.NumEdges());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      vertex_labels.insert(g.VertexLabel(v));
    }
    for (const Edge& e : g.EdgeList()) {
      edge_keys.insert(g.EdgeKey(e.u, e.v));
    }
  }
  if (!graphs_.empty()) {
    stats.avg_vertices = static_cast<double>(stats.total_vertices) /
                         static_cast<double>(graphs_.size());
    stats.avg_edges = static_cast<double>(stats.total_edges) /
                      static_cast<double>(graphs_.size());
  }
  stats.num_vertex_labels = vertex_labels.size();
  stats.num_edge_label_keys = edge_keys.size();
  return stats;
}

}  // namespace catapult
