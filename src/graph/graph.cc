#include "src/graph/graph.h"

#include <sstream>

namespace catapult {

void Graph::Reserve(size_t vertices, size_t edges) {
  vertex_labels_.reserve(vertices);
  adj_.reserve(vertices);
  (void)edges;
}

VertexId Graph::AddVertex(Label label) {
  vertex_labels_.push_back(label);
  adj_.emplace_back();
  return static_cast<VertexId>(vertex_labels_.size() - 1);
}

void Graph::AddEdge(VertexId u, VertexId v, Label edge_label) {
  CATAPULT_CHECK(u < NumVertices() && v < NumVertices());
  CATAPULT_CHECK_MSG(u != v, "self-loops are not supported");
  CATAPULT_CHECK_MSG(!HasEdge(u, v), "duplicate edge %u-%u", u, v);
  adj_[u].push_back({v, edge_label});
  adj_[v].push_back({u, edge_label});
  ++num_edges_;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  CATAPULT_CHECK(u < NumVertices() && v < NumVertices());
  // Scan the smaller adjacency list; molecule-scale degrees make this O(1).
  const std::vector<Neighbor>& list =
      adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  VertexId target = adj_[u].size() <= adj_[v].size() ? v : u;
  for (const Neighbor& n : list) {
    if (n.to == target) return true;
  }
  return false;
}

Label Graph::EdgeLabel(VertexId u, VertexId v) const {
  CATAPULT_CHECK(u < NumVertices() && v < NumVertices());
  for (const Neighbor& n : adj_[u]) {
    if (n.to == v) return n.edge_label;
  }
  CATAPULT_CHECK_MSG(false, "edge %u-%u not found", u, v);
  return 0;
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (const Neighbor& n : adj_[u]) {
      if (u < n.to) edges.push_back({u, n.to, n.edge_label});
    }
  }
  return edges;
}

double Graph::Density() const {
  size_t n = NumVertices();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  out << "Graph(|V|=" << NumVertices() << ", |E|=" << NumEdges() << ";";
  for (const Edge& e : EdgeList()) {
    out << " " << e.u << "(" << VertexLabel(e.u) << ")-" << e.v << "("
        << VertexLabel(e.v) << ")";
  }
  out << ")";
  return out.str();
}

}  // namespace catapult
