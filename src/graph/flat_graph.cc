#include "src/graph/flat_graph.h"

#include <algorithm>

namespace catapult {

namespace {

// Sort key of an adjacency entry under the lookup permutation.
inline uint64_t SortKey(const FlatNeighbor& n) {
  return (static_cast<uint64_t>(n.to_label) << 32) | n.to;
}

// Builds the per-vertex (to_label, to)-sorted permutation of [begin, end)
// adjacency runs delimited by `offsets`, writing absolute adjacency indices
// into `sorted` (same indexing as `adj`).
void BuildSortedPermutation(const std::vector<uint32_t>& offsets,
                            const std::vector<FlatNeighbor>& adj,
                            size_t adj_base, size_t num_vertices,
                            std::vector<uint32_t>& sorted) {
  for (size_t v = 0; v < num_vertices; ++v) {
    uint32_t lo = offsets[v];
    uint32_t hi = offsets[v + 1];
    for (uint32_t k = lo; k < hi; ++k) sorted.push_back(k);
    uint32_t* first = sorted.data() + sorted.size() - (hi - lo);
    std::sort(first, first + (hi - lo), [&](uint32_t l, uint32_t r) {
      return SortKey(adj[adj_base + l]) < SortKey(adj[adj_base + r]);
    });
  }
}

}  // namespace

const FlatNeighbor* FlatGraphView::FindEdge(VertexId u, VertexId v) const {
  CATAPULT_CHECK(u < num_vertices);
  CATAPULT_CHECK(v < num_vertices);
  uint64_t key = (static_cast<uint64_t>(labels[v]) << 32) | v;
  uint32_t lo = offsets[u];
  uint32_t hi = offsets[u + 1];
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    const FlatNeighbor& n = adj[sorted[mid]];
    uint64_t k = (static_cast<uint64_t>(n.to_label) << 32) | n.to;
    if (k < key) {
      lo = mid + 1;
    } else if (k > key) {
      hi = mid;
    } else {
      return &adj[sorted[mid]];
    }
  }
  return nullptr;
}

Label FlatGraphView::EdgeLabel(VertexId u, VertexId v) const {
  const FlatNeighbor* n = FindEdge(u, v);
  CATAPULT_CHECK_MSG(n != nullptr, "edge not present");
  return n->edge_label;
}

void FlatGraphView::NeighborsWithLabel(VertexId u, Label l, uint32_t* first,
                                       uint32_t* last) const {
  CATAPULT_CHECK(u < num_vertices);
  uint32_t lo = offsets[u];
  uint32_t hi = offsets[u + 1];
  // Lower bound on (l, 0), upper bound on (l, 2^32-1).
  uint32_t a = lo, b = hi;
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (adj[sorted[mid]].to_label < l) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  *first = a;
  b = hi;
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (adj[sorted[mid]].to_label <= l) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  *last = a;
}

FlatGraph FlatGraph::Build(const Graph& g) {
  FlatGraph flat;
  size_t v_count = g.NumVertices();
  flat.num_edges_ = static_cast<uint32_t>(g.NumEdges());
  flat.labels_.reserve(v_count);
  for (VertexId v = 0; v < v_count; ++v) flat.labels_.push_back(g.VertexLabel(v));

  flat.offsets_.reserve(v_count + 1);
  flat.offsets_.push_back(0);
  flat.adj_.reserve(2 * g.NumEdges());
  for (VertexId v = 0; v < v_count; ++v) {
    for (const Graph::Neighbor& n : g.Neighbors(v)) {
      flat.adj_.push_back({n.to, flat.labels_[n.to], n.edge_label});
    }
    flat.offsets_.push_back(static_cast<uint32_t>(flat.adj_.size()));
  }
  flat.sorted_.reserve(flat.adj_.size());
  BuildSortedPermutation(flat.offsets_, flat.adj_, 0, v_count, flat.sorted_);
  return flat;
}

FlatGraphView FlatGraph::View() const {
  FlatGraphView view;
  view.labels = labels_.data();
  view.offsets = offsets_.data();
  view.adj = adj_.data();
  view.sorted = sorted_.data();
  view.num_vertices = static_cast<uint32_t>(labels_.size());
  view.num_edges = num_edges_;
  return view;
}

size_t FlatGraph::MemoryBytes() const {
  return labels_.capacity() * sizeof(Label) +
         offsets_.capacity() * sizeof(uint32_t) +
         adj_.capacity() * sizeof(FlatNeighbor) +
         sorted_.capacity() * sizeof(uint32_t);
}

void FlatGraphDatabase::Append(const Graph& g) {
  Meta meta;
  meta.label_off = label_arena_.size();
  meta.offset_off = offset_arena_.size();
  meta.adj_off = adj_arena_.size();
  meta.num_vertices = static_cast<uint32_t>(g.NumVertices());
  meta.num_edges = static_cast<uint32_t>(g.NumEdges());

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    label_arena_.push_back(g.VertexLabel(v));
  }
  // Per-graph offsets are run-relative so a view's `offsets` indexes its
  // `adj` slice directly.
  std::vector<uint32_t> offsets;
  offsets.reserve(g.NumVertices() + 1);
  offsets.push_back(0);
  size_t run = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (const Graph::Neighbor& n : g.Neighbors(v)) {
      adj_arena_.push_back(
          {n.to, label_arena_[meta.label_off + n.to], n.edge_label});
      ++run;
    }
    offsets.push_back(static_cast<uint32_t>(run));
  }
  std::vector<uint32_t> sorted;
  sorted.reserve(run);
  BuildSortedPermutation(offsets, adj_arena_, meta.adj_off, g.NumVertices(),
                         sorted);
  offset_arena_.insert(offset_arena_.end(), offsets.begin(), offsets.end());
  sorted_arena_.insert(sorted_arena_.end(), sorted.begin(), sorted.end());
  metas_.push_back(meta);
}

FlatGraphDatabase FlatGraphDatabase::Build(const GraphDatabase& db) {
  FlatGraphDatabase out;
  DatabaseStats stats = db.Stats();
  out.label_arena_.reserve(stats.total_vertices);
  out.offset_arena_.reserve(stats.total_vertices + db.size());
  out.adj_arena_.reserve(2 * stats.total_edges);
  out.sorted_arena_.reserve(2 * stats.total_edges);
  out.metas_.reserve(db.size());
  for (const Graph& g : db.graphs()) out.Append(g);
  return out;
}

FlatGraphDatabase FlatGraphDatabase::Build(const std::vector<Graph>& graphs) {
  FlatGraphDatabase out;
  out.metas_.reserve(graphs.size());
  for (const Graph& g : graphs) out.Append(g);
  return out;
}

FlatGraphView FlatGraphDatabase::view(size_t id) const {
  CATAPULT_CHECK(id < metas_.size());
  const Meta& meta = metas_[id];
  FlatGraphView view;
  view.labels = label_arena_.data() + meta.label_off;
  view.offsets = offset_arena_.data() + meta.offset_off;
  view.adj = adj_arena_.data() + meta.adj_off;
  view.sorted = sorted_arena_.data() + meta.adj_off;
  view.num_vertices = meta.num_vertices;
  view.num_edges = meta.num_edges;
  return view;
}

size_t FlatGraphDatabase::MemoryBytes() const {
  return label_arena_.capacity() * sizeof(Label) +
         offset_arena_.capacity() * sizeof(uint32_t) +
         adj_arena_.capacity() * sizeof(FlatNeighbor) +
         sorted_arena_.capacity() * sizeof(uint32_t) +
         metas_.capacity() * sizeof(Meta);
}

LabelDomains LabelDomains::Build(const FlatGraphView& g) {
  LabelDomains out;
  out.num_vertices_ = g.NumVertices();
  out.words_per_domain_ = (g.NumVertices() + 63) / 64;

  out.slot_labels_.assign(g.labels, g.labels + g.num_vertices);
  std::sort(out.slot_labels_.begin(), out.slot_labels_.end());
  out.slot_labels_.erase(
      std::unique(out.slot_labels_.begin(), out.slot_labels_.end()),
      out.slot_labels_.end());

  out.counts_.assign(out.slot_labels_.size(), 0);
  out.bits_.assign(out.slot_labels_.size() * out.words_per_domain_, 0);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    int slot = out.SlotOf(g.labels[v]);
    CATAPULT_CHECK(slot >= 0);
    ++out.counts_[slot];
    out.bits_[static_cast<size_t>(slot) * out.words_per_domain_ + (v >> 6)] |=
        uint64_t{1} << (v & 63);
  }
  return out;
}

int LabelDomains::SlotOf(Label l) const {
  auto it = std::lower_bound(slot_labels_.begin(), slot_labels_.end(), l);
  if (it == slot_labels_.end() || *it != l) return -1;
  return static_cast<int>(it - slot_labels_.begin());
}

const uint64_t* LabelDomains::Words(Label l) const {
  int slot = SlotOf(l);
  if (slot < 0) return nullptr;
  return bits_.data() + static_cast<size_t>(slot) * words_per_domain_;
}

size_t LabelDomains::CountOf(Label l) const {
  int slot = SlotOf(l);
  return slot < 0 ? 0 : counts_[slot];
}

size_t LabelDomains::MemoryBytes() const {
  return slot_labels_.capacity() * sizeof(Label) +
         counts_.capacity() * sizeof(uint32_t) +
         bits_.capacity() * sizeof(uint64_t);
}

}  // namespace catapult
