#ifndef CATAPULT_GRAPH_FLAT_GRAPH_H_
#define CATAPULT_GRAPH_FLAT_GRAPH_H_

// Immutable CSR-style flat graph layout (DESIGN.md §15).
//
// `Graph` stays the mutable builder (parser, generators, pattern assembly);
// the hot paths — subgraph-isomorphism coverage tests, MCS, scoring — run on
// `FlatGraph` / `FlatGraphView`: one offsets array indexing one packed
// adjacency array, built once after a graph stops changing.
//
// Layout invariants:
//  * `offsets` has NumVertices()+1 entries; the adjacency run of vertex v is
//    adj[offsets[v] .. offsets[v+1]). Degree is one subtraction.
//  * Adjacency entries keep the *insertion order* of the source `Graph`, so
//    every algorithm that iterates neighbours visits them in exactly the
//    order the nested-vector layout produced — node counts, truncation
//    points and tie-breaks are bit-identical to the pre-flat code.
//  * A parallel permutation array `sorted` orders each vertex's run by
//    (neighbour vertex label, neighbour id); edge lookups binary-search it
//    instead of scanning the run. The permutation is derived state: it never
//    changes iteration order, only lookup cost.
//  * Each adjacency entry carries the neighbour's vertex label inline
//    (`to_label`), so label filtering in matching loops touches one cache
//    line instead of chasing into the labels array.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/graph_database.h"

namespace catapult {

// One packed adjacency entry (12 bytes).
struct FlatNeighbor {
  VertexId to = 0;
  Label to_label = 0;   // vertex label of `to`, duplicated for locality
  Label edge_label = 0;
};

// Non-owning view over a flat graph: raw pointers + counts. This is the
// common parameter type of the flat kernels, so a standalone `FlatGraph`
// and an arena slice of a `FlatGraphDatabase` are interchangeable.
struct FlatGraphView {
  const Label* labels = nullptr;        // [num_vertices]
  const uint32_t* offsets = nullptr;    // [num_vertices + 1], run-relative
  const FlatNeighbor* adj = nullptr;    // [2 * num_edges], insertion order
  const uint32_t* sorted = nullptr;     // [2 * num_edges], per-vertex perm
  uint32_t num_vertices = 0;
  uint32_t num_edges = 0;

  size_t NumVertices() const { return num_vertices; }
  size_t NumEdges() const { return num_edges; }

  Label VertexLabel(VertexId v) const {
    CATAPULT_CHECK(v < num_vertices);
    return labels[v];
  }
  size_t Degree(VertexId v) const {
    CATAPULT_CHECK(v < num_vertices);
    return offsets[v + 1] - offsets[v];
  }

  // Insertion-order adjacency run of `v` (iteration-compatible with
  // Graph::Neighbors).
  const FlatNeighbor* NeighborsBegin(VertexId v) const {
    CATAPULT_CHECK(v < num_vertices);
    return adj + offsets[v];
  }
  const FlatNeighbor* NeighborsEnd(VertexId v) const {
    CATAPULT_CHECK(v < num_vertices);
    return adj + offsets[v + 1];
  }

  // Binary search over the sorted permutation: the adjacency entry for the
  // undirected edge {u, v}, or nullptr if absent. O(log degree(u)).
  const FlatNeighbor* FindEdge(VertexId u, VertexId v) const;

  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != nullptr;
  }

  // Label of the edge {u, v}; CHECK-fails if absent (matches
  // Graph::EdgeLabel).
  Label EdgeLabel(VertexId u, VertexId v) const;

  // Half-open range [first, last) of `sorted` positions within u's run
  // whose neighbours carry vertex label `l` (ascending neighbour id).
  // Dereference as adj[sorted[k]] for k in [first, last).
  void NeighborsWithLabel(VertexId u, Label l, uint32_t* first,
                          uint32_t* last) const;
};

// Owning flat graph built once from a `Graph`.
class FlatGraph {
 public:
  FlatGraph() = default;

  // Builds the flat layout from `g`. O(V + E log maxdeg).
  static FlatGraph Build(const Graph& g);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return num_edges_; }

  FlatGraphView View() const;

  // Heap bytes held by the flat arrays (memory-budget accounting).
  size_t MemoryBytes() const;

 private:
  std::vector<Label> labels_;
  std::vector<uint32_t> offsets_;
  std::vector<FlatNeighbor> adj_;
  std::vector<uint32_t> sorted_;
  uint32_t num_edges_ = 0;
};

// All graphs of a database in one contiguous arena: one labels array, one
// offsets array, one adjacency array, one permutation array, plus a small
// per-graph metadata record. Views are sliced out of the shared arenas, so
// iterating graphs touches memory sequentially instead of per-graph heap
// islands.
class FlatGraphDatabase {
 public:
  FlatGraphDatabase() = default;

  static FlatGraphDatabase Build(const GraphDatabase& db);
  // Same arena build from free-standing graphs (e.g. CSG summary views).
  static FlatGraphDatabase Build(const std::vector<Graph>& graphs);

  size_t size() const { return metas_.size(); }
  bool empty() const { return metas_.empty(); }

  FlatGraphView view(size_t id) const;

  // Total heap bytes of the arenas.
  size_t MemoryBytes() const;

 private:
  struct Meta {
    uint64_t label_off = 0;
    uint64_t offset_off = 0;
    uint64_t adj_off = 0;
    uint32_t num_vertices = 0;
    uint32_t num_edges = 0;
  };

  void Append(const Graph& g);

  std::vector<Label> label_arena_;
  std::vector<uint32_t> offset_arena_;
  std::vector<FlatNeighbor> adj_arena_;
  std::vector<uint32_t> sorted_arena_;
  std::vector<Meta> metas_;
};

// Per-graph candidate domains: for every distinct vertex label, a
// uint64_t-word bitset over the graph's vertices carrying that label.
// Root-candidate enumeration in the flat VF2 kernel iterates the set bits of
// the pattern root's label domain — the same ascending-id sequence the naive
// 0..V scan accepts, without touching the rejected vertices at all.
class LabelDomains {
 public:
  LabelDomains() = default;

  static LabelDomains Build(const FlatGraphView& g);

  // Words of the domain for `l` (words_per_domain() of them), or nullptr if
  // no vertex carries the label.
  const uint64_t* Words(Label l) const;

  // Number of vertices carrying `l` (0 if absent). Precomputed: rarity
  // ranking in root selection costs one lookup, not a popcount.
  size_t CountOf(Label l) const;

  size_t words_per_domain() const { return words_per_domain_; }
  size_t num_vertices() const { return num_vertices_; }
  size_t num_labels() const { return slot_labels_.size(); }

  size_t MemoryBytes() const;

 private:
  int SlotOf(Label l) const;  // -1 if absent

  size_t num_vertices_ = 0;
  size_t words_per_domain_ = 0;
  std::vector<Label> slot_labels_;   // distinct labels, ascending
  std::vector<uint32_t> counts_;     // per slot
  std::vector<uint64_t> bits_;       // num_labels * words_per_domain
};

}  // namespace catapult

#endif  // CATAPULT_GRAPH_FLAT_GRAPH_H_
