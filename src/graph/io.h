#ifndef CATAPULT_GRAPH_IO_H_
#define CATAPULT_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/graph/graph_database.h"

namespace catapult {

// Serialisation of graph databases in the standard gSpan-style text format
// used by AIDS/PubChem-style benchmark distributions:
//
//   t # <graph-id>
//   v <vertex-id> <label-name>
//   e <u> <v> [<edge-label-int>]
//
// Vertex labels are strings ("C", "N", ...) interned through the database's
// LabelMap; '#' lines and blank lines are ignored.

// Writes `db` to `out` in the format above.
void WriteDatabase(const GraphDatabase& db, std::ostream& out);

// Success-or-message result of a file write. Truthy on success (so
// `if (!WriteDatabaseToFile(...))` keeps working at existing call sites);
// on failure `message()` says what went wrong and where.
class IoStatus {
 public:
  static IoStatus Ok() { return IoStatus(std::string()); }
  static IoStatus Error(std::string message) {
    return IoStatus(std::move(message));
  }

  explicit operator bool() const { return message_.empty(); }
  bool ok() const { return message_.empty(); }
  const std::string& message() const { return message_; }

 private:
  explicit IoStatus(std::string message) : message_(std::move(message)) {}
  std::string message_;
};

// Convenience wrapper that writes to `path` atomically: the database is
// serialised to a sibling temp file, fsynced, and renamed over `path`, so a
// crash mid-write can never leave a truncated database behind — readers see
// either the old file or the complete new one.
IoStatus WriteDatabaseToFile(const GraphDatabase& db, const std::string& path);

// Where and why parsing failed. `line` is the 1-based number of the
// offending input line (0 when the failure is not tied to a line, e.g. an
// unreadable file).
struct ParseError {
  size_t line = 0;
  std::string message;
};

// Parses a database from `in`. Returns std::nullopt on malformed input
// (negative ids, dangling edge endpoints, duplicate edges); when `error` is
// non-null it receives the line number and reason of the first failure.
std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          ParseError* error = nullptr);

// Convenience wrapper that reads from `path`.
std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  ParseError* error = nullptr);

}  // namespace catapult

#endif  // CATAPULT_GRAPH_IO_H_
