#ifndef CATAPULT_GRAPH_IO_H_
#define CATAPULT_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph_database.h"
#include "src/util/mem_budget.h"

namespace catapult {

// Serialisation of graph databases in the standard gSpan-style text format
// used by AIDS/PubChem-style benchmark distributions:
//
//   t # <graph-id>
//   v <vertex-id> <label-name>
//   e <u> <v> [<edge-label-int>]
//
// Vertex labels are strings ("C", "N", ...) interned through the database's
// LabelMap; '#' lines and blank lines are ignored.
//
// Reading treats the input as untrusted (DESIGN.md Section 9): the parser
// streams line-by-line under explicit structural limits (ParseLimits) and a
// memory budget, never buffering more than one bounded line and one graph at
// a time. In quarantine mode (the default for IngestOptions) a malformed or
// limit-violating graph is skipped, counted per reason in the IngestReport,
// and ingestion continues; in strict mode the first violation fails the
// whole read with a ParseError naming the line and the offending graph.

// Writes `db` to `out` in the format above.
void WriteDatabase(const GraphDatabase& db, std::ostream& out);

// Success-or-message result of a file write. Truthy on success (so
// `if (!WriteDatabaseToFile(...))` keeps working at existing call sites);
// on failure `message()` says what went wrong and where.
class IoStatus {
 public:
  static IoStatus Ok() { return IoStatus(std::string()); }
  static IoStatus Error(std::string message) {
    return IoStatus(std::move(message));
  }

  explicit operator bool() const { return message_.empty(); }
  bool ok() const { return message_.empty(); }
  const std::string& message() const { return message_; }

 private:
  explicit IoStatus(std::string message) : message_(std::move(message)) {}
  std::string message_;
};

// Convenience wrapper that writes to `path` atomically: the database is
// serialised to a sibling temp file, fsynced, and renamed over `path`, so a
// crash mid-write can never leave a truncated database behind — readers see
// either the old file or the complete new one.
IoStatus WriteDatabaseToFile(const GraphDatabase& db, const std::string& path);

// Where and why parsing failed. `line` is the 1-based number of the
// offending input line (0 when the failure is not tied to a line, e.g. an
// unreadable file); `graph_index` is the 0-based input-order index of the
// graph the line belongs to (the count of 't' headers seen minus one; 0 when
// the failure precedes any header).
struct ParseError {
  size_t line = 0;
  size_t graph_index = 0;
  std::string message;
};

// Structural limits enforced on every parsed graph. The defaults comfortably
// admit AIDS/PubChem-scale molecule data while bounding what a single
// adversarial record can make the parser materialise.
struct ParseLimits {
  size_t max_line_bytes = size_t{1} << 20;          // longest accepted line
  size_t max_vertices_per_graph = size_t{1} << 16;  // degree/vertex bombs
  size_t max_edges_per_graph = size_t{1} << 20;
  size_t max_label_bytes = 256;          // longest accepted label token
  size_t max_labels = size_t{1} << 20;   // distinct vertex labels, db-wide
  size_t max_graphs = 0;                 // stop after this many (0 = all)
};

// How ReadDatabase treats the input. `strict` fails the whole read on the
// first malformed or limit-violating graph (the legacy behaviour); otherwise
// such graphs are quarantined and ingestion continues. `memory` is charged
// per committed graph: a refused charge stops ingestion with the graphs
// read so far (see IngestReport::stopped_early).
struct IngestOptions {
  ParseLimits limits;
  bool strict = false;
  MemoryBudget memory;
};

// What ingestion did: graphs kept, graphs quarantined (per reason, with
// their input-order indices), and how it ended. `quarantine_digest` is a
// stable hash of the quarantined (index, reason) set — 0 when nothing was
// quarantined — which callers fold into the checkpoint config fingerprint so
// a resume against a differently-quarantined database is rejected instead of
// silently mis-indexing cluster assignments.
struct IngestReport {
  size_t graphs_ingested = 0;
  size_t graphs_quarantined = 0;
  size_t lines_read = 0;

  // reason -> number of quarantined records with that reason.
  std::vector<std::pair<std::string, size_t>> quarantine_reasons;
  // Input-order indices of quarantined graphs (capped at kMaxRecordedIndices
  // entries; the digest always covers all of them).
  std::vector<size_t> quarantined_indices;
  uint64_t quarantine_digest = 0;

  // Ingestion ended before the input did: max_graphs reached or the memory
  // budget refused a charge. The graphs read so far are still returned.
  bool stopped_early = false;
  std::string stop_reason;

  // Memory accounting of the parse (tracked through IngestOptions::memory).
  size_t mem_peak_bytes = 0;
  bool mem_breached = false;
  ResourceError resource_error;  // meaningful when mem_breached

  static constexpr size_t kMaxRecordedIndices = 1024;

  // One-line human summary ("ingested 480 graphs, quarantined 3 (edge limit
  // exceeded: 2, NUL byte in record: 1)").
  std::string Summary() const;
};

// Parses a database from `in` under `options`. Returns std::nullopt only on
// a strict-mode violation or an unreadable stream (when `error` is non-null
// it receives the line, graph index, and reason); in quarantine mode the
// read always yields a database — possibly empty — and `report` (optional)
// receives the full ingestion accounting.
std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          const IngestOptions& options,
                                          IngestReport* report = nullptr,
                                          ParseError* error = nullptr);

// Convenience wrapper that reads from `path` under `options`.
std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  const IngestOptions& options,
                                                  IngestReport* report = nullptr,
                                                  ParseError* error = nullptr);

// Legacy strict readers (default limits, no quarantine): malformed input
// (negative ids, dangling edge endpoints, duplicate edges) fails the read;
// when `error` is non-null it receives the first failure.
std::optional<GraphDatabase> ReadDatabase(std::istream& in,
                                          ParseError* error = nullptr);
std::optional<GraphDatabase> ReadDatabaseFromFile(const std::string& path,
                                                  ParseError* error = nullptr);

}  // namespace catapult

#endif  // CATAPULT_GRAPH_IO_H_
