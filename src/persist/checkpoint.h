#ifndef CATAPULT_PERSIST_CHECKPOINT_H_
#define CATAPULT_PERSIST_CHECKPOINT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/graph/graph_database.h"
#include "src/mining/subtree_miner.h"
#include "src/persist/record_io.h"
#include "src/util/rng.h"

// Crash-safe checkpointing of the Catapult pipeline (DESIGN.md Section 8).
// Each phase's artifacts are written as versioned, checksummed record files
// (record_io.h) via the atomic temp + fsync + rename protocol, and a
// manifest — always written *after* the artifact it names — records which
// phases are durable. Recovery walks the phase chain clustering -> CSGs ->
// selection and stops at the first invalid link (the recovery ladder):
// a corrupt selection checkpoint resumes from the CSGs, corrupt CSGs resume
// from the clusters, and a corrupt manifest or clustering checkpoint cold-
// starts. Every decision is surfaced as a CheckpointEvent, never an abort.

namespace catapult {

// One checkpoint/recovery decision, surfaced in ExecutionReport and the CLI
// degradation summary.
struct CheckpointEvent {
  enum class Kind {
    kPhaseCheckpointed,    // phase artifact + manifest made durable
    kCheckpointWriteFailed,  // write error; the run continues unprotected
    kCheckpointSkipped,    // phase was partial (deadline); not made durable
    kCheckpointRejected,   // validation failed; reason in `detail`
    kResumedFromPhase,     // phase artifact restored instead of recomputed
    kColdStart,            // nothing usable; recomputing from scratch
  };

  Kind kind = Kind::kColdStart;
  std::string phase;   // "clustering", "csgs", "selection", or "manifest"
  std::string detail;  // rejection reason, write error, counts, ...
};

// Human-readable one-line rendering ("checkpoint rejected [csgs]: payload
// checksum mismatch").
std::string ToString(const CheckpointEvent& event);

// Durable state of the clustering phase: the cluster assignment, the mined
// feature subtrees, and the rng stream position at the end of the phase (so
// later phases consume the stream exactly as the original run did). Only
// fully completed phases are checkpointed — a deadline-degraded phase is
// re-run on resume rather than frozen below its potential, which keeps this
// artifact free of partial-result flags.
struct ClusteringArtifact {
  std::vector<std::vector<GraphId>> clusters;
  std::vector<FrequentSubtree> features;
  RngState rng_after;
};

// Durable state of the CSG generation phase. CSG folding consumes no
// randomness, so `rng_after` equals the clustering artifact's; it is stored
// anyway so each artifact is independently sufficient to resume from.
struct CsgArtifact {
  std::vector<ClusterSummaryGraph> csgs;
  RngState rng_after;
};

// Payload decoders behind the recovery ladder. Each parses one phase's raw
// record payload (already stripped of the record framing by record_io) and
// cross-checks it against the live run; the return value is empty on success
// and the rejection reason otherwise. They must be total: any byte string —
// including adversarial ones — yields a clean reject, never a crash or a
// CATAPULT_CHECK. The fuzz targets under fuzz/ drive them directly, which is
// why they are exposed here rather than kept file-local.
std::string DecodeClusteringPayload(const std::string& payload,
                                    const GraphDatabase& db,
                                    ClusteringArtifact* artifact);
std::string DecodeCsgPayload(const std::string& payload,
                             const std::vector<std::vector<GraphId>>& clusters,
                             CsgArtifact* artifact);
std::string DecodeSelectionPayload(
    const std::string& payload,
    const std::vector<std::vector<GraphId>>& clusters,
    const PatternBudget& budget, SelectorCheckpointState* state);

// Reads and writes the checkpoint files of one pipeline run in one
// directory. All writes are atomic and fsynced; all reads are validated
// (magic, version, checksum, config fingerprint) before use. A store is
// bound to the config fingerprint of its run: checkpoints written under a
// different database or configuration are rejected on read, not silently
// reused.
class CheckpointStore {
 public:
  // `directory` is created (recursively) on the first write if absent.
  CheckpointStore(std::string directory, uint64_t config_fingerprint);

  // Persist one phase's artifacts and update the manifest. Each returns an
  // empty string on success, else a descriptive error; a failed write
  // leaves any previous checkpoint of that phase intact, and the caller is
  // expected to log the error and continue the run unprotected.
  std::string SaveClustering(const ClusteringArtifact& artifact);
  std::string SaveCsgs(const CsgArtifact& artifact);
  std::string SaveSelection(const SelectorCheckpointState& state);

  // What Recover() could restore. Later phases are only present when every
  // earlier phase validated (the ladder never resumes selection on top of
  // recomputed-and-possibly-different CSGs).
  struct Recovery {
    std::optional<ClusteringArtifact> clustering;
    std::optional<CsgArtifact> csgs;
    std::optional<SelectorCheckpointState> selection;
    std::vector<CheckpointEvent> events;
  };

  // Validates the manifest and each phase checkpoint against `db` and
  // `budget`, restoring the longest valid phase chain. Phases rejected
  // (with their reason) and the resulting decision are logged in
  // Recovery::events. Also primes the store's manifest state so subsequent
  // saves retain the accepted phases and drop the rejected ones.
  Recovery Recover(const GraphDatabase& db, const PatternBudget& budget);

  // Checkpoint file names within the directory.
  static std::string FileNameFor(persist::RecordType type);

  const std::string& directory() const { return directory_; }

 private:
  struct ManifestEntry {
    uint32_t payload_crc = 0;
    uint64_t payload_size = 0;
  };

  std::string PathFor(persist::RecordType type) const;
  // Writes `payload` as the record for `type`, then rewrites the manifest
  // (artifact first, manifest last).
  std::string SavePhase(persist::RecordType type, const std::string& payload);
  std::string WriteManifest();

  std::string directory_;
  uint64_t fingerprint_;
  // Phases currently named by the manifest, keyed by record type value.
  std::map<uint32_t, ManifestEntry> entries_;
};

}  // namespace catapult

#endif  // CATAPULT_PERSIST_CHECKPOINT_H_
