#include "src/persist/codec.h"

#include <algorithm>

namespace catapult::persist {

void EncodeGraph(const Graph& g, BinaryWriter& out) {
  out.PutU64(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) out.PutU32(g.VertexLabel(v));
  std::vector<Edge> edges = g.EdgeList();
  out.PutU64(edges.size());
  for (const Edge& e : edges) {
    out.PutU32(e.u);
    out.PutU32(e.v);
    out.PutU32(e.label);
  }
}

bool DecodeGraph(BinaryReader& in, Graph* g) {
  *g = Graph();
  uint64_t num_vertices = in.GetU64();
  for (uint64_t v = 0; v < num_vertices; ++v) {
    Label label = in.GetU32();
    if (!in.ok()) return false;
    g->AddVertex(label);
  }
  uint64_t num_edges = in.GetU64();
  for (uint64_t i = 0; i < num_edges; ++i) {
    VertexId u = in.GetU32();
    VertexId v = in.GetU32();
    Label label = in.GetU32();
    if (!in.ok() || u >= g->NumVertices() || v >= g->NumVertices() ||
        u == v || g->HasEdge(u, v)) {
      return false;
    }
    g->AddEdge(u, v, label);
  }
  return in.ok();
}

void EncodeRngState(const RngState& state, BinaryWriter& out) {
  for (uint64_t word : state.words) out.PutU64(word);
}

bool DecodeRngState(BinaryReader& in, RngState* state) {
  for (uint64_t& word : state->words) word = in.GetU64();
  return in.ok() && state->Valid();
}

void EncodeClusters(const std::vector<std::vector<GraphId>>& clusters,
                    BinaryWriter& out) {
  out.PutU64(clusters.size());
  for (const std::vector<GraphId>& cluster : clusters) {
    out.PutU64(cluster.size());
    for (GraphId id : cluster) out.PutU32(id);
  }
}

bool DecodeClusters(BinaryReader& in,
                    std::vector<std::vector<GraphId>>* clusters) {
  clusters->clear();
  uint64_t count = in.GetU64();
  for (uint64_t c = 0; c < count; ++c) {
    uint64_t size = in.GetU64();
    if (!in.ok()) return false;
    std::vector<GraphId> cluster;
    cluster.reserve(std::min<uint64_t>(size, 1 << 20));
    for (uint64_t i = 0; i < size; ++i) {
      cluster.push_back(in.GetU32());
      if (!in.ok()) return false;
    }
    clusters->push_back(std::move(cluster));
  }
  return in.ok();
}

void EncodeFeature(const FrequentSubtree& feature, BinaryWriter& out) {
  EncodeGraph(feature.tree, out);
  out.PutString(feature.canonical);
  out.PutBitset(feature.support);
  out.PutDouble(feature.frequency);
}

bool DecodeFeature(BinaryReader& in, FrequentSubtree* feature) {
  if (!DecodeGraph(in, &feature->tree)) return false;
  feature->canonical = in.GetString();
  feature->support = in.GetBitset();
  feature->frequency = in.GetDouble();
  return in.ok();
}

void EncodeCsg(const ClusterSummaryGraph& csg, BinaryWriter& out) {
  out.PutU64(csg.cluster_size());
  out.PutU64(csg.NumVertices());
  for (VertexId v = 0; v < csg.NumVertices(); ++v) {
    out.PutU32(csg.VertexLabel(v));
    out.PutBitset(csg.VertexSupport(v));
  }
  out.PutU64(csg.NumEdges());
  for (const ClusterSummaryGraph::CsgEdge& e : csg.edges()) {
    out.PutU32(e.u);
    out.PutU32(e.v);
    out.PutBitset(e.support);
  }
}

std::optional<ClusterSummaryGraph> DecodeCsg(BinaryReader& in) {
  uint64_t cluster_size = in.GetU64();
  uint64_t num_vertices = in.GetU64();
  std::vector<Label> labels;
  std::vector<DynamicBitset> supports;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    labels.push_back(in.GetU32());
    supports.push_back(in.GetBitset());
    if (!in.ok()) return std::nullopt;
  }
  uint64_t num_edges = in.GetU64();
  std::vector<ClusterSummaryGraph::CsgEdge> edges;
  for (uint64_t i = 0; i < num_edges; ++i) {
    ClusterSummaryGraph::CsgEdge e;
    e.u = in.GetU32();
    e.v = in.GetU32();
    e.support = in.GetBitset();
    if (!in.ok()) return std::nullopt;
    edges.push_back(std::move(e));
  }
  if (!in.ok()) return std::nullopt;
  return ClusterSummaryGraph::FromParts(cluster_size, std::move(labels),
                                        std::move(supports),
                                        std::move(edges));
}

void EncodePattern(const SelectedPattern& p, BinaryWriter& out) {
  EncodeGraph(p.graph, out);
  out.PutDouble(p.score);
  out.PutDouble(p.ccov);
  out.PutDouble(p.lcov);
  out.PutDouble(p.div);
  out.PutDouble(p.cog);
  out.PutU64(p.source_csg);
  out.PutU8(p.fallback ? 1 : 0);
}

bool DecodePattern(BinaryReader& in, SelectedPattern* p) {
  if (!DecodeGraph(in, &p->graph)) return false;
  p->score = in.GetDouble();
  p->ccov = in.GetDouble();
  p->lcov = in.GetDouble();
  p->div = in.GetDouble();
  p->cog = in.GetDouble();
  p->source_csg = in.GetU64();
  p->fallback = in.GetU8() != 0;
  return in.ok();
}

}  // namespace catapult::persist
