#ifndef CATAPULT_PERSIST_CODEC_H_
#define CATAPULT_PERSIST_CODEC_H_

#include <optional>
#include <vector>

#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/graph/graph_database.h"
#include "src/mining/subtree_miner.h"
#include "src/persist/record_io.h"
#include "src/util/rng.h"

// Domain-object encode/decode shared by every durable artifact: the phase
// checkpoints (checkpoint.cc) and the per-cluster shard artifacts of the
// sharded executor (src/dist/worker.cc). Encoders use only public
// accessors; decoders validate every structural invariant (index ranges,
// universe sizes, no duplicate edges) and report corruption by returning
// false/nullopt — a corrupt payload must never reach a CATAPULT_CHECK.
// Keeping one codec means a CSG checkpointed by a worker process is byte-
// identical to the same CSG checkpointed by an in-process run, which is
// what lets the chaos suite assert recovery down to checkpoint bytes.

namespace catapult::persist {

void EncodeGraph(const Graph& g, BinaryWriter& out);
bool DecodeGraph(BinaryReader& in, Graph* g);

void EncodeRngState(const RngState& state, BinaryWriter& out);
// Rejects the all-zero state (xoshiro's absorbing fixed point): it can
// never be produced by a healthy run, so it is treated as corruption.
bool DecodeRngState(BinaryReader& in, RngState* state);

void EncodeClusters(const std::vector<std::vector<GraphId>>& clusters,
                    BinaryWriter& out);
bool DecodeClusters(BinaryReader& in,
                    std::vector<std::vector<GraphId>>* clusters);

void EncodeFeature(const FrequentSubtree& feature, BinaryWriter& out);
bool DecodeFeature(BinaryReader& in, FrequentSubtree* feature);

void EncodeCsg(const ClusterSummaryGraph& csg, BinaryWriter& out);
std::optional<ClusterSummaryGraph> DecodeCsg(BinaryReader& in);

void EncodePattern(const SelectedPattern& p, BinaryWriter& out);
bool DecodePattern(BinaryReader& in, SelectedPattern* p);

}  // namespace catapult::persist

#endif  // CATAPULT_PERSIST_CODEC_H_
