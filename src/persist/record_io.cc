#include "src/persist/record_io.h"

#include <bit>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/atomic_file.h"

namespace catapult::persist {

namespace {

constexpr char kMagic[8] = {'C', 'A', 'T', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 40;
// Record payloads are deliberately small (checkpoints of clusters, CSGs and
// panels, not raw databases); a size field beyond this bound is treated as
// corruption instead of being handed to an allocator.
constexpr uint64_t kMaxPayloadSize = uint64_t{1} << 34;  // 16 GiB

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendLittleEndian(std::string& out, uint64_t value, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint64_t LoadLittleEndian(const char* data, size_t bytes) {
  uint64_t value = 0;
  for (size_t i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kManifest:
      return "manifest";
    case RecordType::kClustering:
      return "clustering";
    case RecordType::kCsgs:
      return "csgs";
    case RecordType::kSelection:
      return "selection";
    case RecordType::kShard:
      return "shard";
  }
  return "unknown";
}

void BinaryWriter::PutU32(uint32_t value) {
  AppendLittleEndian(buffer_, value, 4);
}

void BinaryWriter::PutU64(uint64_t value) {
  AppendLittleEndian(buffer_, value, 8);
}

void BinaryWriter::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void BinaryWriter::PutString(const std::string& value) {
  PutU64(value.size());
  buffer_.append(value);
}

void BinaryWriter::PutBitset(const DynamicBitset& bits) {
  PutU64(bits.size());
  std::vector<size_t> indices = bits.ToIndices();
  PutU64(indices.size());
  for (size_t i : indices) PutU64(i);
}

bool BinaryReader::Ensure(size_t bytes) {
  if (!ok_ || buffer_.size() - position_ < bytes) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t BinaryReader::GetU8() {
  if (!Ensure(1)) return 0;
  return static_cast<uint8_t>(buffer_[position_++]);
}

uint32_t BinaryReader::GetU32() {
  if (!Ensure(4)) return 0;
  uint32_t value =
      static_cast<uint32_t>(LoadLittleEndian(buffer_.data() + position_, 4));
  position_ += 4;
  return value;
}

uint64_t BinaryReader::GetU64() {
  if (!Ensure(8)) return 0;
  uint64_t value = LoadLittleEndian(buffer_.data() + position_, 8);
  position_ += 8;
  return value;
}

double BinaryReader::GetDouble() {
  return std::bit_cast<double>(GetU64());
}

std::string BinaryReader::GetString() {
  uint64_t size = GetU64();
  if (!Ensure(size)) return std::string();
  std::string value = buffer_.substr(position_, size);
  position_ += size;
  return value;
}

DynamicBitset BinaryReader::GetBitset() {
  uint64_t universe = GetU64();
  uint64_t count = GetU64();
  // Each index costs 8 payload bytes; an implausible count is corruption.
  if (!ok_ || universe > kMaxPayloadSize || count > universe ||
      !Ensure(count * 8)) {
    ok_ = false;
    return DynamicBitset();
  }
  DynamicBitset bits(universe);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t index = GetU64();
    if (index >= universe) {
      ok_ = false;
      return DynamicBitset();
    }
    bits.Set(index);
  }
  return bits;
}

std::string WriteRecordFile(const std::string& path, RecordType type,
                            uint64_t config_fingerprint,
                            const std::string& payload,
                            uint32_t* payload_crc) {
  std::string file;
  file.reserve(kHeaderSize + payload.size());
  file.append(kMagic, sizeof(kMagic));
  AppendLittleEndian(file, kFormatVersion, 4);
  AppendLittleEndian(file, static_cast<uint32_t>(type), 4);
  AppendLittleEndian(file, config_fingerprint, 8);
  AppendLittleEndian(file, payload.size(), 8);
  uint32_t crc = Crc32(payload.data(), payload.size());
  AppendLittleEndian(file, crc, 4);
  AppendLittleEndian(file, Crc32(file.data(), file.size()), 4);
  file.append(payload);
  if (payload_crc != nullptr) *payload_crc = crc;
  std::string error = AtomicWriteFile(path, file);
  if (error.empty()) {
    obs::Count(obs::Counter::kCheckpointRecordsWritten);
    obs::Count(obs::Counter::kCheckpointBytesWritten, file.size());
    obs::Observe(obs::Hist::kCheckpointRecordBytes, payload.size());
  }
  return error;
}

std::string DecodeRecordBytes(const std::string& file,
                              RecordType expected_type,
                              uint64_t expected_fingerprint,
                              std::string* payload, uint32_t* payload_crc) {
  payload->clear();
  if (file.size() < kHeaderSize) return "truncated header";
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return "bad magic";
  }
  uint32_t header_crc = static_cast<uint32_t>(
      LoadLittleEndian(file.data() + kHeaderSize - 4, 4));
  if (Crc32(file.data(), kHeaderSize - 4) != header_crc) {
    return "header checksum mismatch";
  }
  uint32_t version =
      static_cast<uint32_t>(LoadLittleEndian(file.data() + 8, 4));
  if (version != kFormatVersion) {
    return "unsupported format version " + std::to_string(version);
  }
  uint32_t type = static_cast<uint32_t>(LoadLittleEndian(file.data() + 12, 4));
  if (type != static_cast<uint32_t>(expected_type)) {
    return std::string("record type mismatch (expected ") +
           RecordTypeName(expected_type) + ")";
  }
  uint64_t fingerprint = LoadLittleEndian(file.data() + 16, 8);
  if (fingerprint != expected_fingerprint) {
    return "config fingerprint mismatch (checkpoint from a different "
           "database/configuration)";
  }
  uint64_t payload_size = LoadLittleEndian(file.data() + 24, 8);
  if (payload_size > kMaxPayloadSize ||
      payload_size != file.size() - kHeaderSize) {
    return "truncated payload";
  }
  uint32_t crc = static_cast<uint32_t>(LoadLittleEndian(file.data() + 32, 4));
  if (Crc32(file.data() + kHeaderSize, payload_size) != crc) {
    return "payload checksum mismatch";
  }
  *payload = file.substr(kHeaderSize);
  if (payload_crc != nullptr) *payload_crc = crc;
  return std::string();
}

std::string ReadRecordFile(const std::string& path, RecordType expected_type,
                           uint64_t expected_fingerprint, std::string* payload,
                           uint32_t* payload_crc) {
  payload->clear();
  std::string file;
  std::string io_error = ReadWholeFile(path, &file);
  if (!io_error.empty()) return io_error;
  std::string decode_error = DecodeRecordBytes(
      file, expected_type, expected_fingerprint, payload, payload_crc);
  if (decode_error.empty()) {
    obs::Count(obs::Counter::kCheckpointRecordsRead);
    obs::Count(obs::Counter::kCheckpointBytesRead, file.size());
  }
  return decode_error;
}

}  // namespace catapult::persist
