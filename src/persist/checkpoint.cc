#include "src/persist/checkpoint.h"

#include <cmath>
#include <filesystem>

#include "src/cluster/pipeline.h"
#include "src/persist/codec.h"
#include "src/persist/record_io.h"

namespace catapult {

using persist::BinaryReader;
using persist::BinaryWriter;
using persist::DecodeClusters;
using persist::DecodeCsg;
using persist::DecodeFeature;
using persist::DecodePattern;
using persist::DecodeRngState;
using persist::EncodeClusters;
using persist::EncodeCsg;
using persist::EncodeFeature;
using persist::EncodePattern;
using persist::EncodeRngState;
using persist::RecordType;

namespace {

// Phase payload layouts on top of the shared domain codec (codec.h). The
// decoders with semantic cross-checks live below, outside this namespace,
// so the fuzz targets can drive them.

std::string EncodeClusteringPayload(const ClusteringArtifact& artifact) {
  BinaryWriter out;
  EncodeClusters(artifact.clusters, out);
  out.PutU64(artifact.features.size());
  for (const FrequentSubtree& f : artifact.features) EncodeFeature(f, out);
  EncodeRngState(artifact.rng_after, out);
  return out.TakeBuffer();
}

std::string EncodeCsgPayload(const CsgArtifact& artifact) {
  BinaryWriter out;
  out.PutU64(artifact.csgs.size());
  for (const ClusterSummaryGraph& csg : artifact.csgs) EncodeCsg(csg, out);
  EncodeRngState(artifact.rng_after, out);
  return out.TakeBuffer();
}

std::string EncodeSelectionPayload(const SelectorCheckpointState& state) {
  BinaryWriter out;
  out.PutU64(state.patterns.size());
  for (const SelectedPattern& p : state.patterns) EncodePattern(p, out);
  out.PutU64(state.selected_per_size.size());
  for (size_t n : state.selected_per_size) out.PutU64(n);
  out.PutU64(state.cluster_weights.size());
  for (double w : state.cluster_weights) out.PutDouble(w);
  out.PutU64(state.edge_label_weights.size());
  for (const auto& [key, weight] : state.edge_label_weights) {
    out.PutU64(key);
    out.PutDouble(weight);
  }
  EncodeRngState(state.rng, out);
  return out.TakeBuffer();
}

}  // namespace

// --- payload decoding with semantic validation ----------------------------
//
// Each returns an empty string on success, else the rejection reason. The
// structural decode (bounds, ranges) and the semantic cross-checks against
// the live database/budget are both just "reasons" to recovery: either way
// the checkpoint is rejected and the ladder steps down. Public (declared in
// checkpoint.h) so the fuzz targets can drive them with arbitrary payloads.

std::string DecodeClusteringPayload(const std::string& payload,
                                    const GraphDatabase& db,
                                    ClusteringArtifact* artifact) {
  BinaryReader in(payload);
  if (!DecodeClusters(in, &artifact->clusters)) return "corrupt cluster list";
  uint64_t feature_count = in.GetU64();
  artifact->features.clear();
  for (uint64_t i = 0; i < feature_count; ++i) {
    FrequentSubtree feature;
    if (!DecodeFeature(in, &feature)) return "corrupt feature subtree";
    if (feature.support.size() != db.size()) {
      return "feature support universe does not match database";
    }
    artifact->features.push_back(std::move(feature));
  }
  if (!DecodeRngState(in, &artifact->rng_after)) return "corrupt rng state";
  if (!in.ok() || !in.AtEnd()) return "trailing or truncated payload";
  if (!ValidateClusterAssignment(artifact->clusters, db.size())) {
    return "cluster assignment is not a valid partition of the database";
  }
  return std::string();
}

std::string DecodeCsgPayload(const std::string& payload,
                             const std::vector<std::vector<GraphId>>& clusters,
                             CsgArtifact* artifact) {
  BinaryReader in(payload);
  uint64_t count = in.GetU64();
  artifact->csgs.clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::optional<ClusterSummaryGraph> csg = DecodeCsg(in);
    if (!csg.has_value()) return "corrupt cluster summary graph";
    artifact->csgs.push_back(std::move(*csg));
  }
  if (!DecodeRngState(in, &artifact->rng_after)) return "corrupt rng state";
  if (!in.ok() || !in.AtEnd()) return "trailing or truncated payload";
  if (artifact->csgs.size() != clusters.size()) {
    return "CSG count does not match cluster count";
  }
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (artifact->csgs[i].cluster_size() != clusters[i].size()) {
      return "CSG member count does not match its cluster";
    }
  }
  return std::string();
}

std::string DecodeSelectionPayload(
    const std::string& payload,
    const std::vector<std::vector<GraphId>>& clusters,
    const PatternBudget& budget, SelectorCheckpointState* state) {
  BinaryReader in(payload);
  uint64_t pattern_count = in.GetU64();
  state->patterns.clear();
  for (uint64_t i = 0; i < pattern_count; ++i) {
    SelectedPattern p;
    if (!DecodePattern(in, &p)) return "corrupt selected pattern";
    state->patterns.push_back(std::move(p));
  }
  uint64_t size_count = in.GetU64();
  state->selected_per_size.clear();
  for (uint64_t i = 0; i < size_count; ++i) {
    state->selected_per_size.push_back(in.GetU64());
  }
  uint64_t weight_count = in.GetU64();
  state->cluster_weights.clear();
  for (uint64_t i = 0; i < weight_count; ++i) {
    state->cluster_weights.push_back(in.GetDouble());
  }
  uint64_t elw_count = in.GetU64();
  state->edge_label_weights.clear();
  for (uint64_t i = 0; i < elw_count; ++i) {
    EdgeLabelKey key = in.GetU64();
    double weight = in.GetDouble();
    state->edge_label_weights.emplace_back(key, weight);
  }
  if (!DecodeRngState(in, &state->rng)) return "corrupt rng state";
  if (!in.ok() || !in.AtEnd()) return "trailing or truncated payload";

  if (state->selected_per_size.size() != budget.NumSizes()) {
    return "per-size tally does not match the pattern budget";
  }
  if (state->cluster_weights.size() != clusters.size()) {
    return "cluster weight count does not match cluster count";
  }
  if (state->patterns.size() > budget.gamma) {
    return "more patterns than the budget allows";
  }
  size_t tallied = 0;
  for (size_t n : state->selected_per_size) tallied += n;
  if (tallied != state->patterns.size()) {
    return "per-size tally does not match the pattern count";
  }
  for (const SelectedPattern& p : state->patterns) {
    size_t size = p.graph.NumEdges();
    if (size < budget.eta_min || size > budget.eta_max) {
      return "pattern size outside the budget range";
    }
  }
  for (double w : state->cluster_weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) return "invalid cluster weight";
  }
  for (const auto& [key, weight] : state->edge_label_weights) {
    if (!(weight >= 0.0) || !std::isfinite(weight)) {
      return "invalid edge label weight";
    }
  }
  return std::string();
}

std::string ToString(const CheckpointEvent& event) {
  const char* kind = "";
  switch (event.kind) {
    case CheckpointEvent::Kind::kPhaseCheckpointed:
      kind = "phase checkpointed";
      break;
    case CheckpointEvent::Kind::kCheckpointWriteFailed:
      kind = "checkpoint write failed";
      break;
    case CheckpointEvent::Kind::kCheckpointSkipped:
      kind = "checkpoint skipped";
      break;
    case CheckpointEvent::Kind::kCheckpointRejected:
      kind = "checkpoint rejected";
      break;
    case CheckpointEvent::Kind::kResumedFromPhase:
      kind = "resumed from checkpoint";
      break;
    case CheckpointEvent::Kind::kColdStart:
      kind = "cold start";
      break;
  }
  std::string text = kind;
  if (!event.phase.empty()) text += " [" + event.phase + "]";
  if (!event.detail.empty()) text += ": " + event.detail;
  return text;
}

CheckpointStore::CheckpointStore(std::string directory,
                                 uint64_t config_fingerprint)
    : directory_(std::move(directory)), fingerprint_(config_fingerprint) {}

std::string CheckpointStore::FileNameFor(RecordType type) {
  switch (type) {
    case RecordType::kManifest:
      return "MANIFEST";
    case RecordType::kClustering:
      return "clustering.ckpt";
    case RecordType::kCsgs:
      return "csgs.ckpt";
    case RecordType::kSelection:
      return "selection.ckpt";
    case RecordType::kShard:
      // Shard records are per-cluster files under shards/ (src/dist/), not
      // singletons of the run directory; this name is never used for them.
      return "shard.ckpt";
  }
  return "unknown.ckpt";
}

std::string CheckpointStore::PathFor(RecordType type) const {
  return directory_ + "/" + FileNameFor(type);
}

std::string CheckpointStore::WriteManifest() {
  BinaryWriter out;
  out.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [type, entry] : entries_) {
    out.PutU32(type);
    out.PutU32(entry.payload_crc);
    out.PutU64(entry.payload_size);
  }
  return persist::WriteRecordFile(PathFor(RecordType::kManifest),
                                  RecordType::kManifest, fingerprint_,
                                  out.buffer());
}

std::string CheckpointStore::SavePhase(RecordType type,
                                       const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) return "cannot create " + directory_ + ": " + ec.message();
  uint32_t crc = 0;
  std::string error =
      persist::WriteRecordFile(PathFor(type), type, fingerprint_, payload,
                               &crc);
  if (!error.empty()) return error;
  // Manifest last: a crash between the two writes loses only this phase.
  entries_[static_cast<uint32_t>(type)] = {crc, payload.size()};
  return WriteManifest();
}

std::string CheckpointStore::SaveClustering(
    const ClusteringArtifact& artifact) {
  return SavePhase(RecordType::kClustering,
                   EncodeClusteringPayload(artifact));
}

std::string CheckpointStore::SaveCsgs(const CsgArtifact& artifact) {
  return SavePhase(RecordType::kCsgs, EncodeCsgPayload(artifact));
}

std::string CheckpointStore::SaveSelection(
    const SelectorCheckpointState& state) {
  return SavePhase(RecordType::kSelection, EncodeSelectionPayload(state));
}

CheckpointStore::Recovery CheckpointStore::Recover(
    const GraphDatabase& db, const PatternBudget& budget) {
  Recovery recovery;
  entries_.clear();

  auto Reject = [&](const std::string& phase, const std::string& reason) {
    recovery.events.push_back({CheckpointEvent::Kind::kCheckpointRejected,
                               phase, reason});
  };

  // 1. The manifest gates everything: no valid manifest, no recovery.
  std::string manifest_payload;
  std::string error =
      persist::ReadRecordFile(PathFor(RecordType::kManifest),
                              RecordType::kManifest, fingerprint_,
                              &manifest_payload);
  std::map<uint32_t, ManifestEntry> manifest;
  if (error.empty()) {
    BinaryReader in(manifest_payload);
    uint32_t count = in.GetU32();
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t type = in.GetU32();
      ManifestEntry entry;
      entry.payload_crc = in.GetU32();
      entry.payload_size = in.GetU64();
      manifest[type] = entry;
    }
    if (!in.ok() || !in.AtEnd()) {
      error = "corrupt manifest payload";
      manifest.clear();
    }
  }
  if (!error.empty()) {
    Reject("manifest", error);
    recovery.events.push_back({CheckpointEvent::Kind::kColdStart, "",
                               "no usable manifest"});
    return recovery;
  }

  // 2. Walk the phase chain; the first invalid link ends the ladder, and
  // everything beyond it is discarded (later phases were computed on top of
  // the earlier ones, so they cannot outlive them).
  auto LoadPhase = [&](RecordType type, std::string* payload) -> std::string {
    auto it = manifest.find(static_cast<uint32_t>(type));
    if (it == manifest.end()) return "not recorded in manifest";
    uint32_t crc = 0;
    std::string read_error = persist::ReadRecordFile(
        PathFor(type), type, fingerprint_, payload, &crc);
    if (!read_error.empty()) return read_error;
    if (crc != it->second.payload_crc ||
        payload->size() != it->second.payload_size) {
      return "artifact does not match the manifest (stale file?)";
    }
    return std::string();
  };

  std::string payload;
  error = LoadPhase(RecordType::kClustering, &payload);
  if (error.empty()) {
    ClusteringArtifact artifact;
    error = DecodeClusteringPayload(payload, db, &artifact);
    if (error.empty()) recovery.clustering = std::move(artifact);
  }
  if (!error.empty()) {
    if (error != "not recorded in manifest") Reject("clustering", error);
    recovery.events.push_back({CheckpointEvent::Kind::kColdStart, "",
                               "no usable clustering checkpoint"});
    return recovery;
  }
  entries_[static_cast<uint32_t>(RecordType::kClustering)] =
      manifest[static_cast<uint32_t>(RecordType::kClustering)];

  error = LoadPhase(RecordType::kCsgs, &payload);
  if (error.empty()) {
    CsgArtifact artifact;
    error = DecodeCsgPayload(payload, recovery.clustering->clusters,
                             &artifact);
    if (error.empty()) recovery.csgs = std::move(artifact);
  }
  if (!error.empty()) {
    if (error != "not recorded in manifest") Reject("csgs", error);
    return recovery;  // resume from clusters
  }
  entries_[static_cast<uint32_t>(RecordType::kCsgs)] =
      manifest[static_cast<uint32_t>(RecordType::kCsgs)];

  error = LoadPhase(RecordType::kSelection, &payload);
  if (error.empty()) {
    SelectorCheckpointState state;
    error = DecodeSelectionPayload(payload, recovery.clustering->clusters,
                                   budget, &state);
    if (error.empty()) recovery.selection = std::move(state);
  }
  if (!error.empty()) {
    if (error != "not recorded in manifest") Reject("selection", error);
    return recovery;  // resume from CSGs
  }
  entries_[static_cast<uint32_t>(RecordType::kSelection)] =
      manifest[static_cast<uint32_t>(RecordType::kSelection)];
  return recovery;
}

}  // namespace catapult
