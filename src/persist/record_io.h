#ifndef CATAPULT_PERSIST_RECORD_IO_H_
#define CATAPULT_PERSIST_RECORD_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bitset.h"

// Durable record files: the on-disk unit of the checkpoint store
// (DESIGN.md Section 8). Every artifact is one self-validating file:
//
//   offset  size  field
//        0     8  magic "CATCKPT1"
//        8     4  format version (little-endian u32, currently 1)
//       12     4  record type (RecordType)
//       16     8  config fingerprint of the producing run
//       24     8  payload size in bytes
//       32     4  CRC32 of the payload
//       36     4  CRC32 of the 36 header bytes above
//       40     -  payload
//
// Readers validate magic, header checksum, version, type, fingerprint,
// payload size, and payload checksum, in that order, and report the first
// mismatch as a human-readable reason — a corrupt checkpoint is always a
// logged decision, never an abort. All integers are little-endian
// regardless of host byte order.

namespace catapult::persist {

// CRC32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(const void* data, size_t size);

// What a record file holds. Values are part of the on-disk format; never
// renumber.
enum class RecordType : uint32_t {
  kManifest = 1,
  kClustering = 2,
  kCsgs = 3,
  kSelection = 4,
  // One coarse cluster's fine clusters + CSGs, written by a shard worker
  // into the run's shard-scoped checkpoint namespace (src/dist/).
  kShard = 5,
};

// The printable name of a record type ("manifest", "clustering", ...).
const char* RecordTypeName(RecordType type);

// Append-only little-endian encoder for record payloads.
class BinaryWriter {
 public:
  void PutU8(uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  // Doubles are stored as their IEEE-754 bit pattern, so values (pattern
  // scores, decayed weights) round-trip bit-exactly.
  void PutDouble(double value);
  void PutString(const std::string& value);   // u64 length + bytes
  void PutBitset(const DynamicBitset& bits);  // u64 universe + set indices

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked decoder. Reads past the end (or any malformed field) set a
// sticky failure flag and yield zero values; callers check ok() once at the
// end instead of after every field, so corrupt payloads can never read out
// of bounds or abort.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buffer) : buffer_(buffer) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string GetString();
  DynamicBitset GetBitset();

  // True while every read so far was in bounds and well-formed.
  bool ok() const { return ok_; }
  // True when the whole buffer was consumed (trailing garbage = corrupt).
  bool AtEnd() const { return position_ == buffer_.size(); }
  void MarkCorrupt() { ok_ = false; }

 private:
  bool Ensure(size_t bytes);

  const std::string& buffer_;
  size_t position_ = 0;
  bool ok_ = true;
};

// Atomically writes `payload` to `path` as a record of `type`. Returns an
// empty string on success, else a descriptive error. `payload_crc`
// (optional) receives the payload checksum for manifest bookkeeping.
std::string WriteRecordFile(const std::string& path, RecordType type,
                            uint64_t config_fingerprint,
                            const std::string& payload,
                            uint32_t* payload_crc = nullptr);

// Validates an in-memory record image (header + payload) exactly as
// ReadRecordFile does, without touching the filesystem. This is the pure
// core of record reading — the fuzz targets feed it arbitrary byte strings
// directly. Same contract as ReadRecordFile minus the I/O errors.
std::string DecodeRecordBytes(const std::string& file,
                              RecordType expected_type,
                              uint64_t expected_fingerprint,
                              std::string* payload,
                              uint32_t* payload_crc = nullptr);

// Reads and validates the record at `path`. On success returns an empty
// string and fills `payload` (and optionally `payload_crc`); on any
// validation failure returns the reason ("bad magic", "checksum mismatch",
// "config fingerprint mismatch (stale checkpoint?)", "truncated payload",
// ...) and leaves `payload` empty.
std::string ReadRecordFile(const std::string& path, RecordType expected_type,
                           uint64_t expected_fingerprint, std::string* payload,
                           uint32_t* payload_crc = nullptr);

}  // namespace catapult::persist

#endif  // CATAPULT_PERSIST_RECORD_IO_H_
