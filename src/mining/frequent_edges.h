#ifndef CATAPULT_MINING_FREQUENT_EDGES_H_
#define CATAPULT_MINING_FREQUENT_EDGES_H_

#include <vector>

#include "src/graph/graph_database.h"

namespace catapult {

// A labelled edge ranked by the number of data graphs containing it.
struct RankedEdge {
  EdgeLabelKey key = 0;
  size_t support = 0;  // |L(e, D)|
};

// Labelled edges of `db` in decreasing support order (ties broken by key for
// determinism). Exp 5 compares Catapult's pattern set against the top-|P|
// entries of this ranking.
std::vector<RankedEdge> RankEdgesBySupport(const GraphDatabase& db);

// Materialises the top-`k` ranked edges as 1-edge pattern graphs.
std::vector<Graph> TopFrequentEdgePatterns(const GraphDatabase& db, size_t k);

// Top-m basic patterns for the GUI (Section 3.2 remark): single labelled
// edges and labelled 2-paths ranked by support. Sizes 1-2 are below eta_min
// and are exposed separately from canned patterns.
std::vector<Graph> TopBasicPatterns(const GraphDatabase& db, size_t m);

}  // namespace catapult

#endif  // CATAPULT_MINING_FREQUENT_EDGES_H_
