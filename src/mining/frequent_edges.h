#ifndef CATAPULT_MINING_FREQUENT_EDGES_H_
#define CATAPULT_MINING_FREQUENT_EDGES_H_

#include <vector>

#include "src/graph/graph_database.h"

namespace catapult {

// A labelled edge ranked by the number of data graphs containing it.
struct RankedEdge {
  EdgeLabelKey key = 0;
  size_t support = 0;  // |L(e, D)|
};

// Labelled edges of `db` in decreasing support order (ties broken by key for
// determinism). Exp 5 compares Catapult's pattern set against the top-|P|
// entries of this ranking.
std::vector<RankedEdge> RankEdgesBySupport(const GraphDatabase& db);

// Materialises the top-`k` ranked edges as 1-edge pattern graphs.
std::vector<Graph> TopFrequentEdgePatterns(const GraphDatabase& db, size_t k);

// Top-m basic patterns for the GUI (Section 3.2 remark): single labelled
// edges and labelled 2-paths ranked by support. Sizes 1-2 are below eta_min
// and are exposed separately from canned patterns.
std::vector<Graph> TopBasicPatterns(const GraphDatabase& db, size_t m);

// Degradation fallback for deadline-cut selection: up to `count` distinct
// path patterns of exactly `num_edges` edges assembled from frequent
// labelled edges. Pattern i is seeded with the i-th ranked edge and grown
// one edge at a time from an endpoint, always picking the most frequent
// edge key compatible with that endpoint's label. No isomorphism or
// coverage tests: O(ranking * num_edges) per pattern, deterministic, and
// every returned pattern has exactly `num_edges` edges (so it fits any
// [eta_min, eta_max] window that contains that size). Duplicate paths from
// different seeds are removed.
std::vector<Graph> FrequentEdgePathPatterns(const GraphDatabase& db,
                                            size_t num_edges, size_t count);

}  // namespace catapult

#endif  // CATAPULT_MINING_FREQUENT_EDGES_H_
