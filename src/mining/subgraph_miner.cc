#include "src/mining/subgraph_miner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/iso/vf2.h"
#include "src/util/check.h"

namespace catapult {

namespace {

// Deduplication table keyed by isomorphism-invariant fingerprints, with
// exact isomorphism checks within buckets.
class IsoDeduper {
 public:
  // Returns true if `g` was not seen before (and records it).
  bool Insert(const Graph& g) {
    uint64_t fp = GraphFingerprint(g);
    auto& bucket = buckets_[fp];
    for (const Graph& seen : bucket) {
      if (AreIsomorphic(seen, g)) return false;
    }
    bucket.push_back(g);
    return true;
  }

 private:
  std::unordered_map<uint64_t, std::vector<Graph>> buckets_;
};

}  // namespace

std::vector<FrequentSubgraph> MineFrequentSubgraphs(
    const GraphDatabase& db, const SubgraphMinerOptions& options) {
  std::vector<FrequentSubgraph> results;
  const size_t universe = db.size();
  if (universe == 0) return results;
  const size_t min_count = static_cast<size_t>(
      std::max(1.0, options.min_support * static_cast<double>(universe)));

  // Level 1: frequent labelled edges.
  std::unordered_map<EdgeLabelKey, DynamicBitset> edge_support;
  for (GraphId i = 0; i < universe; ++i) {
    const Graph& g = db.graph(i);
    std::unordered_set<EdgeLabelKey> seen;
    for (const Edge& e : g.EdgeList()) seen.insert(g.EdgeKey(e.u, e.v));
    for (EdgeLabelKey key : seen) {
      auto [it, inserted] =
          edge_support.try_emplace(key, DynamicBitset(universe));
      it->second.Set(i);
    }
  }
  std::unordered_map<Label, size_t> vertex_label_count;
  for (GraphId i = 0; i < universe; ++i) {
    const Graph& g = db.graph(i);
    std::unordered_set<Label> seen;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      seen.insert(g.VertexLabel(v));
    }
    for (Label l : seen) ++vertex_label_count[l];
  }
  std::vector<Label> frequent_labels;
  for (const auto& [label, count] : vertex_label_count) {
    if (count >= min_count) frequent_labels.push_back(label);
  }
  std::sort(frequent_labels.begin(), frequent_labels.end());

  std::vector<FrequentSubgraph> frontier;
  for (const auto& [key, support] : edge_support) {
    if (support.Count() < min_count) continue;
    Graph g;
    VertexId a = g.AddVertex(static_cast<Label>(key >> 32));
    VertexId b = g.AddVertex(static_cast<Label>(key & 0xFFFFFFFFULL));
    g.AddEdge(a, b);
    FrequentSubgraph fs;
    fs.graph = std::move(g);
    fs.frequency =
        static_cast<double>(support.Count()) / static_cast<double>(universe);
    fs.support = support;
    frontier.push_back(std::move(fs));
  }

  while (!frontier.empty()) {
    for (const FrequentSubgraph& fs : frontier) {
      if (fs.graph.NumEdges() >= options.min_edges) results.push_back(fs);
    }
    if (frontier.front().graph.NumEdges() >= options.max_edges) break;

    IsoDeduper deduper;
    struct Candidate {
      Graph graph;
      const DynamicBitset* parent_support;
    };
    std::vector<Candidate> candidates;
    std::vector<size_t> parent_order(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) parent_order[i] = i;
    std::stable_sort(parent_order.begin(), parent_order.end(),
                     [&](size_t l, size_t r) {
                       return frontier[l].frequency > frontier[r].frequency;
                     });
    for (size_t pi : parent_order) {
      const FrequentSubgraph& parent = frontier[pi];
      if (options.max_candidates_per_level != 0 &&
          candidates.size() >= options.max_candidates_per_level) {
        break;
      }
      // (a) Attach a new labelled leaf anywhere.
      for (VertexId attach = 0; attach < parent.graph.NumVertices();
           ++attach) {
        for (Label label : frequent_labels) {
          Graph extended = parent.graph;
          VertexId leaf = extended.AddVertex(label);
          extended.AddEdge(attach, leaf);
          if (deduper.Insert(extended)) {
            candidates.push_back({std::move(extended), &parent.support});
          }
        }
      }
      // (b) Close a cycle between two existing non-adjacent vertices.
      for (VertexId u = 0; u < parent.graph.NumVertices(); ++u) {
        for (VertexId v = u + 1; v < parent.graph.NumVertices(); ++v) {
          if (parent.graph.HasEdge(u, v)) continue;
          Graph extended = parent.graph;
          extended.AddEdge(u, v);
          if (deduper.Insert(extended)) {
            candidates.push_back({std::move(extended), &parent.support});
          }
        }
      }
    }

    std::vector<FrequentSubgraph> next;
    for (Candidate& c : candidates) {
      DynamicBitset support(universe);
      for (size_t i = 0; i < universe; ++i) {
        if (!c.parent_support->Test(i)) continue;
        if (ContainsSubgraph(c.graph, db.graph(static_cast<GraphId>(i)))) {
          support.Set(i);
        }
      }
      if (support.Count() < min_count) continue;
      FrequentSubgraph fs;
      fs.frequency = static_cast<double>(support.Count()) /
                     static_cast<double>(universe);
      fs.graph = std::move(c.graph);
      fs.support = std::move(support);
      next.push_back(std::move(fs));
    }
    frontier = std::move(next);
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const FrequentSubgraph& a, const FrequentSubgraph& b) {
                     return a.frequency > b.frequency;
                   });
  if (options.max_results != 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

std::vector<Graph> FrequentSubgraphPatternSet(
    const std::vector<FrequentSubgraph>& mined, size_t total,
    size_t min_edges, size_t max_edges) {
  CATAPULT_CHECK(max_edges >= min_edges);
  size_t per_size = std::max<size_t>(
      1, total / (max_edges - min_edges + 1));
  std::unordered_map<size_t, size_t> taken;  // size -> count
  std::vector<Graph> patterns;
  for (const FrequentSubgraph& fs : mined) {  // already most-frequent first
    size_t size = fs.graph.NumEdges();
    if (size < min_edges || size > max_edges) continue;
    if (taken[size] >= per_size) continue;
    if (patterns.size() >= total) break;
    patterns.push_back(fs.graph);
    ++taken[size];
  }
  // If some sizes were underpopulated, backfill with the most frequent
  // remaining patterns regardless of per-size caps.
  if (patterns.size() < total) {
    for (const FrequentSubgraph& fs : mined) {
      if (patterns.size() >= total) break;
      size_t size = fs.graph.NumEdges();
      if (size < min_edges || size > max_edges) continue;
      bool already = false;
      for (const Graph& p : patterns) {
        if (p.NumEdges() == fs.graph.NumEdges() &&
            AreIsomorphic(p, fs.graph)) {
          already = true;
          break;
        }
      }
      if (!already) patterns.push_back(fs.graph);
    }
  }
  return patterns;
}

}  // namespace catapult
