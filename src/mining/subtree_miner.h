#ifndef CATAPULT_MINING_SUBTREE_MINER_H_
#define CATAPULT_MINING_SUBTREE_MINER_H_

#include <string>
#include <vector>

#include "src/graph/graph_database.h"
#include "src/util/bitset.h"
#include "src/util/deadline.h"

namespace catapult {

// Options for frequent free-tree mining (Section 4.1; Chi et al. style
// pattern growth with canonical-form deduplication).
struct SubtreeMinerOptions {
  // Minimum relative support (fraction of graphs containing the subtree).
  double min_support = 0.1;

  // Maximum subtree size in edges. Frequent subtrees are clustering
  // features; small trees already capture the crucial topology (paper
  // footnote 8) while keeping mining cheap.
  size_t max_edges = 3;

  // Hard cap on the number of frequent subtrees returned (most frequent
  // kept; 0 = unlimited).
  size_t max_results = 0;

  // Cap on candidates expanded per level, to bound worst-case mining time
  // (0 = unlimited). Candidates with the highest parent support are kept.
  size_t max_candidates_per_level = 5000;
};

// A mined frequent subtree with its support set.
struct FrequentSubtree {
  Graph tree;
  std::string canonical;   // CanonicalTreeString(tree)
  DynamicBitset support;   // bit i set iff graph i contains the subtree
  double frequency = 0.0;  // |support| / universe size
};

// Mines frequent free subtrees of the graphs in `db` whose ids are listed in
// `graph_ids` (support is measured against graph_ids.size()). Pattern
// growth: frequent labelled edges seed level 1; each level-k tree is
// extended by attaching one new labelled leaf at every position, candidates
// are deduplicated by canonical string, and support is counted by subgraph
// isomorphism restricted to the parent's support set (anti-monotonicity).
std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SubtreeMinerOptions& options);

// Deadline-aware variant: support counting polls `ctx` (failpoint site
// "miner.count_support") and, on expiry/cancellation, mining stops after the
// current candidate and returns the levels completed so far — an anytime
// result, since every returned subtree carries its exact support. `complete`
// (optional) reports whether mining ran to natural completion.
std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SubtreeMinerOptions& options, const RunContext& ctx,
    bool* complete = nullptr);

// Convenience overload over the whole database.
std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const SubtreeMinerOptions& options);

// Recounts the support of `tree` over the full database (used after eager
// sampling: mine with a lowered threshold on the sample, then verify with
// the original threshold on D; Section 4.3).
DynamicBitset CountSupport(const Graph& tree, const GraphDatabase& db);

}  // namespace catapult

#endif  // CATAPULT_MINING_SUBTREE_MINER_H_
