#include "src/mining/frequent_edges.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "src/iso/vf2.h"

namespace catapult {

std::vector<RankedEdge> RankEdgesBySupport(const GraphDatabase& db) {
  auto support_map = db.EdgeLabelSupport();
  std::vector<RankedEdge> ranked;
  ranked.reserve(support_map.size());
  for (const auto& [key, support] : support_map) {
    ranked.push_back({key, support});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedEdge& a, const RankedEdge& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.key < b.key;
            });
  return ranked;
}

std::vector<Graph> TopFrequentEdgePatterns(const GraphDatabase& db,
                                           size_t k) {
  std::vector<Graph> patterns;
  for (const RankedEdge& e : RankEdgesBySupport(db)) {
    if (patterns.size() >= k) break;
    Graph g;
    VertexId a = g.AddVertex(static_cast<Label>(e.key >> 32));
    VertexId b = g.AddVertex(static_cast<Label>(e.key & 0xFFFFFFFFULL));
    g.AddEdge(a, b);
    patterns.push_back(std::move(g));
  }
  return patterns;
}

std::vector<Graph> TopBasicPatterns(const GraphDatabase& db, size_t m) {
  // Single edges: reuse the ranking. 2-paths: count support of distinct
  // (label, center-label, label) triples per graph.
  struct Scored {
    Graph pattern;
    size_t support;
  };
  std::vector<Scored> scored;
  for (const RankedEdge& e : RankEdgesBySupport(db)) {
    Graph g;
    VertexId a = g.AddVertex(static_cast<Label>(e.key >> 32));
    VertexId b = g.AddVertex(static_cast<Label>(e.key & 0xFFFFFFFFULL));
    g.AddEdge(a, b);
    scored.push_back({std::move(g), e.support});
  }

  // 2-path key: (min(end labels), center label, max(end labels)).
  std::map<std::tuple<Label, Label, Label>, size_t> path_support;
  for (const Graph& g : db.graphs()) {
    std::unordered_set<uint64_t> seen;  // per-graph dedup of packed triples
    for (VertexId c = 0; c < g.NumVertices(); ++c) {
      const auto& nbrs = g.Neighbors(c);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          Label e1 = g.VertexLabel(nbrs[i].to);
          Label e2 = g.VertexLabel(nbrs[j].to);
          if (e1 > e2) std::swap(e1, e2);
          uint64_t packed = (static_cast<uint64_t>(e1) << 42) ^
                            (static_cast<uint64_t>(g.VertexLabel(c)) << 21) ^
                            e2;
          if (seen.insert(packed).second) {
            ++path_support[{e1, g.VertexLabel(c), e2}];
          }
        }
      }
    }
  }
  for (const auto& [key, support] : path_support) {
    auto [e1, center, e2] = key;
    Graph g;
    VertexId a = g.AddVertex(e1);
    VertexId c = g.AddVertex(center);
    VertexId b = g.AddVertex(e2);
    g.AddEdge(a, c);
    g.AddEdge(c, b);
    scored.push_back({std::move(g), support});
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.support > b.support;
                   });
  std::vector<Graph> result;
  for (Scored& s : scored) {
    if (result.size() >= m) break;
    result.push_back(std::move(s.pattern));
  }
  return result;
}

std::vector<Graph> FrequentEdgePathPatterns(const GraphDatabase& db,
                                            size_t num_edges, size_t count) {
  std::vector<Graph> patterns;
  if (num_edges == 0 || count == 0) return patterns;
  std::vector<RankedEdge> ranked = RankEdgesBySupport(db);
  if (ranked.empty()) return patterns;

  auto LabelA = [](EdgeLabelKey key) {
    return static_cast<Label>(key >> 32);
  };
  auto LabelB = [](EdgeLabelKey key) {
    return static_cast<Label>(key & 0xFFFFFFFFULL);
  };
  // The most frequent key containing `label`, if any.
  auto BestExtension = [&](Label label) -> const RankedEdge* {
    for (const RankedEdge& e : ranked) {
      if (LabelA(e.key) == label || LabelB(e.key) == label) return &e;
    }
    return nullptr;
  };

  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < ranked.size() && patterns.size() < count; ++i) {
    Graph path;
    VertexId front = path.AddVertex(LabelA(ranked[i].key));
    VertexId back = path.AddVertex(LabelB(ranked[i].key));
    path.AddEdge(front, back);
    while (path.NumEdges() < num_edges) {
      // Extend at the back endpoint with its most frequent compatible key;
      // the seed key itself always qualifies, so growth cannot stall.
      const RankedEdge* ext = BestExtension(path.VertexLabel(back));
      if (ext == nullptr) break;
      Label next_label = LabelA(ext->key) == path.VertexLabel(back)
                             ? LabelB(ext->key)
                             : LabelA(ext->key);
      VertexId added = path.AddVertex(next_label);
      path.AddEdge(back, added);
      back = added;
    }
    if (path.NumEdges() != num_edges) continue;
    if (!seen.insert(GraphFingerprint(path)).second) continue;
    patterns.push_back(std::move(path));
  }
  return patterns;
}

}  // namespace catapult
