#include "src/mining/subtree_miner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/iso/vf2.h"
#include "src/tree/canonical.h"
#include "src/util/check.h"

namespace catapult {

namespace {

// Candidate tree together with the support set of the tree it was grown
// from (a superset of its own support, by anti-monotonicity).
struct Candidate {
  Graph tree;
  std::string canonical;
  const DynamicBitset* parent_support;
};

DynamicBitset CountSupportWithin(const Graph& tree, const GraphDatabase& db,
                                 const std::vector<GraphId>& graph_ids,
                                 const DynamicBitset* restrict_to) {
  DynamicBitset support(graph_ids.size());
  for (size_t i = 0; i < graph_ids.size(); ++i) {
    if (restrict_to != nullptr && !restrict_to->Test(i)) continue;
    if (ContainsSubgraph(tree, db.graph(graph_ids[i]))) support.Set(i);
  }
  return support;
}

}  // namespace

std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SubtreeMinerOptions& options) {
  return MineFrequentSubtrees(db, graph_ids, options, RunContext::NoLimit());
}

std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const std::vector<GraphId>& graph_ids,
    const SubtreeMinerOptions& options, const RunContext& ctx,
    bool* complete) {
  if (complete != nullptr) *complete = true;
  std::vector<FrequentSubtree> results;
  if (graph_ids.empty()) return results;
  const size_t universe = graph_ids.size();
  const size_t min_count = static_cast<size_t>(
      std::max(1.0, options.min_support * static_cast<double>(universe)));

  // Level 1: frequent labelled edges. Collect distinct label pairs and their
  // supporting graphs directly.
  std::unordered_map<EdgeLabelKey, DynamicBitset> edge_support;
  for (size_t i = 0; i < universe; ++i) {
    const Graph& g = db.graph(graph_ids[i]);
    std::unordered_set<EdgeLabelKey> seen;
    for (const Edge& e : g.EdgeList()) seen.insert(g.EdgeKey(e.u, e.v));
    for (EdgeLabelKey key : seen) {
      auto [it, inserted] =
          edge_support.try_emplace(key, DynamicBitset(universe));
      it->second.Set(i);
    }
  }

  std::vector<FrequentSubtree> frontier;
  for (const auto& [key, support] : edge_support) {
    if (support.Count() < min_count) continue;
    Graph tree;
    VertexId a = tree.AddVertex(static_cast<Label>(key >> 32));
    VertexId b = tree.AddVertex(static_cast<Label>(key & 0xFFFFFFFFULL));
    tree.AddEdge(a, b);
    FrequentSubtree fs;
    fs.canonical = CanonicalTreeString(tree);
    fs.tree = std::move(tree);
    fs.support = support;
    fs.frequency =
        static_cast<double>(support.Count()) / static_cast<double>(universe);
    frontier.push_back(std::move(fs));
  }

  // Frequent vertex labels: the only labels worth attaching as new leaves.
  std::unordered_map<Label, size_t> vertex_label_count;
  for (size_t i = 0; i < universe; ++i) {
    const Graph& g = db.graph(graph_ids[i]);
    std::unordered_set<Label> seen;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      seen.insert(g.VertexLabel(v));
    }
    for (Label l : seen) ++vertex_label_count[l];
  }
  std::vector<Label> frequent_labels;
  for (const auto& [label, count] : vertex_label_count) {
    if (count >= min_count) frequent_labels.push_back(label);
  }
  std::sort(frequent_labels.begin(), frequent_labels.end());

  // Level-wise growth.
  while (!frontier.empty()) {
    for (FrequentSubtree& fs : frontier) results.push_back(fs);
    if (frontier.front().tree.NumEdges() >= options.max_edges) break;

    // Generate candidates: attach one new leaf to every vertex of every
    // frontier tree with every frequent label, deduplicated canonically.
    std::unordered_set<std::string> seen_canonical;
    std::vector<Candidate> candidates;
    // Most frequent parents first, so per-level caps keep the best ones.
    std::vector<size_t> parent_order(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) parent_order[i] = i;
    std::stable_sort(parent_order.begin(), parent_order.end(),
                     [&](size_t l, size_t r) {
                       return frontier[l].frequency > frontier[r].frequency;
                     });
    for (size_t pi : parent_order) {
      const FrequentSubtree& parent = frontier[pi];
      if (options.max_candidates_per_level != 0 &&
          candidates.size() >= options.max_candidates_per_level) {
        break;
      }
      for (VertexId attach = 0; attach < parent.tree.NumVertices();
           ++attach) {
        for (Label label : frequent_labels) {
          Graph extended = parent.tree;
          VertexId leaf = extended.AddVertex(label);
          extended.AddEdge(attach, leaf);
          std::string canonical = CanonicalTreeString(extended);
          if (!seen_canonical.insert(canonical).second) continue;
          candidates.push_back(
              {std::move(extended), std::move(canonical), &parent.support});
        }
      }
    }

    // Count support (restricted to the parent's support set).
    bool stopped = false;
    std::vector<FrequentSubtree> next;
    for (Candidate& c : candidates) {
      // Support counting is the expensive inner loop (one subgraph-
      // isomorphism test per graph); poll the deadline per candidate and
      // keep the levels already completed as the anytime result.
      if (ctx.StopRequested("miner.count_support")) {
        stopped = true;
        break;
      }
      DynamicBitset support =
          CountSupportWithin(c.tree, db, graph_ids, c.parent_support);
      if (support.Count() < min_count) continue;
      FrequentSubtree fs;
      fs.frequency = static_cast<double>(support.Count()) /
                     static_cast<double>(universe);
      fs.tree = std::move(c.tree);
      fs.canonical = std::move(c.canonical);
      fs.support = std::move(support);
      next.push_back(std::move(fs));
    }
    if (stopped) {
      if (complete != nullptr) *complete = false;
      break;
    }
    frontier = std::move(next);
  }

  // Most frequent first; apply the result cap.
  std::stable_sort(results.begin(), results.end(),
                   [](const FrequentSubtree& a, const FrequentSubtree& b) {
                     return a.frequency > b.frequency;
                   });
  if (options.max_results != 0 && results.size() > options.max_results) {
    results.resize(options.max_results);
  }
  return results;
}

std::vector<FrequentSubtree> MineFrequentSubtrees(
    const GraphDatabase& db, const SubtreeMinerOptions& options) {
  std::vector<GraphId> all(db.size());
  for (GraphId i = 0; i < db.size(); ++i) all[i] = i;
  return MineFrequentSubtrees(db, all, options);
}

DynamicBitset CountSupport(const Graph& tree, const GraphDatabase& db) {
  DynamicBitset support(db.size());
  for (GraphId i = 0; i < db.size(); ++i) {
    if (ContainsSubgraph(tree, db.graph(i))) support.Set(i);
  }
  return support;
}

}  // namespace catapult
