#ifndef CATAPULT_MINING_SUBGRAPH_MINER_H_
#define CATAPULT_MINING_SUBGRAPH_MINER_H_

#include <vector>

#include "src/graph/graph_database.h"
#include "src/util/bitset.h"

namespace catapult {

// Options for frequent subgraph mining. This is the Exp 9 baseline (the
// paper uses Gaston): general connected subgraphs, not just trees.
struct SubgraphMinerOptions {
  // Minimum relative support.
  double min_support = 0.08;

  // Pattern size limits in edges.
  size_t min_edges = 1;
  size_t max_edges = 12;

  // Cap on candidates expanded per level (0 = unlimited).
  size_t max_candidates_per_level = 4000;

  // Hard cap on results (most frequent kept; 0 = unlimited).
  size_t max_results = 0;
};

// A mined frequent connected subgraph.
struct FrequentSubgraph {
  Graph graph;
  DynamicBitset support;
  double frequency = 0.0;
};

// Pattern-growth miner for frequent connected subgraphs: each level extends
// patterns by one edge (either a new labelled leaf or a cycle-closing edge
// between existing vertices), deduplicates candidates by fingerprint +
// isomorphism check, and counts support by subgraph isomorphism restricted
// to the parent's support set.
std::vector<FrequentSubgraph> MineFrequentSubgraphs(
    const GraphDatabase& db, const SubgraphMinerOptions& options);

// Selects a canned-pattern set from frequent subgraphs the way Exp 9 builds
// its baseline: `total` patterns with sizes in [min_edges, max_edges], at
// most total / (max_edges - min_edges + 1) patterns per size, most frequent
// first.
std::vector<Graph> FrequentSubgraphPatternSet(
    const std::vector<FrequentSubgraph>& mined, size_t total,
    size_t min_edges, size_t max_edges);

}  // namespace catapult

#endif  // CATAPULT_MINING_SUBGRAPH_MINER_H_
