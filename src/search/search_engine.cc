#include "src/search/search_engine.h"

#include <unordered_set>

namespace catapult {

SubgraphSearchEngine::SubgraphSearchEngine(const GraphDatabase& db)
    : db_(&db) {
  const size_t n = db.size();
  vertex_counts_.resize(n);
  edge_counts_.resize(n);
  for (GraphId i = 0; i < n; ++i) {
    const Graph& g = db.graph(i);
    vertex_counts_[i] = static_cast<uint32_t>(g.NumVertices());
    edge_counts_[i] = static_cast<uint32_t>(g.NumEdges());
    std::unordered_set<EdgeLabelKey> seen;
    for (const Edge& e : g.EdgeList()) seen.insert(g.EdgeKey(e.u, e.v));
    for (EdgeLabelKey key : seen) {
      auto [it, inserted] = edge_index_.try_emplace(key, DynamicBitset(n));
      it->second.Set(i);
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      auto [it, inserted] = label_counts_.try_emplace(
          g.VertexLabel(v), std::vector<uint32_t>(n, 0));
      ++it->second[i];
    }
  }
}

DynamicBitset SubgraphSearchEngine::FilterCandidates(
    const Graph& query) const {
  const size_t n = db_->size();
  DynamicBitset candidates(n);
  if (n == 0 || query.NumVertices() == 0) return candidates;

  // Start from the rarest labelled-edge posting list (or everything for a
  // single-vertex query), then intersect the rest.
  std::unordered_set<EdgeLabelKey> keys;
  for (const Edge& e : query.EdgeList()) keys.insert(query.EdgeKey(e.u, e.v));

  bool initialised = false;
  for (EdgeLabelKey key : keys) {
    auto it = edge_index_.find(key);
    if (it == edge_index_.end()) return DynamicBitset(n);  // label absent
    if (!initialised) {
      candidates = it->second;
      initialised = true;
    } else {
      candidates &= it->second;
    }
  }
  if (!initialised) {
    // Vertex-only query: all graphs are candidates so far.
    for (size_t i = 0; i < n; ++i) candidates.Set(i);
  }

  // Label-count and size filters.
  std::unordered_map<Label, uint32_t> needed;
  for (VertexId v = 0; v < query.NumVertices(); ++v) {
    ++needed[query.VertexLabel(v)];
  }
  for (size_t i : candidates.ToIndices()) {
    bool keep = vertex_counts_[i] >= query.NumVertices() &&
                edge_counts_[i] >= query.NumEdges();
    if (keep) {
      for (const auto& [label, count] : needed) {
        auto it = label_counts_.find(label);
        if (it == label_counts_.end() || it->second[i] < count) {
          keep = false;
          break;
        }
      }
    }
    if (!keep) candidates.Clear(i);
  }
  return candidates;
}

std::vector<GraphId> SubgraphSearchEngine::Search(const Graph& query,
                                                  IsoOptions options) const {
  std::vector<GraphId> results;
  for (size_t i : FilterCandidates(query).ToIndices()) {
    if (ContainsSubgraph(query, db_->graph(static_cast<GraphId>(i)),
                         options)) {
      results.push_back(static_cast<GraphId>(i));
    }
  }
  return results;
}

size_t SubgraphSearchEngine::CountMatches(const Graph& query, size_t cap,
                                          IsoOptions options) const {
  size_t count = 0;
  for (size_t i : FilterCandidates(query).ToIndices()) {
    if (ContainsSubgraph(query, db_->graph(static_cast<GraphId>(i)),
                         options)) {
      ++count;
      if (cap != 0 && count >= cap) return count;
    }
  }
  return count;
}

double ExactSubgraphCoverage(const SubgraphSearchEngine& engine,
                             const std::vector<Graph>& patterns,
                             IsoOptions options) {
  const size_t n = engine.db().size();
  if (n == 0) return 0.0;
  DynamicBitset covered(n);
  for (const Graph& p : patterns) {
    if (p.NumVertices() == 0) continue;
    for (size_t i : engine.FilterCandidates(p).ToIndices()) {
      if (covered.Test(i)) continue;
      if (ContainsSubgraph(p, engine.db().graph(static_cast<GraphId>(i)),
                           options)) {
        covered.Set(i);
      }
    }
  }
  return static_cast<double>(covered.Count()) / static_cast<double>(n);
}

}  // namespace catapult
