#ifndef CATAPULT_SEARCH_SEARCH_ENGINE_H_
#define CATAPULT_SEARCH_SEARCH_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph_database.h"
#include "src/iso/vf2.h"
#include "src/util/bitset.h"

namespace catapult {

// Filter-and-verify subgraph search over a GraphDatabase — the query
// primitive the paper's visual interfaces sit on top of (Section 1:
// "a set of data graphs containing [a] match of a user-specified query
// graph is retrieved").
//
// Filtering uses two inverted indices built once per database:
//   * labelled-edge index: a query's candidate set must contain every
//     distinct labelled edge of the query;
//   * label-count index: per vertex label, graphs are bucketed by how many
//     vertices carry the label, so a query needing k vertices of label l
//     prunes graphs with fewer.
// Survivors are verified with VF2. Both filters are sound (never drop a
// true match), so results are exact.
class SubgraphSearchEngine {
 public:
  // Builds the indices; `db` must outlive the engine.
  explicit SubgraphSearchEngine(const GraphDatabase& db);

  // Ids of all data graphs containing `query` (ascending). `options`
  // configures the verification (e.g. induced matching).
  std::vector<GraphId> Search(const Graph& query,
                              IsoOptions options = {}) const;

  // Number of matches without materialising the id list; stops early at
  // `cap` (0 = exact count).
  size_t CountMatches(const Graph& query, size_t cap = 0,
                      IsoOptions options = {}) const;

  // Candidate set after filtering only (superset of the true results);
  // exposed for tests and for the coverage fast path.
  DynamicBitset FilterCandidates(const Graph& query) const;

  // Statistics of the last Search/CountMatches call are intentionally not
  // kept (const engine, usable concurrently); use FilterCandidates to
  // measure filter power.

  const GraphDatabase& db() const { return *db_; }

 private:
  const GraphDatabase* db_;
  // labelled-edge key -> graphs containing at least one such edge.
  std::unordered_map<EdgeLabelKey, DynamicBitset> edge_index_;
  // vertex label -> per-graph count of vertices with that label.
  std::unordered_map<Label, std::vector<uint32_t>> label_counts_;
  // graph sizes for the trivial size filter.
  std::vector<uint32_t> vertex_counts_;
  std::vector<uint32_t> edge_counts_;
};

// scov(P, D) computed exactly through the engine (union of per-pattern
// match sets over the database). Faster than the sampling estimate in
// formulate/evaluate.h when the engine is already built.
double ExactSubgraphCoverage(const SubgraphSearchEngine& engine,
                             const std::vector<Graph>& patterns,
                             IsoOptions options = {});

}  // namespace catapult

#endif  // CATAPULT_SEARCH_SEARCH_ENGINE_H_
