#include "src/serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/dist/wire.h"
#include "src/obs/admin.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/reqlog.h"
#include "src/serve/protocol.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define CATAPULT_SERVE_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace catapult::serve {

#if defined(CATAPULT_SERVE_POSIX)

namespace {

using Clock = std::chrono::steady_clock;

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

double MillisSince(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - since).count();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// accept() errno values that mean "descriptor pressure / transient": back
// off for accept_retry_ms instead of spinning on a hot error.
bool TransientAcceptError(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == ECONNABORTED || err == EINTR;
}

// Adds `from` into `into`: counters sum, gauges take the running max
// (every gauge in the registry is a SetGaugeMax peak), histograms merge.
void MergeSnapshot(const obs::MetricsSnapshot& from,
                   obs::MetricsSnapshot* into) {
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    into->counters[i] += from.counters[i];
  }
  for (size_t i = 0; i < obs::kNumGauges; ++i) {
    into->gauges[i] = std::max(into->gauges[i], from.gauges[i]);
  }
  for (size_t i = 0; i < obs::kNumHists; ++i) {
    into->hists[i].MergeFrom(from.hists[i]);
  }
}

}  // namespace

struct Server::Impl {
  // One connected client. Owned and touched exclusively by the event-loop
  // thread; workers refer to sessions only by (fd, generation).
  struct Session {
    uint64_t generation = 0;
    dist::FrameReader reader;
    std::string outbuf;  // encoded reply frames not yet written
    size_t out_off = 0;
    size_t in_flight = 0;  // admitted jobs not yet replied to
    // Cancels this session's in-flight jobs when it disconnects.
    CancelToken cancel;
    bool close_after_flush = false;
    Clock::time_point last_activity;
    Clock::time_point last_write_progress;
  };

  // One admitted selection request, queued for a worker.
  struct Job {
    int fd = -1;
    uint64_t generation = 0;
    uint64_t request_id = 0;
    MineRequest request;
    Deadline deadline;
    CancelToken cancel;  // the owning session's token
    Clock::time_point admitted;
  };

  // A worker's finished reply travelling back to the event loop.
  struct Completed {
    int fd = -1;
    uint64_t generation = 0;
    std::string bytes;  // encoded frame; empty = job abandoned, no reply
  };

  struct CacheEntry {
    uint64_t eta_min = 0, eta_max = 0, gamma = 0;
    std::string panel;
    uint64_t last_used = 0;
  };

  Server* self = nullptr;
  const GraphDatabase* db = nullptr;
  ServeOptions options;
  PreparedCorpus owned_corpus;
  const PreparedCorpus* corpus = nullptr;
  MemoryBudget memory;  // shared across all requests
  std::vector<std::string> label_names;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  Clock::time_point accept_cooldown_until{};

  std::unordered_map<int, Session> sessions;  // event-loop thread only
  uint64_t next_generation = 1;
  std::atomic<size_t> session_count{0};
  std::atomic<uint64_t> pending_out_bytes{0};

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  size_t active_jobs = 0;                // guarded by queue_mutex
  std::vector<CancelToken> running;      // guarded by queue_mutex
  std::atomic<bool> workers_stop{false};

  std::mutex completed_mutex;
  std::vector<Completed> completed;

  std::mutex cache_mutex;
  std::vector<CacheEntry> cache;  // linear LRU; capacity is small
  uint64_t cache_tick = 0;

  // Live-readable metrics. Registry shard writes are deliberately
  // lock-free plain stores (obs contract: snapshot only after the writing
  // threads joined), so Metrics() must never walk a registry that serve
  // threads still record into. Instead every serve thread records into its
  // own private registry and publishes finished deltas here — the event
  // loop once per tick, each worker after every completed job — and
  // Metrics() copies the aggregate under the same mutex.
  mutable std::mutex metrics_mutex;
  obs::MetricsSnapshot published;

  std::atomic<bool> loop_stop{false};
  bool stopped = false;  // Stop() ran to completion (main thread only)
  std::thread event_thread;
  std::vector<std::thread> workers;

  // Observability (DESIGN.md §16). Request ids are assigned at frame
  // handling, stamped into shed/error replies and every request-log line.
  std::atomic<uint64_t> next_request_id{1};
  obs::RequestLog reqlog;
  obs::AdminServer admin;
  Clock::time_point start_time{};

  ~Impl() { CloseStartupFds(); }

  void CloseStartupFds() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    listen_fd = wake_read = wake_write = -1;
  }

  void Wake() {
    char byte = 'w';
    if (wake_write >= 0) {
      [[maybe_unused]] ssize_t n = ::write(wake_write, &byte, 1);
    }
  }

  size_t QueueDepth() {
    std::lock_guard<std::mutex> lock(queue_mutex);
    return queue.size();
  }

  // Folds everything `local` accumulated since its last publish into the
  // shared aggregate and clears it. Only the owning thread may call this
  // (and only while no parallel region is recording into `local`), which
  // is exactly the obs snapshot contract.
  void PublishMetrics(obs::MetricsRegistry& local) {
    const obs::MetricsSnapshot delta = local.Snapshot();
    local.Reset();
    std::lock_guard<std::mutex> lock(metrics_mutex);
    published.enabled = true;
    MergeSnapshot(delta, &published);
  }

  static std::string BudgetKey(const MineRequest& req) {
    return std::to_string(req.eta_min) + "-" + std::to_string(req.eta_max) +
           "x" + std::to_string(req.gamma);
  }

  // Enqueues one request-log line; a full queue drops it (counted). Called
  // from the event loop and workers only — both carry a TLS metrics scope.
  void LogRequest(const obs::RequestLogEvent& ev) {
    if (!reqlog.started()) return;
    if (!reqlog.Record(ev)) obs::Count(obs::Counter::kServeReqlogDropped);
  }

  // Admin-endpoint handler, invoked on the admin server's thread. Only
  // thread-safe observers are touched: Metrics() merges published deltas
  // under its own mutex, and the rest are atomics.
  obs::AdminResponse HandleAdmin(const std::string& path) {
    obs::AdminResponse resp;
    if (path == "/metrics") {
      resp.body = obs::RenderPrometheusText(self->Metrics());
    } else if (path == "/statusz") {
      obs::JsonWriter w;
      w.BeginObject();
      w.Key("uptime_ms");
      w.Value(MillisSince(start_time, Clock::now()));
      w.Key("fingerprint");
      w.Value(corpus != nullptr ? corpus->fingerprint : uint64_t{0});
      w.Key("corpus_complete");
      w.Value(corpus != nullptr && corpus->complete);
      w.Key("socket_path");
      w.Value(options.socket_path);
      w.Key("draining");
      w.Value(self->draining());
      w.Key("sessions");
      w.Value(static_cast<uint64_t>(self->active_sessions()));
      w.Key("queue_depth");
      w.Value(static_cast<uint64_t>(self->queue_depth()));
      w.Key("requests_assigned");
      w.Value(next_request_id.load(std::memory_order_relaxed) - 1);
      w.Key("request_log_dropped");
      w.Value(reqlog.dropped());
      w.EndObject();
      resp.body = w.str() + "\n";
      resp.content_type = "application/json";
    } else {
      resp.status = 404;
      resp.body = "not found\n";
    }
    return resp;
  }

  bool CacheLookup(const MineRequest& req, std::string* panel) {
    std::lock_guard<std::mutex> lock(cache_mutex);
    for (CacheEntry& e : cache) {
      if (e.eta_min == req.eta_min && e.eta_max == req.eta_max &&
          e.gamma == req.gamma) {
        e.last_used = ++cache_tick;
        *panel = e.panel;
        return true;
      }
    }
    return false;
  }

  void CacheInsert(const MineRequest& req, const std::string& panel) {
    if (options.cache_capacity == 0) return;
    std::lock_guard<std::mutex> lock(cache_mutex);
    for (CacheEntry& e : cache) {
      if (e.eta_min == req.eta_min && e.eta_max == req.eta_max &&
          e.gamma == req.gamma) {
        e.last_used = ++cache_tick;
        return;  // a concurrent worker already filled this key
      }
    }
    if (cache.size() >= options.cache_capacity) {
      size_t victim = 0;
      for (size_t i = 1; i < cache.size(); ++i) {
        if (cache[i].last_used < cache[victim].last_used) victim = i;
      }
      cache.erase(cache.begin() + static_cast<long>(victim));
    }
    cache.push_back(
        {req.eta_min, req.eta_max, req.gamma, panel, ++cache_tick});
  }

  // --- event-loop side -------------------------------------------------------

  void QueueFrame(Session& s, dist::FrameType type,
                  const std::string& payload) {
    const bool was_empty = s.out_off >= s.outbuf.size();
    s.outbuf += dist::EncodeFrame(type, payload);
    if (was_empty) s.last_write_progress = Clock::now();
  }

  void QueueShed(Session& s, ShedReason reason, uint64_t request_id = 0,
                 const MineRequest* req = nullptr) {
    ShedReply shed;
    shed.reason = reason;
    shed.retry_after_ms = options.retry_after_ms;
    shed.queue_depth = QueueDepth();
    shed.request_id = request_id;
    QueueFrame(s, dist::FrameType::kServeShed, Encode(shed));
    obs::Count(obs::Counter::kServeShed);
    obs::RequestLogEvent ev;
    ev.request_id = request_id;
    ev.outcome = "shed";
    ev.detail = ToString(reason);
    if (req != nullptr) {
      ev.budget_key = BudgetKey(*req);
      ev.trace_id = req->trace_id;
      ev.parent_span_id = req->parent_span_id;
    }
    LogRequest(ev);
  }

  void CloseSession(int fd) {
    auto it = sessions.find(fd);
    if (it == sessions.end()) return;
    // In-flight work for a vanished client is wasted; cancel it. Workers
    // deliver to (fd, generation), so a recycled fd cannot receive the dead
    // session's replies.
    it->second.cancel.Cancel();
    sessions.erase(it);
    ::close(fd);
    session_count.store(sessions.size(), std::memory_order_relaxed);
    obs::Count(obs::Counter::kServeDisconnects);
  }

  // Writes as much pending reply data as the socket accepts. Returns false
  // when the session must be closed (fatal write error or flushed a doomed
  // session).
  bool FlushSession(int fd, Session& s) {
    while (s.out_off < s.outbuf.size()) {
      if (CATAPULT_FAILPOINT("serve.write_stall")) return true;  // no progress
      const ssize_t n = ::send(fd, s.outbuf.data() + s.out_off,
                               s.outbuf.size() - s.out_off, kSendFlags);
      if (n > 0) {
        s.out_off += static_cast<size_t>(n);
        s.last_write_progress = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // peer gone or fatal error
    }
    s.outbuf.clear();
    s.out_off = 0;
    return !s.close_after_flush;
  }

  void Accept() {
    for (;;) {
      if (CATAPULT_FAILPOINT("serve.accept_fail")) {
        obs::Count(obs::Counter::kServeAcceptFailures);
        accept_cooldown_until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   options.accept_retry_ms));
        return;
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (TransientAcceptError(errno)) {
          obs::Count(obs::Counter::kServeAcceptFailures);
          accept_cooldown_until =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     options.accept_retry_ms));
        }
        return;
      }
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      Session& s = sessions[fd];
      s.generation = next_generation++;
      s.last_activity = Clock::now();
      s.last_write_progress = s.last_activity;
      session_count.store(sessions.size(), std::memory_order_relaxed);
      if (sessions.size() > options.max_sessions) {
        // Over the cap: tell the client to retry, then hang up. The cap
        // counts this doomed session too, so a connect storm cannot hold
        // unbounded descriptors.
        s.close_after_flush = true;
        QueueShed(s, ShedReason::kSessionLimit);
        if (!FlushSession(fd, s)) CloseSession(fd);
        continue;
      }
      obs::Count(obs::Counter::kServeAccepted);
      obs::SetGaugeMax(obs::Gauge::kServeSessionsPeak, sessions.size());
    }
  }

  // Handles one decoded frame. Returns false when the stream must be
  // poisoned (the caller disconnects the client).
  bool HandleFrame(int fd, Session& s, const dist::Frame& frame) {
    switch (frame.type) {
      case dist::FrameType::kServePing: {
        PingRequest ping;
        if (!Decode(frame.payload, &ping)) return false;
        PongReply pong;
        pong.nonce = ping.nonce;
        pong.sessions = sessions.size();
        pong.queue_depth = QueueDepth();
        pong.draining = self->draining();
        QueueFrame(s, dist::FrameType::kServePong, Encode(pong));
        return true;
      }
      case dist::FrameType::kServeRequest: {
        MineRequest req;
        if (!Decode(frame.payload, &req)) return false;
        HandleMineRequest(fd, s, req);
        return true;
      }
      default:
        // Clients have no business sending worker-pipe or server->client
        // frames; framing discipline is gone.
        return false;
    }
  }

  void HandleMineRequest(int fd, Session& s, const MineRequest& req) {
    obs::Count(obs::Counter::kServeRequests);
    const uint64_t request_id =
        next_request_id.fetch_add(1, std::memory_order_relaxed);
    auto reply_error = [&](const std::string& message) {
      ErrorReply err;
      err.message = message;
      err.request_id = request_id;
      QueueFrame(s, dist::FrameType::kServeError, Encode(err));
      obs::RequestLogEvent ev;
      ev.request_id = request_id;
      ev.budget_key = BudgetKey(req);
      ev.outcome = "error";
      ev.detail = message;
      ev.trace_id = req.trace_id;
      ev.parent_span_id = req.parent_span_id;
      LogRequest(ev);
    };
    if (req.protocol_version != kProtocolVersion) {
      reply_error("protocol version mismatch");
      return;
    }
    CatapultOptions opts = RequestOptions(req);
    const std::vector<OptionsError> errors = ValidateCatapultOptions(opts);
    if (!errors.empty()) {
      reply_error(errors.front().field + ": " + errors.front().message);
      return;
    }
    if (self->draining()) {
      QueueShed(s, ShedReason::kDraining, request_id, &req);
      return;
    }
    if (!req.bypass_cache) {
      std::string panel;
      if (CacheLookup(req, &panel)) {
        obs::Count(obs::Counter::kServeCacheHits);
        obs::Count(obs::Counter::kServeResponses);
        obs::RequestLogEvent ev;
        ev.request_id = request_id;
        ev.budget_key = BudgetKey(req);
        ev.outcome = "cache_hit";
        ev.panel_bytes = panel.size();
        ev.trace_id = req.trace_id;
        ev.parent_span_id = req.parent_span_id;
        LogRequest(ev);
        MineReply reply;
        reply.cache_hit = true;
        reply.panel = std::move(panel);
        QueueFrame(s, dist::FrameType::kServeResponse, Encode(reply));
        return;
      }
      obs::Count(obs::Counter::kServeCacheMisses);
    }
    // Admission decision under the queue lock, shed reply outside it
    // (QueueShed re-locks for the depth stamp).
    enum class Admit { kEnqueued, kShedQueue, kShedMemory };
    Admit verdict = Admit::kEnqueued;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (CATAPULT_FAILPOINT("serve.overload") ||
          queue.size() >= options.max_queue_depth) {
        verdict = Admit::kShedQueue;
      } else if (CATAPULT_FAILPOINT("serve.memory_pressure") ||
                 memory.SoftExceeded()) {
        verdict = Admit::kShedMemory;
      } else {
        Job job;
        job.fd = fd;
        job.generation = s.generation;
        job.request_id = request_id;
        job.request = req;
        double deadline_ms = req.deadline_ms > 0.0
                                 ? req.deadline_ms
                                 : options.default_deadline_ms;
        if (options.max_deadline_ms > 0.0 &&
            (deadline_ms <= 0.0 || deadline_ms > options.max_deadline_ms)) {
          deadline_ms = options.max_deadline_ms;
        }
        job.deadline = deadline_ms > 0.0 ? Deadline::AfterMillis(deadline_ms)
                                         : Deadline::Infinite();
        job.cancel = s.cancel;
        job.admitted = Clock::now();
        queue.push_back(std::move(job));
        s.in_flight++;
        obs::SetGaugeMax(obs::Gauge::kServeQueueDepthPeak, queue.size());
        queue_cv.notify_one();
      }
    }
    if (verdict == Admit::kShedQueue) {
      QueueShed(s, ShedReason::kQueueFull, request_id, &req);
    }
    if (verdict == Admit::kShedMemory) {
      QueueShed(s, ShedReason::kMemoryPressure, request_id, &req);
    }
  }

  CatapultOptions RequestOptions(const MineRequest& req) const {
    CatapultOptions opts = options.pipeline;
    opts.selector.budget.eta_min = static_cast<size_t>(req.eta_min);
    opts.selector.budget.eta_max = static_cast<size_t>(req.eta_max);
    opts.selector.budget.gamma = static_cast<size_t>(req.gamma);
    // A custom size distribution is corpus configuration, not something a
    // request can express; budgets from the wire use the uniform default.
    opts.selector.budget.size_distribution.clear();
    // Deadline and memory come from the job's RunContext (per-request
    // deadline, shared server-wide ledger), and serving neither checkpoints
    // nor shards per request.
    opts.deadline_ms = 0.0;
    opts.mem_soft_limit_bytes = 0;
    opts.mem_hard_limit_bytes = 0;
    opts.checkpoint_dir.clear();
    opts.resume = false;
    opts.processes = 0;
    return opts;
  }

  void DeliverCompleted() {
    std::vector<Completed> batch;
    {
      std::lock_guard<std::mutex> lock(completed_mutex);
      batch.swap(completed);
    }
    for (Completed& c : batch) {
      auto it = sessions.find(c.fd);
      if (it == sessions.end() || it->second.generation != c.generation) {
        continue;  // session died while the job ran; reply has no reader
      }
      Session& s = it->second;
      if (s.in_flight > 0) s.in_flight--;
      if (!c.bytes.empty()) {
        const bool was_empty = s.out_off >= s.outbuf.size();
        s.outbuf += c.bytes;
        if (was_empty) s.last_write_progress = Clock::now();
        if (!FlushSession(c.fd, s)) CloseSession(c.fd);
      }
    }
  }

  void SweepSessions(Clock::time_point now) {
    std::vector<int> doomed;
    for (auto& [fd, s] : sessions) {
      const bool has_pending = s.out_off < s.outbuf.size();
      if (has_pending &&
          MillisSince(s.last_write_progress, now) > options.write_timeout_ms) {
        obs::Count(obs::Counter::kServeWriteTimeouts);
        doomed.push_back(fd);
        continue;
      }
      if (!has_pending && s.in_flight == 0 && options.idle_timeout_ms > 0.0 &&
          MillisSince(s.last_activity, now) > options.idle_timeout_ms) {
        obs::Count(obs::Counter::kServeIdleReaped);
        doomed.push_back(fd);
      }
    }
    for (int fd : doomed) CloseSession(fd);
  }

  void HandleReadable(int fd) {
    auto it = sessions.find(fd);
    if (it == sessions.end()) return;
    Session& s = it->second;
    char buf[16384];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        s.reader.Feed(buf, static_cast<size_t>(n));
        s.last_activity = Clock::now();
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;
      break;
    }
    while (!s.reader.corrupt()) {
      std::optional<dist::Frame> frame = s.reader.Next();
      if (!frame.has_value()) break;
      s.last_activity = Clock::now();
      if (!HandleFrame(fd, s, *frame)) {
        s.reader.Poison("undecodable or unexpected frame payload");
        break;
      }
      // HandleFrame may have doomed the session (close_after_flush); stop
      // consuming further frames from it.
      if (s.close_after_flush) break;
    }
    if (s.reader.corrupt()) {
      obs::Count(obs::Counter::kServePoisonedStreams);
      CloseSession(fd);
      return;
    }
    if (!FlushSession(fd, s)) {
      CloseSession(fd);
      return;
    }
    if (peer_closed) CloseSession(fd);
  }

  void EventLoop() {
    // Private registry: this thread is its only writer, so the per-tick
    // PublishMetrics snapshot below never races a live shard.
    obs::MetricsRegistry loop_metrics;
    obs::ScopedMetricsScope metrics_scope(&loop_metrics);
    std::vector<pollfd> fds;
    std::vector<int> session_fds;
    std::vector<uint64_t> session_gens;
    bool listen_open = true;
    while (!loop_stop.load(std::memory_order_relaxed)) {
      const Clock::time_point now = Clock::now();
      if (listen_open && self->draining()) {
        // Drain begins: stop accepting. Unlinking the path now makes new
        // connect() attempts fail fast instead of queueing in the backlog.
        ::close(listen_fd);
        listen_fd = -1;
        ::unlink(options.socket_path.c_str());
        listen_open = false;
      }
      fds.clear();
      session_fds.clear();
      session_gens.clear();
      fds.push_back({wake_read, POLLIN, 0});
      const bool accept_ready = listen_open && now >= accept_cooldown_until;
      if (accept_ready) fds.push_back({listen_fd, POLLIN, 0});
      for (auto& [fd, s] : sessions) {
        short events = POLLIN;
        if (s.out_off < s.outbuf.size()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
        session_fds.push_back(fd);
        session_gens.push_back(s.generation);
      }
      ::poll(fds.data(), fds.size(), /*timeout_ms=*/20);

      if (fds[0].revents & POLLIN) {
        char drain[64];
        while (::read(wake_read, drain, sizeof(drain)) > 0) {
        }
      }
      DeliverCompleted();
      size_t idx = 1;
      if (accept_ready) {
        if (fds[idx].revents & (POLLIN | POLLERR)) Accept();
        ++idx;
      }
      for (size_t i = 0; i < session_fds.size(); ++i) {
        const pollfd& p = fds[idx + i];
        const int fd = p.fd;
        // The session may have been closed this tick — and a fresh accept
        // may have recycled its fd number. Only the session the revents
        // were polled for may act on them.
        auto live = sessions.find(fd);
        if (live == sessions.end() ||
            live->second.generation != session_gens[i]) {
          continue;
        }
        if (p.revents & (POLLERR | POLLNVAL)) {
          CloseSession(fd);
          continue;
        }
        if (p.revents & POLLOUT) {
          auto it = sessions.find(fd);
          if (it != sessions.end() && !FlushSession(fd, it->second)) {
            CloseSession(fd);
            continue;
          }
        }
        if (p.revents & (POLLIN | POLLHUP)) HandleReadable(fd);
      }
      SweepSessions(Clock::now());

      uint64_t pending = 0;
      for (auto& [fd, s] : sessions) {
        pending += s.outbuf.size() - s.out_off;
      }
      pending_out_bytes.store(pending, std::memory_order_relaxed);
      PublishMetrics(loop_metrics);
    }
    PublishMetrics(loop_metrics);
    // Shutdown: drop every session and the listening socket.
    for (auto& [fd, s] : sessions) {
      s.cancel.Cancel();
      ::close(fd);
    }
    sessions.clear();
    session_count.store(0, std::memory_order_relaxed);
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    ::unlink(options.socket_path.c_str());
  }

  // --- worker side -----------------------------------------------------------

  void WorkerLoop(size_t worker_index) {
    // Private registry, same discipline as the event loop's: the selection
    // pipeline's ParallelFor threads record into it too, but they join
    // before RunCatapultSelection returns, so publishing after each job
    // observes fully-quiesced shards.
    obs::MetricsRegistry worker_metrics;
    obs::ScopedMetricsScope metrics_scope(&worker_metrics);
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [this] {
          return !queue.empty() || workers_stop.load(std::memory_order_relaxed);
        });
        if (queue.empty()) return;  // workers_stop and nothing left
        job = std::move(queue.front());
        queue.pop_front();
        active_jobs++;
        running[worker_index] = job.cancel;
      }
      RunJob(job, worker_metrics, worker_index);
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        active_jobs--;
        running[worker_index] = CancelToken();
      }
    }
  }

  void RunJob(const Job& job, obs::MetricsRegistry& metrics,
              size_t worker_index) {
    // Test hook: hold the job so chaos tests can pile up the queue or
    // disconnect the client mid-request.
    while (CATAPULT_FAILPOINT("serve.worker_hold") && !job.cancel.Cancelled() &&
           !workers_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Completed done;
    done.fd = job.fd;
    done.generation = job.generation;
    if (!job.cancel.Cancelled() &&
        !workers_stop.load(std::memory_order_relaxed)) {
      const double queue_wait_ms = MillisSince(job.admitted, Clock::now());
      obs::Observe(obs::Hist::kServeQueueWaitMillis,
                   static_cast<uint64_t>(queue_wait_ms));
      const CatapultOptions opts = RequestOptions(job.request);
      obs::Tracer* tracer = options.enable_tracing ? &self->tracer_ : nullptr;
      // The request span parents under the client's propagated span id —
      // ids are only meaningful within one trace id, which the request
      // carries alongside.
      obs::Span request_span(tracer, "serve.request",
                             job.request.parent_span_id);
      RunContext ctx(job.deadline, job.cancel, memory);
      ctx = ctx.WithObservability(&metrics, tracer);
      const Clock::time_point run_start = Clock::now();
      const CatapultResult result =
          RunCatapultSelection(*db, *corpus, opts, ctx);

      Panel panel;
      panel.degraded = result.execution.Degraded();
      panel.labels = label_names;
      panel.patterns = result.selection.patterns;
      const std::string panel_bytes = EncodePanel(panel);
      // Degraded panels are one deadline's best effort, not the answer for
      // this budget; caching them would freeze the degradation.
      if (!panel.degraded) CacheInsert(job.request, panel_bytes);

      MineReply reply;
      reply.cache_hit = false;
      reply.panel = panel_bytes;
      done.bytes =
          dist::EncodeFrame(dist::FrameType::kServeResponse, Encode(reply));
      obs::Count(obs::Counter::kServeResponses);
      if (panel.degraded) obs::Count(obs::Counter::kServeDegraded);
      obs::Observe(obs::Hist::kServeRequestMillis,
                   static_cast<uint64_t>(
                       MillisSince(job.admitted, Clock::now())));
      request_span.Close();
      const double run_ms = MillisSince(run_start, Clock::now());
      const bool slow =
          options.slow_request_ms > 0.0 && run_ms > options.slow_request_ms;
      if (slow) obs::Count(obs::Counter::kServeSlowRequests);
      obs::RequestLogEvent ev;
      ev.request_id = job.request_id;
      ev.budget_key = BudgetKey(job.request);
      ev.outcome = panel.degraded ? "degraded" : "ok";
      ev.queue_wait_ms = queue_wait_ms;
      ev.run_ms = run_ms;
      ev.panel_patterns = panel.patterns.size();
      ev.panel_bytes = panel_bytes.size();
      ev.worker = static_cast<int>(worker_index);
      ev.slow = slow;
      ev.trace_id = job.request.trace_id;
      ev.parent_span_id = job.request.parent_span_id;
      LogRequest(ev);
    }
    // Publish before queueing the completion: once a client can observe
    // the reply, this job's counters are already visible in Metrics().
    PublishMetrics(metrics);
    {
      std::lock_guard<std::mutex> lock(completed_mutex);
      completed.push_back(std::move(done));
    }
    Wake();
  }

  // True when no work is queued, running, or waiting to be written.
  bool Quiesced() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (!queue.empty() || active_jobs != 0) return false;
    }
    {
      std::lock_guard<std::mutex> lock(completed_mutex);
      if (!completed.empty()) return false;
    }
    return pending_out_bytes.load(std::memory_order_relaxed) == 0;
  }
};

Server::Server() = default;

Server::~Server() { Stop(); }

std::string Server::Start(const GraphDatabase& db, const ServeOptions& options,
                          const PreparedCorpus* prepared) {
  if (started_) return "already started";
  if (options.socket_path.empty()) return "options: socket_path is required";
  {
    const std::vector<OptionsError> errors =
        ValidateCatapultOptions(options.pipeline);
    if (!errors.empty()) {
      return "options: " + errors.front().field + ": " +
             errors.front().message;
    }
  }

  auto impl = std::make_unique<Impl>();
  impl->self = this;
  impl->db = &db;
  impl->options = options;
  if (impl->options.worker_threads == 0) impl->options.worker_threads = 1;
  if (impl->options.max_queue_depth == 0) impl->options.max_queue_depth = 1;
  if (impl->options.max_sessions == 0) impl->options.max_sessions = 1;

  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return "options: socket_path too long for AF_UNIX";
  }

  if (options.pipeline.mem_hard_limit_bytes != 0 ||
      options.pipeline.mem_soft_limit_bytes != 0) {
    impl->memory = MemoryBudget::Limited(options.pipeline.mem_soft_limit_bytes,
                                         options.pipeline.mem_hard_limit_bytes);
  }

  if (prepared != nullptr) {
    if (!prepared->ok()) return "options: prepared corpus carries errors";
    impl->corpus = prepared;
  } else {
    RunContext prepare_ctx(Deadline::Infinite(), CancelToken(), impl->memory);
    prepare_ctx = prepare_ctx.WithObservability(&metrics_, &tracer_);
    impl->owned_corpus = PrepareCorpus(db, options.pipeline, prepare_ctx);
    if (!impl->owned_corpus.ok()) {
      return "options: " + impl->owned_corpus.option_errors.front().field +
             ": " + impl->owned_corpus.option_errors.front().message;
    }
    impl->corpus = &impl->owned_corpus;
  }

  const LabelMap& labels = db.labels();
  impl->label_names.reserve(labels.size());
  for (size_t l = 0; l < labels.size(); ++l) {
    impl->label_names.push_back(labels.Name(static_cast<Label>(l)));
  }

  impl->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) return std::string("socket: ") + std::strerror(errno);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());  // replace a stale socket file
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return std::string("bind: ") + std::strerror(errno);
  }
  if (::listen(impl->listen_fd, 64) != 0) {
    return std::string("listen: ") + std::strerror(errno);
  }
  if (!SetNonBlocking(impl->listen_fd)) {
    return std::string("fcntl: ") + std::strerror(errno);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return std::string("pipe: ") + std::strerror(errno);
  }
  impl->wake_read = pipe_fds[0];
  impl->wake_write = pipe_fds[1];
  SetNonBlocking(impl->wake_read);
  SetNonBlocking(impl->wake_write);

  socket_path_ = options.socket_path;
  impl_ = std::move(impl);
  impl_->start_time = Clock::now();
  // Deterministic trace id for the serving process: the corpus fingerprint
  // folded with the seed, matching what a one-shot run of the same config
  // would stamp, so client and server trace files correlate.
  if (options.enable_tracing && tracer_.trace_id() == 0) {
    tracer_.SetTraceId(impl_->corpus->fingerprint ^ options.pipeline.seed);
  }
  if (!options.request_log_path.empty()) {
    const std::string log_err = impl_->reqlog.Start(options.request_log_path);
    if (!log_err.empty()) return "request-log: " + log_err;
  }
  if (!options.admin_listen.empty()) {
    const std::string admin_err = impl_->admin.Start(
        options.admin_listen, [impl = impl_.get()](const std::string& path) {
          return impl->HandleAdmin(path);
        });
    if (!admin_err.empty()) return "admin: " + admin_err;
  }
  impl_->running.resize(impl_->options.worker_threads);
  impl_->event_thread = std::thread([this] { impl_->EventLoop(); });
  impl_->workers.reserve(impl_->options.worker_threads);
  for (size_t i = 0; i < impl_->options.worker_threads; ++i) {
    impl_->workers.emplace_back([this, i] { impl_->WorkerLoop(i); });
  }
  started_ = true;
  return "";
}

void Server::BeginDrain() {
  if (impl_ == nullptr) return;
  draining_.store(true, std::memory_order_relaxed);
  impl_->Wake();
}

void Server::Stop() {
  if (impl_ == nullptr || impl_->stopped) return;
  BeginDrain();
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             impl_->options.drain_timeout_ms));
  while (Clock::now() < give_up && !impl_->Quiesced()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Whatever survived the drain window is cancelled, not awaited.
  impl_->workers_stop.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    for (Impl::Job& job : impl_->queue) job.cancel.Cancel();
    impl_->queue.clear();
    for (CancelToken& token : impl_->running) token.Cancel();
  }
  impl_->queue_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  impl_->loop_stop.store(true, std::memory_order_relaxed);
  impl_->Wake();
  // Start may fail between installing impl_ and spawning threads (request
  // log / admin endpoint errors), so the joins must tolerate never-started
  // threads.
  if (impl_->event_thread.joinable()) impl_->event_thread.join();
  impl_->admin.Stop();
  impl_->reqlog.Stop();  // flushes the queue
  impl_->stopped = true;
}

size_t Server::active_sessions() const {
  return impl_ ? impl_->session_count.load(std::memory_order_relaxed) : 0;
}

size_t Server::queue_depth() const {
  return impl_ ? impl_->QueueDepth() : 0;
}

obs::MetricsSnapshot Server::Metrics() const {
  // metrics_ holds only what corpus preparation recorded, single-threaded
  // inside Start; nothing writes it once the serve threads exist, so this
  // Snapshot honours the registry's quiescence contract. Everything the
  // serve threads record arrives via their published deltas.
  obs::MetricsSnapshot out = metrics_.Snapshot();
  if (impl_ != nullptr) {
    std::lock_guard<std::mutex> lock(impl_->metrics_mutex);
    MergeSnapshot(impl_->published, &out);
  }
  return out;
}

const PreparedCorpus& Server::corpus() const {
  static const PreparedCorpus kEmpty;
  return impl_ && impl_->corpus ? *impl_->corpus : kEmpty;
}

#else  // !CATAPULT_SERVE_POSIX

struct Server::Impl {};

Server::Server() = default;
Server::~Server() = default;

std::string Server::Start(const GraphDatabase&, const ServeOptions&,
                          const PreparedCorpus*) {
  return "unsupported platform: the pattern-selection service needs POSIX "
         "sockets";
}

void Server::BeginDrain() {}
void Server::Stop() {}
size_t Server::active_sessions() const { return 0; }
size_t Server::queue_depth() const { return 0; }
obs::MetricsSnapshot Server::Metrics() const { return metrics_.Snapshot(); }

const PreparedCorpus& Server::corpus() const {
  static const PreparedCorpus kEmpty;
  return kEmpty;
}

#endif  // CATAPULT_SERVE_POSIX

}  // namespace catapult::serve
