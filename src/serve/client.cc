#include "src/serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define CATAPULT_SERVE_POSIX 1
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace catapult::serve {

#if defined(CATAPULT_SERVE_POSIX)

namespace {
using Clock = std::chrono::steady_clock;

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif
}  // namespace

ServeClient::~ServeClient() { Close(); }

std::string ServeClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return "connect: socket path too long for AF_UNIX";
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::string("socket: ") + std::strerror(errno);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return "connect: " + reason;
  }
  fd_ = fd;
  reader_ = dist::FrameReader();
  return "";
}

void ServeClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServeClient::SendRawBytes(const std::string& bytes) {
  if (fd_ < 0) return false;
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, kSendFlags);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string ServeClient::ReadFrame(dist::Frame* frame, double timeout_ms) {
  if (fd_ < 0) return "not connected";
  const bool bounded = timeout_ms > 0.0;
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  char buf[16384];
  for (;;) {
    if (reader_.corrupt()) return "stream corrupt: " + reader_.error();
    std::optional<dist::Frame> next = reader_.Next();
    if (next.has_value()) {
      *frame = std::move(*next);
      return "";
    }
    int wait_ms = -1;
    if (bounded) {
      const double remaining =
          std::chrono::duration<double, std::milli>(give_up - Clock::now())
              .count();
      if (remaining <= 0.0) return "timed out waiting for reply";
      wait_ms = static_cast<int>(remaining) + 1;
    }
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::string("poll: ") + std::strerror(errno);
    }
    if (ready == 0) return "timed out waiting for reply";
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return "connection closed by server";
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return std::string("recv: ") + std::strerror(errno);
  }
}

ServeClient::MineOutcome ServeClient::Mine(const MineRequest& request,
                                           double timeout_ms) {
  MineOutcome outcome;
  if (!SendRawBytes(
          dist::EncodeFrame(dist::FrameType::kServeRequest, Encode(request)))) {
    outcome.error = "send failed";
    return outcome;
  }
  dist::Frame frame;
  const std::string read_error = ReadFrame(&frame, timeout_ms);
  if (!read_error.empty()) {
    outcome.error = read_error;
    return outcome;
  }
  switch (frame.type) {
    case dist::FrameType::kServeResponse:
      if (!Decode(frame.payload, &outcome.reply) ||
          !DecodePanel(outcome.reply.panel, &outcome.panel)) {
        outcome.error = "undecodable panel reply";
        return outcome;
      }
      outcome.kind = MineOutcome::Kind::kPanel;
      return outcome;
    case dist::FrameType::kServeShed:
      if (!Decode(frame.payload, &outcome.shed)) {
        outcome.error = "undecodable shed reply";
        return outcome;
      }
      outcome.kind = MineOutcome::Kind::kShed;
      outcome.request_id = outcome.shed.request_id;
      return outcome;
    case dist::FrameType::kServeError: {
      ErrorReply err;
      if (!Decode(frame.payload, &err)) {
        outcome.error = "undecodable error reply";
        return outcome;
      }
      outcome.kind = MineOutcome::Kind::kError;
      outcome.error = err.message;
      outcome.request_id = err.request_id;
      return outcome;
    }
    default:
      outcome.error = "unexpected reply frame type";
      return outcome;
  }
}

ServeClient::MineOutcome ServeClient::MineWithRetry(const MineRequest& request,
                                                    size_t max_attempts,
                                                    double timeout_ms,
                                                    std::string* retry_log) {
  MineOutcome outcome;
  for (size_t attempt = 0; attempt + 1 < max_attempts; ++attempt) {
    outcome = Mine(request, timeout_ms);
    if (outcome.kind != MineOutcome::Kind::kShed) return outcome;
    if (retry_log != nullptr) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "retry attempt=%zu shed=%s request_id=%llu backoff_ms=%g\n",
                    attempt + 1, ToString(outcome.shed.reason),
                    static_cast<unsigned long long>(outcome.shed.request_id),
                    outcome.shed.retry_after_ms);
      retry_log->append(line);
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        outcome.shed.retry_after_ms));
  }
  return max_attempts == 0 ? outcome : Mine(request, timeout_ms);
}

std::string ServeClient::Ping(PongReply* pong, double timeout_ms) {
  PingRequest ping;
  ping.nonce = 0x70696e67u;  // "ping"
  if (!SendRawBytes(
          dist::EncodeFrame(dist::FrameType::kServePing, Encode(ping)))) {
    return "send failed";
  }
  dist::Frame frame;
  const std::string read_error = ReadFrame(&frame, timeout_ms);
  if (!read_error.empty()) return read_error;
  if (frame.type != dist::FrameType::kServePong ||
      !Decode(frame.payload, pong)) {
    return "undecodable pong reply";
  }
  return "";
}

#else  // !CATAPULT_SERVE_POSIX

ServeClient::~ServeClient() = default;
std::string ServeClient::Connect(const std::string&) {
  return "unsupported platform";
}
void ServeClient::Close() {}
bool ServeClient::SendRawBytes(const std::string&) { return false; }
std::string ServeClient::ReadFrame(dist::Frame*, double) {
  return "unsupported platform";
}
ServeClient::MineOutcome ServeClient::Mine(const MineRequest&, double) {
  MineOutcome outcome;
  outcome.error = "unsupported platform";
  return outcome;
}
ServeClient::MineOutcome ServeClient::MineWithRetry(const MineRequest&, size_t,
                                                    double, std::string*) {
  return Mine(MineRequest{}, 0.0);
}
std::string ServeClient::Ping(PongReply*, double) {
  return "unsupported platform";
}

#endif  // CATAPULT_SERVE_POSIX

}  // namespace catapult::serve
