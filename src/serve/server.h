#ifndef CATAPULT_SERVE_SERVER_H_
#define CATAPULT_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/catapult.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// Resident pattern-selection service (DESIGN.md §13). A Server loads a
// graph database once, prepares the budget-independent clustering/CSG
// corpus, then answers "canned-pattern panel for budget (eta_min, eta_max,
// gamma)" requests over a Unix-domain socket speaking the CTWF-framed
// protocol of serve/protocol.h.
//
// The robustness envelope, in admission order:
//   - undecodable frame/payload -> poisoned stream, that client is dropped;
//     the process never dies from peer bytes
//   - invalid budget -> ErrorReply, connection stays healthy
//   - draining -> ShedReply(kDraining)
//   - cache hit -> answered from the event loop, no worker touched
//   - queue at max_queue_depth or memory pressure -> ShedReply with
//     retry_after_ms (explicit load shedding, not silent queueing)
//   - admitted -> bounded queue -> worker runs RunCatapultSelection under
//     the request deadline; expiry yields a degraded-but-valid anytime
//     panel, never a timeout error
// Slow clients hit a write timeout, idle ones are reaped, and a client
// disconnect cancels its in-flight work. BeginDrain/Stop implement the
// SIGTERM story: stop accepting, finish or shed in-flight, then exit with
// metrics intact.
//
// Failpoints (tests/serve_test.cc, scripts/serve_stress.sh):
//   serve.accept_fail      accept() reports EMFILE -> cooldown, not spin
//   serve.overload         admission sees the queue as full
//   serve.memory_pressure  admission sees memory pressure
//   serve.write_stall      socket writes make no progress (slow client)
//   serve.worker_hold      workers hold jobs (pile-up / disconnect window)

namespace catapult::serve {

struct ServeOptions {
  // Filesystem path of the Unix-domain listening socket. Created on Start
  // (an existing stale socket file is replaced), unlinked on Stop.
  std::string socket_path;

  // Worker threads executing selection jobs.
  size_t worker_threads = 2;

  // Admission queue capacity; a request arriving past it is shed.
  size_t max_queue_depth = 16;

  // Concurrent session cap; extra connections get ShedReply(kSessionLimit).
  size_t max_sessions = 64;

  // Keyed result cache: complete panels per (eta_min, eta_max, gamma),
  // evicted least-recently-used. 0 disables caching.
  size_t cache_capacity = 32;

  // Per-request deadline applied when the request carries none (0 = no
  // default), and the cap on client-supplied deadlines (0 = uncapped).
  double default_deadline_ms = 0.0;
  double max_deadline_ms = 0.0;

  // Backoff hint carried in ShedReply.
  double retry_after_ms = 100.0;

  // A session with no traffic and no in-flight work for this long is
  // disconnected (0 = never).
  double idle_timeout_ms = 0.0;

  // A session whose pending reply bytes make no write progress for this
  // long is disconnected.
  double write_timeout_ms = 5000.0;

  // How long Stop waits for in-flight work and pending replies before
  // cancelling what remains.
  double drain_timeout_ms = 2000.0;

  // Pause before retrying accept() after EMFILE-class failures, so a
  // descriptor-exhausted server backs off instead of spinning.
  double accept_retry_ms = 50.0;

  // Pipeline configuration: clustering/sampling options and seed used to
  // prepare the corpus; selector options other than the budget (walks,
  // decay) used for every request. Per-request deadlines come from the
  // protocol, so pipeline.deadline_ms applies to corpus preparation only.
  CatapultOptions pipeline;

  // --- Observability (DESIGN.md §16) ----------------------------------------
  // Admin endpoint ("unix:PATH" / "tcp:HOST:PORT"; empty = disabled)
  // serving /metrics (Prometheus text), /statusz (JSON) and /healthz on its
  // own listener + thread, scrape-safe while requests are in flight.
  std::string admin_listen;
  // Structured request log: one JSONL line per served/shed/failed request,
  // appended asynchronously (empty = disabled).
  std::string request_log_path;
  // Requests whose selection runtime exceeds this are counted
  // (serve.slow_requests) and flagged slow=true in the request log
  // (0 = never).
  double slow_request_ms = 0.0;
  // Record per-request spans (plus the selection pipeline's spans) into
  // tracer(). Off by default: a loaded server's span buffer grows without
  // bound until the owner writes/clears it.
  bool enable_tracing = false;
};

// The resident server. Start spawns the event-loop and worker threads and
// returns; the caller owns lifetime and calls Stop (or destroys the
// Server) to shut down. Thread-safe: BeginDrain/Stop/observers may be
// called from any thread (e.g. a signal-watcher).
class Server {
 public:
  Server();
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket, prepares the corpus from `db` (or adopts `prepared`,
  // which must outlive the server and match options.pipeline), and starts
  // serving. Returns an empty string on success, else a reason ("options:
  // ...", "bind: ...", "unsupported platform"). `db` must outlive the
  // server.
  std::string Start(const GraphDatabase& db, const ServeOptions& options,
                    const PreparedCorpus* prepared = nullptr);

  // Stops accepting connections and sheds new requests with kDraining;
  // in-flight and queued work still completes. Idempotent.
  void BeginDrain();

  // BeginDrain, wait up to drain_timeout_ms for the queue, workers, and
  // pending replies to quiesce, cancel whatever remains, join all threads,
  // unlink the socket. Idempotent; the destructor calls it.
  void Stop();

  bool started() const { return started_; }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  const std::string& socket_path() const { return socket_path_; }

  // Live session / queue observers (approximate across threads).
  size_t active_sessions() const;
  size_t queue_depth() const;

  // Merged metrics: corpus preparation plus serve.* and every pipeline
  // counter the selection jobs recorded. Safe to call from any thread at
  // any time — serve threads publish deltas (the event loop once per poll
  // tick, workers before each reply is queued), so a counter for a reply
  // the client has observed is already visible, while event-loop counters
  // (accepts, disconnects, sheds and cache hits answered inline) may
  // trail the observable effect by one poll tick.
  // After Stop the snapshot is exact.
  obs::MetricsSnapshot Metrics() const;

  // Corpus preparation diagnostics (valid after a successful Start).
  const PreparedCorpus& corpus() const;

  // The server's tracer: corpus-preparation spans always land here, and
  // per-request spans do when options.enable_tracing is set. Thread-safe to
  // write into; owners typically WriteFile after Stop (--trace-out).
  obs::Tracer* tracer() { return &tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  bool started_ = false;
  std::atomic<bool> draining_{false};
  std::string socket_path_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
};

}  // namespace catapult::serve

#endif  // CATAPULT_SERVE_SERVER_H_
