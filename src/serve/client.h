#ifndef CATAPULT_SERVE_CLIENT_H_
#define CATAPULT_SERVE_CLIENT_H_

#include <string>

#include "src/dist/wire.h"
#include "src/serve/protocol.h"

// Blocking client for the pattern-selection service (DESIGN.md §13): one
// Unix-domain connection, one request/reply exchange at a time. Used by the
// catapult_client binary and as the chaos harness of tests/serve_test.cc —
// SendRawBytes/ReadFrame exist so tests can speak malformed protocol on
// purpose (torn frames, bad checksums, silence).

namespace catapult::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connects to the server socket. Returns an empty string on success, else
  // the reason ("connect: No such file or directory", ...).
  std::string Connect(const std::string& socket_path);

  bool connected() const { return fd_ >= 0; }
  void Close();
  int fd() const { return fd_; }

  // Every way one Mine exchange can end.
  struct MineOutcome {
    enum class Kind {
      kPanel,      // a panel reply (complete or degraded); `reply`/`panel` set
      kShed,       // admission refused; `shed` set
      kError,      // request rejected; `error` holds the server's message
      kTransport,  // connection-level failure; `error` holds the reason
    };
    Kind kind = Kind::kTransport;
    MineReply reply;
    Panel panel;
    ShedReply shed;
    std::string error;
    // Server-assigned request id from a shed/error reply (0 when the server
    // never assigned one, e.g. transport failures or panel replies). Joins
    // client-side retry logs with the server's structured request log.
    uint64_t request_id = 0;
  };

  // One request/reply exchange. `timeout_ms` bounds the wait for the reply
  // (0 = wait forever).
  MineOutcome Mine(const MineRequest& request, double timeout_ms = 30000.0);

  // As Mine, but a shed reply is retried after its retry_after_ms hint, up
  // to `max_attempts` total attempts (the last shed is then returned). When
  // `retry_log` is non-null, one line per retried shed is appended to it
  // (reason, server request id, backoff) so operators can join client
  // retries against the server's request log.
  MineOutcome MineWithRetry(const MineRequest& request, size_t max_attempts,
                            double timeout_ms = 30000.0,
                            std::string* retry_log = nullptr);

  // Liveness probe. Empty string on success (and `pong` filled), else the
  // transport error.
  std::string Ping(PongReply* pong, double timeout_ms = 5000.0);

  // Chaos-harness access: write arbitrary bytes to the socket / read one
  // frame off it. ReadFrame returns an empty string on success.
  bool SendRawBytes(const std::string& bytes);
  std::string ReadFrame(dist::Frame* frame, double timeout_ms = 5000.0);

 private:
  int fd_ = -1;
  dist::FrameReader reader_;
};

}  // namespace catapult::serve

#endif  // CATAPULT_SERVE_CLIENT_H_
