#include "src/serve/protocol.h"

#include "src/persist/codec.h"
#include "src/persist/record_io.h"

namespace catapult::serve {

namespace {

using persist::BinaryReader;
using persist::BinaryWriter;

// Caps on decoded collection sizes. A hostile peer can claim any length in
// a variable-size field; these bounds keep a single 4MB frame from turning
// into an unbounded allocation. Far above anything a legal panel produces.
constexpr uint64_t kMaxPanelPatterns = 1u << 16;
constexpr uint64_t kMaxPanelLabels = 1u << 20;

bool FinishDecode(BinaryReader& in) { return in.ok() && in.AtEnd(); }

}  // namespace

const char* ToString(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kMemoryPressure:
      return "memory_pressure";
    case ShedReason::kDraining:
      return "draining";
    case ShedReason::kSessionLimit:
      return "session_limit";
  }
  return "unknown";
}

std::string Encode(const MineRequest& m) {
  BinaryWriter out;
  out.PutU32(m.protocol_version);
  out.PutU64(m.eta_min);
  out.PutU64(m.eta_max);
  out.PutU64(m.gamma);
  out.PutDouble(m.deadline_ms);
  out.PutU8(m.bypass_cache ? 1 : 0);
  out.PutU64(m.trace_id);
  out.PutU64(m.parent_span_id);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, MineRequest* m) {
  BinaryReader in(payload);
  m->protocol_version = in.GetU32();
  m->eta_min = in.GetU64();
  m->eta_max = in.GetU64();
  m->gamma = in.GetU64();
  m->deadline_ms = in.GetDouble();
  m->bypass_cache = in.GetU8() != 0;
  m->trace_id = in.GetU64();
  m->parent_span_id = in.GetU64();
  return FinishDecode(in);
}

std::string Encode(const MineReply& m) {
  BinaryWriter out;
  out.PutU8(m.cache_hit ? 1 : 0);
  out.PutString(m.panel);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, MineReply* m) {
  BinaryReader in(payload);
  m->cache_hit = in.GetU8() != 0;
  m->panel = in.GetString();
  return FinishDecode(in);
}

std::string Encode(const ShedReply& m) {
  BinaryWriter out;
  out.PutU32(static_cast<uint32_t>(m.reason));
  out.PutDouble(m.retry_after_ms);
  out.PutU64(m.queue_depth);
  out.PutU64(m.request_id);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, ShedReply* m) {
  BinaryReader in(payload);
  const uint32_t reason = in.GetU32();
  m->retry_after_ms = in.GetDouble();
  m->queue_depth = in.GetU64();
  m->request_id = in.GetU64();
  if (!FinishDecode(in)) return false;
  if (reason < static_cast<uint32_t>(ShedReason::kQueueFull) ||
      reason > static_cast<uint32_t>(ShedReason::kSessionLimit)) {
    return false;
  }
  m->reason = static_cast<ShedReason>(reason);
  return true;
}

std::string Encode(const ErrorReply& m) {
  BinaryWriter out;
  out.PutString(m.message);
  out.PutU64(m.request_id);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, ErrorReply* m) {
  BinaryReader in(payload);
  m->message = in.GetString();
  m->request_id = in.GetU64();
  return FinishDecode(in);
}

std::string Encode(const PingRequest& m) {
  BinaryWriter out;
  out.PutU64(m.nonce);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, PingRequest* m) {
  BinaryReader in(payload);
  m->nonce = in.GetU64();
  return FinishDecode(in);
}

std::string Encode(const PongReply& m) {
  BinaryWriter out;
  out.PutU64(m.nonce);
  out.PutU64(m.sessions);
  out.PutU64(m.queue_depth);
  out.PutU8(m.draining ? 1 : 0);
  return out.TakeBuffer();
}

bool Decode(const std::string& payload, PongReply* m) {
  BinaryReader in(payload);
  m->nonce = in.GetU64();
  m->sessions = in.GetU64();
  m->queue_depth = in.GetU64();
  m->draining = in.GetU8() != 0;
  return FinishDecode(in);
}

std::string EncodePanel(const Panel& panel) {
  BinaryWriter out;
  out.PutU8(panel.degraded ? 1 : 0);
  out.PutU64(panel.labels.size());
  for (const std::string& label : panel.labels) out.PutString(label);
  out.PutU64(panel.patterns.size());
  for (const SelectedPattern& p : panel.patterns) {
    persist::EncodePattern(p, out);
  }
  return out.TakeBuffer();
}

bool DecodePanel(const std::string& bytes, Panel* panel) {
  BinaryReader in(bytes);
  panel->degraded = in.GetU8() != 0;
  const uint64_t num_labels = in.GetU64();
  if (!in.ok() || num_labels > kMaxPanelLabels) return false;
  panel->labels.clear();
  panel->labels.reserve(static_cast<size_t>(num_labels));
  for (uint64_t i = 0; i < num_labels; ++i) {
    panel->labels.push_back(in.GetString());
    if (!in.ok()) return false;
  }
  const uint64_t num_patterns = in.GetU64();
  if (!in.ok() || num_patterns > kMaxPanelPatterns) return false;
  panel->patterns.clear();
  panel->patterns.reserve(static_cast<size_t>(num_patterns));
  for (uint64_t i = 0; i < num_patterns; ++i) {
    SelectedPattern p;
    if (!persist::DecodePattern(in, &p)) return false;
    panel->patterns.push_back(std::move(p));
  }
  return FinishDecode(in);
}

}  // namespace catapult::serve
