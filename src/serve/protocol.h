#ifndef CATAPULT_SERVE_PROTOCOL_H_
#define CATAPULT_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/selector.h"

// Payloads of the pattern-selection service's wire protocol (DESIGN.md
// §13). Frames reuse the CRC-checked CTWF framing of src/dist/wire.h over a
// SOCK_STREAM socket; the payload encodings reuse the persist BinaryWriter/
// BinaryReader, so every decoder inherits the sticky-fail contract: any byte
// string either decodes fully or is rejected with `false`, never a crash or
// out-of-bounds read. A payload that fails to decode poisons the stream
// exactly like a bad frame header — the peer is dropped, never the process.

namespace catapult::serve {

// Bumped when an encoding changes shape. Carried in every request so a
// server can reject clients from a different build instead of mis-decoding.
// v2: trace context (trace_id, parent_span_id) in MineRequest; request ids
// in ShedReply/ErrorReply.
inline constexpr uint32_t kProtocolVersion = 2;

// Client -> server: one canned-pattern panel request. The server owns the
// database and the clustering options; a request only picks the pattern
// budget (the paper's eta_min/eta_max/gamma), an optional per-request
// deadline, and whether the keyed result cache may answer.
struct MineRequest {
  uint32_t protocol_version = kProtocolVersion;
  uint64_t eta_min = 3;
  uint64_t eta_max = 8;
  uint64_t gamma = 12;
  // Wall-clock allowance measured from admission (0 = server default,
  // capped by the server's max). On expiry the reply carries a degraded but
  // valid anytime panel instead of an error.
  double deadline_ms = 0.0;
  // Skip the result cache and recompute (bit-identity audits; the recomputed
  // panel must byte-match the cached one).
  bool bypass_cache = false;
  // Distributed-trace context (DESIGN.md §16; both 0 = untraced). The
  // server records its per-request span against this id and stamps both
  // into the structured request log, so one trace id follows a request
  // across client retries and into the server's telemetry.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

// The deterministic panel section of a response: label names (so a client
// can render/write the panel without the database), the selected patterns,
// and the degradation verdict. Encoded once and byte-compared by the
// cached-vs-recomputed and server-vs-CLI identity tests, so it must never
// contain timing or other volatile fields.
struct Panel {
  bool degraded = false;  // deadline/memory cut selection short (anytime)
  std::vector<std::string> labels;
  std::vector<SelectedPattern> patterns;
};

// Server -> client: a panel reply. `panel` is the encoded Panel bytes kept
// opaque so cache hits replay the exact bytes the original computation
// produced.
struct MineReply {
  bool cache_hit = false;
  std::string panel;
};

// Server -> client: the request was refused by admission control. The
// client should back off for `retry_after_ms` and retry; the connection
// stays healthy.
enum class ShedReason : uint32_t {
  kQueueFull = 1,       // admission queue at capacity
  kMemoryPressure = 2,  // MemoryBudget soft limit exceeded
  kDraining = 3,        // server is shutting down gracefully
  kSessionLimit = 4,    // concurrent-session cap reached
};
const char* ToString(ShedReason reason);

struct ShedReply {
  ShedReason reason = ShedReason::kQueueFull;
  double retry_after_ms = 100.0;
  uint64_t queue_depth = 0;
  // Server-assigned request id (0 = unassigned), matching the server's
  // structured request-log line so a client-side retry log and the server
  // log can be joined on one key.
  uint64_t request_id = 0;
};

// Server -> client: the request was understood but invalid (e.g. a budget
// violating Definition 3.1). The connection stays healthy.
struct ErrorReply {
  std::string message;
  uint64_t request_id = 0;  // server-assigned; 0 = unassigned
};

// Liveness/status probe and its echo.
struct PingRequest {
  uint64_t nonce = 0;
};
struct PongReply {
  uint64_t nonce = 0;
  uint64_t sessions = 0;
  uint64_t queue_depth = 0;
  bool draining = false;
};

std::string Encode(const MineRequest& m);
std::string Encode(const MineReply& m);
std::string Encode(const ShedReply& m);
std::string Encode(const ErrorReply& m);
std::string Encode(const PingRequest& m);
std::string Encode(const PongReply& m);
bool Decode(const std::string& payload, MineRequest* m);
bool Decode(const std::string& payload, MineReply* m);
bool Decode(const std::string& payload, ShedReply* m);
bool Decode(const std::string& payload, ErrorReply* m);
bool Decode(const std::string& payload, PingRequest* m);
bool Decode(const std::string& payload, PongReply* m);

// Panel <-> bytes. EncodePanel is deterministic in its inputs; DecodePanel
// validates structure (pattern count cap, label references) and rejects
// with false instead of crashing.
std::string EncodePanel(const Panel& panel);
bool DecodePanel(const std::string& bytes, Panel* panel);

}  // namespace catapult::serve

#endif  // CATAPULT_SERVE_PROTOCOL_H_
