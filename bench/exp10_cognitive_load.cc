// Exp 10 (Figure 18): which cognitive-load measure predicts human effort?
//
// The paper times 15 participants deciding "is pattern p useful for query
// Q" for 6 patterns of varying topology per dataset, ranks the patterns by
// average decision time ("actual" rank), and correlates that ranking with
// three candidate measures:
//   F1 = |E| * density (the paper's cog),  F2 = 2|E|,  F3 = 2|E| / |V|.
// Participants are simulated by the QFT decision-time model, which is
// driven by F1 plus a vertex-count term plus noise - so the reproduction
// checks that, under noisy observations of an F1-shaped process, F1 and F3
// correlate strongly with the observed ranks while the pure-size measure
// F2 does not (the paper's finding: 0.8 / 0.28 / 0.78).

#include <array>

#include "bench/bench_common.h"
#include "src/core/pattern_score.h"
#include "src/formulate/qft.h"
#include "src/util/stats.h"

namespace catapult {
namespace {

Graph Ring(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(0);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

Graph Chain(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(0);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

Graph Clique(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return g;
}

Graph Star(size_t leaves) {
  Graph g;
  VertexId c = g.AddVertex(0);
  for (size_t i = 0; i < leaves; ++i) g.AddEdge(c, g.AddVertex(0));
  return g;
}

// Average rank (1-based) per item given one score vector; higher score ->
// higher rank index.
std::vector<double> Ranks(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> ranks(scores.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    ranks[order[pos]] = static_cast<double>(pos + 1);
  }
  return ranks;
}

void RunDataset(const char* name, const std::vector<Graph>& patterns,
                uint64_t seed) {
  const size_t kParticipants = 15;
  QftModel model;
  Rng rng(seed);

  // Per-participant decision-time rankings, averaged (the paper's "actual
  // rank": per-participant ranks averaged, then re-ranked).
  std::vector<double> avg_rank(patterns.size(), 0.0);
  for (size_t participant = 0; participant < kParticipants; ++participant) {
    std::vector<double> times;
    times.reserve(patterns.size());
    for (const Graph& p : patterns) {
      times.push_back(SimulateDecisionTime(p, model, rng));
    }
    std::vector<double> ranks = Ranks(times);
    for (size_t i = 0; i < patterns.size(); ++i) avg_rank[i] += ranks[i];
  }
  for (double& r : avg_rank) r /= static_cast<double>(kParticipants);

  std::vector<double> f1;
  std::vector<double> f2;
  std::vector<double> f3;
  for (const Graph& p : patterns) {
    f1.push_back(CognitiveLoad(p));
    f2.push_back(CognitiveLoadDegreeSum(p));
    f3.push_back(CognitiveLoadAvgDegree(p));
  }
  std::printf("%-10s | tau(actual,F1)=%.2f  tau(actual,F2)=%.2f  "
              "tau(actual,F3)=%.2f\n",
              name, KendallTau(avg_rank, f1), KendallTau(avg_rank, f2),
              KendallTau(avg_rank, f3));
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader(
      "Exp 10 (Fig. 18): cognitive-load measures vs simulated task time");

  // Six patterns per dataset spanning topologies and sizes (|V| 4-13,
  // |E| 3-13), as in the paper's setup.
  std::vector<Graph> set_a = {Chain(5),  Star(4),   Ring(6),
                              Clique(4), Chain(10), Ring(13)};
  std::vector<Graph> set_b = {Chain(4),  Star(6),  Ring(5),
                              Clique(5), Chain(13), Ring(9)};
  RunDataset("AIDS-like", set_a, 171);
  RunDataset("PubChem-like", set_b, 173);
  std::printf(
      "\nexpected shape: F1 (density-based, the paper's cog) and F3 track\n"
      "the simulated ranks closely (~0.8); the degree-sum measure F2 does\n"
      "not (~0.3) (paper Fig. 18: 0.8 / 0.28 / 0.78). Clique patterns take\n"
      "longest, matching the paper's edge-crossing observation.\n");
  return 0;
}
