// Ablation: exact branch-and-bound GED vs the assignment-based
// approximation (Riesen-Neuhaus, the paper's reference [32]) as the
// diversity oracle inside Algorithm 4.
//
// Expected: the approximate oracle cuts selection time while producing a
// panel of near-identical diversity/coverage, because the assignment bound
// is tight on canned-pattern-sized graphs and diversity only needs the
// *minimum* over the set, which lower-bound pruning already localises.

#include "bench/bench_common.h"
#include "src/core/weights.h"
#include "src/obs/clock.h"

int main() {
  using namespace catapult;
  bench::PrintHeader("Ablation: exact vs assignment-based GED diversity");

  GraphDatabase db = bench::MakeAidsLike(bench::Scaled(300), 1234);
  CatapultOptions base = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 16}, 231);
  Rng rng(231);
  ClusteringResult clustering = SmallGraphClustering(db, base.clustering, rng);
  std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, clustering.clusters);
  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(80), 233, 4, 30);
  LabelCoverageIndex label_index(db);

  std::printf("%-10s | %8s %8s %8s %8s %8s\n", "ged", "PGT(s)", "div",
              "scov", "MP%", "avg_mu%");
  for (bool approximate : {false, true}) {
    SelectorOptions selector = base.selector;
    selector.approximate_diversity = approximate;
    Rng selection_rng(235);
    WallTimer timer;
    SelectionResult selection = FindCannedPatternSet(
        db, clustering.clusters, csgs, selector, selection_rng);
    double pgt = timer.ElapsedSeconds();
    std::vector<Graph> patterns = selection.PatternGraphs();
    WorkloadReport report = EvaluateGui(queries, MakeCatapultGui(patterns));
    std::printf("%-10s | %8.2f %8.2f %8.3f %8.1f %8.1f\n",
                approximate ? "bipartite" : "exact", pgt,
                AverageSetDiversity(patterns),
                SubgraphCoverage(patterns, db, 250), report.mp_percent,
                report.avg_mu * 100);
  }
  std::printf(
      "\nexpected shape: near-identical div/scov/MP with lower (or equal)\n"
      "PGT for the bipartite oracle; differences grow only when panels\n"
      "contain many large, similar patterns.\n");
  return 0;
}
