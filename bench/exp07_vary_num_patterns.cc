// Exp 7 (Figure 13): effect of the number of canned patterns |P|.
//
// Runs selection at |P| in {5, 10, 20, 30, 40} over a fixed clustering and
// reports max/avg mu, MP, and PGT on four dataset stand-ins would be
// excessive for one core; we use the AIDS-like and PubChem-like pair.
//
// Paper shape: mu is largely flat in |P|; MP drops (~50% from |P|=10 to
// 40); PGT grows with |P|; avg cog stays in [1.65, 1.97].

#include "bench/bench_common.h"
#include "src/obs/clock.h"

namespace catapult {
namespace {

void RunDataset(const char* name, const GraphDatabase& db, uint64_t seed) {
  // Cluster once; rerun only the selection per |P| (PGT is selection time).
  CatapultOptions base = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 5}, seed);
  Rng rng(seed);
  ClusteringResult clustering =
      SmallGraphClustering(db, base.clustering, rng);
  std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, clustering.clusters);
  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(80), seed + 1, 4, 30);

  std::printf("\n--- %s (%zu graphs, %zu clusters) ---\n", name, db.size(),
              clustering.clusters.size());
  std::printf("%4s | %8s %8s %7s %8s %8s\n", "|P|", "max_mu%", "avg_mu%",
              "MP%", "PGT(s)", "avg_cog");
  for (size_t gamma : {size_t{5}, size_t{10}, size_t{20}, size_t{30},
                       size_t{40}}) {
    SelectorOptions selector = base.selector;
    selector.budget.gamma = gamma;
    Rng selection_rng(seed + 2);
    WallTimer timer;
    SelectionResult selection = FindCannedPatternSet(
        db, clustering.clusters, csgs, selector, selection_rng);
    double pgt = timer.ElapsedSeconds();
    GuiModel gui = MakeCatapultGui(selection.PatternGraphs());
    WorkloadReport report = EvaluateGui(queries, gui);
    std::printf("%4zu | %8.1f %8.1f %7.1f %8.2f %8.2f\n", gamma,
                report.max_mu * 100, report.avg_mu * 100, report.mp_percent,
                pgt, AverageCognitiveLoad(gui.patterns));
  }
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 7 (Fig. 13): varying |P|");
  GraphDatabase aids = bench::MakeAidsLike(bench::Scaled(350), 1234);
  RunDataset("AIDS-like", aids, 91);
  GraphDatabase pubchem = bench::MakePubChemLike(bench::Scaled(300), 999);
  RunDataset("PubChem-like", pubchem, 95);
  std::printf(
      "\nexpected shape: mu roughly flat; MP falls as |P| grows; PGT rises\n"
      "with |P|; avg cog stays low (~1.6-2.0) (paper Fig. 13).\n");
  return 0;
}
