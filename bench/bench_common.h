#ifndef CATAPULT_BENCH_BENCH_COMMON_H_
#define CATAPULT_BENCH_BENCH_COMMON_H_

// Shared helpers for the experiment-reproduction harnesses (one binary per
// paper table/figure; see DESIGN.md Section 4).
//
// Dataset sizes are scaled down from the paper (AIDS10K/40K, PubChem
// 23K..1M) so every harness finishes on a single core in tens of seconds;
// set CATAPULT_BENCH_SCALE=<float> to scale all dataset sizes up or down.
// The *shape* of each result (who wins, rough factors, trends) is the
// reproduction target, not absolute magnitudes.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/obs/json.h"

namespace catapult::bench {

// Global dataset scale factor from CATAPULT_BENCH_SCALE (default 1.0).
inline double ScaleFactor() {
  const char* env = std::getenv("CATAPULT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

inline size_t Scaled(size_t base) {
  double scaled = static_cast<double>(base) * ScaleFactor();
  return scaled < 1.0 ? 1 : static_cast<size_t>(scaled);
}

// The stand-in for AIDS10K: molecule-like graphs, 6 scaffold families.
inline GraphDatabase MakeAidsLike(size_t num_graphs, uint64_t seed = 1234) {
  MoleculeGeneratorOptions options;
  options.num_graphs = num_graphs;
  options.min_vertices = 10;
  options.max_vertices = 28;
  options.scaffold_families = 24;
  // Families differ mostly by topology (scaffold pairs), which frequent-
  // subtree features capture only weakly but MCCS captures well - the
  // regime where the paper's hybrid strategy pays off.
  options.family_label_bias = 0.15;
  options.seed = seed;
  return GenerateMoleculeDatabase(options);
}

// The stand-in for PubChem: slightly larger graphs, more families.
inline GraphDatabase MakePubChemLike(size_t num_graphs, uint64_t seed = 999) {
  MoleculeGeneratorOptions options;
  options.num_graphs = num_graphs;
  options.min_vertices = 12;
  options.max_vertices = 32;
  options.scaffold_families = 40;
  options.family_label_bias = 0.15;
  options.seed = seed;
  return GenerateMoleculeDatabase(options);
}

// Default pipeline options tuned for bench throughput (budgets documented
// in DESIGN.md Section 5).
inline CatapultOptions DefaultPipeline(PatternBudget budget, uint64_t seed) {
  CatapultOptions options;
  options.selector.budget = budget;
  options.selector.walks_per_candidate = 25;
  // Exact GED dominates selection time once panels grow; an anytime node
  // budget keeps the diversity oracle honest (still >= the Def. 5.1 bound)
  // while bounding per-pair cost.
  options.selector.ged.node_budget = 15000;
  options.clustering.max_cluster_size = 20;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = seed;
  return options;
}

// Standard query workload (Section 6.1, scaled from 1000 queries).
inline std::vector<Graph> StandardQueries(const GraphDatabase& db,
                                          size_t count, uint64_t seed = 7,
                                          size_t min_edges = 4,
                                          size_t max_edges = 40) {
  QueryWorkloadOptions options;
  options.count = count;
  options.min_edges = min_edges;
  options.max_edges = max_edges;
  options.seed = seed;
  return GenerateQueryWorkload(db, options);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(scale=%.2f; shapes, not absolute numbers, are the target)\n",
              ScaleFactor());
  std::printf("==============================================================\n");
}

// The BENCH_*.json artifacts are emitted through the shared streaming
// writer in src/obs/json.h (promoted from this header so the bench
// harnesses, the selection report, and the metrics/trace dumps all use one
// escaping implementation).
using JsonWriter = ::catapult::obs::JsonWriter;

}  // namespace catapult::bench

#endif  // CATAPULT_BENCH_BENCH_COMMON_H_
