// Exp 4 (Table 1 & Figure 10): simulated user study.
//
// The paper times 25 volunteers formulating 5 queries (sizes 12-40 edges)
// on PubChem / eMolecules panels vs Catapult's panel. Humans are replaced
// by the deterministic QFT cost model in src/formulate/qft.h (per-step
// motor time + per-pattern visual search growing with panel size and
// pattern cognitive load + seeded noise); every query is "formulated" by 5
// simulated participants, as in the paper.
//
// Paper shape: Catapult reduces QFT by up to ~78% and steps by up to ~74%.

#include "bench/bench_common.h"
#include "src/formulate/qft.h"

namespace catapult {
namespace {

void RunStudy(const char* gui_name, const GraphDatabase& db,
              const GuiModel& commercial, size_t budget_gamma,
              uint64_t seed) {
  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = budget_gamma}, seed);
  CatapultResult result = RunCatapult(db, options);
  GuiModel catapult_gui = MakeCatapultGui(result.Patterns());

  // Table 1 stand-in: five queries of increasing size (12..40 edges).
  const size_t sizes[5] = {12, 17, 23, 33, 40};
  QueryWorkloadOptions wl;
  wl.count = 60;
  wl.min_edges = 12;
  wl.max_edges = 40;
  wl.seed = seed + 1;
  std::vector<Graph> pool = GenerateQueryWorkload(db, wl);
  std::vector<Graph> queries;
  for (size_t target : sizes) {
    // Pick the pool query closest to the target size.
    size_t best = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      auto diff = [&](size_t idx) {
        return pool[idx].NumEdges() > target ? pool[idx].NumEdges() - target
                                             : target - pool[idx].NumEdges();
      };
      if (diff(i) < diff(best)) best = i;
    }
    queries.push_back(pool[best]);
  }

  QftModel model;
  Rng rng(seed + 2);
  std::printf("\n--- %s study ---\n", gui_name);
  std::printf("%-5s %5s | %12s %12s | %10s %10s\n", "query", "|E|",
              "QFT_gui(s)", "QFT_cat(s)", "steps_gui", "steps_cat");
  for (size_t i = 0; i < queries.size(); ++i) {
    const Graph& q = queries[i];
    double qft_gui = AverageQft(q, commercial, model, 5, rng);
    double qft_cat = AverageQft(q, catapult_gui, model, 5, rng);
    QueryFormulation f_gui = FormulateQuery(q, commercial);
    QueryFormulation f_cat = FormulateQuery(q, catapult_gui);
    std::printf("Q%-4zu %5zu | %12.1f %12.1f | %10zu %10zu\n", i + 1,
                q.NumEdges(), qft_gui, qft_cat, f_gui.steps_patterns,
                f_cat.steps_patterns);
  }
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader(
      "Exp 4 (Table 1, Fig. 10): simulated user study - QFT & steps");
  GraphDatabase pubchem = bench::MakePubChemLike(bench::Scaled(350), 999);
  RunStudy("PubChem", pubchem, MakePubChemGui(pubchem.labels().Intern("C")),
           12, 51);
  GraphDatabase emol = bench::MakeAidsLike(bench::Scaled(300), 321);
  RunStudy("eMolecules", emol, MakeEMolGui(emol.labels().Intern("C")), 6,
           61);
  std::printf(
      "\nexpected shape: Catapult's QFT and step counts are below the\n"
      "commercial panel on most queries (paper reports up to 78%% / 74%%\n"
      "reductions; the simulator reproduces the ordering).\n");
  return 0;
}
