// Exp 8 (Figures 14, 15, 16): effect of the pattern-size budget.
//
// Part A sweeps eta_min in {3, 5, 7, 9} at eta_max = 12; part B sweeps
// eta_max in {5, 7, 9, 12} at eta_min = 3. Reports max/avg mu, MP, PGT,
// and the diversity/cognitive-load side effects (Figure 16).
//
// Paper shape: growing eta_min sharply raises MP and lowers avg mu (big
// patterns rarely fit a query) and lowers PGT; growing eta_max barely
// moves MP but raises PGT; div rises with eta_min and falls with |P|;
// cog stays roughly constant.

#include "bench/bench_common.h"
#include "src/obs/clock.h"

namespace catapult {
namespace {

struct Sweep {
  const char* title;
  std::vector<PatternBudget> budgets;
};

void RunSweep(const GraphDatabase& db,
              const std::vector<std::vector<GraphId>>& clusters,
              const std::vector<ClusterSummaryGraph>& csgs,
              const std::vector<Graph>& queries, const Sweep& sweep,
              uint64_t seed) {
  std::printf("\n--- %s ---\n", sweep.title);
  std::printf("%5s %5s | %8s %8s %7s %8s %7s %7s\n", "emin", "emax",
              "max_mu%", "avg_mu%", "MP%", "PGT(s)", "div", "cog");
  for (const PatternBudget& budget : sweep.budgets) {
    SelectorOptions selector;
    selector.budget = budget;
    selector.walks_per_candidate = 15;
    // eta_max = 12 makes candidates large; the polynomial GED oracle keeps
    // the 8-budget sweep tractable on one core (see exp14_ablation_ged for
    // the exact-vs-approximate comparison: near-identical panels).
    selector.approximate_diversity = true;
    Rng rng(seed);
    WallTimer timer;
    SelectionResult selection =
        FindCannedPatternSet(db, clusters, csgs, selector, rng);
    double pgt = timer.ElapsedSeconds();
    GuiModel gui = MakeCatapultGui(selection.PatternGraphs());
    WorkloadReport report = EvaluateGui(queries, gui);
    std::printf("%5zu %5zu | %8.1f %8.1f %7.1f %8.2f %7.2f %7.2f\n",
                budget.eta_min, budget.eta_max, report.max_mu * 100,
                report.avg_mu * 100, report.mp_percent, pgt,
                AverageSetDiversity(gui.patterns),
                AverageCognitiveLoad(gui.patterns));
  }
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 8 (Fig. 14-16): varying eta_min / eta_max");

  GraphDatabase db = bench::MakeAidsLike(bench::Scaled(350), 1234);
  CatapultOptions base = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 12, .gamma = 12}, 101);
  Rng rng(101);
  ClusteringResult clustering =
      SmallGraphClustering(db, base.clustering, rng);
  std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, clustering.clusters);
  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(80), 103, 4, 30);

  Sweep sweep_min{"vary eta_min (eta_max = 12, gamma = 12)", {}};
  for (size_t emin : {size_t{3}, size_t{5}, size_t{7}, size_t{9}}) {
    sweep_min.budgets.push_back({.eta_min = emin, .eta_max = 12, .gamma = 12});
  }
  RunSweep(db, clustering.clusters, csgs, queries, sweep_min, 107);

  Sweep sweep_max{"vary eta_max (eta_min = 3, gamma = 12)", {}};
  for (size_t emax : {size_t{5}, size_t{7}, size_t{9}, size_t{12}}) {
    sweep_max.budgets.push_back({.eta_min = 3, .eta_max = emax, .gamma = 12});
  }
  RunSweep(db, clustering.clusters, csgs, queries, sweep_max, 109);

  std::printf(
      "\nexpected shape: raising eta_min sharply raises MP and lowers avg\n"
      "mu while div rises; raising eta_max barely moves MP and raises PGT\n"
      "(paper Figs. 14-16).\n");
  return 0;
}
