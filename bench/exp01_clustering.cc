// Exp 1 (Figure 7): small graph clustering strategies.
//
// Reproduces the comparison of (a) coarse-only (CC), (b) MCCS fine-only
// (mccsFC), (c) MCS fine-only (mcsFC), (d) hybrid with MCCS (mccsH) and
// (e) hybrid with MCS (mcsH) in terms of clustering time and CSG
// compactness xi_t for t in {0.4, 0.5, 0.6}, on an AIDS10K-like and an
// AIDS40K-like dataset (scaled; see bench_common.h).
//
// Paper shape: CC fastest but least compact; mccsFC most expensive; the
// hybrid mccsH reaches the best compactness at reasonable time.

#include "bench/bench_common.h"
#include "src/csg/csg.h"
#include "src/obs/clock.h"

namespace catapult {
namespace {

using bench::PrintHeader;
using bench::Scaled;

struct Config {
  const char* name;
  ClusteringMode mode;
  bool connected_mcs;
};

void RunDataset(const char* dataset_name, const GraphDatabase& db) {
  std::printf("\n--- %s (%zu graphs) ---\n", dataset_name, db.size());
  std::printf("%-8s %12s %10s %10s %10s %10s\n", "config", "time(s)",
              "clusters", "xi0.4", "xi0.5", "xi0.6");

  const Config configs[] = {
      {"CC", ClusteringMode::kCoarseOnly, true},
      {"mccsFC", ClusteringMode::kFineOnly, true},
      {"mcsFC", ClusteringMode::kFineOnly, false},
      {"mccsH", ClusteringMode::kHybrid, true},
      {"mcsH", ClusteringMode::kHybrid, false},
  };
  for (const Config& config : configs) {
    SmallGraphClusteringOptions options;
    options.mode = config.mode;
    options.max_cluster_size = 20;
    options.fine_mcs.connected = config.connected_mcs;
    options.fine_mcs.node_budget = 6000;
    Rng rng(42);
    WallTimer timer;
    ClusteringResult result = SmallGraphClustering(db, options, rng);
    double seconds = timer.ElapsedSeconds();

    std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, result.clusters);
    double xi[3] = {0, 0, 0};
    const double thresholds[3] = {0.4, 0.5, 0.6};
    size_t nonempty = 0;
    for (const ClusterSummaryGraph& csg : csgs) {
      if (csg.NumEdges() == 0) continue;
      ++nonempty;
      for (int t = 0; t < 3; ++t) xi[t] += csg.Compactness(thresholds[t]);
    }
    for (int t = 0; t < 3; ++t) {
      xi[t] = nonempty > 0 ? xi[t] / static_cast<double>(nonempty) : 0.0;
    }
    std::printf("%-8s %12.2f %10zu %10.3f %10.3f %10.3f\n", config.name,
                seconds, result.clusters.size(), xi[0], xi[1], xi[2]);
  }
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader(
      "Exp 1 (Fig. 7): clustering strategies - time & CSG compactness");
  GraphDatabase small = bench::MakeAidsLike(bench::Scaled(300), 1234);
  GraphDatabase large = bench::MakeAidsLike(bench::Scaled(800), 5678);
  RunDataset("AIDS10K-like", small);
  RunDataset("AIDS40K-like", large);
  std::printf(
      "\nexpected shape: CC fastest / least compact; mccsFC slowest;\n"
      "hybrid mccsH most compact at moderate time (paper Fig. 7).\n");
  return 0;
}
