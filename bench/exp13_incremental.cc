// Extension bench (paper Section 1 future work): incremental maintenance
// of canned patterns as the database evolves.
//
// Starts from a mined panel, then streams in batches of new graphs - some
// from the same scaffold families, some from unseen families - and compares
// the incremental updater (assign-to-cluster + re-close + re-select)
// against a full pipeline rerun, in time and in panel quality on a common
// workload.
//
// Expected: the incremental update is several times faster than the full
// rerun while matching its MP/avg-mu closely, and it reports how much of
// the panel actually changed.

#include "bench/bench_common.h"
#include "src/core/maintenance.h"

int main() {
  using namespace catapult;
  bench::PrintHeader("Extension: incremental panel maintenance");

  // Initial corpus: families 0-11. Arrival batches mix familiar (0-11) and
  // novel (12-23) families.
  MoleculeGeneratorOptions gen;
  gen.num_graphs = bench::Scaled(250);
  gen.scaffold_families = 12;
  gen.family_label_bias = 0.15;
  gen.seed = 1234;
  GraphDatabase db = GenerateMoleculeDatabase(gen);

  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 12}, 41);
  CatapultResult initial = RunCatapult(db, options);
  std::printf("initial: %zu graphs, %zu clusters, %zu patterns "
              "(cluster %.1fs + select %.1fs)\n",
              db.size(), initial.clusters.size(),
              initial.selection.patterns.size(), initial.clustering_seconds,
              initial.selection_seconds);

  MoleculeGeneratorOptions arrival_gen = gen;
  arrival_gen.num_graphs = bench::Scaled(80);
  arrival_gen.scaffold_families = 24;  // half familiar, half novel
  arrival_gen.seed = 4321;
  GraphDatabase arrivals_db = GenerateMoleculeDatabase(arrival_gen);
  std::vector<Graph> arrivals(arrivals_db.graphs().begin(),
                              arrivals_db.graphs().end());

  // Incremental update.
  MaintenanceOptions maintenance;
  maintenance.selector = options.selector;
  maintenance.min_affinity = 0.7;   // only near-perfect folds join
  maintenance.max_cluster_size = 30;
  GraphDatabase updated;
  MaintenanceResult inc =
      UpdateWithNewGraphs(db, initial, arrivals, maintenance, &updated);

  // Full rerun on the updated database.
  CatapultResult full = RunCatapult(updated, options);
  double full_seconds = full.clustering_seconds + full.csg_seconds +
                        full.selection_seconds;

  std::vector<Graph> queries =
      bench::StandardQueries(updated, bench::Scaled(80), 43, 4, 30);
  WorkloadReport inc_report =
      EvaluateGui(queries, MakeCatapultGui(inc.selection.PatternGraphs()));
  WorkloadReport full_report =
      EvaluateGui(queries, MakeCatapultGui(full.Patterns()));

  std::printf("\n%-12s %10s %8s %8s %10s\n", "method", "time(s)", "MP%",
              "avg_mu%", "panel");
  std::printf("%-12s %10.2f %8.1f %8.1f  %zu kept / %zu changed, %zu new "
              "clusters\n",
              "incremental", inc.update_seconds, inc_report.mp_percent,
              inc_report.avg_mu * 100, inc.patterns_kept,
              inc.patterns_changed, inc.new_clusters);
  std::printf("%-12s %10.2f %8.1f %8.1f  (from scratch)\n", "full rerun",
              full_seconds, full_report.mp_percent,
              full_report.avg_mu * 100);
  std::printf(
      "\nexpected shape: the incremental update skips the clustering phase\n"
      "entirely (its cost is dominated by re-selection), surfaces novel\n"
      "families as new clusters, and recovers most of the full rerun's\n"
      "panel quality; the residual MP/mu gap is the price of freezing the\n"
      "old clustering and shrinks with stricter min_affinity. Periodic\n"
      "full rebuilds remain advisable, as the paper's vision suggests.\n");
  return 0;
}
