// Ablation (DESIGN.md Section 5 / paper Section 7): random-walk candidate
// generation vs DaVinci-style deterministic greedy growth.
//
// The paper argues (Section 7) that intertwining candidate generation and
// selection via weighted random walks yields more diverse candidates than
// the earlier greedy breadth-first approach. This bench runs Algorithm 4
// with both strategies on the same clustering and compares the resulting
// set's diversity, coverage, and workload metrics.
//
// Expected: random walks give equal-or-better diversity and MP, because
// each iteration can surface different CSG regions, while the greedy
// deterministic growth keeps proposing the same heavy paths.

#include "bench/bench_common.h"
#include "src/core/weights.h"
#include "src/obs/clock.h"

int main() {
  using namespace catapult;
  bench::PrintHeader(
      "Ablation: random-walk vs greedy-BFS candidate generation");

  GraphDatabase db = bench::MakeAidsLike(bench::Scaled(300), 1234);
  CatapultOptions base = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 12}, 211);
  Rng rng(211);
  ClusteringResult clustering = SmallGraphClustering(db, base.clustering, rng);
  std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, clustering.clusters);
  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(80), 213, 4, 30);
  LabelCoverageIndex label_index(db);

  std::printf("%-12s | %8s %8s %8s %8s %8s %8s\n", "strategy", "scov",
              "lcov", "div", "MP%", "avg_mu%", "PGT(s)");
  for (CandidateStrategy strategy :
       {CandidateStrategy::kRandomWalk, CandidateStrategy::kGreedyBfs}) {
    SelectorOptions selector = base.selector;
    selector.strategy = strategy;
    // The paper uses x = 100 walks per candidate (Example 5.3); a small
    // library makes the FCP statistics noisy and handicaps the walk arm.
    selector.walks_per_candidate = 80;
    Rng selection_rng(215);
    WallTimer timer;
    SelectionResult selection = FindCannedPatternSet(
        db, clustering.clusters, csgs, selector, selection_rng);
    double pgt = timer.ElapsedSeconds();
    std::vector<Graph> patterns = selection.PatternGraphs();
    GuiModel gui = MakeCatapultGui(patterns);
    WorkloadReport report = EvaluateGui(queries, gui);
    std::printf("%-12s | %8.3f %8.3f %8.2f %8.1f %8.1f %8.2f\n",
                strategy == CandidateStrategy::kRandomWalk ? "random-walk"
                                                           : "greedy-bfs",
                SubgraphCoverage(patterns, db, 250),
                label_index.SetLabelCoverage(patterns),
                AverageSetDiversity(patterns), report.mp_percent,
                report.avg_mu * 100, pgt);
  }
  std::printf(
      "\nexpected shape: the random-walk strategy wins on the workload\n"
      "metrics (lower MP, higher avg mu - candidates cover different CSG\n"
      "regions each iteration), while deterministic greedy growth is\n"
      "faster and competitive on raw set statistics; the gap widens with\n"
      "more walks (paper Section 7's argument for intertwined\n"
      "generation+selection).\n");
  return 0;
}
