// Exp 2 (Figures 8 & 9): effect of the two-level sampling scheme.
//
// Compares Catapult with and without eager+lazy sampling on two dataset
// sizes, reporting pattern generation time (PGT), missed percentage (MP),
// max/avg reduction ratio mu (Figure 8), and clustering time + CSG
// compactness (Figure 9).
//
// Paper shape: sampling leaves mu / MP / compactness essentially unchanged
// while cutting PGT and clustering time substantially.

#include "bench/bench_common.h"
#include "src/csg/csg.h"

namespace catapult {
namespace {

using bench::Scaled;

struct Row {
  const char* name;
  double pgt = 0.0;
  double cluster_time = 0.0;
  double max_mu = 0.0;
  double avg_mu = 0.0;
  double mp = 0.0;
  double xi[3] = {0, 0, 0};
};

Row RunOne(const char* name, const GraphDatabase& db, bool sampling,
           const std::vector<Graph>& queries) {
  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 12}, /*seed=*/33);
  options.use_sampling = sampling;
  // Scaled-down eager bound so sampling actually bites on bench-sized data
  // (the paper's eps=0.02 bound of 6623 graphs exceeds these datasets).
  options.eager.epsilon = 0.08;
  options.lazy.min_cluster_size_to_sample = 25;
  // Cochran precision scaled so the representative sample is well below the
  // bench-sized |D| (at the paper's 50K+ scale the default e=0.03 already
  // is; see Lemma 4.5's example).
  options.lazy.e = 0.1;

  CatapultResult result = RunCatapult(db, options);

  Row row;
  row.name = name;
  row.pgt = result.selection_seconds;
  row.cluster_time = result.clustering_seconds;

  GuiModel gui = MakeCatapultGui(result.Patterns());
  WorkloadReport report = EvaluateGui(queries, gui);
  row.max_mu = report.max_mu;
  row.avg_mu = report.avg_mu;
  row.mp = report.mp_percent;

  const double thresholds[3] = {0.4, 0.5, 0.6};
  size_t nonempty = 0;
  for (const ClusterSummaryGraph& csg : result.csgs) {
    if (csg.NumEdges() == 0) continue;
    ++nonempty;
    for (int t = 0; t < 3; ++t) row.xi[t] += csg.Compactness(thresholds[t]);
  }
  for (int t = 0; t < 3; ++t) {
    if (nonempty > 0) row.xi[t] /= static_cast<double>(nonempty);
  }
  return row;
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 2 (Fig. 8-9): sampling vs no sampling");

  struct Dataset {
    const char* name;
    size_t size;
    uint64_t seed;
  };
  const Dataset datasets[] = {
      {"AIDS10K-like", bench::Scaled(300), 1234},
      {"AIDS40K-like", bench::Scaled(900), 5678},
  };

  std::printf("%-14s %-6s %9s %9s %8s %8s %7s %7s %7s %7s\n", "dataset",
              "mode", "PGT(s)", "clust(s)", "max_mu", "avg_mu", "MP%",
              "xi0.4", "xi0.5", "xi0.6");
  for (const Dataset& d : datasets) {
    GraphDatabase db = bench::MakeAidsLike(d.size, d.seed);
    std::vector<Graph> queries =
        bench::StandardQueries(db, bench::Scaled(100), 7, 4, 30);
    for (bool sampling : {true, false}) {
      Row row = RunOne(sampling ? "S" : "noS", db, sampling, queries);
      std::printf("%-14s %-6s %9.2f %9.2f %8.2f %8.2f %7.1f %7.3f %7.3f %7.3f\n",
                  d.name, row.name, row.pgt, row.cluster_time,
                  row.max_mu * 100, row.avg_mu * 100, row.mp, row.xi[0],
                  row.xi[1], row.xi[2]);
    }
  }
  std::printf(
      "\nexpected shape: sampling (S) ~= no sampling (noS) on mu/MP/xi, but\n"
      "substantially lower clustering time and PGT on the larger dataset\n"
      "(paper Figs. 8-9).\n");
  return 0;
}
