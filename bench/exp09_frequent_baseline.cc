// Exp 9 (Figure 17): Catapult vs frequent-subgraph-based canned patterns.
//
// Builds the baseline F by mining frequent subgraphs at supports
// {4%, 8%, 12%} and packing the per-size budgeted pattern set, then
// evaluates both panels on mixed workloads Q_x where a fraction x of the
// queries is infrequent, x in {0, 0.1, 0.2, 0.3, 0.4}. Reports MP for all
// panels and mu_F = (step_F - step_Catapult) / step_F.
//
// Paper shape: with all-frequent queries (Q0) the baseline wins slightly
// (mu_F < 0); as x grows Catapult catches up and overtakes around x = 0.3;
// baseline MP rises with x while Catapult's stays flat; Catapult's div is
// much higher (7.4 vs 1.74).

#include "bench/bench_common.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"
#include "src/mining/subgraph_miner.h"

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 9 (Fig. 17): vs frequent-subgraph patterns");

  GraphDatabase db = bench::MakeAidsLike(bench::Scaled(300), 1234);
  const size_t kNumPatterns = 12;
  const size_t kMinEdges = 3;
  const size_t kMaxEdges = 8;

  // Catapult panel.
  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = kMinEdges, .eta_max = kMaxEdges, .gamma = kNumPatterns},
      131);
  CatapultResult result = RunCatapult(db, options);
  GuiModel catapult_gui = MakeCatapultGui(result.Patterns());

  // Frequent-subgraph baselines at three support thresholds.
  struct Baseline {
    std::string name;
    GuiModel gui;
    std::vector<Graph> mined_graphs;  // pool of frequent queries
  };
  std::vector<Baseline> baselines;
  for (double support : {0.04, 0.08, 0.12}) {
    SubgraphMinerOptions miner;
    miner.min_support = support;
    miner.min_edges = kMinEdges;
    miner.max_edges = kMaxEdges;
    miner.max_candidates_per_level = 1200;
    auto mined = MineFrequentSubgraphs(db, miner);
    Baseline b;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "F(%.0f%%)", support * 100);
    b.name = buf;
    b.gui = MakeCatapultGui(
        FrequentSubgraphPatternSet(mined, kNumPatterns, kMinEdges, kMaxEdges));
    b.gui.name = b.name;
    for (const auto& fs : mined) b.mined_graphs.push_back(fs.graph);
    baselines.push_back(std::move(b));
  }

  std::printf("div: Catapult=%.2f", AverageSetDiversity(catapult_gui.patterns));
  for (const Baseline& b : baselines) {
    std::printf("  %s=%.2f", b.name.c_str(),
                AverageSetDiversity(b.gui.patterns));
  }
  std::printf("\n\n%-6s | %9s | %7s", "Qx", "muF% vs F(8%)", "MP_cat");
  for (const Baseline& b : baselines) {
    std::printf(" %8s", ("MP_" + b.name).c_str());
  }
  std::printf("\n");

  // Frequent query pool: random subgraph queries verified frequent on a
  // database sample. (Using the baseline's own mined patterns as queries
  // would hand it a 1-step formulation by construction; the paper draws
  // queries from the data and classifies them.)
  std::vector<Graph> frequent_pool;
  {
    Rng pool_rng(211);
    std::vector<size_t> sample = pool_rng.SampleIndices(db.size(), 80);
    auto SampleSupport = [&](const Graph& q) {
      size_t hits = 0;
      for (size_t i : sample) {
        if (ContainsSubgraph(q, db.graph(static_cast<GraphId>(i)))) ++hits;
      }
      return static_cast<double>(hits) / static_cast<double>(sample.size());
    };
    int attempts = 0;
    while (frequent_pool.size() < 25 && attempts < 600) {
      ++attempts;
      const Graph& source =
          db.graph(static_cast<GraphId>(pool_rng.UniformInt(db.size())));
      Graph q = RandomConnectedSubgraph(
          source, 6 + pool_rng.UniformInt(6), pool_rng);
      if (q.NumEdges() < 6) continue;
      if (SampleSupport(q) >= 0.08) frequent_pool.push_back(std::move(q));
    }
  }
  for (double x : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    QueryMixOptions mix;
    mix.count = bench::Scaled(40);
    mix.infrequent_fraction = x;
    mix.min_edges = 6;
    mix.max_edges = 14;
    mix.verification_sample = 80;
    mix.seed = 137 + static_cast<uint64_t>(x * 10);
    std::vector<Graph> queries = GenerateQueryMix(db, frequent_pool, mix);

    std::vector<QueryFormulation> cat_details;
    WorkloadReport cat_report =
        EvaluateGui(queries, catapult_gui, {}, &cat_details);

    // mu_F against the mid-support baseline (the paper's headline series).
    std::vector<QueryFormulation> f_details;
    WorkloadReport f_mid_report =
        EvaluateGui(queries, baselines[1].gui, {}, &f_details);
    double mu_f_sum = 0.0;
    for (size_t i = 0; i < queries.size(); ++i) {
      mu_f_sum += RelativeReduction(f_details[i].steps_patterns,
                                    cat_details[i].steps_patterns);
    }
    double mu_f = 100.0 * mu_f_sum / static_cast<double>(queries.size());

    std::printf("Q%-5.1f | %13.2f | %7.1f", x, mu_f, cat_report.mp_percent);
    for (const Baseline& b : baselines) {
      WorkloadReport r = EvaluateGui(queries, b.gui);
      std::printf(" %8.1f", r.mp_percent);
    }
    std::printf("\n");
    (void)f_mid_report;
  }

  std::printf(
      "\nexpected shape: muF%% rises with x (the paper reports a crossover\n"
      "around x=0.3) and Catapult's div far exceeds the baseline's. On\n"
      "this synthetic 8-label alphabet the crossover is NOT reached: with\n"
      "so few labels, the baseline's small frequent patterns (3-edge\n"
      "carbon paths) partially cover almost every query, frequent or not,\n"
      "which caps MP_F and muF. The paper's AIDS data has ~60 vertex\n"
      "labels, so its frequent patterns are far more selective - a data-\n"
      "regime difference, not an algorithmic one (see EXPERIMENTS.md).\n");
  return 0;
}
