// Ablation (DESIGN.md Section 5): the multiplicative weight update.
//
// Algorithm 4 halves the weight of covered clusters and used edge labels
// after every selection so later iterations chase *uncovered* regions.
// This bench disables the update (decay factor 1.0) and compares the
// resulting pattern set's subgraph coverage, label coverage, diversity and
// workload MP against the paper's n = 0.5.
//
// Expected: without decay the greedy loop keeps drawing candidates from
// the same heavy clusters, so set-level scov/lcov/div drop and MP rises.

#include "bench/bench_common.h"
#include "src/core/weights.h"

int main() {
  using namespace catapult;
  bench::PrintHeader("Ablation: multiplicative weight decay (n=0.5 vs off)");

  GraphDatabase db = bench::MakeAidsLike(bench::Scaled(300), 1234);
  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(80), 191, 4, 30);
  LabelCoverageIndex label_index(db);

  std::printf("%-10s | %8s %8s %8s %8s %8s\n", "decay", "scov", "lcov",
              "div", "MP%", "avg_mu%");
  for (double decay : {0.5, 1.0}) {
    CatapultOptions options = bench::DefaultPipeline(
        {.eta_min = 3, .eta_max = 8, .gamma = 12}, 193);
    options.selector.weight_decay = decay;
    CatapultResult result = RunCatapult(db, options);
    std::vector<Graph> patterns = result.Patterns();
    GuiModel gui = MakeCatapultGui(patterns);
    WorkloadReport report = EvaluateGui(queries, gui);
    std::printf("%-10s | %8.3f %8.3f %8.2f %8.1f %8.1f\n",
                decay == 1.0 ? "off (1.0)" : "0.5",
                SubgraphCoverage(patterns, db, 250),
                label_index.SetLabelCoverage(patterns),
                AverageSetDiversity(patterns), report.mp_percent,
                report.avg_mu * 100);
  }
  std::printf(
      "\nexpected shape: decay=0.5 buys structural diversity (higher div -\n"
      "later picks chase not-yet-covered clusters); disabling it keeps\n"
      "selection anchored on the heaviest clusters, which can score higher\n"
      "raw coverage on workloads dominated by those clusters but leaves\n"
      "rare-cluster queries without patterns. The div column is the\n"
      "paper's motivation for the multiplicative update.\n");
  return 0;
}
