// Exp 5 (Figure 11): coverage of the canned pattern set vs |P|.
//
// Plots scov and lcov of Catapult's pattern set against the top-|P|
// frequent edges for |P| in {5, 10, 20, 30}, on an AIDS40K-like and a
// PubChem-like dataset.
//
// Paper shape: scov grows with |P|; top-|P| edges have slightly higher scov
// (small patterns match almost anywhere); Catapult's lcov is competitive
// and its patterns additionally support pattern-at-a-time formulation.

#include "bench/bench_common.h"
#include "src/core/weights.h"
#include "src/mining/frequent_edges.h"

namespace catapult {
namespace {

void RunDataset(const char* name, const GraphDatabase& db, uint64_t seed) {
  // One selection run at the largest budget; prefixes of the greedy
  // sequence give the smaller |P| sets.
  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = 30}, seed);
  CatapultResult result = RunCatapult(db, options);
  std::vector<Graph> all_patterns = result.Patterns();
  LabelCoverageIndex label_index(db);

  std::printf("\n--- %s (%zu graphs; %zu patterns selected) ---\n", name,
              db.size(), all_patterns.size());
  std::printf("%4s | %12s %12s | %12s %12s\n", "|P|", "scov(P)", "lcov(P)",
              "scov(edges)", "lcov(edges)");
  const size_t sample_cap = 250;
  for (size_t p : {size_t{5}, size_t{10}, size_t{20}, size_t{30}}) {
    size_t take = std::min(p, all_patterns.size());
    std::vector<Graph> prefix(all_patterns.begin(),
                              all_patterns.begin() + take);
    std::vector<Graph> top_edges = TopFrequentEdgePatterns(db, p);
    std::printf("%4zu | %12.3f %12.3f | %12.3f %12.3f\n", p,
                SubgraphCoverage(prefix, db, sample_cap),
                label_index.SetLabelCoverage(prefix),
                SubgraphCoverage(top_edges, db, sample_cap),
                label_index.SetLabelCoverage(top_edges));
  }
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 5 (Fig. 11): scov / lcov vs |P|");
  GraphDatabase aids = bench::MakeAidsLike(bench::Scaled(500), 1234);
  RunDataset("AIDS40K-like", aids, 71);
  GraphDatabase pubchem = bench::MakePubChemLike(bench::Scaled(400), 999);
  RunDataset("PubChem-like", pubchem, 72);
  std::printf(
      "\nexpected shape: scov rises with |P| and stays high (~0.9+);\n"
      "top-|P| frequent edges have >= scov of Catapult's patterns; lcov is\n"
      "close between the two (paper Fig. 11).\n");
  return 0;
}
