// Exp 3 (Section 6.2): Catapult vs the PubChem / eMolecules GUI panels.
//
// For each commercial interface, Catapult generates the same number of
// patterns in the same size window ([3, 8]; 12 for PubChem, 6 for eMol) and
// both panels formulate the same query workload. Reported: average
// cognitive load, average set diversity, MP, and the relative step
// reduction mu_G = (step_gui - step_catapult) / step_gui.
//
// Paper shape: Catapult's cog is lowest, div is high, mu_G is positive
// (max 0.79-0.86); PubChem's MP is very low only because its unlabelled
// patterns match anywhere.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/formulate/steps.h"

namespace catapult {
namespace {

void Compare(const char* name, const GraphDatabase& db, const GuiModel& gui,
             size_t budget_gamma) {
  CatapultOptions options = bench::DefaultPipeline(
      {.eta_min = 3, .eta_max = 8, .gamma = budget_gamma}, /*seed=*/11);
  CatapultResult result = RunCatapult(db, options);
  GuiModel catapult_gui = MakeCatapultGui(result.Patterns());

  std::vector<Graph> queries =
      bench::StandardQueries(db, bench::Scaled(100), 19, 4, 30);

  std::vector<QueryFormulation> gui_details;
  std::vector<QueryFormulation> cat_details;
  WorkloadReport gui_report = EvaluateGui(queries, gui, {}, &gui_details);
  WorkloadReport cat_report =
      EvaluateGui(queries, catapult_gui, {}, &cat_details);

  double max_mu_g = -1.0;
  double sum_mu_g = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    double mu_g = RelativeReduction(gui_details[i].steps_patterns,
                                    cat_details[i].steps_patterns);
    max_mu_g = std::max(max_mu_g, mu_g);
    sum_mu_g += mu_g;
  }
  double avg_mu_g = sum_mu_g / static_cast<double>(queries.size());

  std::printf("\n--- %s (%zu patterns) vs Catapult (%zu patterns) ---\n",
              name, gui.patterns.size(), catapult_gui.patterns.size());
  std::printf("%-10s %8s %8s %8s %10s\n", "panel", "avg_cog", "avg_div",
              "MP%", "avg_steps");
  std::printf("%-10s %8.2f %8.2f %8.1f %10.1f\n", name,
              AverageCognitiveLoad(gui.patterns),
              AverageSetDiversity(gui.patterns), gui_report.mp_percent,
              gui_report.avg_steps);
  std::printf("%-10s %8.2f %8.2f %8.1f %10.1f\n", "Catapult",
              AverageCognitiveLoad(catapult_gui.patterns),
              AverageSetDiversity(catapult_gui.patterns),
              cat_report.mp_percent, cat_report.avg_steps);
  std::printf("mu_G: max=%.2f avg=%.2f  (positive = Catapult needs fewer steps)\n",
              max_mu_g, avg_mu_g);
}

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 3: Catapult vs commercial GUI pattern panels");

  GraphDatabase pubchem = bench::MakePubChemLike(bench::Scaled(400), 999);
  Label common_pc = pubchem.labels().Intern("C");
  Compare("PubChem", pubchem, MakePubChemGui(common_pc), 12);

  GraphDatabase emol = bench::MakeAidsLike(bench::Scaled(300), 321);
  Label common_em = emol.labels().Intern("C");
  Compare("eMol", emol, MakeEMolGui(common_em), 6);

  std::printf(
      "\nexpected shape: Catapult has the lowest avg cog, high div, and\n"
      "positive max/avg mu_G against both panels; the unlabelled panels\n"
      "reach low MP only via label-free matching (paper Exp 3).\n");
  return 0;
}
