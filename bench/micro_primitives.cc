// Microbenchmarks of the NP-hard primitives underpinning Catapult
// (google-benchmark): VF2 subgraph isomorphism, MCCS, exact GED, the
// Definition 5.1 lower bound, diversity with vs without lower-bound
// pruning, CSG construction, and weighted random walks.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/pattern_score.h"
#include "src/core/random_walk.h"
#include "src/core/score_table.h"
#include "src/graph/algorithms.h"
#include "src/graph/flat_graph.h"
#include "src/obs/metrics.h"
#include "src/csg/csg.h"
#include "src/iso/flat_vf2.h"
#include "src/iso/ged.h"
#include "src/iso/mcs.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

GraphDatabase& SharedDb() {
  static GraphDatabase* db =
      new GraphDatabase(bench::MakeAidsLike(200, 1234));
  return *db;
}

std::vector<Graph>& SharedPatterns() {
  static std::vector<Graph>* patterns = [] {
    auto* p = new std::vector<Graph>();
    Rng rng(5);
    for (int i = 0; i < 8; ++i) {
      p->push_back(RandomConnectedSubgraph(
          SharedDb().graph(static_cast<GraphId>(i * 7)), 4 + i % 5, rng));
    }
    return p;
  }();
  return *patterns;
}

void BM_Vf2Contains(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  Rng rng(1);
  Graph pattern = RandomConnectedSubgraph(
      db.graph(3), static_cast<size_t>(state.range(0)), rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ContainsSubgraph(pattern, db.graph(i % db.size())));
    ++i;
  }
}
BENCHMARK(BM_Vf2Contains)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

// Flat-kernel counterpart of BM_Vf2Contains: the same containment tests
// driven off precomputed CSR targets with label-domain bitsets (DESIGN.md
// §15). The gap to BM_Vf2Contains is the per-call win of the flat hot path.
void BM_FlatVf2Contains(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  Rng rng(1);
  Graph pattern = RandomConnectedSubgraph(
      db.graph(3), static_cast<size_t>(state.range(0)), rng);
  FlatGraph flat_pattern = FlatGraph::Build(pattern);
  FlatGraphDatabase flat_db = FlatGraphDatabase::Build(db);
  std::vector<LabelDomains> domains;
  for (size_t g = 0; g < db.size(); ++g) {
    domains.push_back(LabelDomains::Build(flat_db.view(g)));
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t g = i % db.size();
    benchmark::DoNotOptimize(FlatContainsSubgraph(
        flat_pattern.View(), flat_db.view(g), &domains[g]));
    ++i;
  }
}
BENCHMARK(BM_FlatVf2Contains)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

// Cost of flattening: Graph -> CSR arrays + sorted permutation, the one-off
// build amortised over every later containment call against the graph.
void BM_FlatGraphBuild(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FlatGraph::Build(db.graph(i % db.size())));
    ++i;
  }
}
BENCHMARK(BM_FlatGraphBuild);

// One memoized greedy rescore: fold the diversity running-min forward over
// one newly selected pattern and re-sum ccov from the cached coverage
// bitmap, vs recomputing diversity against the whole panel from scratch
// (what every iteration paid before the class cache).
void BM_MemoizedRescore(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  std::vector<Graph> panel(patterns.begin() + 1, patterns.end());
  GedOptions ged;
  const bool memoized = state.range(0) != 0;
  // Running minimum over all but the last panel member, as the memo would
  // carry it into the iteration that just selected the last member.
  double carried = PatternSetDiversity(
      patterns[0], {panel.begin(), panel.end() - 1}, ged);
  for (auto _ : state) {
    double d = memoized
                   ? FoldDiversity(patterns[0], panel, panel.size() - 1,
                                   carried, ged, false)
                   : PatternSetDiversity(patterns[0], panel, ged);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_MemoizedRescore)->Arg(0)->Arg(1);

void BM_Mccs(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  McsOptions options;
  options.node_budget = static_cast<uint64_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(McsSimilarity(
        db.graph(i % db.size()), db.graph((i + 17) % db.size()), options));
    ++i;
  }
}
BENCHMARK(BM_Mccs)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_GedExact(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphEditDistance(
        patterns[i % patterns.size()], patterns[(i + 3) % patterns.size()]));
    ++i;
  }
}
BENCHMARK(BM_GedExact);

void BM_GedLowerBound(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GedLowerBound(
        patterns[i % patterns.size()], patterns[(i + 3) % patterns.size()]));
    ++i;
  }
}
BENCHMARK(BM_GedLowerBound);

// Diversity of a pattern against a set, with the Definition 5.1 pruning
// (the library path) vs brute-force exact GED against every member.
void BM_DiversityPruned(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  std::vector<Graph> set(patterns.begin() + 1, patterns.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(PatternSetDiversity(patterns[0], set));
  }
}
BENCHMARK(BM_DiversityPruned);

void BM_DiversityBruteForce(benchmark::State& state) {
  const auto& patterns = SharedPatterns();
  std::vector<Graph> set(patterns.begin() + 1, patterns.end());
  for (auto _ : state) {
    double best = 1e18;
    for (const Graph& q : set) {
      best = std::min(best, GraphEditDistance(patterns[0], q).distance);
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_DiversityBruteForce);

void BM_BuildCsg(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  std::vector<GraphId> cluster;
  for (int64_t i = 0; i < state.range(0); ++i) {
    cluster.push_back(static_cast<GraphId>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCsg(db, cluster));
  }
}
BENCHMARK(BM_BuildCsg)->Arg(5)->Arg(10)->Arg(20);

void BM_RandomWalkPcp(benchmark::State& state) {
  const GraphDatabase& db = SharedDb();
  std::vector<GraphId> cluster;
  for (GraphId i = 0; i < 20; ++i) cluster.push_back(i);
  ClusterSummaryGraph csg = BuildCsg(db, cluster);
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneratePcp(wcsg, static_cast<size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RandomWalkPcp)->Arg(4)->Arg(8)->Arg(12);

// Console output plus a machine-readable BENCH_micro.json: every run's
// (name, real_time, cpu_time, iterations) plus the aggregate per-primitive
// metrics of the whole benchmark process (how many VF2 calls / nodes, GED
// calls, walk steps the suite actually performed), written through the
// shared bench::JsonWriter on exit.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Run {
    std::string name;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    uint64_t iterations = 0;
  };

  void ReportRuns(const std::vector<benchmark::BenchmarkReporter::Run>& runs)
      override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      Run r;
      r.name = run.benchmark_name();
      r.real_time_ns = run.GetAdjustedRealTime();
      r.cpu_time_ns = run.GetAdjustedCPUTime();
      r.iterations = static_cast<uint64_t>(run.iterations);
      collected_.push_back(std::move(r));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path,
                 const obs::MetricsSnapshot& metrics) const {
    bench::JsonWriter json;
    json.BeginObject();
    json.Key("experiment").Value("micro_primitives");
    json.Key("time_unit").Value("ns");
    json.Key("benchmarks").BeginArray();
    for (const Run& r : collected_) {
      json.BeginObject();
      json.Key("name").Value(r.name);
      json.Key("real_time").Value(r.real_time_ns);
      json.Key("cpu_time").Value(r.cpu_time_ns);
      json.Key("iterations").Value(r.iterations);
      json.EndObject();
    }
    json.EndArray();
    json.Key("metrics").BeginObject();
    obs::RenderMetricsFields(metrics, json);
    json.EndObject();
    json.EndObject();
    return json.WriteFile(path);
  }

 private:
  std::vector<Run> collected_;
};

}  // namespace
}  // namespace catapult

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Count every primitive the suite exercises: the benchmarks run on this
  // thread, so one registry scope covers them all.
  catapult::obs::MetricsRegistry registry;
  catapult::obs::ScopedMetricsScope metrics_scope(&registry);
  catapult::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* out_path = "BENCH_micro.json";
  if (reporter.WriteJson(out_path, registry.Snapshot())) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::printf("failed to write %s\n", out_path);
  }
  return 0;
}
