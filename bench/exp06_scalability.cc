// Exp 6 (Figure 12): scalability with dataset size.
//
// Runs the sampling-enabled pipeline on PubChem-like datasets of growing
// size and reports clustering time, PGT, MP, and the relative reduction
// mu_DS = (step_P(D_s) - step_P(D_0)) / step_P(D_s) of each size against
// the smallest dataset's pattern set, evaluated on a common query workload.
//
// Paper shape: times grow roughly with |D|; mu_DS <= 0 (bigger data ->
// equal or better patterns) and MP drops, with the sweet spot before the
// largest size (sampling quality vs data volume trade-off).

#include "bench/bench_common.h"
#include "src/formulate/steps.h"

namespace catapult {
namespace {

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 6 (Fig. 12): scalability with |D|");

  const size_t base_sizes[4] = {150, 400, 800, 1600};
  std::vector<size_t> sizes;
  for (size_t s : base_sizes) sizes.push_back(bench::Scaled(s));

  // Common evaluation workload drawn from the largest dataset so every
  // pattern set is judged on the same queries.
  GraphDatabase largest = bench::MakePubChemLike(sizes.back(), 999);
  std::vector<Graph> queries =
      bench::StandardQueries(largest, bench::Scaled(80), 77, 4, 30);

  std::printf("%10s %12s %10s %8s %10s\n", "|D|", "cluster(s)", "PGT(s)",
              "MP%", "avg_muDS%");
  std::vector<double> baseline_steps;
  for (size_t size : sizes) {
    GraphDatabase db = bench::MakePubChemLike(size, 999);
    CatapultOptions options = bench::DefaultPipeline(
        {.eta_min = 3, .eta_max = 8, .gamma = 12}, 83);
    options.use_sampling = true;
    options.eager.epsilon = 0.08;
    options.lazy.min_cluster_size_to_sample = 25;
    options.lazy.e = 0.1;  // see exp02
    CatapultResult result = RunCatapult(db, options);

    GuiModel gui = MakeCatapultGui(result.Patterns());
    std::vector<QueryFormulation> details;
    WorkloadReport report = EvaluateGui(queries, gui, {}, &details);

    double mu_ds = 0.0;
    if (baseline_steps.empty()) {
      for (const QueryFormulation& f : details) {
        baseline_steps.push_back(static_cast<double>(f.steps_patterns));
      }
    } else {
      double sum = 0.0;
      for (size_t i = 0; i < details.size(); ++i) {
        double steps = static_cast<double>(details[i].steps_patterns);
        if (steps > 0) sum += (steps - baseline_steps[i]) / steps;
      }
      mu_ds = 100.0 * sum / static_cast<double>(details.size());
    }
    std::printf("%10zu %12.2f %10.2f %8.1f %10.2f\n", size,
                result.clustering_seconds, result.selection_seconds,
                report.mp_percent, mu_ds);
  }
  std::printf(
      "\nexpected shape: clustering time and PGT grow with |D|; mu_DS%% is\n"
      "negative for larger datasets (their patterns need fewer steps than\n"
      "the smallest dataset's), improving then flattening (paper Fig. 12).\n");
  return 0;
}
