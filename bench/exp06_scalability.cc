// Exp 6 (Figure 12): scalability with dataset size, plus thread scaling.
//
// Part 1 runs the sampling-enabled pipeline on PubChem-like datasets of
// growing size and reports clustering time, PGT, MP, and the relative
// reduction mu_DS = (step_P(D_s) - step_P(D_0)) / step_P(D_s) of each size
// against the smallest dataset's pattern set, evaluated on a common query
// workload.
//
// Part 2 fixes the database and sweeps the worker-thread count
// {1, 2, 4, 8}, reporting per-phase wall times and the speedup over the
// single-thread run — the determinism contract means every row produces the
// same pattern panel, so the sweep measures pure execution cost.
//
// Part 3 sweeps the worker *process* count {1, 2, 4} over the same
// database (DESIGN.md §12): the sharded fine-clustering/CSG executor forks
// that many supervised workers. Bit-identity across process counts means
// this sweep, too, measures pure execution cost — plus the supervision
// overhead (fork, pipes, artifact round-trips), which the sharded-phase
// wall time exposes directly.
//
// Paper shape (part 1): times grow roughly with |D|; mu_DS <= 0 (bigger
// data -> equal or better patterns) and MP drops, with the sweet spot
// before the largest size (sampling quality vs data volume trade-off).
//
// All parts are written to BENCH_exp06.json in the working directory.

#include "bench/bench_common.h"
#include "src/formulate/steps.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace catapult {
namespace {

struct SizeRow {
  size_t size = 0;
  double clustering_seconds = 0.0;
  double selection_seconds = 0.0;
  double mp_percent = 0.0;
  double mu_ds = 0.0;
};

struct ThreadRow {
  size_t threads = 0;
  double clustering_seconds = 0.0;
  double csg_seconds = 0.0;
  double selection_seconds = 0.0;
  double total_seconds = 0.0;
  double speedup_vs_1 = 0.0;
  double effective_parallelism = 0.0;  // selection-phase busy/wall
  // Merged per-primitive counters of the run: identical at every thread
  // count (the determinism contract extends to the work performed, not just
  // the patterns produced), which the JSON artifact lets a reader verify.
  obs::MetricsSnapshot metrics;
};

struct ProcessRow {
  size_t processes = 0;
  size_t shards = 0;
  size_t workers_spawned = 0;
  double clustering_seconds = 0.0;  // includes the sharded phase
  double total_seconds = 0.0;
  double speedup_vs_1 = 0.0;
};

}  // namespace
}  // namespace catapult

int main() {
  using namespace catapult;
  bench::PrintHeader("Exp 6 (Fig. 12): scalability with |D| and threads");

  const size_t base_sizes[4] = {150, 400, 800, 1600};
  std::vector<size_t> sizes;
  for (size_t s : base_sizes) sizes.push_back(bench::Scaled(s));

  // Common evaluation workload drawn from the largest dataset so every
  // pattern set is judged on the same queries.
  GraphDatabase largest = bench::MakePubChemLike(sizes.back(), 999);
  std::vector<Graph> queries =
      bench::StandardQueries(largest, bench::Scaled(80), 77, 4, 30);

  std::printf("%10s %12s %10s %8s %10s\n", "|D|", "cluster(s)", "PGT(s)",
              "MP%", "avg_muDS%");
  std::vector<SizeRow> size_rows;
  std::vector<double> baseline_steps;
  for (size_t size : sizes) {
    GraphDatabase db = bench::MakePubChemLike(size, 999);
    CatapultOptions options = bench::DefaultPipeline(
        {.eta_min = 3, .eta_max = 8, .gamma = 12}, 83);
    options.use_sampling = true;
    options.eager.epsilon = 0.08;
    options.lazy.min_cluster_size_to_sample = 25;
    options.lazy.e = 0.1;  // see exp02
    CatapultResult result = RunCatapult(db, options);

    GuiModel gui = MakeCatapultGui(result.Patterns());
    std::vector<QueryFormulation> details;
    WorkloadReport report = EvaluateGui(queries, gui, {}, &details);

    double mu_ds = 0.0;
    if (baseline_steps.empty()) {
      for (const QueryFormulation& f : details) {
        baseline_steps.push_back(static_cast<double>(f.steps_patterns));
      }
    } else {
      // Aggregate form 100 * (sum steps_s - sum steps_0) / sum steps_s. The
      // per-query-average form ((steps_s - steps_0) / steps_s averaged over
      // queries) is unbounded below: one query this panel answers in 2 steps
      // where the baseline needed 10 contributes -400% on its own, swamping
      // the workload and producing nonsense like -24.5% at db_size 1600.
      // Summing steps first weighs every query by its actual cost, matching
      // the paper's workload-level reading of Figure 12.
      double sum_steps = 0.0;
      double sum_baseline = 0.0;
      for (size_t i = 0; i < details.size(); ++i) {
        sum_steps += static_cast<double>(details[i].steps_patterns);
        sum_baseline += baseline_steps[i];
      }
      if (sum_steps > 0.0) {
        mu_ds = 100.0 * (sum_steps - sum_baseline) / sum_steps;
      }
    }
    std::printf("%10zu %12.2f %10.2f %8.1f %10.2f\n", size,
                result.clustering_seconds, result.selection_seconds,
                report.mp_percent, mu_ds);
    size_rows.push_back({size, result.clustering_seconds,
                         result.selection_seconds, report.mp_percent, mu_ds});
  }
  std::printf(
      "\nexpected shape: clustering time and PGT grow with |D|; mu_DS%% is\n"
      "negative for larger datasets (their patterns need fewer steps than\n"
      "the smallest dataset's), improving then flattening (paper Fig. 12).\n");

  // --- Part 2: thread scaling at fixed |D| -------------------------------
  std::printf("\nthread scaling at |D|=%zu (hardware threads: %zu)\n",
              sizes[1], ThreadPool::HardwareThreads());
  std::printf("%8s %12s %8s %10s %9s %9s %8s\n", "threads", "cluster(s)",
              "csg(s)", "select(s)", "total(s)", "speedup", "par");
  GraphDatabase db = bench::MakePubChemLike(sizes[1], 999);
  std::vector<ThreadRow> thread_rows;
  for (size_t threads : {1, 2, 4, 8}) {
    CatapultOptions options = bench::DefaultPipeline(
        {.eta_min = 3, .eta_max = 8, .gamma = 12}, 83);
    options.threads = threads;
    obs::MetricsRegistry registry;
    RunContext ctx =
        RunContext::NoLimit().WithObservability(&registry, nullptr);
    CatapultResult result = RunCatapult(db, options, ctx);
    ThreadRow row;
    row.threads = threads;
    row.metrics = result.execution.metrics;
    row.clustering_seconds = result.clustering_seconds;
    row.csg_seconds = result.csg_seconds;
    row.selection_seconds = result.selection_seconds;
    row.total_seconds = result.clustering_seconds + result.csg_seconds +
                        result.selection_seconds;
    row.speedup_vs_1 = thread_rows.empty() || row.total_seconds <= 0.0
                           ? 1.0
                           : thread_rows.front().total_seconds /
                                 row.total_seconds;
    row.effective_parallelism =
        result.execution.selection_parallel.EffectiveParallelism();
    thread_rows.push_back(row);
    std::printf("%8zu %12.2f %8.2f %10.2f %9.2f %8.2fx %8.2f\n", threads,
                row.clustering_seconds, row.csg_seconds,
                row.selection_seconds, row.total_seconds, row.speedup_vs_1,
                row.effective_parallelism);
  }
  std::printf(
      "\nexpected shape: identical panels at every thread count; total time\n"
      "drops toward the hardware-thread count and flattens past it (on a\n"
      "single-core runner every row costs the same, speedup ~1.0x).\n");

  // --- Part 3: process scaling at fixed |D| ------------------------------
  std::printf("\nprocess scaling at |D|=%zu (sharded fine+CSG phases)\n",
              sizes[1]);
  std::printf("%10s %8s %9s %12s %9s %9s\n", "processes", "shards",
              "spawned", "cluster(s)", "total(s)", "speedup");
  std::vector<ProcessRow> process_rows;
  for (size_t processes : {1, 2, 4}) {
    CatapultOptions options = bench::DefaultPipeline(
        {.eta_min = 3, .eta_max = 8, .gamma = 12}, 83);
    options.processes = processes;
    CatapultResult result = RunCatapult(db, options);
    ProcessRow row;
    row.processes = processes;
    row.shards = result.execution.dist.shards;
    row.workers_spawned = result.execution.dist.workers_spawned;
    row.clustering_seconds = result.clustering_seconds;
    row.total_seconds = result.clustering_seconds + result.csg_seconds +
                        result.selection_seconds;
    row.speedup_vs_1 = process_rows.empty() || row.total_seconds <= 0.0
                           ? 1.0
                           : process_rows.front().total_seconds /
                                 row.total_seconds;
    process_rows.push_back(row);
    std::printf("%10zu %8zu %9zu %12.2f %9.2f %8.2fx\n", processes,
                row.shards, row.workers_spawned, row.clustering_seconds,
                row.total_seconds, row.speedup_vs_1);
  }
  std::printf(
      "\nexpected shape: identical panels at every process count (asserted\n"
      "by tests/dist_test.cc down to checkpoint bytes); the sharded phase\n"
      "adds fork/pipe/artifact overhead, repaid on multi-core machines as\n"
      "the fine+CSG phases spread across workers.\n");

  // --- Machine-readable artifact -----------------------------------------
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("experiment").Value("exp06_scalability");
  json.Key("scale").Value(bench::ScaleFactor());
  json.Key("hardware_threads").Value(ThreadPool::HardwareThreads());
  json.Key("size_sweep").BeginArray();
  for (const SizeRow& r : size_rows) {
    json.BeginObject();
    json.Key("db_size").Value(r.size);
    json.Key("clustering_seconds").Value(r.clustering_seconds);
    json.Key("selection_seconds").Value(r.selection_seconds);
    json.Key("mp_percent").Value(r.mp_percent);
    json.Key("mu_ds_percent").Value(r.mu_ds);
    json.EndObject();
  }
  json.EndArray();
  json.Key("thread_sweep").BeginArray();
  for (const ThreadRow& r : thread_rows) {
    json.BeginObject();
    json.Key("threads").Value(r.threads);
    json.Key("clustering_seconds").Value(r.clustering_seconds);
    json.Key("csg_seconds").Value(r.csg_seconds);
    json.Key("selection_seconds").Value(r.selection_seconds);
    json.Key("total_seconds").Value(r.total_seconds);
    json.Key("speedup_vs_1").Value(r.speedup_vs_1);
    json.Key("effective_parallelism").Value(r.effective_parallelism);
    json.Key("metrics").BeginObject();
    obs::RenderMetricsFields(r.metrics, json);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("process_sweep").BeginArray();
  for (const ProcessRow& r : process_rows) {
    json.BeginObject();
    json.Key("processes").Value(r.processes);
    json.Key("shards").Value(r.shards);
    json.Key("workers_spawned").Value(r.workers_spawned);
    json.Key("clustering_seconds").Value(r.clustering_seconds);
    json.Key("total_seconds").Value(r.total_seconds);
    json.Key("speedup_vs_1").Value(r.speedup_vs_1);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  const char* out_path = "BENCH_exp06.json";
  if (json.WriteFile(out_path)) {
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::printf("\nfailed to write %s\n", out_path);
  }
  return 0;
}
