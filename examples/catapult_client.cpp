// catapult_client - client for the resident pattern-selection server
// (examples/catapult_serve.cpp, DESIGN.md §13).
//
// Subcommands:
//   mine --socket PATH [--gamma N] [--min-size K] [--max-size K]
//        [--deadline-ms MS] [--bypass-cache] [--retries N] [--out FILE]
//       Request a canned-pattern panel. A shed (overloaded/draining) server
//       is retried up to --retries times, honouring its retry_after_ms
//       hint. --out writes the panel as a pattern database in the gSpan
//       text format — byte-comparable against `catapult_cli mine` output
//       for the same database, seed, and budget.
//   ping --socket PATH
//       Liveness probe; prints sessions/queue/draining status.
//
// Exit status:
//   0  success (complete panel / pong)
//   1  usage or transport error (cannot connect, server vanished)
//   2  server rejected the request (invalid budget, version mismatch)
//   3  shed and retries exhausted — the server is overloaded or draining
//   5  degraded panel (deadline/memory cut the server's work short;
//      the panel was still printed/written)

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/graph/graph_database.h"
#include "src/graph/io.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"

namespace {

using namespace catapult;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitRejected = 2;
constexpr int kExitShed = 3;
constexpr int kExitDegraded = 5;

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_.emplace_back(argv[i] + 2, "true");
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  long GetInt(const std::string& name, long fallback) const {
    auto v = Get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

  bool GetBool(const std::string& name) const { return Get(name).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: catapult_client <mine|ping> --socket PATH [--flags]\n"
               "(see the header of examples/catapult_client.cpp)\n");
  return kExitUsage;
}

// Rebuilds a writable pattern database from a decoded panel: the label
// names are interned in panel order, so the graphs' label ids resolve to
// the same strings the server's database used.
GraphDatabase PanelDatabase(const serve::Panel& panel) {
  GraphDatabase db;
  for (const std::string& name : panel.labels) db.labels().Intern(name);
  for (const SelectedPattern& p : panel.patterns) db.Add(p.graph);
  return db;
}

int CmdMine(const Flags& flags) {
  auto socket_path = flags.Get("socket");
  if (!socket_path) return Usage();
  serve::MineRequest request;
  request.gamma = static_cast<uint64_t>(flags.GetInt("gamma", 12));
  request.eta_min = static_cast<uint64_t>(flags.GetInt("min-size", 3));
  request.eta_max = static_cast<uint64_t>(flags.GetInt("max-size", 8));
  request.deadline_ms = static_cast<double>(flags.GetInt("deadline-ms", 0));
  request.bypass_cache = flags.GetBool("bypass-cache");
  const size_t retries = static_cast<size_t>(flags.GetInt("retries", 3));

  serve::ServeClient client;
  if (std::string error = client.Connect(*socket_path); !error.empty()) {
    std::fprintf(stderr, "%s: %s\n", socket_path->c_str(), error.c_str());
    return kExitUsage;
  }
  std::string retry_log;
  const serve::ServeClient::MineOutcome outcome =
      client.MineWithRetry(request, retries + 1, 30000.0, &retry_log);
  // Per-attempt shed lines carry the server-assigned request id so this
  // client's stderr joins against the server's --request-log.
  if (!retry_log.empty()) std::fputs(retry_log.c_str(), stderr);
  using Kind = serve::ServeClient::MineOutcome::Kind;
  switch (outcome.kind) {
    case Kind::kTransport:
      std::fprintf(stderr, "transport error: %s\n", outcome.error.c_str());
      return kExitUsage;
    case Kind::kError:
      std::fprintf(stderr, "request rejected (request_id=%llu): %s\n",
                   static_cast<unsigned long long>(outcome.request_id),
                   outcome.error.c_str());
      return kExitRejected;
    case Kind::kShed:
      std::fprintf(stderr,
                   "shed after %zu attempts: %s (request_id=%llu, queue depth "
                   "%llu, retry after %.0f ms)\n",
                   retries + 1, serve::ToString(outcome.shed.reason),
                   static_cast<unsigned long long>(outcome.request_id),
                   static_cast<unsigned long long>(outcome.shed.queue_depth),
                   outcome.shed.retry_after_ms);
      return kExitShed;
    case Kind::kPanel:
      break;
  }

  const serve::Panel& panel = outcome.panel;
  std::printf("%zu patterns (%s%s)\n", panel.patterns.size(),
              outcome.reply.cache_hit ? "cached" : "computed",
              panel.degraded ? ", degraded" : "");
  for (const SelectedPattern& p : panel.patterns) {
    std::printf("  |E|=%zu score=%.4f ccov=%.3f div=%.1f cog=%.2f%s\n",
                p.graph.NumEdges(), p.score, p.ccov, p.div, p.cog,
                p.fallback ? " [fallback]" : "");
  }
  if (auto out = flags.Get("out")) {
    GraphDatabase db = PanelDatabase(panel);
    if (IoStatus status = WriteDatabaseToFile(db, *out); !status) {
      std::fprintf(stderr, "cannot write %s: %s\n", out->c_str(),
                   status.message().c_str());
      return kExitUsage;
    }
    std::printf("wrote %zu patterns to %s\n", panel.patterns.size(),
                out->c_str());
  }
  return panel.degraded ? kExitDegraded : kExitOk;
}

int CmdPing(const Flags& flags) {
  auto socket_path = flags.Get("socket");
  if (!socket_path) return Usage();
  serve::ServeClient client;
  if (std::string error = client.Connect(*socket_path); !error.empty()) {
    std::fprintf(stderr, "%s: %s\n", socket_path->c_str(), error.c_str());
    return kExitUsage;
  }
  serve::PongReply pong;
  if (std::string error = client.Ping(&pong); !error.empty()) {
    std::fprintf(stderr, "ping failed: %s\n", error.c_str());
    return kExitUsage;
  }
  std::printf("pong: sessions=%llu queue=%llu draining=%d\n",
              static_cast<unsigned long long>(pong.sessions),
              static_cast<unsigned long long>(pong.queue_depth),
              pong.draining ? 1 : 0);
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv, 2);
  const std::string command = argv[1];
  if (command == "mine") return CmdMine(flags);
  if (command == "ping") return CmdPing(flags);
  return Usage();
}
