// GUI-designer workflow: build and persist a pattern panel for a dataset,
// and quantify how it compares against (a) a manually-curated unlabelled
// panel (PubChem-style) and (b) top-frequent-edge "patterns".
//
// Demonstrates the serialisation round-trip a real deployment would use:
// the miner runs offline, writes the panel to disk, and the GUI loads it.
//
//   ./build/examples/gui_designer

#include <cstdio>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/formulate/qft.h"
#include "src/graph/io.h"
#include "src/mining/frequent_edges.h"

int main() {
  using namespace catapult;

  MoleculeGeneratorOptions gen;
  gen.num_graphs = 400;
  gen.scaffold_families = 16;
  gen.seed = 2718;
  GraphDatabase db = GenerateMoleculeDatabase(gen);

  // Mine the panel.
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 8, .gamma = 12};
  options.seed = 2718;
  options.clustering.fine_mcs.node_budget = 5000;
  CatapultResult result = RunCatapult(db, options);
  std::vector<Graph> patterns = result.Patterns();

  // Persist the panel in the same text format as the data graphs, so the
  // GUI layer can load it without linking the miner.
  GraphDatabase panel_db;
  panel_db.labels() = db.labels();
  for (const Graph& p : patterns) panel_db.Add(p);
  const char* path = "/tmp/catapult_panel.txt";
  if (IoStatus status = WriteDatabaseToFile(panel_db, path); !status) {
    std::printf("failed to write %s: %s\n", path, status.message().c_str());
    return 1;
  }
  auto reloaded = ReadDatabaseFromFile(path);
  std::printf("panel: %zu patterns mined, %zu reloaded from %s\n",
              patterns.size(), reloaded ? reloaded->size() : 0, path);

  // Compare three panels on the same workload.
  QueryWorkloadOptions wl;
  wl.count = 120;
  wl.min_edges = 4;
  wl.max_edges = 25;
  wl.seed = 31;
  std::vector<Graph> queries = GenerateQueryWorkload(db, wl);

  GuiModel catapult_gui = MakeCatapultGui(patterns);
  GuiModel manual_gui = MakePubChemGui(db.labels().Intern("C"));
  GuiModel edges_gui = MakeCatapultGui(TopFrequentEdgePatterns(db, 12));
  edges_gui.name = "top-edges";

  QftModel qft_model;
  std::printf("\n%-12s %8s %8s %10s %9s %9s %9s\n", "panel", "MP%",
              "avg_mu%", "avg_steps", "avg_cog", "avg_div", "avg_QFT");
  Rng qft_rng(99);
  for (const GuiModel* gui : {&catapult_gui, &manual_gui, &edges_gui}) {
    WorkloadReport report = EvaluateGui(queries, *gui);
    double qft_sum = 0.0;
    for (size_t i = 0; i < queries.size(); i += 4) {  // subsample for speed
      qft_sum += AverageQft(queries[i], *gui, qft_model, 3, qft_rng);
    }
    double avg_qft = qft_sum / static_cast<double>((queries.size() + 3) / 4);
    std::printf("%-12s %8.1f %8.1f %10.1f %9.2f %9.2f %9.1f\n",
                gui->name.c_str(), report.mp_percent, report.avg_mu * 100,
                report.avg_steps, AverageCognitiveLoad(gui->patterns),
                AverageSetDiversity(gui->patterns), avg_qft);
  }
  std::printf(
      "\n(top-edge patterns tile any query - step counts look good - but\n"
      "every placement is a separate visual-search episode, so the\n"
      "simulated formulation time (QFT) favours the larger, low-cog\n"
      "Catapult patterns: the paper's core point about coverage alone\n"
      "being insufficient.)\n");
  return 0;
}
