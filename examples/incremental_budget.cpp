// Budget-exploration workflow: a GUI designer wants to decide how many
// patterns to show and in which size window, given limited panel space.
// This example reuses one clustering across many (eta_min, eta_max, gamma)
// budgets - the intended "interactive" use of the library API, where
// clustering is the one-time cost and selection is re-run per budget.
//
//   ./build/examples/incremental_budget

#include <cstdio>

#include "src/cluster/pipeline.h"
#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/obs/clock.h"

int main() {
  using namespace catapult;

  MoleculeGeneratorOptions gen;
  gen.num_graphs = 300;
  gen.scaffold_families = 12;
  gen.seed = 99;
  GraphDatabase db = GenerateMoleculeDatabase(gen);

  // One-time cost: clustering + CSGs.
  SmallGraphClusteringOptions clustering_options;
  clustering_options.fine_mcs.node_budget = 5000;
  Rng rng(99);
  WallTimer clustering_timer;
  ClusteringResult clustering =
      SmallGraphClustering(db, clustering_options, rng);
  std::vector<ClusterSummaryGraph> csgs = BuildCsgs(db, clustering.clusters);
  std::printf("one-time clustering: %.1fs, %zu clusters\n",
              clustering_timer.ElapsedSeconds(), clustering.clusters.size());

  QueryWorkloadOptions wl;
  wl.count = 80;
  wl.min_edges = 4;
  wl.max_edges = 20;
  wl.seed = 7;
  std::vector<Graph> queries = GenerateQueryWorkload(db, wl);

  struct BudgetChoice {
    const char* label;
    PatternBudget budget;
  };
  const BudgetChoice choices[] = {
      {"compact panel", {.eta_min = 3, .eta_max = 5, .gamma = 6}},
      {"default panel", {.eta_min = 3, .eta_max = 8, .gamma = 12}},
      {"large panel", {.eta_min = 3, .eta_max = 10, .gamma = 24}},
      {"big-motifs only", {.eta_min = 6, .eta_max = 10, .gamma = 10}},
  };

  std::printf("\n%-16s %4s | %8s %8s %8s %9s\n", "panel", "|P|", "MP%",
              "avg_mu%", "avg_cog", "select(s)");
  for (const BudgetChoice& choice : choices) {
    SelectorOptions selector;
    selector.budget = choice.budget;
    // Interactive loop: the polynomial assignment-based GED oracle keeps
    // re-selection snappy at large gamma (see exp14_ablation_ged).
    selector.approximate_diversity = true;
    Rng selection_rng(17);
    WallTimer timer;
    SelectionResult selection = FindCannedPatternSet(
        db, clustering.clusters, csgs, selector, selection_rng);
    double seconds = timer.ElapsedSeconds();
    GuiModel gui = MakeCatapultGui(selection.PatternGraphs());
    WorkloadReport report = EvaluateGui(queries, gui);
    std::printf("%-16s %4zu | %8.1f %8.1f %8.2f %9.2f\n", choice.label,
                gui.patterns.size(), report.mp_percent, report.avg_mu * 100,
                AverageCognitiveLoad(gui.patterns), seconds);
  }
  std::printf(
      "\n(the 'big-motifs only' row shows the paper's Exp 8 effect: raising\n"
      "eta_min inflates MP because large patterns rarely fit queries.)\n");
  return 0;
}
