// catapult_worker - standalone remote shard worker (DESIGN.md Section 14).
//
// Dials a supervising catapult_cli (started with `mine --processes N
// --listen ADDR`), completes the versioned handshake, and carries shard
// assignments over the socket until the supervisor says the run is over.
//
//   catapult_worker --db FILE --connect ADDR [--name NAME]
//                   [--gamma N] [--min-size K] [--max-size K] [--seed S]
//                   [--sampling] [--max-graph-vertices N]
//                   [--max-graph-edges N] [--max-graphs N] [--strict-parse]
//                   [--dial-timeout-ms MS] [--max-dial-attempts N]
//                   [--metrics-out FILE] [--trace-out FILE]
//
// --metrics-out/--trace-out (DESIGN.md §16) write this worker's local view
// at exit: metrics deltas accumulated across every carried shard, and a
// Chrome-trace file of the shard spans it computed (the supervisor merges
// the same spans into the fleet-wide trace; the local file is for
// debugging one worker in isolation).
//
// The worker must be launched against the SAME database file and the SAME
// mining options as the supervisor: the handshake carries a
// ConfigFingerprint of (options, database) and the supervisor rejects any
// worker whose fingerprint differs — a fleet silently mixing configs could
// never be bit-identical. The mining flags here therefore mirror the
// defaults of `catapult_cli mine` exactly; pass the same values you passed
// to the supervisor.
//
// Exit status:
//   0   run completed (supervisor sent an orderly shutdown)
//   1   usage or I/O error
//   2   database parse error
//   20  could not reach the supervisor within the dial budget
//   21  supervisor rejected the handshake (version/fingerprint/namespace)
//   22  supervisor spoke an unintelligible protocol

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/core/catapult.h"
#include "src/dist/net_worker.h"
#include "src/graph/io.h"
#include "src/obs/clock.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

namespace {

using namespace catapult;

// Minimal flag parser: --name value pairs (same shape as catapult_cli).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_.emplace_back(argv[i] + 2, "true");
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  long GetInt(const std::string& name, long fallback) const {
    auto v = Get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

  bool GetBool(const std::string& name) const { return Get(name).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: catapult_worker --db FILE --connect ADDR [--flags]\n"
               "(see the header of examples/catapult_worker.cpp)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallTicksFromEnv();  // CATAPULT_FIXED_TICKS, for byte-stable traces
  Flags flags(argc, argv, 1);
  auto db_path = flags.Get("db");
  auto connect = flags.Get("connect");
  if (!db_path || !connect) return Usage();

  IngestOptions ingest;
  ingest.limits.max_vertices_per_graph = static_cast<size_t>(flags.GetInt(
      "max-graph-vertices",
      static_cast<long>(ingest.limits.max_vertices_per_graph)));
  ingest.limits.max_edges_per_graph = static_cast<size_t>(flags.GetInt(
      "max-graph-edges",
      static_cast<long>(ingest.limits.max_edges_per_graph)));
  ingest.limits.max_graphs =
      static_cast<size_t>(flags.GetInt("max-graphs", 0));
  ingest.strict = flags.GetBool("strict-parse");

  IngestReport report;
  ParseError error;
  auto db = ReadDatabaseFromFile(*db_path, ingest, &report, &error);
  if (!db) {
    std::fprintf(stderr, "%s: %s\n", db_path->c_str(),
                 error.message.empty() ? "cannot read" : error.message.c_str());
    return error.line > 0 ? 2 : 1;
  }
  if (db->size() == 0) {
    std::fprintf(stderr, "%s: no graphs ingested\n", db_path->c_str());
    return 2;
  }

  // Mirror the `catapult_cli mine` option construction exactly: the
  // handshake fingerprint must match the supervisor's.
  CatapultOptions options;
  options.ingest_digest = report.quarantine_digest;
  options.selector.budget.gamma =
      static_cast<size_t>(flags.GetInt("gamma", 12));
  options.selector.budget.eta_min =
      static_cast<size_t>(flags.GetInt("min-size", 3));
  options.selector.budget.eta_max =
      static_cast<size_t>(flags.GetInt("max-size", 8));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.clustering.fine_mcs.node_budget = 5000;
  options.use_sampling = flags.GetBool("sampling");

  dist::RemoteWorkerOptions worker;
  worker.address = *connect;
  worker.fingerprint = ConfigFingerprint(options, *db);
  if (auto name = flags.Get("name")) worker.worker_name = *name;
  worker.dial_timeout_ms =
      static_cast<double>(flags.GetInt("dial-timeout-ms", 2000));
  worker.max_dial_attempts = static_cast<size_t>(
      flags.GetInt("max-dial-attempts",
                   static_cast<long>(worker.max_dial_attempts)));

  const auto metrics_out = flags.Get("metrics-out");
  const auto trace_out = flags.Get("trace-out");
  obs::MetricsSnapshot local_metrics;
  obs::Tracer local_tracer;
  if (metrics_out) worker.accumulate = &local_metrics;
  if (trace_out) worker.local_tracer = &local_tracer;

  int code = dist::RunRemoteWorker(*db, worker);
  if (metrics_out) {
    obs::JsonWriter w;
    w.BeginObject();
    obs::RenderMetricsFields(local_metrics, w);
    w.EndObject();
    if (!w.WriteFile(*metrics_out)) {
      std::fprintf(stderr, "cannot write metrics %s\n", metrics_out->c_str());
      if (code == 0) code = 1;
    } else {
      std::fprintf(stderr, "metrics: -> %s\n", metrics_out->c_str());
    }
  }
  if (trace_out) {
    if (!local_tracer.WriteFile(*trace_out)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out->c_str());
      if (code == 0) code = 1;
    } else {
      std::fprintf(stderr, "trace: %zu events -> %s\n",
                   local_tracer.event_count(), trace_out->c_str());
    }
  }
  if (code == 0) {
    std::fprintf(stderr, "catapult_worker: run complete\n");
  } else {
    std::fprintf(stderr, "catapult_worker: exiting with code %d\n", code);
  }
  return code;
}
