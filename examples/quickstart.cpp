// Quickstart: generate a molecule-like graph database, run the full
// Catapult pipeline, and print the selected canned patterns with their
// coverage / diversity / cognitive-load diagnostics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/formulate/evaluate.h"

int main() {
  using namespace catapult;

  // 1. A data source: 800 synthetic molecule-like graphs (stands in for an
  //    AIDS/PubChem-style repository; see DESIGN.md).
  MoleculeGeneratorOptions data_options;
  data_options.num_graphs = 500;
  data_options.seed = 2024;
  GraphDatabase db = GenerateMoleculeDatabase(data_options);
  DatabaseStats stats = db.Stats();
  std::printf("database: %zu graphs, avg |V|=%.1f avg |E|=%.1f, %zu labels\n",
              stats.num_graphs, stats.avg_vertices, stats.avg_edges,
              stats.num_vertex_labels);

  // 2. Configure Catapult: budget b = (eta_min=3, eta_max=8, gamma=12).
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 8, .gamma = 12};
  options.selector.walks_per_candidate = 30;
  options.clustering.max_cluster_size = 20;
  options.clustering.fine_mcs.node_budget = 5000;
  options.seed = 7;

  // 3. Run the pipeline: clustering -> CSGs -> pattern selection.
  CatapultResult result = RunCatapult(db, options);
  std::printf("clusters: %zu  (clustering %.2fs, csg %.2fs, select %.2fs)\n",
              result.clusters.size(), result.clustering_seconds,
              result.csg_seconds, result.selection_seconds);

  // 4. Inspect the selected canned patterns.
  std::printf("\nselected %zu canned patterns:\n",
              result.selection.patterns.size());
  for (size_t i = 0; i < result.selection.patterns.size(); ++i) {
    const SelectedPattern& p = result.selection.patterns[i];
    std::printf(
        "  #%-2zu |V|=%zu |E|=%zu  score=%.4f ccov=%.3f lcov=%.3f div=%.1f "
        "cog=%.2f\n",
        i + 1, p.graph.NumVertices(), p.graph.NumEdges(), p.score, p.ccov,
        p.lcov, p.div, p.cog);
  }

  // 5. Coverage of the whole set.
  std::vector<Graph> patterns = result.Patterns();
  double scov = SubgraphCoverage(patterns, db, /*sample_cap=*/400);
  std::printf("\nscov(P, D) ~= %.3f   avg div=%.2f   avg cog=%.2f\n", scov,
              AverageSetDiversity(patterns), AverageCognitiveLoad(patterns));
  return 0;
}
