// Drug-discovery scenario (mirrors Example 1.1 of the paper).
//
// A medicinal-chemistry team curates a repository of compounds around a
// shared functional core (here: the urea-like N-C(=O)-N motif family from
// the synthetic generator). They want their visual query tool's pattern
// panel to surface that core automatically, so that a tmad-style query
// takes ~3 pattern-level steps instead of ~17 edge-level steps.
//
//   ./build/examples/drug_discovery

#include <cstdio>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/formulate/evaluate.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"
#include "src/mining/frequent_edges.h"
#include "src/util/rng.h"

int main() {
  using namespace catapult;

  // A repository dominated by urea-like compounds (scaffold family 3 is
  // the N-C(-O)-N star; see src/data/molecule_generator.cc): ~60% urea
  // derivatives plus a backdrop of ring/chain compounds.
  MoleculeGeneratorOptions urea_gen;
  urea_gen.num_graphs = 240;
  urea_gen.scaffold_family_offset = 3;  // urea-like star
  urea_gen.scaffold_families = 1;
  urea_gen.min_vertices = 8;
  urea_gen.max_vertices = 20;
  urea_gen.seed = 404;
  GraphDatabase db = GenerateMoleculeDatabase(urea_gen);
  MoleculeGeneratorOptions backdrop_gen = urea_gen;
  backdrop_gen.num_graphs = 160;
  backdrop_gen.scaffold_family_offset = 0;
  backdrop_gen.scaffold_families = 3;  // benzene / pyridine / furan-like
  backdrop_gen.seed = 405;
  GraphDatabase backdrop = GenerateMoleculeDatabase(backdrop_gen);
  // Both databases intern the same atom alphabet in the same order, so
  // labels are directly compatible.
  for (const Graph& g : backdrop.graphs()) db.Add(g);

  // Mine the pattern panel: 8 patterns, sizes 3-6 edges.
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.seed = 404;
  options.clustering.fine_mcs.node_budget = 5000;
  CatapultResult result = RunCatapult(db, options);

  // Does the panel contain a urea-like pattern (N-C(-O)-N present)?
  Label C = db.labels().Find("C");
  Label O = db.labels().Find("O");
  Label N = db.labels().Find("N");
  Graph urea;
  VertexId c = urea.AddVertex(C);
  VertexId n1 = urea.AddVertex(N);
  VertexId n2 = urea.AddVertex(N);
  VertexId o = urea.AddVertex(O);
  urea.AddEdge(c, n1);
  urea.AddEdge(c, n2);
  urea.AddEdge(c, o);

  std::printf("panel of %zu patterns:\n", result.selection.patterns.size());
  bool panel_has_urea = false;
  for (size_t i = 0; i < result.selection.patterns.size(); ++i) {
    const Graph& p = result.selection.patterns[i].graph;
    bool contains_urea = ContainsSubgraph(urea, p);
    panel_has_urea |= contains_urea;
    std::printf("  P%zu: %s%s\n", i + 1, p.DebugString().c_str(),
                contains_urea ? "   <-- urea-like core" : "");
  }
  std::printf("urea-like motif on the panel: %s\n",
              panel_has_urea ? "yes" : "no");

  // A TMAD-style query: two urea cores joined by a bond.
  Graph query;
  VertexId qc1 = query.AddVertex(C);
  VertexId qn1 = query.AddVertex(N);
  VertexId qn2 = query.AddVertex(N);
  VertexId qo1 = query.AddVertex(O);
  query.AddEdge(qc1, qn1);
  query.AddEdge(qc1, qn2);
  query.AddEdge(qc1, qo1);
  VertexId qc2 = query.AddVertex(C);
  VertexId qn3 = query.AddVertex(N);
  VertexId qn4 = query.AddVertex(N);
  VertexId qo2 = query.AddVertex(O);
  query.AddEdge(qc2, qn3);
  query.AddEdge(qc2, qn4);
  query.AddEdge(qc2, qo2);
  query.AddEdge(qn2, qn3);  // the bridge

  // A real GUI also exposes basic patterns (top-m labelled edges and
  // 2-paths; Section 3.2 remark) below the canned patterns. Combine both.
  std::vector<Graph> panel_patterns = result.Patterns();
  for (Graph& basic : TopBasicPatterns(db, 6)) {
    panel_patterns.push_back(std::move(basic));
  }
  GuiModel panel = MakeCatapultGui(std::move(panel_patterns));
  QueryFormulation with_panel = FormulateQuery(query, panel);
  std::printf(
      "\nTMAD-style query (|V|=%zu, |E|=%zu):\n"
      "  edge-at-a-time: %zu steps\n"
      "  with the panel (canned + basic patterns): %zu steps "
      "(%zu placements), mu = %.0f%%\n",
      query.NumVertices(), query.NumEdges(), with_panel.steps_total,
      with_panel.steps_patterns, with_panel.patterns_used,
      with_panel.mu * 100);

  // And a realistic repository query (a 12-edge substructure of an actual
  // urea derivative, decorations included).
  Rng rng(406);
  Graph realistic = RandomConnectedSubgraph(db.graph(3), 12, rng);
  QueryFormulation f = FormulateQuery(realistic, panel);
  std::printf(
      "repository query (|V|=%zu, |E|=%zu):\n"
      "  edge-at-a-time: %zu steps\n"
      "  with the panel: %zu steps (%zu placements), mu = %.0f%%\n",
      realistic.NumVertices(), realistic.NumEdges(), f.steps_total,
      f.steps_patterns, f.patterns_used, f.mu * 100);
  return 0;
}
