// Substructure search session: the end-to-end loop a PubChem-style site
// runs. A user formulates a query visually with the mined pattern panel
// (printed as an Example 1.1-style step script), and the filter-and-verify
// search engine retrieves the matching compounds.
//
//   ./build/examples/substructure_search

#include <cstdio>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/session.h"
#include "src/search/search_engine.h"
#include "src/obs/clock.h"

int main() {
  using namespace catapult;

  MoleculeGeneratorOptions gen;
  gen.num_graphs = 500;
  gen.scaffold_families = 12;
  gen.seed = 1618;
  GraphDatabase db = GenerateMoleculeDatabase(gen);

  // Offline: mine the panel and build the search index.
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.clustering.fine_mcs.node_budget = 5000;
  options.seed = 1618;
  CatapultResult mined = RunCatapult(db, options);
  GuiModel panel = MakeCatapultGui(mined.Patterns());
  SubgraphSearchEngine engine(db);

  // Online: the user draws a query (here: a random real substructure).
  Rng rng(27);
  QueryWorkloadOptions wl;
  wl.count = 1;
  wl.min_edges = 6;
  wl.max_edges = 8;
  wl.seed = 27;
  Graph query = GenerateQueryWorkload(db, wl).front();

  std::printf("query: %s\n\n", query.DebugString().c_str());
  FormulationPlan plan = PlanFormulation(query, panel);
  std::printf("formulation script (%zu steps vs %zu edge-at-a-time):\n%s\n",
              plan.steps.size(), query.NumVertices() + query.NumEdges(),
              DescribePlan(plan, query, panel, &db.labels()).c_str());

  // Execute the subgraph search.
  WallTimer timer;
  std::vector<GraphId> matches = engine.Search(query);
  double filter_only =
      static_cast<double>(engine.FilterCandidates(query).Count());
  std::printf(
      "search: %zu matching compounds out of %zu (%.2f ms; filter kept "
      "%.0f candidates)\n",
      matches.size(), db.size(), timer.ElapsedMillis(), filter_only);
  std::printf("first matches:");
  for (size_t i = 0; i < matches.size() && i < 8; ++i) {
    std::printf(" G%u", matches[i]);
  }
  std::printf("\n");
  return 0;
}
