// catapult_serve - resident pattern-selection server (DESIGN.md §13).
//
// Loads a graph database once, prepares the budget-independent
// clustering/CSG corpus, then serves "canned-pattern panel for budget
// (eta_min, eta_max, gamma)" requests over a Unix-domain socket until a
// SIGINT/SIGTERM asks it to drain. See examples/catapult_client.cpp for the
// matching client.
//
//   catapult_serve --db FILE --socket PATH
//       [--seed S] [--sampling] [--threads N] [--mem-budget-mb MB]
//       [--workers N] [--max-queue N] [--max-sessions N] [--cache N]
//       [--default-deadline-ms MS] [--max-deadline-ms MS]
//       [--retry-after-ms MS] [--idle-timeout-ms MS]
//       [--write-timeout-ms MS] [--drain-timeout-ms MS]
//       [--max-graph-vertices N] [--max-graph-edges N] [--max-graphs N]
//       [--strict-parse] [--metrics-out FILE] [--trace-out FILE]
//       [--admin-listen unix:PATH|tcp:HOST:PORT] [--request-log FILE]
//       [--slow-request-ms MS]
//
// Observability (DESIGN.md §16): --admin-listen opens a second listener
// serving /metrics (Prometheus text), /statusz (JSON) and /healthz while
// requests are in flight; --request-log appends one JSONL line per
// served/shed/failed request; --slow-request-ms flags slow selections;
// --trace-out enables per-request tracing and writes one Chrome-trace file
// at drain.
//
// Prints "listening on PATH" once ready (scripts wait for that line), then
// blocks until a shutdown signal arrives. On SIGTERM/SIGINT it drains:
// stops accepting, sheds new requests with an explicit retry-later reply,
// finishes (or cancels, after --drain-timeout-ms) in-flight work, writes
// --metrics-out, and exits 0. A drain is the *success* path — scripts
// assert exit 0 after kill -TERM.
//
// Exit status:
//   0  clean start, serve, drain
//   1  usage or I/O error (bad flags, unreadable database, bind failure)
//   2  database parse error
//   3  invalid pipeline options

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/graph/io.h"
#include "src/obs/clock.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/serve/server.h"
#include "src/util/signal.h"
#include "src/util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

namespace {

using namespace catapult;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitParseError = 2;
constexpr int kExitOptionsError = 3;

// Minimal flag parser: --name value pairs (same shape as catapult_cli).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_.emplace_back(argv[i] + 2, "true");
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  long GetInt(const std::string& name, long fallback) const {
    auto v = Get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

  bool GetBool(const std::string& name) const { return Get(name).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: catapult_serve --db FILE --socket PATH [--flags]\n"
               "(see the header of examples/catapult_serve.cpp)\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallTicksFromEnv();  // CATAPULT_FIXED_TICKS, for byte-stable traces
  // Install the signal bridge before anything else so an early ^C latches.
  ShutdownSignals& signals = ShutdownSignals::Instance();
  Flags flags(argc, argv, 1);
  auto db_path = flags.Get("db");
  auto socket_path = flags.Get("socket");
  if (!db_path || !socket_path) return Usage();

  IngestOptions ingest;
  ingest.limits.max_vertices_per_graph = static_cast<size_t>(flags.GetInt(
      "max-graph-vertices",
      static_cast<long>(ingest.limits.max_vertices_per_graph)));
  ingest.limits.max_edges_per_graph = static_cast<size_t>(
      flags.GetInt("max-graph-edges",
                   static_cast<long>(ingest.limits.max_edges_per_graph)));
  ingest.limits.max_graphs = static_cast<size_t>(flags.GetInt("max-graphs", 0));
  ingest.strict = flags.GetBool("strict-parse");

  IngestReport ingest_report;
  ParseError parse_error;
  auto db = ReadDatabaseFromFile(*db_path, ingest, &ingest_report,
                                 &parse_error);
  if (!db) {
    std::fprintf(stderr, "%s: %s\n", db_path->c_str(),
                 parse_error.message.empty() ? "cannot read"
                                             : parse_error.message.c_str());
    return parse_error.line > 0 ? kExitParseError : kExitUsage;
  }
  if (db->size() == 0) {
    std::fprintf(stderr, "%s: no graphs ingested\n", db_path->c_str());
    return kExitParseError;
  }

  serve::ServeOptions options;
  options.socket_path = *socket_path;
  options.worker_threads = static_cast<size_t>(flags.GetInt("workers", 2));
  options.max_queue_depth = static_cast<size_t>(flags.GetInt("max-queue", 16));
  options.max_sessions = static_cast<size_t>(flags.GetInt("max-sessions", 64));
  options.cache_capacity = static_cast<size_t>(flags.GetInt("cache", 32));
  options.default_deadline_ms =
      static_cast<double>(flags.GetInt("default-deadline-ms", 0));
  options.max_deadline_ms =
      static_cast<double>(flags.GetInt("max-deadline-ms", 0));
  options.retry_after_ms =
      static_cast<double>(flags.GetInt("retry-after-ms", 100));
  options.idle_timeout_ms =
      static_cast<double>(flags.GetInt("idle-timeout-ms", 0));
  options.write_timeout_ms =
      static_cast<double>(flags.GetInt("write-timeout-ms", 5000));
  options.drain_timeout_ms =
      static_cast<double>(flags.GetInt("drain-timeout-ms", 2000));

  options.pipeline.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.pipeline.use_sampling = flags.GetBool("sampling");
  options.pipeline.ingest_digest = ingest_report.quarantine_digest;
  options.pipeline.clustering.fine_mcs.node_budget = 5000;
  if (auto threads = flags.Get("threads")) {
    long n = std::atol(threads->c_str());
    options.pipeline.threads =
        n <= 0 ? ThreadPool::HardwareThreads() : static_cast<size_t>(n);
  }
  long mem_budget_mb = flags.GetInt("mem-budget-mb", 0);
  if (mem_budget_mb > 0) {
    options.pipeline.mem_hard_limit_bytes =
        static_cast<size_t>(mem_budget_mb) << 20;
  }
  if (auto admin = flags.Get("admin-listen")) options.admin_listen = *admin;
  if (auto reqlog = flags.Get("request-log")) {
    options.request_log_path = *reqlog;
  }
  options.slow_request_ms =
      static_cast<double>(flags.GetInt("slow-request-ms", 0));
  const auto trace_out = flags.Get("trace-out");
  options.enable_tracing = trace_out.has_value();

  serve::Server server;
  const std::string error = server.Start(*db, options);
  if (!error.empty()) {
    std::fprintf(stderr, "catapult_serve: %s\n", error.c_str());
    return error.rfind("options:", 0) == 0 ? kExitOptionsError : kExitUsage;
  }
  const PreparedCorpus& corpus = server.corpus();
  std::fprintf(stderr,
               "corpus: %zu graphs -> %zu clusters, %zu CSGs (%s; clustering "
               "%.1fs, csg %.1fs)\n",
               db->size(), corpus.clusters.size(), corpus.csgs.size(),
               corpus.complete ? "complete" : "degraded",
               corpus.clustering_seconds, corpus.csg_seconds);
  std::printf("listening on %s\n", server.socket_path().c_str());
  std::fflush(stdout);

#if defined(__unix__) || defined(__APPLE__)
  // Block until SIGINT/SIGTERM: the signal bridge makes this fd readable
  // from its watcher thread, outside signal context.
  const int signal_fd = signals.SubscribeFd();
  for (;;) {
    pollfd p{signal_fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, -1);
    if (ready > 0 || (ready < 0 && errno != EINTR)) break;
  }
  ::close(signal_fd);
#endif

  const int signum = signals.last_signal();
  std::fprintf(stderr, "signal %d: draining\n", signum);
  server.BeginDrain();
  server.Stop();

  const obs::MetricsSnapshot metrics = server.Metrics();
  if (auto metrics_out = flags.Get("metrics-out")) {
    obs::JsonWriter w;
    w.BeginObject();
    obs::RenderMetricsFields(metrics, w);
    w.EndObject();
    if (!w.WriteFile(*metrics_out)) {
      std::fprintf(stderr, "cannot write metrics %s\n", metrics_out->c_str());
      return kExitUsage;
    }
    std::fprintf(stderr, "metrics: -> %s\n", metrics_out->c_str());
  }
  if (trace_out) {
    if (!server.tracer()->WriteFile(*trace_out)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out->c_str());
      return kExitUsage;
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n",
                 server.tracer()->event_count(), trace_out->c_str());
  }
  const auto counter = [&metrics](obs::Counter c) {
    return static_cast<unsigned long long>(
        metrics.counters[static_cast<size_t>(c)]);
  };
  std::fprintf(stderr,
               "served: accepted=%llu requests=%llu responses=%llu "
               "shed=%llu cache-hits=%llu degraded=%llu poisoned=%llu\n",
               counter(obs::Counter::kServeAccepted),
               counter(obs::Counter::kServeRequests),
               counter(obs::Counter::kServeResponses),
               counter(obs::Counter::kServeShed),
               counter(obs::Counter::kServeCacheHits),
               counter(obs::Counter::kServeDegraded),
               counter(obs::Counter::kServePoisonedStreams));
  return kExitOk;
}
