// catapult_cli - command-line driver for the library.
//
// Subcommands:
//   generate --out FILE [--graphs N] [--families K] [--seed S]
//       Write a synthetic molecule-like database in gSpan text format.
//   mine --db FILE --out FILE [--gamma N] [--min-size K] [--max-size K]
//        [--seed S] [--sampling] [--deadline-ms MS] [--threads N]
//        [--processes N] [--max-shard-retries N] [--listen ADDR]
//        [--dist-admin-listen ADDR]
//        [--checkpoint-dir DIR] [--resume] [--checkpoint-every-phase 0|1]
//        [--max-graph-vertices N] [--max-graph-edges N] [--max-graphs N]
//        [--mem-budget-mb MB] [--strict-parse]
//        [--trace-out FILE] [--metrics-out FILE] [--print-stats]
//       Run the full Catapult pipeline and write the selected canned
//       patterns (as a pattern database in the same text format).
//       --deadline-ms bounds the wall-clock time: on expiry each phase
//       returns its best partial result and the degradation is reported.
//       --checkpoint-dir persists every completed phase as a checksummed
//       checkpoint; --resume restarts from the furthest intact phase in
//       that directory (corrupt checkpoints fall down the recovery ladder,
//       never crash). --checkpoint-every-phase 0 uses the directory for
//       resume only.
//       Input is treated as untrusted: graphs violating the structural
//       limits (--max-graph-vertices/--max-graph-edges, plus built-in line/
//       label limits) are quarantined — skipped, counted per reason, and
//       reported — while ingestion continues; --strict-parse fails the read
//       on the first violation instead. --max-graphs stops ingestion after
//       N graphs. --mem-budget-mb bounds the tracked memory of both
//       ingestion and the pipeline: soft pressure sheds work, a hard breach
//       yields a degraded-but-valid pattern set, never an OOM kill.
//       --threads N runs the parallel phases on N threads (0 = hardware
//       concurrency; default 1): the output is bit-identical at any thread
//       count for the same seed.
//       --processes N shards the fine-clustering/CSG phases across N
//       supervised worker processes (DESIGN.md Section 12); crashed or hung
//       workers are retried under capped exponential backoff, up to
//       --max-shard-retries failures per shard before the shard is
//       quarantined and executed in-process. Output stays bit-identical to
//       a single-process run for the same seed.
//       --listen ADDR ("unix:PATH" or "tcp:HOST:PORT") runs the shards on
//       a remote worker fleet instead of forked children (DESIGN.md
//       Section 14): the supervisor listens on ADDR and catapult_worker
//       processes dial in, handshake (protocol + config fingerprint), and
//       carry shards over the socket. Dead, hung, or fenced workers are
//       survived exactly like crashed forks; if the whole fleet is lost
//       the shards fall back in-process and the run exits with code 7.
//       --join-timeout-ms bounds how long the supervisor waits for a
//       (re)joining fleet before declaring it lost (default 10000).
//       Requires --processes > 1; output stays bit-identical.
//       --dist-admin-listen ADDR opens a best-effort telemetry endpoint on
//       the remote-fleet supervisor serving /metrics, /statusz (fleet
//       membership and shard progress) and /healthz while the run is live.
//       Observability (DESIGN.md Section 11): --trace-out writes a Chrome
//       trace-event JSON file of the run's phase spans (open it in
//       chrome://tracing or https://ui.perfetto.dev), --metrics-out writes
//       the merged per-primitive counters/gauges/histograms as JSON, and
//       --print-stats prints a human-readable summary of the same counters
//       with p50/p95/p99 quantiles for every histogram (plus the ingestion
//       quarantine/memory accounting) to stderr. None
//       of the three affects the mined patterns: instrumentation only ever
//       writes metrics, it never reads them.
//   evaluate --db FILE --patterns FILE [--queries N] [--seed S]
//       Evaluate a pattern panel on a random query workload (MP, mu).
//   search --db FILE --query-id I [--edges K] [--seed S]
//       Extract a random connected substructure of graph I and run the
//       subgraph search engine over the database.
//
// Exit status — one code per failure class so scripts can branch on what
// went wrong without scraping stderr:
//   0  success
//   1  usage or I/O error (bad flags, unreadable/unwritable files)
//   2  database parse error (malformed input, or nothing ingested)
//   3  invalid pipeline options (ValidateCatapultOptions rejected them)
//   4  memory budget hard breach (degraded patterns were still written)
//   5  deadline expiry degraded the result (partial patterns written)
//   6  sharded execution quarantined at least one shard (patterns written;
//      bit-identical, but the process-level fault tolerance was exhausted)
//   7  remote worker fleet lost; the run completed only via the in-process
//      fallback (patterns written and bit-identical, but no remote worker
//      contributed a cluster)
//   130  interrupted by SIGINT/SIGTERM (partial report printed)
// Codes 4-7 still write the output pattern file before exiting nonzero:
// the result is valid, the code only flags how it was obtained.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/graph/algorithms.h"
#include "src/graph/io.h"
#include "src/obs/clock.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/search/search_engine.h"
#include "src/util/rng.h"
#include "src/util/signal.h"
#include "src/util/thread_pool.h"

namespace {

using namespace catapult;

// Exit codes (see the header comment).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitParseError = 2;
constexpr int kExitOptionsError = 3;
constexpr int kExitResourceBreach = 4;
constexpr int kExitDeadlineDegraded = 5;
constexpr int kExitShardQuarantine = 6;
constexpr int kExitRemoteFallback = 7;
constexpr int kExitInterrupted = 130;  // shell convention: 128 + SIGINT

// Minimal flag parser: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
    // Boolean flags (no value).
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_.emplace_back(argv[i] + 2, "true");
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  long GetInt(const std::string& name, long fallback) const {
    auto v = Get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

  bool GetBool(const std::string& name) const { return Get(name).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: catapult_cli <generate|mine|evaluate|search> "
               "[--flags]\n(see the header of examples/catapult_cli.cpp)\n");
  return 1;
}

// Reads a database under `options`, printing the parse diagnostics (file,
// line, graph index, reason) on failure and the quarantine/memory summary
// when anything was skipped or ingestion stopped early. On failure
// `exit_code` (when given) distinguishes malformed content (kExitParseError)
// from plain I/O trouble (kExitUsage).
std::optional<GraphDatabase> ReadDatabaseOrComplain(
    const std::string& path, const IngestOptions& options,
    IngestReport* report = nullptr, int* exit_code = nullptr) {
  IngestReport local;
  IngestReport& rep = report != nullptr ? *report : local;
  ParseError error;
  auto db = ReadDatabaseFromFile(path, options, &rep, &error);
  if (!db) {
    if (error.line > 0) {
      std::fprintf(stderr, "%s:%zu: parse error in graph %zu: %s\n",
                   path.c_str(), error.line, error.graph_index,
                   error.message.c_str());
      if (exit_code != nullptr) *exit_code = kExitParseError;
    } else {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   error.message.empty() ? "cannot read"
                                         : error.message.c_str());
      if (exit_code != nullptr) *exit_code = kExitUsage;
    }
    return db;
  }
  if (rep.graphs_quarantined > 0 || !rep.quarantine_reasons.empty() ||
      rep.stopped_early) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), rep.Summary().c_str());
  }
  // Quarantine mode never fails the read, but a database with nothing in it
  // is useless to every subcommand — treat it as the error it is.
  if (db->size() == 0) {
    std::fprintf(stderr, "%s: no graphs ingested\n", path.c_str());
    if (exit_code != nullptr) *exit_code = kExitParseError;
    return std::nullopt;
  }
  return db;
}

// Shared ingestion flags of the database-reading subcommands.
IngestOptions IngestOptionsFromFlags(const Flags& flags) {
  IngestOptions options;
  options.limits.max_vertices_per_graph = static_cast<size_t>(flags.GetInt(
      "max-graph-vertices",
      static_cast<long>(options.limits.max_vertices_per_graph)));
  options.limits.max_edges_per_graph = static_cast<size_t>(flags.GetInt(
      "max-graph-edges",
      static_cast<long>(options.limits.max_edges_per_graph)));
  options.limits.max_graphs =
      static_cast<size_t>(flags.GetInt("max-graphs", 0));
  options.strict = flags.GetBool("strict-parse");
  long mb = flags.GetInt("mem-budget-mb", 0);
  if (mb > 0) {
    options.memory = MemoryBudget::Limited(0, static_cast<size_t>(mb) << 20);
  }
  return options;
}

int CmdGenerate(const Flags& flags) {
  auto out = flags.Get("out");
  if (!out) return Usage();
  MoleculeGeneratorOptions options;
  options.num_graphs = static_cast<size_t>(flags.GetInt("graphs", 500));
  options.scaffold_families =
      static_cast<size_t>(flags.GetInt("families", 12));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  GraphDatabase db = GenerateMoleculeDatabase(options);
  if (IoStatus status = WriteDatabaseToFile(db, *out); !status) {
    std::fprintf(stderr, "cannot write %s: %s\n", out->c_str(),
                 status.message().c_str());
    return 1;
  }
  DatabaseStats stats = db.Stats();
  std::printf("wrote %zu graphs (avg |V|=%.1f, avg |E|=%.1f) to %s\n",
              stats.num_graphs, stats.avg_vertices, stats.avg_edges,
              out->c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  auto db_path = flags.Get("db");
  auto out = flags.Get("out");
  if (!db_path || !out) return Usage();
  IngestOptions ingest = IngestOptionsFromFlags(flags);
  IngestReport ingest_report;
  int read_exit = kExitUsage;
  auto db = ReadDatabaseOrComplain(*db_path, ingest, &ingest_report,
                                   &read_exit);
  if (!db) return read_exit;
  CatapultOptions options;
  options.ingest_digest = ingest_report.quarantine_digest;
  long mem_budget_mb = flags.GetInt("mem-budget-mb", 0);
  if (mem_budget_mb > 0) {
    options.mem_hard_limit_bytes = static_cast<size_t>(mem_budget_mb) << 20;
  }
  options.selector.budget.gamma =
      static_cast<size_t>(flags.GetInt("gamma", 12));
  options.selector.budget.eta_min =
      static_cast<size_t>(flags.GetInt("min-size", 3));
  options.selector.budget.eta_max =
      static_cast<size_t>(flags.GetInt("max-size", 8));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  // --threads 0 asks for hardware concurrency explicitly; an absent flag
  // leaves options.threads at 0 = "auto" (CATAPULT_THREADS env, else 1).
  if (auto threads = flags.Get("threads")) {
    long n = std::atol(threads->c_str());
    options.threads = n <= 0 ? ThreadPool::HardwareThreads()
                             : static_cast<size_t>(n);
  }
  options.clustering.fine_mcs.node_budget = 5000;
  options.use_sampling = flags.GetBool("sampling");
  options.deadline_ms = static_cast<double>(flags.GetInt("deadline-ms", 0));
  options.processes = static_cast<size_t>(flags.GetInt("processes", 0));
  options.max_shard_retries = static_cast<size_t>(
      flags.GetInt("max-shard-retries",
                   static_cast<long>(options.max_shard_retries)));
  if (auto listen = flags.Get("listen")) options.dist_listen = *listen;
  if (auto admin = flags.Get("dist-admin-listen")) {
    options.dist_admin_listen = *admin;
  }
  options.dist_join_timeout_ms = static_cast<double>(
      flags.GetInt("join-timeout-ms",
                   static_cast<long>(options.dist_join_timeout_ms)));
  if (auto dir = flags.Get("checkpoint-dir")) options.checkpoint_dir = *dir;
  options.resume = flags.GetBool("resume");
  options.checkpoint_every_phase =
      flags.GetInt("checkpoint-every-phase", 1) != 0;
  // Observability: any of the three flags attaches a metrics registry to the
  // run; --trace-out additionally attaches a tracer. With none of them the
  // context carries null handles and the hot paths do no metric work at all.
  auto trace_out = flags.Get("trace-out");
  auto metrics_out = flags.Get("metrics-out");
  bool print_stats = flags.GetBool("print-stats");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  bool observe = trace_out || metrics_out || print_stats;
  // The run shares the process-wide shutdown token so SIGINT/SIGTERM wind
  // it down cooperatively (src/util/signal.h).
  RunContext ctx =
      RunContext(Deadline::Infinite(), ShutdownSignals::Instance().token())
          .WithObservability(observe ? &registry : nullptr,
                             trace_out ? &tracer : nullptr);
  CatapultResult result = RunCatapult(*db, options, ctx);
  if (!result.ok()) {
    for (const OptionsError& e : result.option_errors) {
      std::fprintf(stderr, "invalid option %s: %s\n", e.field.c_str(),
                   e.message.c_str());
    }
    return kExitOptionsError;
  }

  GraphDatabase panel;
  panel.labels() = db->labels();
  for (const SelectedPattern& p : result.selection.patterns) {
    panel.Add(p.graph);
  }
  if (IoStatus status = WriteDatabaseToFile(panel, *out); !status) {
    std::fprintf(stderr, "cannot write %s: %s\n", out->c_str(),
                 status.message().c_str());
    return 1;
  }
  std::printf(
      "mined %zu patterns from %zu graphs (%zu clusters; %zu threads; "
      "clustering %.1fs, selection %.1fs) -> %s\n",
      result.selection.patterns.size(), db->size(), result.clusters.size(),
      result.execution.threads, result.clustering_seconds,
      result.selection_seconds, out->c_str());
  std::printf("ingest: %s\n", ingest_report.Summary().c_str());
  if (ingest_report.mem_peak_bytes > 0 ||
      result.execution.mem_budget_set) {
    std::printf(
        "memory: ingest peak %.1f MB, pipeline peak %.1f MB%s\n",
        static_cast<double>(ingest_report.mem_peak_bytes) / (1 << 20),
        static_cast<double>(result.execution.mem_peak_bytes) / (1 << 20),
        result.execution.mem_hard_breached ? " [hard limit breached]" : "");
  }
  if (result.execution.mem_hard_breached) {
    std::printf("  %s\n", result.execution.resource_error.ToString().c_str());
  }
  for (const SelectedPattern& p : result.selection.patterns) {
    std::printf("  |E|=%zu score=%.4f ccov=%.3f div=%.1f cog=%.2f%s\n",
                p.graph.NumEdges(), p.score, p.ccov, p.div, p.cog,
                p.fallback ? " [fallback]" : "");
  }
  const ExecutionReport& exec = result.execution;
  if ((exec.deadline_set || exec.mem_budget_set) && exec.Degraded()) {
    std::printf(
        "degradation: clustering=%s csg=%s selection=%s "
        "coarse-only=%d degraded-csgs=%zu fallback-patterns=%zu "
        "iso-budget-exhausted=%llu\n",
        exec.clustering_complete ? "complete" : "partial",
        exec.csg_complete ? "complete" : "partial",
        exec.selection_complete ? "complete" : "partial",
        exec.clustering_coarse_only ? 1 : 0, exec.degraded_csgs,
        exec.fallback_patterns,
        static_cast<unsigned long long>(exec.iso_budget_exhausted));
  }
  if (exec.Resumed()) {
    std::printf("resumed from checkpoint phase: %s\n",
                exec.resumed_from.c_str());
  }
  for (const CheckpointEvent& event : exec.checkpoint_events) {
    std::printf("  %s\n", ToString(event).c_str());
  }
  if (exec.dist.enabled) {
    const dist::DistReport& d = exec.dist;
    std::printf(
        "sharded: %zu shards on %zu processes; spawned=%zu deaths=%zu "
        "hangs=%zu retries=%zu backoff=%.0fms quarantined=%zu "
        "fallbacks=%zu\n",
        d.shards, d.processes, d.workers_spawned, d.worker_deaths,
        d.worker_hangs, d.shard_retries, d.backoff_total_ms,
        d.quarantined_shards, d.inprocess_fallbacks);
    if (d.remote) {
      std::printf(
          "remote: listen=%s joined=%zu rejected=%zu reconnects=%zu "
          "fenced-frames=%zu remote-clusters=%zu fleet-lost=%zu%s\n",
          d.listen_address.c_str(), d.workers_joined, d.workers_rejected,
          d.reconnects, d.fenced_frames, d.remote_clusters,
          d.fleet_lost_fallbacks,
          d.remote_fallback_only ? " [fallback-only]" : "");
    }
    // The full event log only matters when supervision actually had to act.
    if (d.worker_deaths + d.worker_hangs + d.shard_retries +
            d.quarantined_shards >
        0) {
      for (const dist::ShardEvent& event : d.events) {
        std::printf("  %s\n", dist::ToString(event).c_str());
      }
    }
  }
  if (trace_out) {
    if (tracer.WriteFile(*trace_out)) {
      std::fprintf(stderr, "trace: %zu spans -> %s\n", tracer.event_count(),
                   trace_out->c_str());
    } else {
      std::fprintf(stderr, "cannot write trace %s\n", trace_out->c_str());
      return 1;
    }
  }
  if (metrics_out) {
    obs::JsonWriter w;
    w.BeginObject();
    obs::RenderMetricsFields(exec.metrics, w);
    w.EndObject();
    if (w.WriteFile(*metrics_out)) {
      std::fprintf(stderr, "metrics: -> %s\n", metrics_out->c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics %s\n", metrics_out->c_str());
      return 1;
    }
  }
  if (print_stats) {
    std::fprintf(stderr, "--- run stats ---\n%s",
                 obs::HumanSummary(exec.metrics).c_str());
    std::fprintf(stderr, "ingest:\n  %s\n", ingest_report.Summary().c_str());
    std::fprintf(stderr,
                 "  ingest peak %.1f MB, pipeline peak %.1f MB%s\n",
                 static_cast<double>(ingest_report.mem_peak_bytes) / (1 << 20),
                 static_cast<double>(exec.mem_peak_bytes) / (1 << 20),
                 exec.mem_hard_breached ? " [hard limit breached]" : "");
  }
  // Failure-class exit code, most severe first. The output file and every
  // report above were already written: the code flags *how* the patterns
  // were obtained, not whether they exist.
  if (ShutdownSignals::Instance().Received()) {
    std::fprintf(stderr, "interrupted by signal %d; partial results written\n",
                 ShutdownSignals::Instance().last_signal());
    return kExitInterrupted;
  }
  if (exec.mem_hard_breached) return kExitResourceBreach;
  if (exec.dist.remote_fallback_only) return kExitRemoteFallback;
  if (exec.dist.quarantined_shards > 0) return kExitShardQuarantine;
  if (exec.deadline_set && exec.Degraded()) return kExitDeadlineDegraded;
  return kExitOk;
}

int CmdEvaluate(const Flags& flags) {
  auto db_path = flags.Get("db");
  auto patterns_path = flags.Get("patterns");
  if (!db_path || !patterns_path) return Usage();
  int read_exit = kExitUsage;
  auto db = ReadDatabaseOrComplain(*db_path, IngestOptionsFromFlags(flags),
                                   nullptr, &read_exit);
  if (!db) return read_exit;
  auto patterns = ReadDatabaseOrComplain(
      *patterns_path, IngestOptionsFromFlags(flags), nullptr, &read_exit);
  if (!patterns) return read_exit;
  QueryWorkloadOptions wl;
  wl.count = static_cast<size_t>(flags.GetInt("queries", 100));
  wl.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::vector<Graph> queries = GenerateQueryWorkload(*db, wl);
  GuiModel gui = MakeCatapultGui(std::vector<Graph>(
      patterns->graphs().begin(), patterns->graphs().end()));
  WorkloadReport report = EvaluateGui(queries, gui);
  std::printf(
      "%zu queries: MP=%.1f%%  max mu=%.1f%%  avg mu=%.1f%%  avg steps=%.1f\n",
      report.num_queries, report.mp_percent, report.max_mu * 100,
      report.avg_mu * 100, report.avg_steps);
  std::printf("panel: avg cog=%.2f  avg div=%.2f  scov~%.3f\n",
              AverageCognitiveLoad(gui.patterns),
              AverageSetDiversity(gui.patterns),
              SubgraphCoverage(gui.patterns, *db, 300));
  return 0;
}

int CmdSearch(const Flags& flags) {
  auto db_path = flags.Get("db");
  if (!db_path) return Usage();
  int read_exit = kExitUsage;
  auto db = ReadDatabaseOrComplain(*db_path, IngestOptionsFromFlags(flags),
                                   nullptr, &read_exit);
  if (!db) return read_exit;
  GraphId source = static_cast<GraphId>(flags.GetInt("query-id", 0));
  if (source >= db->size()) {
    std::fprintf(stderr, "query-id out of range\n");
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 9)));
  Graph query = RandomConnectedSubgraph(
      db->graph(source), static_cast<size_t>(flags.GetInt("edges", 6)), rng);
  SubgraphSearchEngine engine(*db);
  std::vector<GraphId> matches = engine.Search(query);
  std::printf("query (from G%u): %s\n%zu matches:", source,
              query.DebugString().c_str(), matches.size());
  for (size_t i = 0; i < matches.size() && i < 20; ++i) {
    std::printf(" G%u", matches[i]);
  }
  std::printf("%s\n", matches.size() > 20 ? " ..." : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  obs::InstallTicksFromEnv();  // CATAPULT_FIXED_TICKS, for byte-stable traces
  // Installs the async-signal-safe SIGINT/SIGTERM bridge (src/util/signal.h)
  // up front, so an early ^C is latched even before a run context exists.
  ShutdownSignals::Instance();
  Flags flags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "search") return CmdSearch(flags);
  return Usage();
}
