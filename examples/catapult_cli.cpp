// catapult_cli - command-line driver for the library.
//
// Subcommands:
//   generate --out FILE [--graphs N] [--families K] [--seed S]
//       Write a synthetic molecule-like database in gSpan text format.
//   mine --db FILE --out FILE [--gamma N] [--min-size K] [--max-size K]
//        [--seed S] [--sampling] [--deadline-ms MS]
//        [--checkpoint-dir DIR] [--resume] [--checkpoint-every-phase 0|1]
//       Run the full Catapult pipeline and write the selected canned
//       patterns (as a pattern database in the same text format).
//       --deadline-ms bounds the wall-clock time: on expiry each phase
//       returns its best partial result and the degradation is reported.
//       --checkpoint-dir persists every completed phase as a checksummed
//       checkpoint; --resume restarts from the furthest intact phase in
//       that directory (corrupt checkpoints fall down the recovery ladder,
//       never crash). --checkpoint-every-phase 0 uses the directory for
//       resume only.
//   evaluate --db FILE --patterns FILE [--queries N] [--seed S]
//       Evaluate a pattern panel on a random query workload (MP, mu).
//   search --db FILE --query-id I [--edges K] [--seed S]
//       Extract a random connected substructure of graph I and run the
//       subgraph search engine over the database.
//
// Exit status: 0 on success, 1 on usage/IO errors.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/graph/algorithms.h"
#include "src/graph/io.h"
#include "src/search/search_engine.h"
#include "src/util/rng.h"

namespace {

using namespace catapult;

// Minimal flag parser: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_.emplace_back(argv[i] + 2, argv[i + 1]);
      }
    }
    // Boolean flags (no value).
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 &&
          (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0)) {
        values_.emplace_back(argv[i] + 2, "true");
      }
    }
  }

  std::optional<std::string> Get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }

  long GetInt(const std::string& name, long fallback) const {
    auto v = Get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

  bool GetBool(const std::string& name) const { return Get(name).has_value(); }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: catapult_cli <generate|mine|evaluate|search> "
               "[--flags]\n(see the header of examples/catapult_cli.cpp)\n");
  return 1;
}

// Reads a database, printing the parse diagnostics (file, line, reason) on
// failure.
std::optional<GraphDatabase> ReadDatabaseOrComplain(const std::string& path) {
  ParseError error;
  auto db = ReadDatabaseFromFile(path, &error);
  if (!db) {
    if (error.line > 0) {
      std::fprintf(stderr, "%s:%zu: parse error: %s\n", path.c_str(),
                   error.line, error.message.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   error.message.empty() ? "cannot read"
                                         : error.message.c_str());
    }
  }
  return db;
}

int CmdGenerate(const Flags& flags) {
  auto out = flags.Get("out");
  if (!out) return Usage();
  MoleculeGeneratorOptions options;
  options.num_graphs = static_cast<size_t>(flags.GetInt("graphs", 500));
  options.scaffold_families =
      static_cast<size_t>(flags.GetInt("families", 12));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  GraphDatabase db = GenerateMoleculeDatabase(options);
  if (IoStatus status = WriteDatabaseToFile(db, *out); !status) {
    std::fprintf(stderr, "cannot write %s: %s\n", out->c_str(),
                 status.message().c_str());
    return 1;
  }
  DatabaseStats stats = db.Stats();
  std::printf("wrote %zu graphs (avg |V|=%.1f, avg |E|=%.1f) to %s\n",
              stats.num_graphs, stats.avg_vertices, stats.avg_edges,
              out->c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  auto db_path = flags.Get("db");
  auto out = flags.Get("out");
  if (!db_path || !out) return Usage();
  auto db = ReadDatabaseOrComplain(*db_path);
  if (!db) return 1;
  CatapultOptions options;
  options.selector.budget.gamma =
      static_cast<size_t>(flags.GetInt("gamma", 12));
  options.selector.budget.eta_min =
      static_cast<size_t>(flags.GetInt("min-size", 3));
  options.selector.budget.eta_max =
      static_cast<size_t>(flags.GetInt("max-size", 8));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.clustering.fine_mcs.node_budget = 5000;
  options.use_sampling = flags.GetBool("sampling");
  options.deadline_ms = static_cast<double>(flags.GetInt("deadline-ms", 0));
  if (auto dir = flags.Get("checkpoint-dir")) options.checkpoint_dir = *dir;
  options.resume = flags.GetBool("resume");
  options.checkpoint_every_phase =
      flags.GetInt("checkpoint-every-phase", 1) != 0;
  CatapultResult result = RunCatapult(*db, options);
  if (!result.ok()) {
    for (const OptionsError& e : result.option_errors) {
      std::fprintf(stderr, "invalid option %s: %s\n", e.field.c_str(),
                   e.message.c_str());
    }
    return 1;
  }

  GraphDatabase panel;
  panel.labels() = db->labels();
  for (const SelectedPattern& p : result.selection.patterns) {
    panel.Add(p.graph);
  }
  if (IoStatus status = WriteDatabaseToFile(panel, *out); !status) {
    std::fprintf(stderr, "cannot write %s: %s\n", out->c_str(),
                 status.message().c_str());
    return 1;
  }
  std::printf(
      "mined %zu patterns from %zu graphs (%zu clusters; clustering %.1fs, "
      "selection %.1fs) -> %s\n",
      result.selection.patterns.size(), db->size(), result.clusters.size(),
      result.clustering_seconds, result.selection_seconds, out->c_str());
  for (const SelectedPattern& p : result.selection.patterns) {
    std::printf("  |E|=%zu score=%.4f ccov=%.3f div=%.1f cog=%.2f%s\n",
                p.graph.NumEdges(), p.score, p.ccov, p.div, p.cog,
                p.fallback ? " [fallback]" : "");
  }
  const ExecutionReport& exec = result.execution;
  if (exec.deadline_set && exec.Degraded()) {
    std::printf(
        "deadline degradation: clustering=%s csg=%s selection=%s "
        "coarse-only=%d degraded-csgs=%zu fallback-patterns=%zu "
        "iso-budget-exhausted=%llu\n",
        exec.clustering_complete ? "complete" : "partial",
        exec.csg_complete ? "complete" : "partial",
        exec.selection_complete ? "complete" : "partial",
        exec.clustering_coarse_only ? 1 : 0, exec.degraded_csgs,
        exec.fallback_patterns,
        static_cast<unsigned long long>(exec.iso_budget_exhausted));
  }
  if (exec.Resumed()) {
    std::printf("resumed from checkpoint phase: %s\n",
                exec.resumed_from.c_str());
  }
  for (const CheckpointEvent& event : exec.checkpoint_events) {
    std::printf("  %s\n", ToString(event).c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto db_path = flags.Get("db");
  auto patterns_path = flags.Get("patterns");
  if (!db_path || !patterns_path) return Usage();
  auto db = ReadDatabaseOrComplain(*db_path);
  if (!db) return 1;
  auto patterns = ReadDatabaseOrComplain(*patterns_path);
  if (!patterns) return 1;
  QueryWorkloadOptions wl;
  wl.count = static_cast<size_t>(flags.GetInt("queries", 100));
  wl.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  std::vector<Graph> queries = GenerateQueryWorkload(*db, wl);
  GuiModel gui = MakeCatapultGui(std::vector<Graph>(
      patterns->graphs().begin(), patterns->graphs().end()));
  WorkloadReport report = EvaluateGui(queries, gui);
  std::printf(
      "%zu queries: MP=%.1f%%  max mu=%.1f%%  avg mu=%.1f%%  avg steps=%.1f\n",
      report.num_queries, report.mp_percent, report.max_mu * 100,
      report.avg_mu * 100, report.avg_steps);
  std::printf("panel: avg cog=%.2f  avg div=%.2f  scov~%.3f\n",
              AverageCognitiveLoad(gui.patterns),
              AverageSetDiversity(gui.patterns),
              SubgraphCoverage(gui.patterns, *db, 300));
  return 0;
}

int CmdSearch(const Flags& flags) {
  auto db_path = flags.Get("db");
  if (!db_path) return Usage();
  auto db = ReadDatabaseOrComplain(*db_path);
  if (!db) return 1;
  GraphId source = static_cast<GraphId>(flags.GetInt("query-id", 0));
  if (source >= db->size()) {
    std::fprintf(stderr, "query-id out of range\n");
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 9)));
  Graph query = RandomConnectedSubgraph(
      db->graph(source), static_cast<size_t>(flags.GetInt("edges", 6)), rng);
  SubgraphSearchEngine engine(*db);
  std::vector<GraphId> matches = engine.Search(query);
  std::printf("query (from G%u): %s\n%zu matches:", source,
              query.DebugString().c_str(), matches.size());
  for (size_t i = 0; i < matches.size() && i < 20; ++i) {
    std::printf(" G%u", matches[i]);
  }
  std::printf("%s\n", matches.size() > 20 ? " ..." : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "search") return CmdSearch(flags);
  return Usage();
}
